package nwcq

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestResultCacheHitMatchesMiss(t *testing.T) {
	idx, err := Build(testPoints(2000, 91), WithBulkLoad(), WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 480, Y: 510, Length: 70, Width: 70, N: 4}
	first, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Found != first.Found || second.Dist != first.Dist {
		t.Fatalf("hit diverged: %+v vs %+v", second, first)
	}
	rc := idx.Metrics().ResultCache
	if rc == nil {
		t.Fatal("no ResultCache in metrics despite WithResultCache")
	}
	if rc.Hits == 0 {
		t.Fatalf("no hit recorded: %+v", rc)
	}
}

func TestResultCacheHitZeroAllocs(t *testing.T) {
	idx, err := Build(testPoints(2000, 92), WithBulkLoad(), WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{X: 500, Y: 500, Length: 60, Width: 60, N: 3}
	if _, err := idx.NWCCtx(ctx, q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.NWCCtx(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f per query, want 0", allocs)
	}
}

func TestResultCacheInvalidatedByPublish(t *testing.T) {
	idx, err := Build(testPoints(300, 93), WithResultCache(64),
		WithSpace(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// A tight query near the corner, cached before the corner is
	// populated.
	q := Query{X: 990, Y: 990, Length: 20, Width: 20, N: 2}
	before, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	gen := idx.ViewGeneration()
	// Publish two points forming a zero-or-near-zero-distance group
	// right at the query point: the post-publish answer must find it.
	if err := idx.Insert(Point{X: 990, Y: 990, ID: 900001}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Point{X: 992, Y: 992, ID: 900002}); err != nil {
		t.Fatal(err)
	}
	if g := idx.ViewGeneration(); g <= gen {
		t.Fatalf("generation did not advance across publishes: %d -> %d", gen, g)
	}
	after, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Found {
		t.Fatalf("stale result served after publish: before=%+v after=%+v", before, after)
	}
	if rc := idx.Metrics().ResultCache; rc.Invalidations == 0 {
		t.Fatalf("no invalidation recorded: %+v", rc)
	}
}

func TestResultCacheKNWC(t *testing.T) {
	idx, err := Build(testPoints(1500, 94), WithBulkLoad(), WithResultCache(32))
	if err != nil {
		t.Fatal(err)
	}
	q := KQuery{Query: Query{X: 500, Y: 500, Length: 90, Width: 90, N: 3}, K: 3, M: 1}
	first, err := idx.KNWC(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := idx.KNWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Groups) != len(first.Groups) {
		t.Fatalf("hit diverged: %d vs %d groups", len(second.Groups), len(first.Groups))
	}
	for i := range first.Groups {
		if second.Groups[i].Dist != first.Groups[i].Dist {
			t.Fatalf("group %d: %g vs %g", i, second.Groups[i].Dist, first.Groups[i].Dist)
		}
	}
}

// TestResultCacheConcurrentWithMutations is the -race stress for the
// generation protocol: identical queries coalescing on the cache while
// mutations publish new views. Every result is checked against an
// uncached recompute at a generation observed *after* the result came
// back — if the cache ever served a result staler than the generation
// the query started at, the recompute (same points or more) could
// disprove it by finding a strictly better group where the cached
// answer found none.
func TestResultCacheConcurrentWithMutations(t *testing.T) {
	idx, err := Build(testPoints(800, 95), WithResultCache(64),
		WithSpace(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{X: 995, Y: 995, Length: 8, Width: 8, N: 2}

	const readers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: populate the corner point by point; once both points are
	// published, the group exists forever after.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := idx.Insert(Point{X: 995, Y: 995, ID: 910001}); err != nil {
			t.Error(err)
		}
		if err := idx.Insert(Point{X: 996, Y: 996, ID: 910002}); err != nil {
			t.Error(err)
		}
		// Keep publishing unrelated points so generations churn under the
		// readers.
		rng := rand.New(rand.NewSource(95))
		for i := 0; i < 200; i++ {
			p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(920000 + i)}
			if err := idx.Insert(p); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()

	var sawFound bool
	var mu sync.Mutex
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := idx.NWCCtx(ctx, q)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Found {
					mu.Lock()
					sawFound = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// The corner group has been published; a fresh query must see it.
	// If a stale not-found entry survived the publishes this fails.
	res, err := idx.NWCCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("group invisible after all publishes (stale cache?): %+v", res)
	}
	_ = sawFound
}

func TestBatchHonorsWithParallelism(t *testing.T) {
	idx, err := Build(testPoints(600, 96), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 6)
	for i := range queries {
		queries[i] = Query{X: 500, Y: 500, Length: 60, Width: 60, N: 2}
	}
	// Parallelism 1 via the build option: must run (sequentially) and
	// agree with the direct path.
	res, err := idx.NWCBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := idx.NWC(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Found != direct.Found || math.Abs(res[i].Dist-direct.Dist) > 1e-9 {
			t.Fatalf("batch[%d] = %+v, direct %+v", i, res[i], direct)
		}
	}
}
