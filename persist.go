package nwcq

import (
	"fmt"
	"os"
	"time"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/pager"
	"nwcq/internal/rstar"
)

// PagedIndex is an Index whose R*-tree nodes live on 4096-byte pages in
// a file, one node per page — the disk-oriented form the paper's I/O
// accounting assumes. Every page is checksummed (CRC-32, verified once
// when it enters the buffer pool) and reads go through a sharded pool
// of immutable frames shared zero-copy by concurrent queries, with a
// decoded-node cache above it; size both with WithPageCacheSize and
// WithNodeCacheSize.
//
// The density grid and IWP pointers are derived structures; they are
// rebuilt when the file is opened.
type PagedIndex struct {
	Index
	pages *pager.Store
	file  *os.File
}

// PageStats mirrors the pager's operation counters.
type PageStats struct {
	// Reads and Writes count physical page transfers.
	Reads  uint64
	Writes uint64
	// CacheHits and CacheMisses count buffer-pool outcomes; Evictions
	// counts frames dropped for room; Coalesced counts cold reads served
	// by piggybacking on another reader's in-flight file read.
	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64
	Coalesced   uint64
}

// defaultPageCache is the buffer-pool capacity (in pages) used when
// WithPageCacheSize is not given.
const defaultPageCache = 256

// resolveCaches applies the cache defaults for paged indexes.
func (o *buildOptions) resolveCaches() (pageCache, nodeCache int) {
	pageCache = defaultPageCache
	if o.pageCacheSet {
		pageCache = o.pageCache
	}
	nodeCache = rstar.DefaultNodeCacheSize
	if o.nodeCacheSet {
		nodeCache = o.nodeCache
	}
	return pageCache, nodeCache
}

// BuildPaged indexes points into a page file at path (created or
// truncated), persists the tree, and returns a queryable index. Close
// it to release the file.
func BuildPaged(points []Point, path string, opts ...BuildOption) (*PagedIndex, error) {
	o := buildOptions{maxEntries: 50, gridCellSize: 25}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxEntries > rstar.MaxPagedEntries() {
		return nil, fmt.Errorf("nwcq: fan-out %d exceeds page capacity %d", o.maxEntries, rstar.MaxPagedEntries())
	}
	pageCache, nodeCache := o.resolveCaches()
	pages, f, err := pager.CreateFile(path, pager.Options{CacheSize: pageCache})
	if err != nil {
		return nil, err
	}
	store := rstar.NewPagedStoreCache(pages, nodeCache)
	tree, err := rstar.New(store, rstar.Options{MaxEntries: o.maxEntries})
	if err != nil {
		f.Close()
		return nil, err
	}
	gpts := make([]geom.Point, len(points))
	for i, p := range points {
		gpts[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	if o.bulkLoad {
		err = tree.BulkLoad(gpts)
	} else {
		for _, p := range gpts {
			if err = tree.Insert(p); err != nil {
				break
			}
		}
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := pages.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	px, err := finishPaged(tree, gpts, o, pages, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return px, nil
}

// OpenPaged reopens an index file written by BuildPaged. Build options
// other than the grid cell size are read from the file; the derived
// structures (density grid, IWP pointers) are rebuilt.
func OpenPaged(path string, opts ...BuildOption) (*PagedIndex, error) {
	o := buildOptions{maxEntries: 50, gridCellSize: 25}
	for _, opt := range opts {
		opt(&o)
	}
	pageCache, nodeCache := o.resolveCaches()
	pages, f, err := pager.OpenFile(path, pager.Options{CacheSize: pageCache})
	if err != nil {
		return nil, err
	}
	store := rstar.NewPagedStoreCache(pages, nodeCache)
	tree, err := rstar.Attach(store, rstar.Options{MaxEntries: o.maxEntries})
	if err != nil {
		f.Close()
		return nil, err
	}
	gpts, err := tree.All()
	if err != nil {
		f.Close()
		return nil, err
	}
	px, err := finishPaged(tree, gpts, o, pages, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return px, nil
}

func finishPaged(tree *rstar.Tree, gpts []geom.Point, o buildOptions, pages *pager.Store, f *os.File) (*PagedIndex, error) {
	space := o.space
	if !o.spaceSet {
		space = geom.EmptyRect()
		for _, p := range gpts {
			space = space.ExtendPoint(p)
		}
		if space.IsEmpty() {
			space = geom.NewRect(0, 0, 1, 1)
		}
		if space.Width() <= 0 || space.Height() <= 0 {
			space = space.Buffer(1, 1)
		}
	}
	den, err := grid.New(space, o.gridCellSize, gpts)
	if err != nil {
		return nil, err
	}
	frozen, err := tree.Freeze()
	if err != nil {
		return nil, err
	}
	v, err := newView(frozen, den)
	if err != nil {
		return nil, err
	}
	iwpIdx, err := iwp.Build(frozen)
	if err != nil {
		return nil, err
	}
	if err := v.setIWP(iwpIdx); err != nil {
		return nil, err
	}
	frozen.ResetVisits()
	px := &PagedIndex{
		Index: Index{
			options: o,
			obs:     newQueryMetrics(), pageStats: pages.Stats,
			slow: newSlowLog(o.slowThreshold), created: time.Now(),
		},
		pages: pages,
		file:  f,
	}
	px.cur.Store(v)
	return px, nil
}

// PageStats returns the pager's operation counters, including buffer-pool
// effectiveness (hits, misses, evictions, coalesced cold reads).
func (p *PagedIndex) PageStats() PageStats {
	st := p.pages.Stats()
	return PageStats{
		Reads: st.Reads, Writes: st.Writes,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Evictions: st.Evictions, Coalesced: st.Coalesced,
	}
}

// Sync flushes index metadata to the file.
func (p *PagedIndex) Sync() error { return p.pages.Sync() }

// Close syncs and releases the underlying file. The index must not be
// used afterwards.
func (p *PagedIndex) Close() error {
	if err := p.pages.Sync(); err != nil {
		p.file.Close()
		return err
	}
	return p.file.Close()
}
