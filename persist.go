package nwcq

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/pager"
	"nwcq/internal/rstar"
	"nwcq/internal/sub"
	"nwcq/internal/wal"
)

// PagedIndex is an Index whose R*-tree nodes live on 4096-byte pages in
// a file, one node per page — the disk-oriented form the paper's I/O
// accounting assumes. Every page is checksummed (CRC-32, verified once
// when it enters the buffer pool) and reads go through a sharded pool
// of immutable frames shared zero-copy by concurrent queries, with a
// decoded-node cache above it; size both with WithPageCacheSize and
// WithNodeCacheSize.
//
// Mutations (Insert, Delete and the batch forms) are crash-safe by
// default: each is logged to a write-ahead log beside the index file
// (<path>.wal/) before its pages are published, and OpenPaged replays
// committed records after a crash. WithWALSync selects how eagerly
// records are fsynced; WithoutWAL opts out entirely, in which case only
// Sync/Close make mutations durable. See durable.go and DESIGN.md §10.
//
// The density grid and IWP pointers are derived structures; they are
// rebuilt when the file is opened.
type PagedIndex struct {
	Index
	pages *pager.Store
	file  pagedFile
	log   *wal.Log // nil when built WithoutWAL
	// closed makes Close idempotent: only the first call tears down.
	closed atomic.Bool
}

// pagedFile is the index file seam: *os.File in production, an
// in-memory or fault-injecting implementation in tests.
type pagedFile interface {
	pager.File
	Close() error
}

// PageStats mirrors the pager's operation counters.
type PageStats struct {
	// Reads and Writes count physical page transfers.
	Reads  uint64
	Writes uint64
	// CacheHits and CacheMisses count buffer-pool outcomes; Evictions
	// counts frames dropped for room; Coalesced counts cold reads served
	// by piggybacking on another reader's in-flight file read.
	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64
	Coalesced   uint64
	// Syncs counts fsyncs of the page file — checkpoint cost.
	Syncs uint64
}

// defaultPageCache is the buffer-pool capacity (in pages) used when
// WithPageCacheSize is not given.
const defaultPageCache = 256

// resolveCaches applies the cache defaults for paged indexes.
func (o *buildOptions) resolveCaches() (pageCache, nodeCache int) {
	pageCache = defaultPageCache
	if o.pageCacheSet {
		pageCache = o.pageCache
	}
	nodeCache = rstar.DefaultNodeCacheSize
	if o.nodeCacheSet {
		nodeCache = o.nodeCache
	}
	return pageCache, nodeCache
}

// walDirFor returns the WAL directory accompanying an index file.
func walDirFor(path string) string { return path + ".wal" }

// resolveWALFS opens (creating if needed) the WAL directory for path,
// or returns nil when the build options disable the WAL.
func resolveWALFS(path string, o buildOptions) (wal.FS, error) {
	if o.walDisabled {
		return nil, nil
	}
	fs, err := wal.NewDirFS(walDirFor(path))
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// walOptions maps the build options onto the log's knobs.
func walOptions(o buildOptions) wal.Options {
	opt := wal.Options{SegmentBytes: o.walSegmentBytes}
	if o.walSync == SyncInterval {
		opt.SyncEvery = o.walSyncInterval
		if opt.SyncEvery <= 0 {
			opt.SyncEvery = defaultSyncInterval
		}
	}
	return opt
}

// BuildPaged indexes points into a page file at path (created or
// truncated), persists the tree, and returns a queryable index whose
// mutations are WAL-protected (unless WithoutWAL). Close it to release
// the file.
func BuildPaged(points []Point, path string, opts ...BuildOption) (*PagedIndex, error) {
	o := buildOptions{maxEntries: 50, gridCellSize: 25}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxEntries > rstar.MaxPagedEntries() {
		return nil, fmt.Errorf("nwcq: fan-out %d exceeds page capacity %d", o.maxEntries, rstar.MaxPagedEntries())
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	wfs, err := resolveWALFS(path, o)
	if err != nil {
		f.Close()
		return nil, err
	}
	return buildPagedOn(points, f, wfs, o)
}

// OpenPaged reopens an index file written by BuildPaged, replaying any
// write-ahead log records past the last checkpoint (crash recovery).
// Build options other than the grid cell size are read from the file;
// the derived structures (density grid, IWP pointers) are rebuilt.
func OpenPaged(path string, opts ...BuildOption) (*PagedIndex, error) {
	o := buildOptions{maxEntries: 50, gridCellSize: 25}
	for _, opt := range opts {
		opt(&o)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	wfs, err := resolveWALFS(path, o)
	if err != nil {
		f.Close()
		return nil, err
	}
	return openPagedOn(f, wfs, o)
}

// buildPagedOn builds a paged index over an open file and WAL
// filesystem (nil = no WAL). The single deferred cleanup replaces the
// per-step f.Close() ladders: any error return closes whatever was
// opened so far, success hands ownership to the returned index.
func buildPagedOn(points []Point, f pagedFile, wfs wal.FS, o buildOptions) (px *PagedIndex, err error) {
	var log *wal.Log
	defer func() {
		if err != nil {
			if log != nil {
				log.Close()
			}
			f.Close()
		}
	}()
	pageCache, nodeCache := o.resolveCaches()
	pages, err := pager.Create(f, pager.Options{CacheSize: pageCache, VolatileFreeList: wfs != nil})
	if err != nil {
		return nil, err
	}
	store := rstar.NewPagedStoreCache(pages, nodeCache)
	tree, err := rstar.New(store, rstar.Options{MaxEntries: o.maxEntries})
	if err != nil {
		return nil, err
	}
	gpts := make([]geom.Point, len(points))
	for i, p := range points {
		gpts[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	if o.bulkLoad {
		err = tree.BulkLoad(gpts)
	} else {
		for _, p := range gpts {
			if err = tree.Insert(p); err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	var dur *durability
	if wfs != nil {
		// A fresh log plus an initial checkpoint: the build is the
		// durable image, the log takes over from here.
		if log, err = wal.Create(wfs, walOptions(o)); err != nil {
			return nil, err
		}
		ckptLSN := uint64(0)
		if len(points) > 0 {
			// The bulk-built base never went through the log, so no record
			// replay can reconstruct it onto an empty replica. Burn LSN 1
			// on a no-op marker and checkpoint past it: history "from the
			// beginning" is then honestly compacted, and a replication
			// stream that would need it gets ErrCompacted — forcing the
			// snapshot bootstrap — instead of silently missing the base.
			var lsn uint64
			if lsn, err = log.Append(encodeMutation(recInsert, nil)); err != nil {
				return nil, err
			}
			if err = log.Sync(lsn); err != nil {
				return nil, err
			}
			ckptLSN = lsn
		}
		if err = pages.SyncData(); err != nil {
			return nil, err
		}
		if err = pages.WriteCheckpoint(ckptLSN); err != nil {
			return nil, err
		}
		if ckptLSN > 0 {
			if err = log.Checkpointed(ckptLSN); err != nil {
				return nil, err
			}
		}
		dur = newDurability(log, pages, o)
	} else if err = pages.Sync(); err != nil {
		return nil, err
	}
	return finishPaged(tree, gpts, o, pages, f, log, dur)
}

// openPagedOn attaches to an existing page file, recovers from the WAL
// when one is configured, and assembles the index. Cleanup mirrors
// buildPagedOn.
func openPagedOn(f pagedFile, wfs wal.FS, o buildOptions) (px *PagedIndex, err error) {
	var log *wal.Log
	defer func() {
		if err != nil {
			if log != nil {
				log.Close()
			}
			f.Close()
		}
	}()
	pageCache, nodeCache := o.resolveCaches()
	pages, err := pager.Open(f, pager.Options{CacheSize: pageCache, VolatileFreeList: wfs != nil})
	if err != nil {
		return nil, err
	}
	store := rstar.NewPagedStoreCache(pages, nodeCache)
	tree, err := rstar.Attach(store, rstar.Options{MaxEntries: o.maxEntries})
	if err != nil {
		return nil, err
	}
	var dur *durability
	if wfs != nil {
		if log, err = wal.Open(wfs, walOptions(o)); err != nil {
			return nil, err
		}
		dur = newDurability(log, pages, o)
		var replayed int
		var replica uint64
		tree, replayed, replica, err = replayWAL(tree, log, pages.CheckpointLSN(), pages.ReplicaLSN())
		if err != nil {
			return nil, fmt.Errorf("nwcq: wal recovery: %w", err)
		}
		dur.replayed = uint64(replayed)
		dur.replica.Store(replica)
		if replayed > 0 {
			// Fold the replay into a fresh checkpoint before any page
			// can be reallocated; until it lands, the previous durable
			// image stays intact so a crash here recovers again.
			if err = dur.checkpointLocked(tree); err != nil {
				return nil, err
			}
		}
		// The free list is volatile under WAL: reinstate it as the
		// complement of the recovered tree's reachable pages.
		if err = rebuildFreeSet(tree, pages); err != nil {
			return nil, err
		}
	}
	gpts, err := tree.All()
	if err != nil {
		return nil, err
	}
	return finishPaged(tree, gpts, o, pages, f, log, dur)
}

func finishPaged(tree *rstar.Tree, gpts []geom.Point, o buildOptions, pages *pager.Store, f pagedFile, log *wal.Log, dur *durability) (*PagedIndex, error) {
	space := o.space
	if !o.spaceSet {
		space = geom.EmptyRect()
		for _, p := range gpts {
			space = space.ExtendPoint(p)
		}
		if space.IsEmpty() {
			space = geom.NewRect(0, 0, 1, 1)
		}
		if space.Width() <= 0 || space.Height() <= 0 {
			space = space.Buffer(1, 1)
		}
	}
	den, err := grid.New(space, o.gridCellSize, gpts)
	if err != nil {
		return nil, err
	}
	frozen, err := tree.Freeze()
	if err != nil {
		return nil, err
	}
	v, err := newView(frozen, den)
	if err != nil {
		return nil, err
	}
	if log != nil {
		// The initial view reflects every log record (replay applied or
		// skipped each one), so it commits at the appended frontier.
		v.lsn = log.AppendedLSN()
	}
	iwpIdx, err := iwp.Build(frozen)
	if err != nil {
		return nil, err
	}
	if err := v.setIWP(iwpIdx); err != nil {
		return nil, err
	}
	frozen.ResetVisits()
	px := &PagedIndex{
		Index: Index{
			options: o,
			obs:     newQueryMetrics(), pageStats: pages.Stats,
			slow: newSlowLog(o.slowThreshold), created: time.Now(),
			dur:  dur,
			subs: sub.NewRegistry(o.subQueue),
		},
		pages: pages,
		file:  f,
		log:   log,
	}
	px.cache = newResultCache(o.resultCache)
	v.gen = px.vgen.Add(1)
	px.cur.Store(v)
	return px, nil
}

// PageStats returns the pager's operation counters, including buffer-pool
// effectiveness (hits, misses, evictions, coalesced cold reads) and
// fsync count.
func (p *PagedIndex) PageStats() PageStats {
	st := p.pages.Stats()
	return PageStats{
		Reads: st.Reads, Writes: st.Writes,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Evictions: st.Evictions, Coalesced: st.Coalesced,
		Syncs: st.Syncs,
	}
}

// Sync makes the current state durable: with a WAL it runs a full
// checkpoint (fsync log, fsync pages, advance the header LSN, recycle
// segments); without one it flushes the header and fsyncs the file.
func (p *PagedIndex) Sync() error {
	if p.dur != nil {
		p.wmu.Lock()
		defer p.wmu.Unlock()
		return p.dur.checkpointLocked(p.cur.Load().tree)
	}
	return p.pages.Sync()
}

// Close checkpoints (WAL mode) or syncs, then releases the log and the
// file. It is idempotent: second and later calls return nil without
// touching anything. The index must not be used afterwards.
func (p *PagedIndex) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	var firstErr error
	if p.dur != nil {
		p.wmu.Lock()
		firstErr = p.dur.closeLocked(p.cur.Load().tree)
		p.wmu.Unlock()
		if err := p.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	} else if err := p.pages.Sync(); err != nil {
		firstErr = err
	}
	if err := p.file.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
