module nwcq

go 1.22
