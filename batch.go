package nwcq

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch execution. A built index is safe for concurrent reads, so
// independent queries parallelise perfectly; this file provides the
// fan-out boilerplate. Results are returned in input order.
//
// Note on statistics: the per-result Stats.NodeVisits of concurrent
// queries are deltas of a shared counter and may bleed into each other;
// the index-wide IOStats total remains exact. Run queries sequentially
// (parallelism 1) when per-query I/O accounting matters.

// BatchOptions configures batch execution.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines; 0 means
	// GOMAXPROCS.
	Parallelism int
}

func (o BatchOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// NWCBatch answers many NWC queries concurrently. The i-th result
// corresponds to queries[i]. The first error aborts the batch.
func (ix *Index) NWCBatch(queries []Query, opt BatchOptions) ([]Result, error) {
	// IWP rebuilds are not concurrency-safe; settle staleness up front
	// when any query will take the IWP path.
	for _, q := range queries {
		if q.scheme().IWP {
			if err := ix.ensureIWP(); err != nil {
				return nil, err
			}
			break
		}
	}
	results := make([]Result, len(queries))
	err := forEachIndexed(len(queries), opt.workers(), func(i int) error {
		res, err := ix.NWC(queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// KNWCBatch answers many kNWC queries concurrently.
func (ix *Index) KNWCBatch(queries []KQuery, opt BatchOptions) ([][]Group, error) {
	for _, q := range queries {
		if q.scheme().IWP {
			if err := ix.ensureIWP(); err != nil {
				return nil, err
			}
			break
		}
	}
	results := make([][]Group, len(queries))
	err := forEachIndexed(len(queries), opt.workers(), func(i int) error {
		groups, _, err := ix.KNWC(queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = groups
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEachIndexed runs fn(0..n-1) over a bounded worker pool, returning
// the first error encountered (remaining work is skipped, in-flight
// calls finish).
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
