package nwcq

import (
	"context"
	"fmt"

	"nwcq/internal/pool"
	"nwcq/internal/qevent"
)

// Batch execution. Queries are safe under unrestricted concurrency, so
// independent queries parallelise perfectly; this file provides the
// fan-out boilerplate over the shared bounded worker pool
// (internal/pool — the same pool the sharded router's scatter phase
// uses). Results are returned in input order, and every result's Stats
// is exact for its own query — per-query accounting is carried on
// query-private counters, never shared between workers.
// Each query in a batch pins its own view at entry, so a batch that
// overlaps mutations may answer different queries against different
// (each internally consistent) versions; IWP-scheme queries need no
// up-front settling because the per-view IWP state is built
// single-flight on first use.
//
// The storage layers are built for exactly this fan-out: on a paged
// index, workers share the buffer pool's immutable frames zero-copy
// (per-shard locking, single-flight cold reads) and the decoded-node
// cache, and each query draws its working memory (heap, candidate
// buffers, selection scratch) from a sync.Pool, so steady-state batch
// load allocates almost nothing per query.

// BatchOptions configures batch execution.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines; 0 falls back to
	// the index's WithParallelism setting, then GOMAXPROCS.
	Parallelism int
}

// NWCBatch answers many NWC queries concurrently. The i-th result
// corresponds to queries[i]. The first error aborts the batch.
func (ix *Index) NWCBatch(queries []Query, opt BatchOptions) ([]Result, error) {
	return ix.NWCBatchCtx(context.Background(), queries, opt)
}

// NWCBatchCtx is NWCBatch under a context: every query in the batch
// runs under ctx, so cancellation aborts the whole batch with the
// context's error.
func (ix *Index) NWCBatchCtx(ctx context.Context, queries []Query, opt BatchOptions) ([]Result, error) {
	// A wide event is owned by one request; concurrent batch members must
	// not race on it, so the fan-out runs detached.
	ctx = qevent.Detach(ctx)
	results := make([]Result, len(queries))
	err := pool.Each(len(queries), ix.batchWorkers(opt), func(i int) error {
		res, err := ix.NWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// KNWCBatch answers many kNWC queries concurrently. The i-th result
// corresponds to queries[i]. The first error aborts the batch.
func (ix *Index) KNWCBatch(queries []KQuery, opt BatchOptions) ([]KResult, error) {
	return ix.KNWCBatchCtx(context.Background(), queries, opt)
}

// KNWCBatchCtx is KNWCBatch under a context, with NWCBatchCtx's
// cancellation semantics.
func (ix *Index) KNWCBatchCtx(ctx context.Context, queries []KQuery, opt BatchOptions) ([]KResult, error) {
	ctx = qevent.Detach(ctx)
	results := make([]KResult, len(queries))
	err := pool.Each(len(queries), ix.batchWorkers(opt), func(i int) error {
		res, err := ix.KNWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
