package nwcq

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nwcq/internal/geom"
	"nwcq/internal/wal"
)

// Replication: the write-ahead log doubles as a logical replication
// stream. A leader ships committed records past a follower's position;
// the follower applies them through the same mutation path as local
// writes, wrapped in recApply records so its replica position rides its
// own WAL and checkpoints (durable.go). When the leader has already
// recycled the requested history, the follower re-bootstraps from a
// point snapshot pinned at a view's LSN.
//
// Safety invariants:
//
//   - Only durable, fate-decided records are shipped. Durable because a
//     leader crash may erase anything above the fsync watermark, and a
//     follower that applied an erased record would be ahead of every
//     future leader state. Fate-decided (settled) because a record may
//     yet be neutralised by an abort; the stream waits until it knows,
//     then either ships the record or silently skips the record+abort
//     pair.
//   - Retention: a stream holds a wal.Lease at its unread position, so
//     leader checkpoints never recycle history mid-catch-up.
//   - Snapshots pin a published view and Sync the log through the
//     view's LSN before handing out points: the snapshot's implicit
//     prefix can then never be lost to a leader restart.

// ErrCompacted reports that a requested replication position has been
// recycled by a checkpoint; the caller must bootstrap from
// ReplicationSnapshot instead.
var ErrCompacted = wal.ErrCompacted

var errNoWAL = errors.New("nwcq: replication requires a WAL-backed paged index")

// ReplicationLSNs is the leader-side position vector of a WAL-backed
// index.
type ReplicationLSNs struct {
	// Appended is the last LSN handed out by the log.
	Appended uint64 `json:"appended_lsn"`
	// Durable is the highest fsynced LSN.
	Durable uint64 `json:"durable_lsn"`
	// Committed is the LSN of the current published view — the newest
	// record a query can observe, and the convergence target for
	// followers.
	Committed uint64 `json:"committed_lsn"`
	// Replica is the highest leader LSN applied locally; zero unless
	// this index is itself a follower.
	Replica uint64 `json:"replica_lsn"`
}

// Replicator is the replication surface a WAL-backed paged index
// exposes: leaders hand out snapshots and record streams, followers
// apply them and report their position. The server's GET /wal/stream
// endpoint is a thin frame codec over this interface.
type Replicator interface {
	ReplicationLSNs() ReplicationLSNs
	ReplicationSnapshot() ([]Point, uint64, error)
	StreamFrom(from uint64) (*ReplicationStream, error)
}

var _ Replicator = (*PagedIndex)(nil)

// ReplicationLSNs returns the index's current position vector.
func (p *PagedIndex) ReplicationLSNs() ReplicationLSNs {
	if p.dur == nil {
		return ReplicationLSNs{}
	}
	return ReplicationLSNs{
		Appended:  p.log.AppendedLSN(),
		Durable:   p.log.DurableLSN(),
		Committed: p.cur.Load().lsn,
		Replica:   p.dur.replica.Load(),
	}
}

// ReplicaLSN returns the highest leader LSN this index has applied
// (zero on leaders and non-WAL indexes).
func (p *PagedIndex) ReplicaLSN() uint64 {
	if p.dur == nil {
		return 0
	}
	return p.dur.replica.Load()
}

// ReplicationSnapshot captures every point of one published view plus
// the LSN that view commits at, for bootstrapping a follower whose
// requested position was already recycled. The log is fsynced through
// the snapshot LSN first: the records the snapshot embodies must never
// be lost to a leader restart once a follower has built on them.
func (p *PagedIndex) ReplicationSnapshot() ([]Point, uint64, error) {
	if p.dur == nil {
		return nil, 0, errNoWAL
	}
	v := p.acquire()
	defer v.release()
	if err := p.log.Sync(v.lsn); err != nil {
		return nil, 0, fmt.Errorf("nwcq: snapshot sync: %w", err)
	}
	gpts, err := v.tree.All()
	if err != nil {
		return nil, 0, err
	}
	pts := make([]Point, len(gpts))
	for i, gp := range gpts {
		pts[i] = Point{X: gp.X, Y: gp.Y, ID: gp.ID}
	}
	return pts, v.lsn, nil
}

// ReplicationStream iterates committed records in LSN order, holding a
// retention lease on everything not yet delivered. Not safe for
// concurrent use.
type ReplicationStream struct {
	d *durability
	r *wal.Reader
	// cur holds a fetched record whose fate is not yet decided; look
	// holds the record after an already-emittable cur (fetched while
	// peeking for an abort).
	cur  *wal.Record
	look *wal.Record
}

// StreamFrom opens a record stream starting at from (the first LSN the
// follower has not applied). Returns ErrCompacted when that history is
// recycled — bootstrap from ReplicationSnapshot and stream from its LSN
// plus one instead. Close the stream to release its retention lease.
func (p *PagedIndex) StreamFrom(from uint64) (*ReplicationStream, error) {
	if p.dur == nil {
		return nil, errNoWAL
	}
	r, err := p.log.NewReader(from)
	if err != nil {
		return nil, err
	}
	return &ReplicationStream{d: p.dur, r: r}, nil
}

// Next returns the next record a follower should apply, or nil when
// nothing more can be shipped yet (poll again later). Abort records and
// the mutations they neutralise are filtered out; payloads are shipped
// verbatim, so a follower of a follower would see recApply wrappers and
// refuse them (chained replication is unsupported).
func (s *ReplicationStream) Next() (*ReplicationRecord, error) {
	for {
		// Fetch the next candidate (reusing a stashed lookahead first).
		if s.cur == nil {
			if s.look != nil {
				s.cur, s.look = s.look, nil
			} else {
				rec, ok, err := s.r.Next()
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, nil
				}
				s.cur = &rec
			}
		}
		n := s.cur.LSN
		if len(s.cur.Data) > 0 && s.cur.Data[0] == recAbort {
			// A bare abort whose target preceded the stream start (or was
			// already skipped): nothing for the follower.
			s.cur = nil
			continue
		}
		settled := s.d.settled.Load()
		if settled < n {
			// Fate unknown: the mutation at n may still abort. Hold it.
			return nil, nil
		}
		if settled == n {
			// n settled as the newest decided record and it is not an
			// abort, so it published.
			rec := &ReplicationRecord{LSN: n, Data: s.cur.Data}
			s.cur = nil
			return rec, nil
		}
		// settled > n: the record after n exists and decides n's fate —
		// an abort targeting n kills the pair, anything else means n
		// published. The peek must itself wait for durability.
		next, ok, err := s.r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		if isAbortOf(next.Data, n) {
			s.cur = nil // drop the aborted pair
			continue
		}
		s.look = &next
		rec := &ReplicationRecord{LSN: n, Data: s.cur.Data}
		s.cur = nil
		return rec, nil
	}
}

// Pos returns the LSN of the next record the stream would deliver.
func (s *ReplicationStream) Pos() uint64 {
	if s.cur != nil {
		return s.cur.LSN
	}
	if s.look != nil {
		return s.look.LSN
	}
	return s.r.Pos()
}

// Close releases the stream's retention lease.
func (s *ReplicationStream) Close() { s.r.Close() }

func isAbortOf(data []byte, lsn uint64) bool {
	if len(data) != 9 || data[0] != recAbort {
		return false
	}
	return binary.BigEndian.Uint64(data[1:9]) == lsn
}

// ReplicationRecord is one committed mutation shipped to a follower.
// Data is the leader's opaque record payload; followers hand it to
// ApplyReplicated verbatim.
type ReplicationRecord struct {
	LSN  uint64
	Data []byte
}

// ApplyReplicated applies one leader record on a follower, advancing
// the replica position to leaderLSN. Records at or below the current
// position are skipped (reconnect overlap delivers duplicates).
//
// The record lands in the follower's own WAL but is deliberately NOT
// fsynced per call: a follower that fsyncs every record caps its apply
// rate at the raw fsync rate while the leader's group commit coalesces
// many writers, so it could never catch up under sustained load. The
// durability anchor is the leader — a follower crash recovers to its
// last durable position (checkpoints sync the log) and re-streams the
// suffix; redelivery is idempotent, and a position below the leader's
// retained floor just re-bootstraps from a snapshot.
func (p *PagedIndex) ApplyReplicated(leaderLSN uint64, data []byte) error {
	if p.dur == nil {
		return errNoWAL
	}
	if len(data) == 0 {
		return errors.New("nwcq: empty replicated record")
	}
	op := data[0]
	if op != recInsert && op != recDelete {
		return fmt.Errorf("nwcq: replicated record op %d is not a mutation (chained replication is unsupported)", op)
	}
	gpts, err := decodeMutation(data)
	if err != nil {
		return err
	}
	p.wmu.Lock()
	if leaderLSN != 0 && leaderLSN <= p.dur.replica.Load() {
		p.wmu.Unlock()
		return nil
	}
	_, err = p.applyReplicatedLocked(op, gpts, encodeApply(leaderLSN, data), leaderLSN)
	if err == nil && leaderLSN != 0 {
		p.dur.replica.Store(leaderLSN)
	}
	p.wmu.Unlock()
	return err
}

// ApplySnapshotChunk inserts one chunk of a leader snapshot on a
// follower. Intermediate chunks carry leaderLSN 0 (position unknown
// until the snapshot completes); the final chunk carries the snapshot
// LSN, committing the position in the same logged mutation as the last
// points.
func (p *PagedIndex) ApplySnapshotChunk(pts []Point, leaderLSN uint64) error {
	if p.dur == nil {
		return errNoWAL
	}
	gpts := make([]geom.Point, len(pts))
	for i, pt := range pts {
		gpts[i] = geom.Point{X: pt.X, Y: pt.Y, ID: pt.ID}
	}
	data := encodeMutation(recInsert, gpts)
	p.wmu.Lock()
	lsn, err := p.applyReplicatedLocked(recInsert, gpts, encodeApply(leaderLSN, data), leaderLSN)
	if err == nil && leaderLSN != 0 {
		p.dur.replica.Store(leaderLSN)
	}
	p.wmu.Unlock()
	if err != nil {
		return err
	}
	return p.waitDurable(lsn)
}

// ResetForSnapshot discards every indexed point and zeroes the replica
// position as one logged, crash-safe mutation — the follower's first
// step when the leader can only offer a snapshot bootstrap and local
// state (partial or diverged) must go.
func (p *PagedIndex) ResetForSnapshot() error {
	if p.dur == nil {
		return errNoWAL
	}
	p.wmu.Lock()
	lsn, err := p.resetLocked()
	if err == nil {
		p.dur.replica.Store(0)
	}
	p.wmu.Unlock()
	if err != nil {
		return err
	}
	return p.waitDurable(lsn)
}
