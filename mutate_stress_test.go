package nwcq

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwcq/internal/core"
	"nwcq/internal/geom"
)

// Mutation stress suite for the atomically published view design: every
// query running concurrently with online Insert/Delete traffic must
// return an answer that is exactly correct for SOME prefix of the
// mutation sequence — a query pins one immutable view, and every view
// is the result of applying the first k mutations to the base set for
// some k. Answers are checked against the package's exhaustive brute
// force oracle per version. Run with -race; the datasets are kept small
// because the oracle is O(N³).

// mutOp is one step of a recorded mutation sequence.
type mutOp struct {
	insert bool
	p      Point
}

// buildMutationScript returns a deterministic base set, an op sequence,
// and versions[k] = the point set after applying the first k ops. The
// script mixes inserts (including periodic far-out-of-space outliers
// that force a density-grid rebuild) with deletes of live points.
func buildMutationScript(nBase, nOps int, seed int64) (base []Point, ops []mutOp, versions [][]Point) {
	rng := rand.New(rand.NewSource(seed))
	base = make([]Point, nBase)
	for i := range base {
		base[i] = Point{X: rng.Float64() * 400, Y: rng.Float64() * 400, ID: uint64(i)}
	}
	live := append([]Point(nil), base...)
	versions = append(versions, append([]Point(nil), live...))
	nextID := uint64(10_000)
	for len(ops) < nOps {
		var op mutOp
		if len(live) > nBase/2 && rng.Float64() < 0.45 {
			op = mutOp{insert: false, p: live[rng.Intn(len(live))]}
		} else {
			p := Point{X: rng.Float64() * 400, Y: rng.Float64() * 400, ID: nextID}
			if len(ops)%10 == 9 {
				// Outlier far outside the current space: Insert must
				// rebuild the grid and publish it with the tree.
				p.X = 900 + float64(len(ops))*40
				p.Y = 900 + float64(len(ops))*40
			}
			nextID++
			op = mutOp{insert: true, p: p}
		}
		ops = append(ops, op)
		if op.insert {
			live = append(live, op.p)
		} else {
			for i := range live {
				if live[i] == op.p {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
		versions = append(versions, append([]Point(nil), live...))
	}
	return base, ops, versions
}

// mutOracle memoises brute-force answers per (query, version) so
// concurrent checkers share the O(N³) work.
type mutOracle struct {
	mu       sync.Mutex
	versions [][]Point
	geo      map[int][]geom.Point
	nwc      map[[2]int]core.Result
	knwc     map[[2]int][]core.Group
}

func newMutOracle(versions [][]Point) *mutOracle {
	return &mutOracle{
		versions: versions,
		geo:      map[int][]geom.Point{},
		nwc:      map[[2]int]core.Result{},
		knwc:     map[[2]int][]core.Group{},
	}
}

func (o *mutOracle) geomPts(ver int) []geom.Point {
	if g, ok := o.geo[ver]; ok {
		return g
	}
	pts := o.versions[ver]
	g := make([]geom.Point, len(pts))
	for i, p := range pts {
		g[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	o.geo[ver] = g
	return g
}

func (o *mutOracle) NWC(qi, ver int, q Query) core.Result {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := [2]int{qi, ver}
	if r, ok := o.nwc[key]; ok {
		return r
	}
	r := core.BruteForceNWC(o.geomPts(ver), core.Query{
		Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N,
	}, core.MeasureMax)
	o.nwc[key] = r
	return r
}

func (o *mutOracle) KNWC(qi, ver int, q KQuery) []core.Group {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := [2]int{qi, ver}
	if r, ok := o.knwc[key]; ok {
		return r
	}
	r := core.BruteForceKNWC(o.geomPts(ver), core.KNWCQuery{
		Query: core.Query{Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N},
		K:     q.K, M: q.M,
	}, core.MeasureMax)
	o.knwc[key] = r
	return r
}

func nwcAgrees(res Result, want core.Result) bool {
	if res.Found != want.Found {
		return false
	}
	return !res.Found || math.Abs(res.Dist-want.Group.Dist) <= 1e-9
}

func knwcAgrees(groups []Group, want []core.Group) bool {
	if len(groups) != len(want) {
		return false
	}
	for i := range want {
		if math.Abs(groups[i].Dist-want[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

// TestMutationStressPrefixCorrectness is the tentpole's acceptance
// test: NWC, kNWC, and batch queries under every scheme (including
// IWP) run concurrently with a mutator applying a recorded script of
// inserts and deletes. Each query result must equal the brute-force
// answer over versions[v] for some v in the window of versions the
// query could have pinned.
func TestMutationStressPrefixCorrectness(t *testing.T) {
	base, ops, versions := buildMutationScript(40, 30, 71)
	idx, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newMutOracle(versions)

	queries := []Query{
		{X: 120, Y: 140, Length: 120, Width: 120, N: 2},
		{X: 250, Y: 250, Length: 150, Width: 100, N: 3},
		{X: 330, Y: 80, Length: 100, Width: 160, N: 2},
		{X: 60, Y: 320, Length: 180, Width: 180, N: 4},
	}
	kqueries := []KQuery{
		{Query: Query{X: 200, Y: 180, Length: 140, Width: 140, N: 2}, K: 3, M: 1},
		{Query: Query{X: 300, Y: 300, Length: 160, Width: 120, N: 3}, K: 2, M: 1},
	}
	schemes := []Scheme{SchemeNWC, SchemeNWCPlus, SchemeNWCStar, SchemeIWP}

	// completed counts ops fully applied (published). A query that
	// loads completed=lo before running pinned a view of version ≥ lo;
	// loading hi after it finishes bounds the version by hi+1 (the
	// op that takes completed to hi+1 may have published already).
	var completed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k, op := range ops {
			if op.insert {
				if err := idx.Insert(op.p); err != nil {
					t.Errorf("op %d: insert: %v", k, err)
					return
				}
			} else {
				found, err := idx.Delete(op.p)
				if err != nil {
					t.Errorf("op %d: delete: %v", k, err)
					return
				}
				if !found {
					t.Errorf("op %d: delete(%v) found nothing", k, op.p)
					return
				}
			}
			completed.Store(int64(k + 1))
			time.Sleep(3 * time.Millisecond)
		}
	}()
	isDone := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	versionBounds := func(lo int64) (int, int) {
		hi := int(completed.Load()) + 1
		if hi > len(ops) {
			hi = len(ops)
		}
		return int(lo), hi
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it, stopped := 0, false; !stopped; it++ {
				stopped = isDone()
				qi := (w + it) % len(queries)
				q := queries[qi]
				q.Scheme = schemes[(w+it)%len(schemes)]
				lo0 := completed.Load()
				res, err := idx.NWC(q)
				if err != nil {
					t.Errorf("nwc worker %d: %v", w, err)
					return
				}
				lo, hi := versionBounds(lo0)
				ok := false
				for v := lo; v <= hi && !ok; v++ {
					ok = nwcAgrees(res, oracle.NWC(qi, v, queries[qi]))
				}
				if !ok {
					t.Errorf("nwc worker %d: query %d scheme %v: found=%v dist=%g matches no version in [%d,%d]",
						w, qi, q.Scheme, res.Found, res.Dist, lo, hi)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it, stopped := 0, false; !stopped; it++ {
			stopped = isDone()
			qi := it % len(kqueries)
			q := kqueries[qi]
			q.Scheme = schemes[it%len(schemes)]
			lo0 := completed.Load()
			res, err := idx.KNWC(q)
			if err != nil {
				t.Errorf("knwc worker: %v", err)
				return
			}
			groups := res.Groups
			lo, hi := versionBounds(lo0)
			ok := false
			for v := lo; v <= hi && !ok; v++ {
				ok = knwcAgrees(groups, oracle.KNWC(qi, v, kqueries[qi]))
			}
			if !ok {
				t.Errorf("knwc worker: query %d scheme %v: %d groups match no version in [%d,%d]",
					qi, q.Scheme, len(groups), lo, hi)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]Query, len(queries))
		copy(batch, queries)
		for i := range batch {
			batch[i].Scheme = schemes[i%len(schemes)]
		}
		for stopped := false; !stopped; {
			stopped = isDone()
			lo0 := completed.Load()
			results, err := idx.NWCBatch(batch, BatchOptions{Parallelism: 4})
			if err != nil {
				t.Errorf("batch worker: %v", err)
				return
			}
			lo, hi := versionBounds(lo0)
			for qi, res := range results {
				ok := false
				for v := lo; v <= hi && !ok; v++ {
					ok = nwcAgrees(res, oracle.NWC(qi, v, queries[qi]))
				}
				if !ok {
					t.Errorf("batch worker: query %d: found=%v dist=%g matches no version in [%d,%d]",
						qi, res.Found, res.Dist, lo, hi)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Quiesced: the index must be exactly the final version.
	final := len(versions) - 1
	if idx.Len() != len(versions[final]) {
		t.Fatalf("final Len = %d, want %d", idx.Len(), len(versions[final]))
	}
	for qi, q := range queries {
		res, err := idx.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		if !nwcAgrees(res, oracle.NWC(qi, final, q)) {
			t.Errorf("final state: query %d disagrees with brute force", qi)
		}
	}
}

// TestGridRebuildPublishRace is the regression guard for the pre-view
// grid swap: an out-of-space Insert used to overwrite the index's grid
// and engine fields in place, racing with concurrent DEP grid probes
// (and failing under -race). Views publish the (tree, grid, engine)
// triple with one atomic pointer swap, so this workload must run clean.
func TestGridRebuildPublishRace(t *testing.T) {
	pts := testPoints(600, 31)
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	schemes := []Scheme{SchemeNWCStar, SchemeIWP}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := Query{
					X: float64(100 + (g*271+i*97)%800), Y: float64(100 + (g*131+i*53)%800),
					Length: 80, Width: 80, N: 4,
					Scheme: schemes[i%len(schemes)],
				}
				if _, err := idx.NWC(q); err != nil {
					t.Errorf("query worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Every insert lands outside the previous space (beyond its 12.5%
	// slack), forcing a grid rebuild per iteration.
	for i := 0; i < 25; i++ {
		far := Point{X: 2000 + float64(i)*800, Y: 2000 + float64(i)*800, ID: uint64(1_000_000 + i)}
		if err := idx.Insert(far); err != nil {
			t.Fatal(err)
		}
		found, err := idx.Delete(far)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("iteration %d: far point not found for delete", i)
		}
	}
	close(stop)
	wg.Wait()
	if idx.Len() != 600 {
		t.Fatalf("Len = %d after paired insert/delete, want 600", idx.Len())
	}
}

// TestViewPinZeroAlloc pins the tentpole's hot-path cost: acquiring a
// view, resolving the engine for both the plain and the IWP scheme,
// and releasing must not allocate at all once the view's IWP state
// exists. This is the deterministic form of the BenchmarkNWCUnderMutation
// guarantee ("0 extra allocs/op on the read path").
func TestViewPinZeroAlloc(t *testing.T) {
	idx, err := Build(testPoints(200, 33))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the IWP state (pre-built by Build, but keep the test honest
	// if that ever changes).
	if _, err := idx.NWC(Query{X: 500, Y: 500, Length: 80, Width: 80, N: 2, Scheme: SchemeIWP}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		v := idx.acquire()
		if _, err := idx.engineFor(v, SchemeNWCStar.internal()); err != nil {
			t.Error(err)
		}
		if _, err := idx.engineFor(v, SchemeIWP.internal()); err != nil {
			t.Error(err)
		}
		v.release()
	})
	if allocs != 0 {
		t.Errorf("view pin + engine resolution allocates %g per query; want 0", allocs)
	}
}
