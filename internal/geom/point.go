// Package geom is the planar geometry kernel underneath the NWC query
// engine. It provides points, axis-aligned rectangles, the MINDIST family
// of distance functions used by best-first R-tree traversal, and the
// NWC-specific constructions from the paper: search regions (SR_p), the
// SRR shrink, and the DIP pruning-region test.
//
// All computations are in two-dimensional Euclidean space, matching the
// paper's setting; coordinates are float64.
package geom

import "math"

// Point is a location in the plane. ID identifies the data object the
// point belongs to; the geometry kernel itself never interprets it.
type Point struct {
	X, Y float64
	ID   uint64
}

// Dist returns the Euclidean distance between p and o.
func (p Point) Dist(o Point) float64 {
	return math.Hypot(p.X-o.X, p.Y-o.Y)
}

// Dist2 returns the squared Euclidean distance between p and o. It is the
// preferred form in hot paths: it avoids the square root and is exact for
// comparisons.
func (p Point) Dist2(o Point) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return dx*dx + dy*dy
}

// Quadrant reports which quadrant p lies in with respect to origin q,
// numbered 1..4 counterclockwise as in the paper (Section 3.1). Points on
// the axes are assigned to the quadrant with the larger coordinates, so
// the mapping is total and deterministic:
//
//	x ≥ x_q, y ≥ y_q → 1    x < x_q, y ≥ y_q → 2
//	x < x_q, y < y_q → 3    x ≥ x_q, y < y_q → 4
func (p Point) Quadrant(q Point) int {
	switch {
	case p.X >= q.X && p.Y >= q.Y:
		return 1
	case p.X < q.X && p.Y >= q.Y:
		return 2
	case p.X < q.X:
		return 3
	default:
		return 4
	}
}

// IntervalDist returns the distance from value v to the closed interval
// [lo, hi], i.e. 0 when v lies inside it.
func IntervalDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
