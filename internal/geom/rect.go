package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
// The zero value is the degenerate rectangle at the origin; use EmptyRect
// for the identity of Union.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the canonical empty rectangle: Min components +Inf,
// Max components -Inf. It is the identity element of Union, contains no
// point, and intersects nothing.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewRect returns the rectangle spanning the two corner points in any
// orientation.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the degenerate rectangle covering exactly point p.
func RectAround(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// IsEmpty reports whether r contains no point (Min exceeds Max on either
// axis).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Width returns the x extent of r (the paper's "length" axis).
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y extent of r (the paper's "width" axis).
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r, 0 for empty rectangles.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Margin returns half the perimeter of r (the R*-tree split criterion).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// ContainsPoint reports whether p lies in the closed rectangle r.
// Boundary points count as contained, matching the paper's closed-window
// semantics.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether o is entirely inside r. Every rectangle
// contains the empty rectangle.
func (r Rect) ContainsRect(o Rect) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX && o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether r and o share at least one point (closed
// semantics: touching edges intersect).
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Intersection returns the common region of r and o, which is empty when
// they do not intersect.
func (r Rect) Intersection(o Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(RectAround(p))
}

// Enlargement returns how much r's area grows to also cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// OverlapArea returns the area shared by r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	return r.Intersection(o).Area()
}

// MinDist returns the minimum Euclidean distance from point q to r — the
// classic MINDIST(q, R) of Roussopoulos et al., and MINDIST(q, qwin) of
// the paper. It is 0 when q is inside r.
func (r Rect) MinDist(q Point) float64 {
	return math.Sqrt(r.MinDist2(q))
}

// MinDist2 returns the squared minimum distance from q to r.
func (r Rect) MinDist2(q Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := IntervalDist(q.X, r.MinX, r.MaxX)
	dy := IntervalDist(q.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum distance from q to any point of r
// (MAXDIST). Useful for upper-bound reasoning in tests.
func (r Rect) MaxDist(q Point) float64 {
	if r.IsEmpty() {
		return math.Inf(-1)
	}
	dx := math.Max(math.Abs(q.X-r.MinX), math.Abs(q.X-r.MaxX))
	dy := math.Max(math.Abs(q.Y-r.MinY), math.Abs(q.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Buffer returns r grown by dx on both x sides and dy on both y sides.
func (r Rect) Buffer(dx, dy float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{MinX: r.MinX - dx, MinY: r.MinY - dy, MaxX: r.MaxX + dx, MaxY: r.MaxY + dy}
}

// String implements fmt.Stringer for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
