package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// randRect produces a rectangle with corners in [-100, 100].
func randRect(r *rand.Rand) Rect {
	return NewRect(
		r.Float64()*200-100, r.Float64()*200-100,
		r.Float64()*200-100, r.Float64()*200-100,
	)
}

func randPoint(r *rand.Rand) Point {
	return Point{X: r.Float64()*200 - 100, Y: r.Float64()*200 - 100}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %g, want 0", e.Area())
	}
	if e.ContainsPoint(Point{}) {
		t.Error("empty rect contains a point")
	}
	if e.Intersects(NewRect(-1, -1, 1, 1)) {
		t.Error("empty rect intersects something")
	}
	r := NewRect(0, 0, 2, 3)
	if got := e.Union(r); got != r {
		t.Errorf("empty.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(empty) = %v, want %v", got, r)
	}
	if !r.ContainsRect(e) {
		t.Error("rect does not contain empty rect")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 3)
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("Width/Height = %g/%g, want 4/3", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %g, want 12", r.Area())
	}
	if r.Margin() != 7 {
		t.Errorf("Margin = %g, want 7", r.Margin())
	}
	if c := r.Center(); c.X != 2 || c.Y != 1.5 {
		t.Errorf("Center = %v, want (2,1.5)", c)
	}
}

func TestContainsPointBoundary(t *testing.T) {
	r := NewRect(0, 0, 4, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{X: 0, Y: 0}, true}, // corner
		{Point{X: 4, Y: 3}, true}, // opposite corner
		{Point{X: 2, Y: 0}, true}, // edge
		{Point{X: 2, Y: 1}, true}, // interior
		{Point{X: -0.1, Y: 1}, false},
		{Point{X: 2, Y: 3.1}, false},
	}
	for _, c := range cases {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntersectsTouching(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(1, 0, 2, 1) // shares an edge
	if !a.Intersects(b) {
		t.Error("touching rects should intersect (closed semantics)")
	}
	c := NewRect(1.0001, 0, 2, 1)
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestIntersectionUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		inter := a.Intersection(b)
		uni := a.Union(b)
		if !uni.ContainsRect(a) || !uni.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", uni, a, b)
		}
		if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
			t.Fatalf("intersection %v not inside %v and %v", inter, a, b)
		}
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatalf("Intersects(%v,%v)=%v but intersection=%v", a, b, a.Intersects(b), inter)
		}
		if !almostEq(a.OverlapArea(b), inter.Area()) {
			t.Fatalf("OverlapArea mismatch")
		}
		// Containment of random points is consistent with set semantics.
		p := randPoint(rng)
		inBoth := a.ContainsPoint(p) && b.ContainsPoint(p)
		if inBoth != inter.ContainsPoint(p) {
			t.Fatalf("point %v: in-both=%v, in-intersection=%v", p, inBoth, inter.ContainsPoint(p))
		}
		if (a.ContainsPoint(p) || b.ContainsPoint(p)) && !uni.ContainsPoint(p) {
			t.Fatalf("point %v in an operand but not in union", p)
		}
	}
}

func TestEnlargement(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	if got := a.Enlargement(b); !almostEq(got, 9-4) {
		t.Errorf("Enlargement = %g, want 5", got)
	}
	if got := a.Enlargement(NewRect(0.5, 0.5, 1, 1)); got != 0 {
		t.Errorf("Enlargement of contained rect = %g, want 0", got)
	}
}

// TestMinDistBruteForce validates MinDist against dense sampling of the
// rectangle.
func TestMinDistBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		r := randRect(rng)
		q := randPoint(rng)
		got := r.MinDist(q)
		best := math.Inf(1)
		const steps = 40
		for ix := 0; ix <= steps; ix++ {
			for iy := 0; iy <= steps; iy++ {
				p := Point{
					X: r.MinX + (r.MaxX-r.MinX)*float64(ix)/steps,
					Y: r.MinY + (r.MaxY-r.MinY)*float64(iy)/steps,
				}
				if d := q.Dist(p); d < best {
					best = d
				}
			}
		}
		if got > best+1e-9 {
			t.Fatalf("MinDist(%v,%v) = %g exceeds sampled min %g", r, q, got, best)
		}
		// The sampled min can exceed the true min by at most the sample
		// grid diagonal.
		cell := math.Hypot(r.Width()/40, r.Height()/40)
		if best > got+cell+1e-9 {
			t.Fatalf("MinDist(%v,%v) = %g too far below sampled min %g", r, q, got, best)
		}
	}
}

func TestMinDistInside(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if d := r.MinDist(Point{X: 5, Y: 5}); d != 0 {
		t.Errorf("MinDist inside = %g, want 0", d)
	}
	if d := r.MinDist(Point{X: 10, Y: 10}); d != 0 {
		t.Errorf("MinDist on corner = %g, want 0", d)
	}
	if d := r.MinDist(Point{X: 13, Y: 14}); !almostEq(d, 5) {
		t.Errorf("MinDist corner = %g, want 5", d)
	}
	if d := r.MinDist(Point{X: -3, Y: 5}); !almostEq(d, 3) {
		t.Errorf("MinDist side = %g, want 3", d)
	}
}

func TestMaxDist(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if d := r.MaxDist(Point{X: 0, Y: 0}); !almostEq(d, math.Hypot(10, 10)) {
		t.Errorf("MaxDist = %g", d)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		rr := randRect(rng)
		q := randPoint(rng)
		// MaxDist bounds the distance to each corner.
		md := rr.MaxDist(q)
		for _, c := range []Point{
			{X: rr.MinX, Y: rr.MinY}, {X: rr.MinX, Y: rr.MaxY},
			{X: rr.MaxX, Y: rr.MinY}, {X: rr.MaxX, Y: rr.MaxY},
		} {
			if q.Dist(c) > md+1e-9 {
				t.Fatalf("corner %v beyond MaxDist %g", c, md)
			}
		}
		if rr.MinDist(q) > md+1e-9 {
			t.Fatalf("MinDist exceeds MaxDist")
		}
	}
}

func TestBuffer(t *testing.T) {
	r := NewRect(1, 2, 3, 4).Buffer(1, 2)
	want := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 6}
	if r != want {
		t.Errorf("Buffer = %v, want %v", r, want)
	}
}

func TestIntervalDist(t *testing.T) {
	if d := IntervalDist(5, 0, 10); d != 0 {
		t.Errorf("inside: %g", d)
	}
	if d := IntervalDist(-2, 0, 10); d != 2 {
		t.Errorf("below: %g", d)
	}
	if d := IntervalDist(14, 0, 10); d != 4 {
		t.Errorf("above: %g", d)
	}
	if d := IntervalDist(0, 0, 10); d != 0 {
		t.Errorf("boundary: %g", d)
	}
}

func TestDistQuick(t *testing.T) {
	// Symmetry and triangle inequality via testing/quick.
	sym := func(ax, ay, bx, by float64) bool {
		a, b := Point{X: ax, Y: ay}, Point{X: bx, Y: by}
		return almostEq(a.Dist(b), b.Dist(a)) && almostEq(a.Dist2(b), b.Dist2(a))
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(ax, ay, bx, by, cx, cy float64) bool {
		// Keep values bounded to avoid overflow-generated NaNs.
		bound := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{X: bound(ax), Y: bound(ay)}
		b := Point{X: bound(bx), Y: bound(by)}
		c := Point{X: bound(cx), Y: bound(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadrant(t *testing.T) {
	q := Point{X: 10, Y: 10}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{X: 11, Y: 11}, 1},
		{Point{X: 9, Y: 11}, 2},
		{Point{X: 9, Y: 9}, 3},
		{Point{X: 11, Y: 9}, 4},
		{Point{X: 10, Y: 10}, 1}, // on the origin
		{Point{X: 10, Y: 12}, 1}, // on +y axis
		{Point{X: 12, Y: 10}, 1}, // on +x axis
		{Point{X: 8, Y: 10}, 2},  // on -x axis
		{Point{X: 10, Y: 8}, 4},  // on -y axis
	}
	for _, c := range cases {
		if got := c.p.Quadrant(q); got != c.want {
			t.Errorf("Quadrant(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestQuadrantConsistentWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		q, p := randPoint(rng), randPoint(rng)
		quad := p.Quadrant(q)
		right := OnRightEdge(q, p)
		top := AnchorsTopEdge(q, p)
		wantRight := quad == 1 || quad == 4
		wantTop := quad == 1 || quad == 2
		if right != wantRight || top != wantTop {
			t.Fatalf("quad %d: right=%v top=%v", quad, right, top)
		}
	}
}
