package trace

import (
	"testing"
	"time"
)

// TestNilRecorderIsNoOp pins the zero-cost-when-off contract: every
// method must be callable on a nil *Recorder.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Enter(PhaseDescent)
	r.Visit()
	r.Count(CtrDIPPruned, 3)
	r.Heap(10)
	r.Candidates(10)
	r.Finish()
	s := r.Snapshot()
	if s.Total != 0 || len(s.Phases) != 0 || s.VisitTotal() != 0 {
		t.Fatalf("nil recorder produced non-zero snapshot: %+v", s)
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := New()
	r.Visit() // validate
	r.Enter(PhaseDescent)
	r.Visit()
	r.Visit()
	r.Count(CtrDIPPruned, 2)
	r.Heap(5)
	r.Heap(3) // lower: must not regress the high-water mark
	r.Enter(PhaseSRR)
	r.Count(CtrSRRShrinks, 1)
	r.Enter(PhaseDescent) // re-entry accumulates into the same phase
	r.Visit()
	r.Candidates(40)
	r.Finish()

	s := r.Snapshot()
	if got := s.VisitTotal(); got != 4 {
		t.Fatalf("VisitTotal = %d, want 4", got)
	}
	byPhase := map[Phase]PhaseSnapshot{}
	for _, p := range s.Phases {
		byPhase[p.Phase] = p
	}
	if byPhase[PhaseDescent].Visits != 3 {
		t.Errorf("descent visits = %d, want 3", byPhase[PhaseDescent].Visits)
	}
	if byPhase[PhaseDescent].Entered != 2 {
		t.Errorf("descent entered = %d, want 2", byPhase[PhaseDescent].Entered)
	}
	if byPhase[PhaseValidate].Visits != 1 {
		t.Errorf("validate visits = %d, want 1", byPhase[PhaseValidate].Visits)
	}
	if s.Counters[CtrDIPPruned] != 2 || s.Counters[CtrSRRShrinks] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.HeapHighWater != 5 || s.CandidateHighWater != 40 {
		t.Errorf("high-water = %d/%d, want 5/40", s.HeapHighWater, s.CandidateHighWater)
	}
	if s.Total <= 0 {
		t.Errorf("total duration %v not positive", s.Total)
	}
	var sum time.Duration
	for _, p := range s.Phases {
		sum += p.Duration
	}
	if sum > s.Total {
		t.Errorf("phase durations %v exceed total %v", sum, s.Total)
	}
}

// TestFinishFreezes pins that a finished recorder ignores further
// recording, so a trace cannot drift after it is reported.
func TestFinishFreezes(t *testing.T) {
	r := New()
	r.Enter(PhaseDescent)
	r.Visit()
	r.Finish()
	total := r.Snapshot().Total
	r.Enter(PhaseVerify)
	r.Visit()
	s := r.Snapshot()
	if s.VisitTotal() != 1 {
		t.Errorf("visits after Finish leaked: %d", s.VisitTotal())
	}
	if s.Total != total {
		t.Errorf("total changed after Finish: %v -> %v", total, s.Total)
	}
	for _, p := range s.Phases {
		if p.Phase == PhaseVerify {
			t.Errorf("phase entered after Finish leaked into snapshot")
		}
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < PhaseCount; p++ {
		n := p.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("phase %d has bad name %q", p, n)
		}
		seen[n] = true
	}
	for c := Counter(0); c < CounterCount; c++ {
		n := c.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("counter %d has bad name %q", c, n)
		}
		seen[n] = true
	}
	if Phase(200).String() != "unknown" || Counter(200).String() != "unknown" {
		t.Fatalf("out-of-range names not guarded")
	}
}
