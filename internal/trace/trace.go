// Package trace provides the per-query structured tracing recorder
// threaded through the NWC query path. A Recorder accumulates, per
// phase of the algorithm, wall time (monotonic, via time.Now's
// monotonic reading), node visits and pruning-decision counts, plus
// scratch-structure high-water marks.
//
// The recorder is deliberately nil-tolerant: every method is a no-op on
// a nil *Recorder, and callers hold a plain pointer that is nil when
// tracing is off. The disabled query path therefore pays exactly one
// predictable nil-check branch per instrumentation point — no clock
// reads, no atomics, no allocation — which keeps tracing "zero cost
// when off" within measurement noise.
//
// A Recorder belongs to exactly one query and is not safe for
// concurrent use; queries are the unit of tracing, and each builds its
// own.
package trace

import "time"

// Phase identifies one stage of the NWC/kNWC algorithm. Phases are not
// strictly sequential — the best-first loop interleaves them — so the
// recorder accumulates total duration, entry count and node visits per
// phase rather than a flat span list.
type Phase uint8

const (
	// PhaseValidate covers parameter validation and query setup.
	PhaseValidate Phase = iota
	// PhaseDescent covers the best-first R*-tree traversal: popping
	// heap items, DIP/DEP node pruning and reading index nodes.
	PhaseDescent
	// PhaseSRR covers search-region construction and SRR shrinking for
	// each anchor object, including DEP's window-query cancellation.
	PhaseSRR
	// PhaseWindowEnum covers window-query execution (IWP or
	// traditional root descent) collecting candidate objects.
	PhaseWindowEnum
	// PhaseVerify covers candidate-window enumeration and verification
	// against the pruning bound (evaluateWindows).
	PhaseVerify
	// PhaseDedup covers kNWC candidate-pool maintenance: dedup,
	// ordered insert and the greedy selection refresh.
	PhaseDedup

	// PhaseCount is the number of phases.
	PhaseCount
)

var phaseNames = [PhaseCount]string{
	"validate", "descent", "srr", "window-enum", "verify", "knwc-dedup",
}

// String returns the phase's stable lower-case name.
func (p Phase) String() string {
	if p < PhaseCount {
		return phaseNames[p]
	}
	return "unknown"
}

// Counter identifies one pruning/decision count the recorder tracks
// beyond what per-query Stats already carries (Stats aggregates SRR+DEP
// skips and DIP+DEP prunes; the trace splits them by rule).
type Counter uint8

const (
	// CtrSRRShrinks counts anchor objects whose search region was
	// shrunk by SRR under a finite bound.
	CtrSRRShrinks Counter = iota
	// CtrSRRSkips counts anchor objects skipped outright because SRR
	// shrank their search region to empty.
	CtrSRRSkips
	// CtrDIPPruned counts index nodes pruned by DIP.
	CtrDIPPruned
	// CtrDEPPrunedNodes counts index nodes pruned by DEP.
	CtrDEPPrunedNodes
	// CtrDEPSkippedObjects counts anchor objects whose window query DEP
	// cancelled.
	CtrDEPSkippedObjects
	// CtrGroupsEmitted counts groups that survived every gate and were
	// offered to the result (best-group update or kNWC pool).
	CtrGroupsEmitted
	// CtrIWPJumpStarts counts window queries IWP started below the root
	// via a backward pointer.
	CtrIWPJumpStarts
	// CtrIWPRootStarts counts window queries that fell back to a
	// root-start (no backward-pointer MBR covered the rectangle).
	CtrIWPRootStarts
	// CtrIWPOverlapScans counts overlapping-node subtree scans IWP ran
	// to restore completeness after a below-root start.
	CtrIWPOverlapScans
	// CtrDedupOffered counts groups offered to the kNWC candidate pool.
	CtrDedupOffered
	// CtrDedupAccepted counts offers that entered the pool (new object
	// set, or an improved distance for a known set).
	CtrDedupAccepted

	// CounterCount is the number of counters.
	CounterCount
)

var counterNames = [CounterCount]string{
	"srr_shrinks", "srr_skips", "dip_pruned_nodes", "dep_pruned_nodes",
	"dep_skipped_objects", "groups_emitted", "iwp_jump_starts",
	"iwp_root_starts", "iwp_overlap_scans", "dedup_offered",
	"dedup_accepted",
}

// String returns the counter's stable snake_case name.
func (c Counter) String() string {
	if c < CounterCount {
		return counterNames[c]
	}
	return "unknown"
}

// Recorder accumulates one query's trace. The zero value is not usable;
// construct with New. All methods are no-ops on a nil receiver.
type Recorder struct {
	start    time.Time
	cur      Phase
	curStart time.Time
	finished bool
	total    time.Duration

	durs     [PhaseCount]time.Duration
	entered  [PhaseCount]int
	visits   [PhaseCount]uint64
	counters [CounterCount]int64

	heapHW int // best-first priority-queue high-water mark
	candHW int // window-query candidate buffer high-water mark
}

// New starts a recorder in PhaseValidate.
func New() *Recorder {
	now := time.Now()
	r := &Recorder{start: now, cur: PhaseValidate, curStart: now}
	r.entered[PhaseValidate] = 1
	return r
}

// Enter switches the recorder to phase p, closing the span of the
// current phase. Re-entering the current phase is a no-op (the span
// keeps running).
func (r *Recorder) Enter(p Phase) {
	if r == nil || r.finished || p == r.cur || p >= PhaseCount {
		return
	}
	now := time.Now()
	r.durs[r.cur] += now.Sub(r.curStart)
	r.cur = p
	r.curStart = now
	r.entered[p]++
}

// Visit attributes one node visit to the current phase.
func (r *Recorder) Visit() {
	if r == nil || r.finished {
		return
	}
	r.visits[r.cur]++
}

// Count adds n to counter c.
func (r *Recorder) Count(c Counter, n int64) {
	if r == nil || r.finished || c >= CounterCount {
		return
	}
	r.counters[c] += n
}

// Heap raises the priority-queue high-water mark to n if larger.
func (r *Recorder) Heap(n int) {
	if r == nil || n <= r.heapHW {
		return
	}
	r.heapHW = n
}

// Candidates raises the candidate-buffer high-water mark to n if
// larger.
func (r *Recorder) Candidates(n int) {
	if r == nil || n <= r.candHW {
		return
	}
	r.candHW = n
}

// Finish closes the current span and freezes the total duration.
// Further Enter/Visit/Count calls are ignored. Finish is idempotent.
func (r *Recorder) Finish() {
	if r == nil || r.finished {
		return
	}
	now := time.Now()
	r.durs[r.cur] += now.Sub(r.curStart)
	r.curStart = now
	r.total = now.Sub(r.start)
	r.finished = true
}

// PhaseSnapshot is one phase's accumulated trace.
type PhaseSnapshot struct {
	Phase    Phase
	Duration time.Duration
	Entered  int
	Visits   uint64
}

// Snapshot is a completed recorder's state, ready for presentation.
type Snapshot struct {
	Start time.Time
	Total time.Duration
	// Phases lists every phase that was entered at least once, in
	// algorithm order.
	Phases   []PhaseSnapshot
	Counters [CounterCount]int64
	// HeapHighWater and CandidateHighWater are the peak sizes of the
	// best-first priority queue and the window-query candidate buffer.
	HeapHighWater      int
	CandidateHighWater int
}

// Snapshot finishes the recorder (if not already finished) and returns
// its accumulated state. A nil recorder yields a zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.Finish()
	s := Snapshot{
		Start:              r.start,
		Total:              r.total,
		Counters:           r.counters,
		HeapHighWater:      r.heapHW,
		CandidateHighWater: r.candHW,
	}
	for p := Phase(0); p < PhaseCount; p++ {
		if r.entered[p] == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseSnapshot{
			Phase:    p,
			Duration: r.durs[p],
			Entered:  r.entered[p],
			Visits:   r.visits[p],
		})
	}
	return s
}

// VisitTotal sums the per-phase node-visit counts — by construction it
// equals the query's Stats.NodeVisits when every node read went through
// a reader carrying this recorder.
func (s Snapshot) VisitTotal() uint64 {
	var n uint64
	for _, p := range s.Phases {
		n += p.Visits
	}
	return n
}
