// Package core implements the paper's contribution: Nearest Window
// Cluster (NWC) queries and their k-group extension (kNWC), processed by
// the NWC algorithm of Section 3.2 with the four optimisation techniques
// of Section 3.3 — search region reduction (SRR), distance-based pruning
// (DIP), density-based pruning (DEP) and incremental window query
// processing (IWP).
//
// Given a query point q, window length l, width w and object count n,
// NWC(q, l, w, n) returns the n objects that fit in some l × w window
// such that the distance from q to those objects is minimal over all
// such windows (Definition 1). The engine follows the problem
// transformation of Section 2.1: it enumerates qualified windows in an
// order driven by a best-first traversal of the R*-tree, keeping the
// best objects found so far and using their distance to prune.
package core

import (
	"errors"
	"fmt"
	"math"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/rstar"
)

// Measure selects the distance between the query point and a group of n
// objects (Section 2.1, Equations 1–4). Every measure is lower-bounded
// by MINDIST(q, qwin), which is what makes the shared pruning machinery
// sound.
type Measure int

const (
	// MeasureMax is Equation (2): the distance to the farthest of the n
	// objects. It is the default — "all n choices are within this
	// distance" matches the motivating scenario.
	MeasureMax Measure = iota
	// MeasureMin is Equation (1): the distance to the nearest of the n
	// objects.
	MeasureMin
	// MeasureAvg is Equation (3): the mean distance to the n objects.
	MeasureAvg
	// MeasureWindow is Equation (4): the smallest MINDIST from q to any
	// qualified window containing the n objects.
	MeasureWindow
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case MeasureMax:
		return "max"
	case MeasureMin:
		return "min"
	case MeasureAvg:
		return "avg"
	case MeasureWindow:
		return "window"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Valid reports whether m is a known measure.
func (m Measure) Valid() bool { return m >= MeasureMax && m <= MeasureWindow }

// errInvalidMeasure rejects unknown Measure values at the API boundary.
var errInvalidMeasure = errors.New("core: invalid measure")

// Scheme enables the optimisation techniques, reproducing the schemes of
// Table 3. The zero value is the plain NWC algorithm.
type Scheme struct {
	SRR bool // search region reduction (Section 3.3.1)
	DIP bool // distance-based pruning (Section 3.3.2)
	DEP bool // density-based pruning (Section 3.3.3)
	IWP bool // incremental window query processing (Section 3.3.4)
}

// The seven schemes evaluated in the paper (Table 3).
var (
	SchemeNWC     = Scheme{}
	SchemeSRR     = Scheme{SRR: true}
	SchemeDIP     = Scheme{DIP: true}
	SchemeDEP     = Scheme{DEP: true}
	SchemeIWP     = Scheme{IWP: true}
	SchemeNWCPlus = Scheme{SRR: true, DIP: true}
	SchemeNWCStar = Scheme{SRR: true, DIP: true, DEP: true, IWP: true}
)

// String implements fmt.Stringer using the paper's scheme names.
func (s Scheme) String() string {
	switch s {
	case SchemeNWC:
		return "NWC"
	case SchemeSRR:
		return "SRR"
	case SchemeDIP:
		return "DIP"
	case SchemeDEP:
		return "DEP"
	case SchemeIWP:
		return "IWP"
	case SchemeNWCPlus:
		return "NWC+"
	case SchemeNWCStar:
		return "NWC*"
	}
	out := ""
	for _, f := range []struct {
		on   bool
		name string
	}{{s.SRR, "SRR"}, {s.DIP, "DIP"}, {s.DEP, "DEP"}, {s.IWP, "IWP"}} {
		if f.on {
			if out != "" {
				out += "+"
			}
			out += f.name
		}
	}
	if out == "" {
		return "NWC"
	}
	return out
}

// Query is an NWC query (q, l, w, n) per Definition 1.
type Query struct {
	Q geom.Point // query location
	L float64    // window length (x extent)
	W float64    // window width (y extent)
	N int        // number of objects to retrieve
}

// Validate reports whether the query parameters are usable.
func (q Query) Validate() error {
	if q.L <= 0 || q.W <= 0 {
		return fmt.Errorf("core: window %g x %g must be positive", q.L, q.W)
	}
	if q.N < 1 {
		return fmt.Errorf("core: n = %d must be at least 1", q.N)
	}
	if math.IsNaN(q.Q.X) || math.IsNaN(q.Q.Y) {
		return errors.New("core: query point is NaN")
	}
	return nil
}

// Group is one answer: n objects clustered in an l × w window.
type Group struct {
	// Objects are the n result objects, ordered by ascending distance
	// to the query point.
	Objects []geom.Point
	// Dist is the group's distance to the query point under the chosen
	// measure.
	Dist float64
	// Window is a qualified window containing the objects (the one the
	// algorithm found the group in).
	Window geom.Rect
}

// OverlapCount returns |g ∩ o| by object identity (coordinates and ID).
func (g Group) OverlapCount(o Group) int {
	if len(g.Objects) > 32 {
		set := make(map[geom.Point]struct{}, len(g.Objects))
		for _, p := range g.Objects {
			set[p] = struct{}{}
		}
		n := 0
		for _, p := range o.Objects {
			if _, ok := set[p]; ok {
				n++
			}
		}
		return n
	}
	n := 0
	for _, p := range o.Objects {
		for _, s := range g.Objects {
			if p == s {
				n++
				break
			}
		}
	}
	return n
}

// Stats describes the work one query performed. NodeVisits is the
// paper's performance metric: the number of R*-tree nodes read.
//
// Every field is accumulated on a carrier private to the query (the
// traversal threads a *Stats through the whole read path, and node
// visits are counted by a per-query tree Reader), so concurrent queries
// never bleed into each other's numbers.
type Stats struct {
	NodeVisits       uint64 // R*-tree nodes visited (the paper's I/O cost)
	ObjectsProcessed int    // objects popped and evaluated
	ObjectsSkipped   int    // objects skipped by SRR or DEP before any window query
	NodesPruned      int    // index nodes pruned by DIP or DEP
	WindowQueries    int    // window queries issued
	CandidateWindows int    // candidate windows evaluated
	QualifiedWindows int    // candidate windows that were qualified
	GridProbes       int    // density-grid upper-bound probes issued by DEP
}

// String renders the stats as a one-line explain summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"io=%d nodes; objects=%d (skipped %d), pruned=%d nodes, window-queries=%d, windows=%d/%d qualified, grid-probes=%d",
		s.NodeVisits, s.ObjectsProcessed, s.ObjectsSkipped, s.NodesPruned,
		s.WindowQueries, s.QualifiedWindows, s.CandidateWindows, s.GridProbes)
}

// Engine executes NWC and kNWC queries against one dataset snapshot.
type Engine struct {
	tree    *rstar.Tree
	density *grid.Density
	iwpIdx  *iwp.Index
}

// NewEngine builds an engine over tree. density may be nil if no scheme
// with DEP is used; iwpIdx may be nil if no scheme with IWP is used.
func NewEngine(tree *rstar.Tree, density *grid.Density, iwpIdx *iwp.Index) (*Engine, error) {
	if tree == nil {
		return nil, errors.New("core: nil tree")
	}
	return &Engine{tree: tree, density: density, iwpIdx: iwpIdx}, nil
}

// Tree returns the engine's R*-tree.
func (e *Engine) Tree() *rstar.Tree { return e.tree }

// Density returns the engine's density grid, nil if absent.
func (e *Engine) Density() *grid.Density { return e.density }

// IWPIndex returns the engine's IWP augmentation, nil if absent.
func (e *Engine) IWPIndex() *iwp.Index { return e.iwpIdx }

func (e *Engine) checkScheme(s Scheme) error {
	if s.DEP && e.density == nil {
		return errors.New("core: scheme enables DEP but the engine has no density grid")
	}
	if s.IWP && e.iwpIdx == nil {
		return errors.New("core: scheme enables IWP but the engine has no IWP index")
	}
	return nil
}
