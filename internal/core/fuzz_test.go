package core

import (
	"encoding/binary"
	"math"
	"testing"

	"nwcq/internal/geom"
)

// FuzzNWCAgainstOracle drives the full engine with byte-derived point
// sets and query shapes and cross-checks the optimal distance against
// the exhaustive oracle for every scheme. Run with
//
//	go test -fuzz FuzzNWCAgainstOracle ./internal/core
//
// to explore; the seed corpus runs as part of the normal test suite.
func FuzzNWCAgainstOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(0))
	f.Add([]byte{200, 200, 200, 200, 0, 0, 1, 1, 7, 9}, uint8(1), uint8(1))
	f.Add([]byte{}, uint8(1), uint8(2))
	f.Add([]byte{255, 0, 255, 0, 128, 128, 64, 64, 32, 32, 16, 16, 8, 8}, uint8(3), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, nRaw, mRaw uint8) {
		// Decode points: two bytes per coordinate pair, scaled to
		// [0, 255]; duplicates and collinear runs arise naturally.
		var pts []geom.Point
		for i := 0; i+1 < len(data) && len(pts) < 28; i += 2 {
			pts = append(pts, geom.Point{
				X:  float64(data[i]),
				Y:  float64(data[i+1]),
				ID: uint64(i / 2),
			})
		}
		// Query parameters from a hash of the tail.
		var h uint64 = 1469598103934665603
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		var qb [8]byte
		binary.BigEndian.PutUint64(qb[:], h)
		qy := Query{
			Q: geom.Point{X: float64(qb[0]) * 1.5, Y: float64(qb[1]) * 1.5},
			L: float64(qb[2]%100) + 1,
			W: float64(qb[3]%100) + 1,
			N: int(nRaw%5) + 1,
		}
		measure := allMeasures[int(mRaw)%len(allMeasures)]

		eng, err := quickEngine(pts)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForceNWC(pts, qy, measure)
		for _, scheme := range allSchemes {
			got, _, err := eng.NWC(qy, scheme, measure)
			if err != nil {
				t.Fatal(err)
			}
			if got.Found != want.Found {
				t.Fatalf("scheme %v: found=%v, oracle %v (pts=%v qy=%+v)",
					scheme, got.Found, want.Found, pts, qy)
			}
			if got.Found && math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("scheme %v: dist=%g, oracle %g (pts=%v qy=%+v)",
					scheme, got.Dist, want.Dist, pts, qy)
			}
		}
	})
}

// FuzzKNWCDefinition checks the kNWC structural guarantees on
// byte-derived inputs.
func FuzzKNWCDefinition(f *testing.F) {
	f.Add([]byte{10, 10, 20, 20, 30, 30, 40, 40, 50, 50}, uint8(2), uint8(2), uint8(1))
	f.Add([]byte{0, 0, 0, 1, 1, 0, 1, 1}, uint8(1), uint8(3), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, nRaw, kRaw, mRaw uint8) {
		var pts []geom.Point
		for i := 0; i+1 < len(data) && len(pts) < 24; i += 2 {
			pts = append(pts, geom.Point{X: float64(data[i]) * 2, Y: float64(data[i+1]) * 2, ID: uint64(i / 2)})
		}
		n := int(nRaw%4) + 1
		qy := KNWCQuery{
			Query: Query{
				Q: geom.Point{X: 128, Y: 128},
				L: 60, W: 60, N: n,
			},
			K: int(kRaw%4) + 1,
			M: int(mRaw) % n,
		}
		eng, err := quickEngine(pts)
		if err != nil {
			t.Fatal(err)
		}
		groups, _, err := eng.KNWC(qy, SchemeNWCStar, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		for i, g := range groups {
			if len(g.Objects) != n {
				t.Fatalf("group %d: %d objects", i, len(g.Objects))
			}
			for _, o := range g.Objects {
				if !g.Window.ContainsPoint(o) {
					t.Fatalf("object escapes window")
				}
			}
			if i > 0 && g.Dist < groups[i-1].Dist-eps {
				t.Fatal("groups out of order")
			}
			for j := i + 1; j < len(groups); j++ {
				if g.OverlapCount(groups[j]) > qy.M {
					t.Fatal("overlap constraint violated")
				}
			}
		}
	})
}
