package core

import (
	"math"
	"math/rand"
	"testing"

	"nwcq/internal/geom"
)

// TestLemma1Empirical validates the paper's Lemma 1, whose proof the
// paper omits "for the interest of space": the nearest qualified window
// (or an equivalent one) always has an object on a vertical edge and an
// object on a horizontal edge.
//
// The check compares the optimum over the anchored candidate universe
// (ForEachCandidateWindow) against a dense sweep of arbitrary window
// positions: no arbitrarily-placed window may yield a strictly better
// group distance than the best anchored window, for any measure.
func TestLemma1Empirical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		pts := genPoints(rng, 5+rng.Intn(30), trial%2 == 0)
		qy := Query{
			Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			L: rng.Float64()*150 + 5,
			W: rng.Float64()*150 + 5,
			N: 1 + rng.Intn(4),
		}
		for _, measure := range allMeasures {
			anchored := BruteForceNWC(pts, qy, measure)

			// Dense sweep: window top-right corners on a fine lattice
			// covering the data extent plus one window size.
			bounds := geom.EmptyRect()
			for _, p := range pts {
				bounds = bounds.ExtendPoint(p)
			}
			bounds = bounds.Buffer(qy.L, qy.W)
			const steps = 60
			bestSweep := math.Inf(1)
			foundSweep := false
			for ix := 0; ix <= steps; ix++ {
				for iy := 0; iy <= steps; iy++ {
					maxX := bounds.MinX + bounds.Width()*float64(ix)/steps
					maxY := bounds.MinY + bounds.Height()*float64(iy)/steps
					win := geom.Rect{MinX: maxX - qy.L, MinY: maxY - qy.W, MaxX: maxX, MaxY: maxY}
					var contents []geom.Point
					for _, p := range pts {
						if win.ContainsPoint(p) {
							contents = append(contents, p)
						}
					}
					if len(contents) < qy.N {
						continue
					}
					objs := nClosest(qy.Q, contents, qy.N)
					d := groupDist(qy.Q, objs, win, measure)
					if d < bestSweep {
						bestSweep = d
						foundSweep = true
					}
				}
			}
			if foundSweep && !anchored.Found {
				t.Fatalf("measure %v: sweep found a window but anchored search did not", measure)
			}
			if foundSweep && bestSweep < anchored.Dist-1e-9 {
				t.Fatalf("measure %v: arbitrary window beats anchored optimum: %g < %g (qy=%+v)",
					measure, bestSweep, anchored.Dist, qy)
			}
		}
	}
}

// TestLemma1QuadrantObservation validates the two observations of
// Section 3.1: for the optimal window, sliding preserves the optimum
// while putting the anchor on the quadrant-determined edge. Concretely:
// restricting anchors by quadrant (the engine's enumeration) loses
// nothing against the four-sided anchoring of ForEachCandidateWindow.
func TestLemma1QuadrantObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		pts := genPoints(rng, 5+rng.Intn(40), trial%3 == 0)
		qy := Query{
			Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			L: rng.Float64()*120 + 5,
			W: rng.Float64()*120 + 5,
			N: 1 + rng.Intn(3),
		}
		for _, measure := range allMeasures {
			fourSided := BruteForceNWC(pts, qy, measure)
			quadrant := CandidateGroups(pts, qy, measure)
			if !fourSided.Found {
				if len(quadrant) != 0 {
					t.Fatalf("quadrant universe found groups where none qualify")
				}
				continue
			}
			if len(quadrant) == 0 {
				t.Fatalf("measure %v: quadrant universe empty but optimum exists", measure)
			}
			if math.Abs(quadrant[0].Dist-fourSided.Dist) > 1e-9 {
				t.Fatalf("measure %v: quadrant-restricted optimum %g, four-sided %g",
					measure, quadrant[0].Dist, fourSided.Dist)
			}
		}
	}
}
