package core

import (
	"math"
	"math/rand"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/rstar"
)

// allSchemes lists the seven schemes of Table 3.
var allSchemes = []Scheme{
	SchemeNWC, SchemeSRR, SchemeDIP, SchemeDEP, SchemeIWP, SchemeNWCPlus, SchemeNWCStar,
}

var allMeasures = []Measure{MeasureMax, MeasureMin, MeasureAvg, MeasureWindow}

// genPoints produces points in [0,1000]² with optional clustering and a
// sprinkle of exact duplicates and shared coordinates, which exercise
// the boundary and tie handling.
func genPoints(rng *rand.Rand, n int, clustered bool) []geom.Point {
	pts := make([]geom.Point, 0, n)
	var centers []geom.Point
	if clustered {
		for i := 0; i < 4; i++ {
			centers = append(centers, geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		}
	}
	for i := 0; i < n; i++ {
		var p geom.Point
		switch {
		case len(pts) > 0 && rng.Intn(20) == 0:
			// Duplicate coordinates (fresh ID).
			p = pts[rng.Intn(len(pts))]
		case len(pts) > 0 && rng.Intn(10) == 0:
			// Shared y coordinate: stresses the sliding-window dedup.
			p = geom.Point{X: rng.Float64() * 1000, Y: pts[rng.Intn(len(pts))].Y}
		case clustered && rng.Intn(4) > 0:
			c := centers[rng.Intn(len(centers))]
			p = geom.Point{X: c.X + rng.NormFloat64()*25, Y: c.Y + rng.NormFloat64()*25}
		default:
			p = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		p.X = clamp(p.X, 0, 1000)
		p.Y = clamp(p.Y, 0, 1000)
		p.ID = uint64(i)
		pts = append(pts, p)
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildEngine assembles a full engine (tree + density grid + IWP index)
// over pts.
func buildEngine(t *testing.T, pts []geom.Point, maxEntries int, cellSize float64) *Engine {
	t.Helper()
	tr, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	space := geom.NewRect(0, 0, 1000, 1000)
	den, err := grid.New(space, cellSize, pts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := iwp.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.ResetVisits()
	eng, err := NewEngine(tr, den, ix)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// checkResultValid verifies a Found result is self-consistent: n objects
// all inside the reported window of the right size, distance matching a
// recomputation, objects drawn from the dataset.
func checkResultValid(t *testing.T, pts []geom.Point, qy Query, measure Measure, r Result) {
	t.Helper()
	if len(r.Objects) != qy.N {
		t.Fatalf("result has %d objects, want %d", len(r.Objects), qy.N)
	}
	const eps = 1e-9
	if r.Window.Width() > qy.L+eps || r.Window.Height() > qy.W+eps {
		t.Fatalf("window %v exceeds %g x %g", r.Window, qy.L, qy.W)
	}
	inData := make(map[geom.Point]int)
	for _, p := range pts {
		inData[p]++
	}
	for _, o := range r.Objects {
		if !r.Window.ContainsPoint(o) {
			t.Fatalf("object %v outside window %v", o, r.Window)
		}
		if inData[o] == 0 {
			t.Fatalf("object %v not in dataset (or used twice)", o)
		}
		inData[o]--
	}
	if d := groupDist(qy.Q, r.Objects, r.Window, measure); math.Abs(d-r.Dist) > 1e-9 {
		t.Fatalf("reported dist %g, recomputed %g", r.Dist, d)
	}
}

// TestNWCMatchesBruteForceAllSchemes is the central correctness test:
// on randomised datasets every scheme must return a result with exactly
// the optimal distance found by exhaustive enumeration, for all four
// measures.
func TestNWCMatchesBruteForceAllSchemes(t *testing.T) {
	configs := []struct {
		n         int
		clustered bool
		seed      int64
	}{
		{0, false, 1}, {1, false, 2}, {3, false, 3}, {8, true, 4},
		{20, false, 5}, {20, true, 6}, {45, true, 7}, {45, false, 8},
		{80, true, 9}, {80, false, 10},
	}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(cfg.seed))
		pts := genPoints(rng, cfg.n, cfg.clustered)
		eng := buildEngine(t, pts, 4, 50)
		for trial := 0; trial < 6; trial++ {
			qy := Query{
				Q: geom.Point{X: rng.Float64()*1200 - 100, Y: rng.Float64()*1200 - 100},
				L: rng.Float64()*150 + 1,
				W: rng.Float64()*150 + 1,
				N: 1 + rng.Intn(6),
			}
			for _, measure := range allMeasures {
				want := BruteForceNWC(pts, qy, measure)
				for _, scheme := range allSchemes {
					got, _, err := eng.NWC(qy, scheme, measure)
					if err != nil {
						t.Fatal(err)
					}
					if got.Found != want.Found {
						t.Fatalf("n=%d seed=%d scheme=%v measure=%v qy=%+v: found=%v, brute=%v",
							cfg.n, cfg.seed, scheme, measure, qy, got.Found, want.Found)
					}
					if !got.Found {
						continue
					}
					if math.Abs(got.Dist-want.Dist) > 1e-9 {
						t.Fatalf("n=%d seed=%d scheme=%v measure=%v qy=%+v: dist=%.12g, brute=%.12g",
							cfg.n, cfg.seed, scheme, measure, qy, got.Dist, want.Dist)
					}
					checkResultValid(t, pts, qy, measure, got)
				}
			}
		}
	}
}

// TestSchemesAgreeOnLargerData cross-checks all schemes against plain
// NWC on datasets too large for the brute-force oracle.
func TestSchemesAgreeOnLargerData(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		pts := genPoints(rng, 3000, clustered)
		eng := buildEngine(t, pts, 10, 25)
		for trial := 0; trial < 8; trial++ {
			qy := Query{
				Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				L: rng.Float64()*40 + 2,
				W: rng.Float64()*40 + 2,
				N: 1 + rng.Intn(10),
			}
			measure := allMeasures[trial%len(allMeasures)]
			base, baseStats, err := eng.NWC(qy, SchemeNWC, measure)
			if err != nil {
				t.Fatal(err)
			}
			for _, scheme := range allSchemes[1:] {
				got, st, err := eng.NWC(qy, scheme, measure)
				if err != nil {
					t.Fatal(err)
				}
				if got.Found != base.Found {
					t.Fatalf("scheme %v found=%v, NWC found=%v (qy=%+v)", scheme, got.Found, base.Found, qy)
				}
				if got.Found && math.Abs(got.Dist-base.Dist) > 1e-9 {
					t.Fatalf("scheme %v dist=%.12g, NWC dist=%.12g (qy=%+v, measure=%v)",
						scheme, got.Dist, base.Dist, qy, measure)
				}
				if got.Found {
					checkResultValid(t, pts, qy, measure, got)
				}
				if st.NodeVisits > baseStats.NodeVisits {
					t.Errorf("scheme %v visited %d nodes, plain NWC %d (optimisations must not add I/O)",
						scheme, st.NodeVisits, baseStats.NodeVisits)
				}
			}
		}
	}
}

func TestOptimisationsReduceIO(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := genPoints(rng, 5000, true)
	eng := buildEngine(t, pts, 16, 25)
	qy := Query{Q: geom.Point{X: 500, Y: 500}, L: 20, W: 20, N: 5}
	visits := map[string]uint64{}
	for _, scheme := range allSchemes {
		_, st, err := eng.NWC(qy, scheme, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		visits[scheme.String()] = st.NodeVisits
	}
	if visits["NWC+"] > visits["SRR"] || visits["NWC+"] > visits["DIP"] {
		t.Errorf("NWC+ (%d) should not exceed SRR (%d) or DIP (%d)",
			visits["NWC+"], visits["SRR"], visits["DIP"])
	}
	if visits["NWC*"] > visits["NWC+"] {
		t.Errorf("NWC* (%d) should not exceed NWC+ (%d)", visits["NWC*"], visits["NWC+"])
	}
	if visits["NWC*"] >= visits["NWC"] {
		t.Errorf("NWC* (%d) should beat plain NWC (%d) on clustered data", visits["NWC*"], visits["NWC"])
	}
}

func TestPlainNWCVisitsWholeTree(t *testing.T) {
	// Section 5.3: plain NWC accesses every object regardless of n.
	rng := rand.New(rand.NewSource(5))
	pts := genPoints(rng, 2000, false)
	eng := buildEngine(t, pts, 10, 25)
	qy := Query{Q: geom.Point{X: 500, Y: 500}, L: 15, W: 15, N: 4}
	_, st, err := eng.NWC(qy, SchemeNWC, MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsProcessed != len(pts) {
		t.Errorf("plain NWC processed %d of %d objects", st.ObjectsProcessed, len(pts))
	}
	if st.WindowQueries != len(pts) {
		t.Errorf("plain NWC issued %d window queries, want %d", st.WindowQueries, len(pts))
	}
	if st.ObjectsSkipped != 0 || st.NodesPruned != 0 {
		t.Errorf("plain NWC pruned: %+v", st)
	}
}

func TestNWCN1IsNearestNeighborLike(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := genPoints(rng, 300, false)
	eng := buildEngine(t, pts, 8, 50)
	q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	qy := Query{Q: q, L: 10, W: 10, N: 1}
	got, _, err := eng.NWC(qy, SchemeNWCStar, MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found {
		t.Fatal("n=1 query found nothing")
	}
	bestNN := math.Inf(1)
	for _, p := range pts {
		if d := q.Dist(p); d < bestNN {
			bestNN = d
		}
	}
	if math.Abs(got.Dist-bestNN) > 1e-9 {
		t.Errorf("n=1 dist %g, nearest neighbour %g", got.Dist, bestNN)
	}
}

func TestNoQualifiedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := genPoints(rng, 50, false)
	eng := buildEngine(t, pts, 8, 50)
	// n larger than the dataset: impossible.
	qy := Query{Q: geom.Point{X: 500, Y: 500}, L: 10, W: 10, N: len(pts) + 1}
	for _, scheme := range allSchemes {
		got, _, err := eng.NWC(qy, scheme, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found {
			t.Errorf("scheme %v found a window for impossible n", scheme)
		}
	}
	// Tiny window on sparse data can also fail.
	qy = Query{Q: geom.Point{X: 500, Y: 500}, L: 0.001, W: 0.001, N: 3}
	got, _, err := eng.NWC(qy, SchemeNWCStar, MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		// Only possible if duplicates coincide; verify.
		checkResultValid(t, pts, qy, MeasureMax, got)
	}
}

func TestEmptyDataset(t *testing.T) {
	eng := buildEngine(t, nil, 8, 50)
	got, st, err := eng.NWC(Query{Q: geom.Point{X: 1, Y: 1}, L: 5, W: 5, N: 1}, SchemeNWCStar, MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Error("found a group in an empty dataset")
	}
	if st.ObjectsProcessed != 0 {
		t.Errorf("processed %d objects in empty dataset", st.ObjectsProcessed)
	}
}

func TestValidation(t *testing.T) {
	eng := buildEngine(t, genPoints(rand.New(rand.NewSource(8)), 10, false), 8, 50)
	bad := []Query{
		{Q: geom.Point{}, L: 0, W: 5, N: 1},
		{Q: geom.Point{}, L: 5, W: -1, N: 1},
		{Q: geom.Point{}, L: 5, W: 5, N: 0},
		{Q: geom.Point{X: math.NaN()}, L: 5, W: 5, N: 1},
	}
	for _, qy := range bad {
		if _, _, err := eng.NWC(qy, SchemeNWC, MeasureMax); err == nil {
			t.Errorf("query %+v accepted", qy)
		}
	}
	ok := Query{Q: geom.Point{X: 1, Y: 1}, L: 5, W: 5, N: 1}
	if _, _, err := eng.NWC(ok, SchemeNWC, Measure(99)); err == nil {
		t.Error("invalid measure accepted")
	}
	// Engines without substrate reject schemes that need it.
	bare, err := NewEngine(eng.Tree(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.NWC(ok, SchemeDEP, MeasureMax); err == nil {
		t.Error("DEP without grid accepted")
	}
	if _, _, err := bare.NWC(ok, SchemeIWP, MeasureMax); err == nil {
		t.Error("IWP without index accepted")
	}
	if _, err := NewEngine(nil, nil, nil); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestQueryFarOutsideSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := genPoints(rng, 60, true)
	eng := buildEngine(t, pts, 4, 50)
	qy := Query{Q: geom.Point{X: -5000, Y: 8000}, L: 60, W: 60, N: 3}
	want := BruteForceNWC(pts, qy, MeasureMax)
	for _, scheme := range allSchemes {
		got, _, err := eng.NWC(qy, scheme, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != want.Found {
			t.Fatalf("scheme %v: found=%v want %v", scheme, got.Found, want.Found)
		}
		if got.Found && math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("scheme %v: dist %g, want %g", scheme, got.Dist, want.Dist)
		}
	}
}

func TestDuplicateHeavyDataset(t *testing.T) {
	// Many identical coordinates and shared rows/columns: the stress
	// case for closed-boundary and equal-y handling.
	var pts []geom.Point
	id := uint64(0)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for d := 0; d < 2; d++ { // two objects per grid vertex
				pts = append(pts, geom.Point{X: float64(i * 10), Y: float64(j * 10), ID: id})
				id++
			}
		}
	}
	eng := buildEngine(t, pts, 4, 5)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		qy := Query{
			Q: geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			L: float64(rng.Intn(3)*10) + 10, // window edges align with the lattice
			W: float64(rng.Intn(3)*10) + 10,
			N: 1 + rng.Intn(8),
		}
		for _, measure := range allMeasures {
			want := BruteForceNWC(pts, qy, measure)
			for _, scheme := range allSchemes {
				got, _, err := eng.NWC(qy, scheme, measure)
				if err != nil {
					t.Fatal(err)
				}
				if got.Found != want.Found || (got.Found && math.Abs(got.Dist-want.Dist) > 1e-9) {
					t.Fatalf("scheme %v measure %v qy %+v: got (%v, %g), want (%v, %g)",
						scheme, measure, qy, got.Found, got.Dist, want.Found, want.Dist)
				}
			}
		}
	}
}

func TestMeasureString(t *testing.T) {
	cases := map[Measure]string{
		MeasureMax: "max", MeasureMin: "min", MeasureAvg: "avg", MeasureWindow: "window",
		Measure(9): "Measure(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Measure(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[string]Scheme{
		"NWC":  SchemeNWC,
		"SRR":  SchemeSRR,
		"DIP":  SchemeDIP,
		"DEP":  SchemeDEP,
		"IWP":  SchemeIWP,
		"NWC+": SchemeNWCPlus,
		"NWC*": SchemeNWCStar,
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("scheme %+v String() = %q, want %q", s, got, want)
		}
	}
	if got := (Scheme{SRR: true, DEP: true}).String(); got != "SRR+DEP" {
		t.Errorf("ad-hoc scheme String() = %q", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := genPoints(rng, 1000, true)
	eng := buildEngine(t, pts, 8, 25)
	qy := Query{Q: geom.Point{X: 500, Y: 500}, L: 25, W: 25, N: 4}
	_, st, err := eng.NWC(qy, SchemeNWCStar, MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeVisits == 0 {
		t.Error("no node visits counted")
	}
	if st.ObjectsProcessed != st.ObjectsSkipped+st.WindowQueries {
		t.Errorf("objects processed %d != skipped %d + window queries %d",
			st.ObjectsProcessed, st.ObjectsSkipped, st.WindowQueries)
	}
	if st.QualifiedWindows > st.CandidateWindows {
		t.Errorf("qualified %d > candidates %d", st.QualifiedWindows, st.CandidateWindows)
	}
}
