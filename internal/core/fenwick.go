package core

import (
	"math"
	"slices"
)

// distStats is an order-statistic structure over the objects currently
// inside the sliding candidate window: a Fenwick (binary indexed) tree
// over coordinate-compressed squared distances, tracking per-rank counts
// and linear-distance sums.
//
// evaluateWindows slides a window over the y-sorted candidates of one
// anchor; each object enters and leaves the window exactly once, and for
// every candidate window the engine needs the distance of the window's
// best group — the n-th smallest object distance for MeasureMax, the
// smallest for MeasureMin, the mean of the n smallest for MeasureAvg.
// Computing those from scratch costs O(s) per window (O(s²) per anchor);
// the Fenwick tree answers them in O(log s), so whole-window evaluation
// drops to O(s log s) per anchor. Groups are only materialised for
// windows whose exact distance beats the current pruning bound.
type distStats struct {
	d2s   []float64 // sorted unique squared distances; rank i ↔ d2s[i]
	dist  []float64 // linear distance per rank
	cnt   []int     // Fenwick tree of counts (1-based)
	sum   []float64 // Fenwick tree of linear-distance sums (1-based)
	total int
}

// newDistStats prepares ranks for the given squared distances (one per
// candidate object; duplicates welcome). The structure starts empty.
func newDistStats(allD2 []float64) *distStats {
	ds := &distStats{}
	ds.reset(allD2)
	return ds
}

// reset re-initialises ds for a new set of squared distances, reusing
// the slice capacity of a previous use — per-query scratch holds one
// distStats so anchor evaluation stops allocating Fenwick arrays.
func (ds *distStats) reset(allD2 []float64) {
	ds.d2s = append(ds.d2s[:0], allD2...)
	slices.Sort(ds.d2s)
	ds.d2s = slices.Compact(ds.d2s)
	n := len(ds.d2s)
	if cap(ds.dist) < n {
		ds.dist = make([]float64, n)
		ds.cnt = make([]int, n+1)
		ds.sum = make([]float64, n+1)
	}
	ds.dist = ds.dist[:n]
	ds.cnt = ds.cnt[:n+1]
	ds.sum = ds.sum[:n+1]
	for i, v := range ds.d2s {
		ds.dist[i] = math.Sqrt(v)
	}
	for i := range ds.cnt {
		ds.cnt[i] = 0
		ds.sum[i] = 0
	}
	ds.total = 0
}

// rankOf returns the 0-based rank of a squared distance that is
// guaranteed to be present in the compressed domain.
func (ds *distStats) rankOf(d2 float64) int {
	lo, hi := 0, len(ds.d2s)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ds.d2s[mid] < d2 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (ds *distStats) add(rank int) {
	d := ds.dist[rank]
	for i := rank + 1; i <= len(ds.d2s); i += i & (-i) {
		ds.cnt[i]++
		ds.sum[i] += d
	}
	ds.total++
}

func (ds *distStats) remove(rank int) {
	d := ds.dist[rank]
	for i := rank + 1; i <= len(ds.d2s); i += i & (-i) {
		ds.cnt[i]--
		ds.sum[i] -= d
	}
	ds.total--
}

// kthD2 returns the k-th smallest (1-based) squared distance currently
// in the window. The caller guarantees 1 ≤ k ≤ total.
func (ds *distStats) kthD2(k int) float64 {
	pos := 0
	remain := k
	// Highest power of two within the tree size.
	step := 1
	for step*2 <= len(ds.d2s) {
		step *= 2
	}
	for ; step > 0; step /= 2 {
		next := pos + step
		if next <= len(ds.d2s) && ds.cnt[next] < remain {
			remain -= ds.cnt[next]
			pos = next
		}
	}
	return ds.d2s[pos]
}

// sumSmallest returns the sum of the k smallest linear distances in the
// window. The caller guarantees 1 ≤ k ≤ total.
func (ds *distStats) sumSmallest(k int) float64 {
	pos := 0
	remain := k
	total := 0.0
	step := 1
	for step*2 <= len(ds.d2s) {
		step *= 2
	}
	for ; step > 0; step /= 2 {
		next := pos + step
		if next <= len(ds.d2s) && ds.cnt[next] < remain {
			remain -= ds.cnt[next]
			total += ds.sum[next]
			pos = next
		}
	}
	// pos now indexes the rank holding the remaining elements (all of
	// equal distance).
	if remain > 0 {
		total += float64(remain) * ds.dist[pos]
	}
	return total
}
