package core

import (
	"context"
	"math"
	"slices"

	"nwcq/internal/geom"
	"nwcq/internal/rstar"
	"nwcq/internal/trace"
)

// Result is the answer to an NWC query.
type Result struct {
	Group
	// Found is false when no qualified window exists (for example when
	// n exceeds the number of objects any l × w window can hold).
	Found bool
}

// NWC answers query qy with the given scheme and measure under no
// cancellation. It is shorthand for NWCCtx with a background context.
func (e *Engine) NWC(qy Query, scheme Scheme, measure Measure) (Result, Stats, error) {
	return e.NWCCtx(context.Background(), qy, scheme, measure)
}

// NWCCtx answers query qy with the given scheme and measure. It
// implements Algorithm 1: a best-first traversal of the R*-tree visits
// objects in ascending distance from q; each object generates its
// search region and a window query; every candidate window found is
// checked against the best group so far; optimisations prune nodes,
// objects and window queries as enabled by the scheme.
//
// The context is consulted at node-visit granularity: once ctx is done
// the traversal stops and the context's error is returned, along with
// the stats accumulated so far.
func (e *Engine) NWCCtx(ctx context.Context, qy Query, scheme Scheme, measure Measure) (Result, Stats, error) {
	return e.NWCTrace(ctx, qy, scheme, measure, nil)
}

// NWCTrace is NWCCtx with per-query structured tracing: when rec is
// non-nil the traversal attributes wall time, node visits and pruning
// decisions to algorithm phases on it. A nil rec costs the query path
// one nil-check branch per instrumentation point and nothing else.
func (e *Engine) NWCTrace(ctx context.Context, qy Query, scheme Scheme, measure Measure, rec *trace.Recorder) (Result, Stats, error) {
	return e.NWCBounded(ctx, qy, scheme, measure, rec, nil)
}

// NWCBounded is NWCTrace with a cooperative shared bound. When sb is
// non-nil, every pruning decision (SRR, DIP, DEP, the window MINDIST
// gate) tests against min(local best, shared cell) — so a bound found
// by any concurrent search over another partition of the dataset
// shrinks this traversal's frontier at node-visit granularity — and
// every local improvement is published back into the cell.
//
// Sharing is sound for the single-best NWC search because the cell is
// monotone non-increasing and always at least the final global best B:
// a group pruned against it has distance ≥ B, so only non-answers are
// skipped, and the search that discovers the globally best group can
// never see a cell value below that group's distance before emitting
// it (every other group is at least as far). The result's Found/Dist
// therefore still describe the best group over this engine's own data,
// except that groups at distance ≥ the global bound may be elided —
// exactly the ones a scatter-gather merge discards anyway. See
// DESIGN.md §12.
func (e *Engine) NWCBounded(ctx context.Context, qy Query, scheme Scheme, measure Measure, rec *trace.Recorder, sb *rstar.SharedBound) (Result, Stats, error) {
	if err := qy.Validate(); err != nil {
		return Result{}, Stats{}, err
	}
	if !measure.Valid() {
		return Result{}, Stats{}, errInvalidMeasure
	}
	if err := e.checkScheme(scheme); err != nil {
		return Result{}, Stats{}, err
	}
	best := Group{Dist: math.Inf(1)}
	found := false
	bound := func() float64 { return best.Dist }
	emit := func(g Group) {
		if g.Dist < best.Dist {
			best = g
			found = true
		}
	}
	if sb != nil {
		bound = func() float64 {
			b := best.Dist
			if g := sb.Load(); g < b {
				b = g
			}
			return b
		}
		emit = func(g Group) {
			if g.Dist < best.Dist {
				best = g
				found = true
				sb.Tighten(g.Dist)
			}
		}
	}
	stats, err := e.search(ctx, qy, scheme, bound, emit, measure, rec, sb)
	if err != nil {
		return Result{}, stats, err
	}
	if !found {
		return Result{Found: false}, stats, nil
	}
	return Result{Group: best, Found: true}, stats, nil
}

// pqItem is an element of the best-first priority queue: an index node
// (with the MBR recorded by its parent, so pruning needs no extra I/O)
// or a data object together with the leaf that stores it (the hook IWP
// needs).
type pqItem struct {
	dist2  float64
	isNode bool
	id     rstar.NodeID // node id, or the containing leaf for objects
	mbr    geom.Rect    // node items only
	point  geom.Point   // object items only
}

// pqueue is a typed binary min-heap on dist2, avoiding the boxing of
// container/heap in this hot path.
type pqueue []pqItem

func (pq *pqueue) push(it pqItem) {
	*pq = append(*pq, it)
	i := len(*pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*pq)[parent].dist2 <= (*pq)[i].dist2 {
			break
		}
		(*pq)[parent], (*pq)[i] = (*pq)[i], (*pq)[parent]
		i = parent
	}
}

func (pq *pqueue) pop() pqItem {
	h := *pq
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*pq = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].dist2 < h[smallest].dist2 {
			smallest = l
		}
		if r < len(h) && h[r].dist2 < h[smallest].dist2 {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// search drives the shared NWC/kNWC traversal. bound returns the current
// pruning distance (the distance of the best group for NWC, of the k-th
// group for kNWC, +Inf while unset); emit receives every candidate group
// that passes the window-level MINDIST check, in discovery order.
//
// All accounting goes onto the returned Stats, a carrier owned by this
// one query: node visits are counted by a per-query tree Reader (which
// also keeps the index-wide cumulative atomic total exact), so
// concurrent searches never share a mutable counter. The reader also
// checks ctx before every node read, giving cancellation at node-visit
// granularity.
func (e *Engine) search(ctx context.Context, qy Query, scheme Scheme, bound func() float64, emit func(Group), measure Measure, rec *trace.Recorder, sb *rstar.SharedBound) (Stats, error) {
	var st Stats
	q, l, w, n := qy.Q, qy.L, qy.W, qy.N
	r := e.tree.Reader(ctx, &st.NodeVisits).WithTrace(rec).WithBound(sb)

	// Working memory (heap, candidate buffer, selection scratch) is
	// borrowed from a pool: under batch load the steady state allocates
	// none of it per query.
	sc := getScratch()
	defer putScratch(sc)
	pq := &sc.pq
	rec.Enter(trace.PhaseDescent)
	root, err := r.Node(e.tree.Root())
	if err != nil {
		return st, err
	}
	rootMBR := root.MBR()
	pq.push(pqItem{dist2: rootMBR.MinDist2(q), isNode: true, id: e.tree.Root(), mbr: rootMBR})

	for len(*pq) > 0 {
		it := pq.pop()
		if it.isNode {
			b := bound()
			// DIP (Section 3.3.2): prune the node when no object inside
			// its MBR can generate a window closer than the bound. The
			// MBR came from the parent, so pruning costs no node visit.
			if scheme.DIP && !math.IsInf(b, 1) &&
				geom.NodeWindowLowerBound2(q, it.mbr, l, w) >= b*b {
				st.NodesPruned++
				rec.Count(trace.CtrDIPPruned, 1)
				continue
			}
			// DEP node pruning (Section 3.3.3): extend the MBR to cover
			// every window its objects can generate; if the density grid
			// bounds the extended region's population below n, no object
			// inside can generate a qualified window.
			if scheme.DEP {
				st.GridProbes++
				if e.density.PrunesRect(geom.ExtendMBR(q, it.mbr, l, w), n) {
					st.NodesPruned++
					rec.Count(trace.CtrDEPPrunedNodes, 1)
					continue
				}
			}
			node, err := r.Node(it.id)
			if err != nil {
				return st, err
			}
			if node.Leaf {
				for _, p := range node.Points {
					pq.push(pqItem{dist2: p.Dist2(q), id: node.ID, point: p})
				}
				rec.Heap(len(*pq))
				continue
			}
			for i, r := range node.Rects {
				pq.push(pqItem{dist2: r.MinDist2(q), isNode: true, id: node.Children[i], mbr: r})
			}
			rec.Heap(len(*pq))
			continue
		}

		// Object item: generate and evaluate its candidate windows.
		rec.Enter(trace.PhaseSRR)
		st.ObjectsProcessed++
		p := it.point
		var sr geom.Rect
		if scheme.SRR {
			// SRR (Section 3.3.1): skip the object when every window it
			// generates is at least bound away; otherwise shrink SR_p.
			b := bound()
			sr = geom.ShrinkSearchRegion(q, p, l, w, b)
			if sr.IsEmpty() {
				st.ObjectsSkipped++
				rec.Count(trace.CtrSRRSkips, 1)
				rec.Enter(trace.PhaseDescent)
				continue
			}
			if !math.IsInf(b, 1) {
				rec.Count(trace.CtrSRRShrinks, 1)
			}
		} else {
			sr = geom.SearchRegion(q, p, l, w)
		}
		// DEP window-query cancellation: a search region that cannot
		// hold n objects generates no qualified window.
		if scheme.DEP {
			st.GridProbes++
			if e.density.PrunesRect(sr, n) {
				st.ObjectsSkipped++
				rec.Count(trace.CtrDEPSkippedObjects, 1)
				rec.Enter(trace.PhaseDescent)
				continue
			}
		}
		st.WindowQueries++
		sc.buf = sc.buf[:0]
		collect := func(cp geom.Point) bool {
			sc.buf = append(sc.buf, cp)
			return true
		}
		rec.Enter(trace.PhaseWindowEnum)
		if scheme.IWP {
			err = e.iwpIdx.WindowQuery(r, it.id, sr, collect)
		} else {
			err = r.Search(sr, collect)
		}
		if err != nil {
			return st, err
		}
		rec.Candidates(len(sc.buf))
		rec.Enter(trace.PhaseVerify)
		e.evaluateWindows(qy, p, sc, measure, bound, emit, &st, rec)
		rec.Enter(trace.PhaseDescent)
	}
	return st, nil
}

// evaluateWindows enumerates the candidate windows generated by anchor
// object p from the candidates returned by its window query (sc.buf),
// following Section 3.2: p sits on the quadrant-appropriate vertical
// edge and each candidate object on the appropriate horizontal edge. A
// sliding two-pointer over the y-sorted candidates counts each window's
// population in amortised constant time. sc also supplies the Fenwick
// and selection scratch, reused across anchors and queries.
func (e *Engine) evaluateWindows(qy Query, p geom.Point, sc *searchScratch, measure Measure, bound func() float64, emit func(Group), st *Stats, rec *trace.Recorder) {
	cands := sc.buf
	q, l, w, n := qy.Q, qy.L, qy.W, qy.N
	// Every candidate window generated by p shares its x-interval; only
	// objects inside it can be window contents or horizontal anchors.
	var xlo, xhi float64
	if geom.OnRightEdge(q, p) {
		xlo, xhi = p.X-l, p.X
	} else {
		xlo, xhi = p.X, p.X+l
	}
	s := cands[:0] // filter in place; cands is the caller's scratch buffer
	for _, c := range cands {
		if c.X >= xlo && c.X <= xhi {
			s = append(s, c)
		}
	}
	if len(s) < n {
		return
	}
	top := geom.AnchorsTopEdge(q, p)
	if top {
		slices.SortFunc(s, func(a, b geom.Point) int {
			switch {
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			default:
				return 0
			}
		})
	} else {
		slices.SortFunc(s, func(a, b geom.Point) int {
			switch {
			case a.Y > b.Y:
				return -1
			case a.Y < b.Y:
				return 1
			default:
				return 0
			}
		})
	}
	// Order-statistic tracking of the sliding window's object distances:
	// it yields each window's exact group distance in O(log s), so the
	// group's object list is materialised only when it can actually beat
	// the bound. MeasureWindow needs no object distances.
	// For small candidate sets the per-anchor setup outweighs the
	// per-window savings; evaluate those directly.
	const fenwickThreshold = 96
	var fen *distStats
	var ranks []int
	if measure != MeasureWindow && len(s) >= fenwickThreshold {
		d2 := sc.floats(len(s))
		for i, c := range s {
			d2[i] = c.Dist2(q)
		}
		fen = &sc.fen
		fen.reset(d2)
		ranks = sc.ints(len(s))
		for i, v := range d2 {
			ranks[i] = fen.rankOf(v)
		}
	}
	// gateSlack keeps the O(log s) gate conservative: the gate value and
	// the authoritative groupDist recomputation may differ by a few ulps
	// (sqrt-of-sum vs hypot), and a borderline group must never be lost.
	const gateSlack = 1 + 1e-9

	lo := 0
	for i, o := range s {
		if fen != nil {
			fen.add(ranks[i])
		}
		// Horizontal anchors on the wrong side of p generate windows
		// that would not contain p; skip them (Section 3.2).
		if top && o.Y < p.Y || !top && o.Y > p.Y {
			continue
		}
		// Partners sharing a y coordinate generate the same window;
		// evaluate it only at the last duplicate, where the content
		// prefix s[lo..i] is complete. Evaluating earlier would emit
		// groups that are not the window's n closest objects.
		if i+1 < len(s) && s[i+1].Y == o.Y {
			continue
		}
		// Window y-interval: [o.Y-w, o.Y] for top anchors, [o.Y, o.Y+w]
		// for bottom anchors. Contents are s[lo..i].
		if top {
			for s[lo].Y < o.Y-w {
				if fen != nil {
					fen.remove(ranks[lo])
				}
				lo++
			}
		} else {
			for s[lo].Y > o.Y+w {
				if fen != nil {
					fen.remove(ranks[lo])
				}
				lo++
			}
		}
		st.CandidateWindows++
		if i-lo+1 < n {
			continue
		}
		st.QualifiedWindows++
		win := geom.CandidateWindow(q, p, o, l, w)
		b := bound()
		finiteBound := !math.IsInf(b, 1)
		if finiteBound && win.MinDist2(q) >= b*b {
			continue
		}
		// Exact-distance gate: skip materialising groups that cannot
		// beat the bound. Emitting a non-improving group would be
		// harmless (both NWC and kNWC re-check), so the gate errs on
		// the permissive side.
		if fen != nil && finiteBound {
			switch measure {
			case MeasureMax:
				if fen.kthD2(n) > b*b*gateSlack {
					continue
				}
			case MeasureMin:
				if fen.kthD2(1) > b*b*gateSlack {
					continue
				}
			case MeasureAvg:
				if fen.sumSmallest(n)/float64(n) > b*gateSlack {
					continue
				}
			}
		}
		objs := nClosestScratch(q, s[lo:i+1], n, sc)
		rec.Count(trace.CtrGroupsEmitted, 1)
		emit(Group{
			Objects: objs,
			Dist:    groupDist(q, objs, win, measure),
			Window:  win,
		})
	}
}
