package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nwcq/internal/geom"
)

// referenceWindow mirrors distStats with a plain slice for oracle
// comparison.
type referenceWindow struct {
	d2s []float64
}

func (r *referenceWindow) add(d2 float64) { r.d2s = append(r.d2s, d2) }
func (r *referenceWindow) remove(d2 float64) {
	for i, v := range r.d2s {
		if v == d2 {
			r.d2s = append(r.d2s[:i], r.d2s[i+1:]...)
			return
		}
	}
	panic("remove of absent value")
}

func (r *referenceWindow) kthD2(k int) float64 {
	cp := append([]float64(nil), r.d2s...)
	sort.Float64s(cp)
	return cp[k-1]
}

func (r *referenceWindow) sumSmallest(k int) float64 {
	cp := append([]float64(nil), r.d2s...)
	sort.Float64s(cp)
	s := 0.0
	for _, v := range cp[:k] {
		s += math.Sqrt(v)
	}
	return s
}

func TestDistStatsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(200)
		all := make([]float64, n)
		for i := range all {
			v := rng.Float64() * 100
			if rng.Intn(4) == 0 && i > 0 {
				v = all[rng.Intn(i)] // duplicates
			}
			all[i] = v
		}
		fen := newDistStats(all)
		ref := &referenceWindow{}
		present := make([]bool, n)
		ops := 0
		for ops < 2000 {
			ops++
			i := rng.Intn(n)
			if present[i] {
				fen.remove(fen.rankOf(all[i]))
				ref.remove(all[i])
				present[i] = false
			} else {
				fen.add(fen.rankOf(all[i]))
				ref.add(all[i])
				present[i] = true
			}
			if fen.total != len(ref.d2s) {
				t.Fatalf("total %d, reference %d", fen.total, len(ref.d2s))
			}
			if fen.total == 0 {
				continue
			}
			k := 1 + rng.Intn(fen.total)
			if got, want := fen.kthD2(k), ref.kthD2(k); got != want {
				t.Fatalf("kthD2(%d) = %g, want %g", k, got, want)
			}
			if got, want := fen.sumSmallest(k), ref.sumSmallest(k); math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("sumSmallest(%d) = %g, want %g", k, got, want)
			}
		}
	}
}

func TestDistStatsQuickProperty(t *testing.T) {
	prop := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			vals[i] = math.Mod(math.Abs(v), 1e6)
		}
		fen := newDistStats(vals)
		for _, v := range vals {
			fen.add(fen.rankOf(v))
		}
		k := int(kRaw)%len(vals) + 1
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if fen.kthD2(k) != sorted[k-1] {
			return false
		}
		want := 0.0
		for _, v := range sorted[:k] {
			want += math.Sqrt(v)
		}
		got := fen.sumSmallest(k)
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickselect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		s := make([]distPoint, n)
		for i := range s {
			d := rng.Float64() * 10
			if rng.Intn(5) == 0 && i > 0 {
				d = s[rng.Intn(i)].d2 // ties
			}
			s[i] = distPoint{d2: d, p: genPoints(rng, 1, false)[0]}
		}
		k := 1 + rng.Intn(n)
		cp := make([]distPoint, n)
		copy(cp, s)
		quickselect(cp, k)
		// Every element in cp[:k] must be ≤ every element in cp[k:].
		maxLeft := cp[0]
		for _, v := range cp[:k] {
			if distLess(maxLeft, v) {
				maxLeft = v
			}
		}
		for _, v := range cp[k:] {
			if distLess(v, maxLeft) {
				t.Fatalf("quickselect violated partition at k=%d", k)
			}
		}
		// Multiset preserved.
		sum := func(vs []distPoint) float64 {
			total := 0.0
			for _, v := range vs {
				total += v.d2
			}
			return total
		}
		if math.Abs(sum(cp)-sum(s)) > 1e-9 {
			t.Fatal("quickselect altered the multiset")
		}
	}
}

func TestNClosestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		pts := genPoints(rng, 1+rng.Intn(150), trial%2 == 0)
		q := pts[rng.Intn(len(pts))]
		n := 1 + rng.Intn(len(pts)+3) // may exceed len
		got := nClosest(q, pts, n)
		want := append([]geom.Point(nil), pts...)
		sort.Slice(want, func(a, b int) bool {
			return distLess(distPoint{d2: want[a].Dist2(q), p: want[a]},
				distPoint{d2: want[b].Dist2(q), p: want[b]})
		})
		wantN := n
		if wantN > len(want) {
			wantN = len(want)
		}
		if len(got) != wantN {
			t.Fatalf("nClosest returned %d, want %d", len(got), wantN)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rank %d: %v, want %v", i, got[i], want[i])
			}
		}
	}
}
