package core

import (
	"math"
	"math/rand"
	"testing"

	"nwcq/internal/geom"
)

// knwcSchemes are the two kNWC schemes the paper evaluates (Section
// 5.5), plus plain NWC as a pruning-free reference.
var knwcSchemes = []Scheme{SchemeNWC, SchemeNWCPlus, SchemeNWCStar}

// checkDefinition3 verifies the four criteria of Definition 3 for the
// returned groups against the exhaustive candidate universe.
func checkDefinition3(t *testing.T, pts []geom.Point, qy KNWCQuery, measure Measure, groups []Group, label string) {
	t.Helper()
	const eps = 1e-9
	// Criterion 1: each group is n objects inside an l × w window.
	for gi, g := range groups {
		if len(g.Objects) != qy.N {
			t.Fatalf("%s: group %d has %d objects, want %d", label, gi, len(g.Objects), qy.N)
		}
		if g.Window.Width() > qy.L+eps || g.Window.Height() > qy.W+eps {
			t.Fatalf("%s: group %d window %v exceeds %g x %g", label, gi, g.Window, qy.L, qy.W)
		}
		for _, o := range g.Objects {
			if !g.Window.ContainsPoint(o) {
				t.Fatalf("%s: group %d object %v outside window %v", label, gi, o, g.Window)
			}
		}
		if d := groupDist(qy.Q, g.Objects, g.Window, measure); math.Abs(d-g.Dist) > eps {
			t.Fatalf("%s: group %d dist %g, recomputed %g", label, gi, g.Dist, d)
		}
	}
	// Criterion 2: pairwise overlap within m (identical sets banned).
	for i := range groups {
		for j := i + 1; j < len(groups); j++ {
			ov := groups[i].OverlapCount(groups[j])
			if ov > qy.M {
				t.Fatalf("%s: groups %d,%d share %d objects > m=%d", label, i, j, ov, qy.M)
			}
			if ov == qy.N {
				t.Fatalf("%s: groups %d,%d identical", label, i, j)
			}
		}
	}
	// Criterion 3: ascending distance order.
	for i := 1; i < len(groups); i++ {
		if groups[i].Dist < groups[i-1].Dist-eps {
			t.Fatalf("%s: groups out of order at %d: %g < %g", label, i, groups[i].Dist, groups[i-1].Dist)
		}
	}
	// Criterion 4 over the candidate universe: every candidate group
	// must be either at least as far as the k-th result, or blocked by a
	// closer-or-equal result group with overlap > m (or be one of the
	// results / an identical twin of one).
	if len(groups) < qy.K {
		// The list never filled; criterion 4 degenerates to "every
		// candidate is blocked or present".
	}
	distK := math.Inf(1)
	if len(groups) == qy.K {
		distK = groups[qy.K-1].Dist
	}
	for _, cand := range CandidateGroups(pts, qy.Query, measure) {
		if cand.Dist >= distK-eps {
			continue // condition 1 of criterion 4
		}
		blocked := false
		for _, g := range groups {
			if g.Dist <= cand.Dist+eps {
				ov := g.OverlapCount(cand)
				if ov > qy.M || ov == qy.N {
					blocked = true
					break
				}
			}
		}
		if !blocked {
			t.Fatalf("%s: candidate dist=%g objects=%v neither returned nor blocked (distK=%g, returned %d groups)",
				label, cand.Dist, cand.Objects, distK, len(groups))
		}
	}
}

func TestKNWCSatisfiesDefinition3(t *testing.T) {
	configs := []struct {
		n         int
		clustered bool
		seed      int64
	}{
		{12, false, 1}, {25, true, 2}, {40, false, 3}, {40, true, 4}, {70, true, 5},
	}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(cfg.seed))
		pts := genPoints(rng, cfg.n, cfg.clustered)
		eng := buildEngine(t, pts, 4, 50)
		for trial := 0; trial < 5; trial++ {
			qy := KNWCQuery{
				Query: Query{
					Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
					L: rng.Float64()*120 + 5,
					W: rng.Float64()*120 + 5,
					N: 1 + rng.Intn(4),
				},
				K: 1 + rng.Intn(4),
			}
			qy.M = rng.Intn(qy.N) // m < n keeps groups meaningfully distinct
			for _, measure := range allMeasures {
				for _, scheme := range knwcSchemes {
					groups, _, err := eng.KNWC(qy, scheme, measure)
					if err != nil {
						t.Fatal(err)
					}
					checkDefinition3(t, pts, qy, measure, groups,
						scheme.String()+"/"+measure.String())
				}
			}
		}
	}
}

// TestKNWCFirstGroupIsOptimal: the nearest group of a kNWC answer always
// matches the NWC optimum — it can never be displaced or pruned.
func TestKNWCFirstGroupIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := genPoints(rng, 60, true)
	eng := buildEngine(t, pts, 4, 50)
	for trial := 0; trial < 8; trial++ {
		qy := KNWCQuery{
			Query: Query{
				Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				L: rng.Float64()*100 + 5,
				W: rng.Float64()*100 + 5,
				N: 1 + rng.Intn(4),
			},
			K: 1 + rng.Intn(5),
		}
		qy.M = rng.Intn(qy.N)
		want := BruteForceNWC(pts, qy.Query, MeasureMax)
		for _, scheme := range knwcSchemes {
			groups, _, err := eng.KNWC(qy, scheme, MeasureMax)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Found {
				if len(groups) != 0 {
					t.Fatalf("scheme %v returned %d groups with no qualified window", scheme, len(groups))
				}
				continue
			}
			if len(groups) == 0 {
				t.Fatalf("scheme %v returned nothing, NWC optimum dist %g", scheme, want.Dist)
			}
			if math.Abs(groups[0].Dist-want.Dist) > 1e-9 {
				t.Fatalf("scheme %v first group dist %g, NWC optimum %g", scheme, groups[0].Dist, want.Dist)
			}
		}
	}
}

// TestKNWCMatchesGreedyReference compares full result distances against
// the greedy oracle: the pool-based maintenance is order-insensitive, so
// every scheme must reproduce the greedy selection exactly.
func TestKNWCMatchesGreedyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := genPoints(rng, 50, true)
	eng := buildEngine(t, pts, 4, 50)
	for trial := 0; trial < 12; trial++ {
		qy := KNWCQuery{
			Query: Query{
				Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				L: rng.Float64()*100 + 10,
				W: rng.Float64()*100 + 10,
				N: 1 + rng.Intn(3),
			},
			K: 1 + rng.Intn(4),
		}
		qy.M = rng.Intn(qy.N)
		for _, measure := range allMeasures {
			want := BruteForceKNWC(pts, qy, measure)
			for _, scheme := range knwcSchemes {
				got, _, err := eng.KNWC(qy, scheme, measure)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("scheme %v measure %v qy %+v: %d groups, greedy has %d",
						scheme, measure, qy, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("scheme %v measure %v qy %+v: group %d dist %g, greedy %g",
							scheme, measure, qy, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestKNWCK1EqualsNWC(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := genPoints(rng, 2000, true)
	eng := buildEngine(t, pts, 10, 25)
	for trial := 0; trial < 6; trial++ {
		q := Query{
			Q: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			L: rng.Float64()*30 + 5,
			W: rng.Float64()*30 + 5,
			N: 1 + rng.Intn(6),
		}
		nwc, _, err := eng.NWC(q, SchemeNWCStar, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		groups, _, err := eng.KNWC(KNWCQuery{Query: q, K: 1, M: 0}, SchemeNWCStar, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		if nwc.Found != (len(groups) == 1) {
			t.Fatalf("k=1 found mismatch: NWC %v, kNWC %d groups", nwc.Found, len(groups))
		}
		if nwc.Found && math.Abs(groups[0].Dist-nwc.Dist) > 1e-9 {
			t.Fatalf("k=1 dist %g, NWC dist %g", groups[0].Dist, nwc.Dist)
		}
	}
}

func TestKNWCMoreGroupsCostMore(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := genPoints(rng, 4000, true)
	eng := buildEngine(t, pts, 16, 25)
	q := Query{Q: geom.Point{X: 500, Y: 500}, L: 20, W: 20, N: 4}
	var prev uint64
	for _, k := range []int{1, 4, 16} {
		_, st, err := eng.KNWC(KNWCQuery{Query: q, K: k, M: 1}, SchemeNWCStar, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		if st.NodeVisits < prev {
			t.Errorf("k=%d visits %d below k-smaller visits %d", k, st.NodeVisits, prev)
		}
		prev = st.NodeVisits
	}
}

func TestKNWCLargerMIsEasier(t *testing.T) {
	// Section 5.6: larger m admits more nearby groups, so the k-th
	// group's distance cannot grow with m.
	rng := rand.New(rand.NewSource(25))
	pts := genPoints(rng, 3000, true)
	eng := buildEngine(t, pts, 16, 25)
	q := Query{Q: geom.Point{X: 500, Y: 500}, L: 25, W: 25, N: 6}
	prevDist := math.Inf(1)
	first := true
	for _, m := range []int{5, 3, 1, 0} { // descending m
		groups, _, err := eng.KNWC(KNWCQuery{Query: q, K: 4, M: m}, SchemeNWCStar, MeasureMax)
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) == 0 {
			continue
		}
		last := groups[len(groups)-1].Dist
		if !first && last < prevDist-1e-9 {
			t.Errorf("m=%d last-group dist %g closer than larger-m dist %g", m, last, prevDist)
		}
		prevDist, first = last, false
	}
}

func TestKNWCValidation(t *testing.T) {
	eng := buildEngine(t, genPoints(rand.New(rand.NewSource(26)), 10, false), 8, 50)
	ok := Query{Q: geom.Point{X: 1, Y: 1}, L: 5, W: 5, N: 2}
	bad := []KNWCQuery{
		{Query: ok, K: 0, M: 0},
		{Query: ok, K: -3, M: 0},
		{Query: ok, K: 2, M: -1},
		{Query: Query{Q: geom.Point{}, L: 0, W: 5, N: 1}, K: 1, M: 0},
	}
	for _, qy := range bad {
		if _, _, err := eng.KNWC(qy, SchemeNWC, MeasureMax); err == nil {
			t.Errorf("kNWC query %+v accepted", qy)
		}
	}
	if _, _, err := eng.KNWC(KNWCQuery{Query: ok, K: 1, M: 0}, SchemeNWC, Measure(42)); err == nil {
		t.Error("invalid measure accepted")
	}
}

func TestKNWCPoolMaintenance(t *testing.T) {
	mk := func(dist float64, ids ...uint64) Group {
		g := Group{Dist: dist}
		for _, id := range ids {
			g.Objects = append(g.Objects, geom.Point{X: float64(id), Y: 0, ID: id})
		}
		return g
	}
	newState := func(k, m int) *knwcState {
		return &knwcState{k: k, m: m, index: make(map[string]int)}
	}
	// Eviction chain: B (mid) arrives, C (far, blocked by B under the
	// paper's Steps 1–5) arrives, then A (closest, overlapping B)
	// displaces B. The pool-based maintenance recovers C.
	s := newState(2, 0)
	s.insert(mk(5, 1, 2)) // B
	s.insert(mk(9, 2, 4)) // C overlaps B: blocked while B is accepted
	s.insert(mk(1, 1, 7)) // A overlaps B, evicts it from the greedy set
	got := s.result()
	if len(got) != 2 || got[0].Dist != 1 || got[1].Dist != 9 {
		t.Fatalf("groups after eviction chain: %+v", got)
	}
	// Exact duplicates collapse even when m >= n allows them.
	s = newState(3, 5)
	s.insert(mk(2, 1, 2))
	s.insert(mk(2, 1, 2))
	if got := s.result(); len(got) != 1 {
		t.Fatalf("duplicate group retained: %+v", got)
	}
	// Same object set through a closer window keeps the smaller
	// distance (MeasureWindow semantics).
	s = newState(2, 0)
	s.insert(mk(7, 1, 2))
	s.insert(mk(3, 1, 2))
	if got := s.result(); len(got) != 1 || got[0].Dist != 3 {
		t.Fatalf("min-dist dedup failed: %+v", got)
	}
	// A candidate farther than the full greedy list is ignored.
	s = newState(1, 0)
	s.insert(mk(1, 1))
	s.insert(mk(2, 2))
	if got := s.result(); len(got) != 1 || got[0].Dist != 1 {
		t.Fatalf("far candidate displaced the best: %+v", got)
	}
	if b := s.bound(); b != 1 {
		t.Fatalf("bound = %g, want 1", b)
	}
	// Overlap with a closer group blocks greedy acceptance.
	s = newState(3, 0)
	s.insert(mk(1, 1, 2))
	s.insert(mk(2, 2, 3))
	if got := s.result(); len(got) != 1 {
		t.Fatalf("overlap violation accepted: %+v", got)
	}
}

func TestKNWCPoolCompaction(t *testing.T) {
	s := &knwcState{k: 2, m: 0, index: make(map[string]int)}
	// Fill beyond the compaction limit with disjoint singleton groups.
	for i := 0; i < compactLimit+10; i++ {
		g := Group{
			Dist:    float64(i%97) + 1, // bounded distances so the bound stays small
			Objects: []geom.Point{{X: float64(i), Y: 0, ID: uint64(i)}},
		}
		s.insert(g)
	}
	if len(s.pool) > compactLimit {
		t.Fatalf("pool grew to %d entries, limit %d", len(s.pool), compactLimit)
	}
	got := s.result()
	if len(got) != 2 || got[0].Dist != 1 || got[1].Dist != 1 {
		t.Fatalf("compacted pool result: %+v", got)
	}
	// Index stays consistent after compaction.
	for key, pos := range s.index {
		if s.pool[pos].key != key {
			t.Fatal("index out of sync after compaction")
		}
	}
}
