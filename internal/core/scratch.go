package core

import (
	"sync"

	"nwcq/internal/geom"
)

// searchScratch bundles the per-query working memory of the NWC/kNWC
// traversal: the best-first heap, the window-query candidate buffer,
// the order-statistic setup arrays and the n-closest selection scratch.
// Queries borrow one from scratchPool so steady-state batch load (many
// queries across worker goroutines) stops allocating these on every
// call; everything handed to the caller (result groups, object lists)
// is still freshly allocated, so nothing escapes back into the pool.
type searchScratch struct {
	pq    pqueue
	buf   []geom.Point // window-query results / in-place x-filtered candidates
	d2    []float64    // squared distances feeding the Fenwick setup
	ranks []int        // candidate rank per index
	dp    []distPoint  // nClosest selection scratch
	fen   distStats    // Fenwick arrays, reset per anchor
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// scratchKeepCap bounds the capacity retained when a scratch is
// returned to the pool, so one pathological query (a window covering
// the whole dataset) does not pin its peak memory forever.
const scratchKeepCap = 1 << 16

func getScratch() *searchScratch {
	sc := scratchPool.Get().(*searchScratch)
	sc.pq = sc.pq[:0]
	sc.buf = sc.buf[:0]
	return sc
}

func putScratch(sc *searchScratch) {
	if cap(sc.pq) > scratchKeepCap {
		sc.pq = nil
	}
	if cap(sc.buf) > scratchKeepCap {
		sc.buf = nil
	}
	if cap(sc.d2) > scratchKeepCap {
		sc.d2 = nil
	}
	if cap(sc.ranks) > scratchKeepCap {
		sc.ranks = nil
	}
	if cap(sc.dp) > scratchKeepCap {
		sc.dp = nil
	}
	if cap(sc.fen.d2s) > scratchKeepCap {
		sc.fen = distStats{}
	}
	scratchPool.Put(sc)
}

// floats returns a length-n slice backed by sc.d2, reusing capacity.
func (sc *searchScratch) floats(n int) []float64 {
	if cap(sc.d2) < n {
		sc.d2 = make([]float64, n)
	}
	sc.d2 = sc.d2[:n]
	return sc.d2
}

// ints returns a length-n slice backed by sc.ranks, reusing capacity.
func (sc *searchScratch) ints(n int) []int {
	if cap(sc.ranks) < n {
		sc.ranks = make([]int, n)
	}
	sc.ranks = sc.ranks[:n]
	return sc.ranks
}

// distPoints returns a length-n slice backed by sc.dp, reusing capacity.
func (sc *searchScratch) distPoints(n int) []distPoint {
	if cap(sc.dp) < n {
		sc.dp = make([]distPoint, n)
	}
	sc.dp = sc.dp[:n]
	return sc.dp
}
