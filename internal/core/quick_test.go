package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/rstar"
)

// quickEngine builds a full engine from quick-generated raw values.
func quickEngine(pts []geom.Point) (*Engine, error) {
	tr, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: 4})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			return nil, err
		}
	}
	den, err := grid.New(geom.NewRect(0, 0, 1000, 1000), 40, pts)
	if err != nil {
		return nil, err
	}
	ix, err := iwp.Build(tr)
	if err != nil {
		return nil, err
	}
	return NewEngine(tr, den, ix)
}

func quickPts(raw []struct{ X, Y float64 }) []geom.Point {
	norm := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return math.Mod(math.Abs(v), 1000)
	}
	pts := make([]geom.Point, 0, len(raw))
	for i, r := range raw {
		pts = append(pts, geom.Point{X: norm(r.X), Y: norm(r.Y), ID: uint64(i)})
	}
	// Keep the brute-force oracle tractable.
	if len(pts) > 40 {
		pts = pts[:40]
	}
	return pts
}

// TestQuickNWCOptimality: for arbitrary point sets and query shapes,
// the fully optimised scheme matches the exhaustive oracle under every
// measure.
func TestQuickNWCOptimality(t *testing.T) {
	prop := func(raw []struct{ X, Y float64 }, qxr, qyr, lr, wr float64, nRaw uint8, mRaw uint8) bool {
		pts := quickPts(raw)
		eng, err := quickEngine(pts)
		if err != nil {
			return false
		}
		norm := func(v, span float64) float64 {
			if math.IsNaN(v) {
				return 1
			}
			return math.Mod(math.Abs(v), span)
		}
		qy := Query{
			Q: geom.Point{X: norm(qxr, 1200) - 100, Y: norm(qyr, 1200) - 100},
			L: norm(lr, 200) + 0.5,
			W: norm(wr, 200) + 0.5,
			N: int(nRaw%5) + 1,
		}
		measure := allMeasures[int(mRaw)%len(allMeasures)]
		want := BruteForceNWC(pts, qy, measure)
		got, _, err := eng.NWC(qy, SchemeNWCStar, measure)
		if err != nil {
			return false
		}
		if got.Found != want.Found {
			return false
		}
		if !got.Found {
			return true
		}
		return math.Abs(got.Dist-want.Dist) <= 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickSchemeEquivalence: any pair of schemes agrees on the optimal
// distance for arbitrary inputs.
func TestQuickSchemeEquivalence(t *testing.T) {
	prop := func(raw []struct{ X, Y float64 }, qxr, qyr, lr, wr float64, nRaw, sRaw uint8) bool {
		pts := quickPts(raw)
		eng, err := quickEngine(pts)
		if err != nil {
			return false
		}
		norm := func(v, span float64) float64 {
			if math.IsNaN(v) {
				return 1
			}
			return math.Mod(math.Abs(v), span)
		}
		qy := Query{
			Q: geom.Point{X: norm(qxr, 1000), Y: norm(qyr, 1000)},
			L: norm(lr, 300) + 0.5,
			W: norm(wr, 300) + 0.5,
			N: int(nRaw%6) + 1,
		}
		scheme := allSchemes[int(sRaw)%len(allSchemes)]
		base, _, err := eng.NWC(qy, SchemeNWC, MeasureMax)
		if err != nil {
			return false
		}
		got, _, err := eng.NWC(qy, scheme, MeasureMax)
		if err != nil {
			return false
		}
		if got.Found != base.Found {
			return false
		}
		return !got.Found || math.Abs(got.Dist-base.Dist) <= 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickKNWCDefinition: arbitrary kNWC queries return groups that
// satisfy the structural criteria of Definition 3 (n objects per
// window, pairwise overlap within m, ascending order).
func TestQuickKNWCStructure(t *testing.T) {
	prop := func(raw []struct{ X, Y float64 }, qxr, qyr, lr, wr float64, nRaw, kRaw, mRaw uint8) bool {
		pts := quickPts(raw)
		eng, err := quickEngine(pts)
		if err != nil {
			return false
		}
		norm := func(v, span float64) float64 {
			if math.IsNaN(v) {
				return 1
			}
			return math.Mod(math.Abs(v), span)
		}
		n := int(nRaw%4) + 1
		qy := KNWCQuery{
			Query: Query{
				Q: geom.Point{X: norm(qxr, 1000), Y: norm(qyr, 1000)},
				L: norm(lr, 250) + 0.5,
				W: norm(wr, 250) + 0.5,
				N: n,
			},
			K: int(kRaw%4) + 1,
			M: int(mRaw) % n,
		}
		groups, _, err := eng.KNWC(qy, SchemeNWCStar, MeasureMax)
		if err != nil {
			return false
		}
		const eps = 1e-9
		for i, g := range groups {
			if len(g.Objects) != n {
				return false
			}
			if g.Window.Width() > qy.L+eps || g.Window.Height() > qy.W+eps {
				return false
			}
			for _, o := range g.Objects {
				if !g.Window.ContainsPoint(o) {
					return false
				}
			}
			if i > 0 && g.Dist < groups[i-1].Dist-eps {
				return false
			}
			for j := i + 1; j < len(groups); j++ {
				if g.OverlapCount(groups[j]) > qy.M {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentReadQueries: a built engine answers NWC queries from
// many goroutines concurrently (reads only) without races; run under
// -race in CI.
func TestConcurrentReadQueries(t *testing.T) {
	pts := genPoints(rand.New(rand.NewSource(99)), 2000, true)
	eng := buildEngine(t, pts, 10, 25)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := Query{
					Q: geom.Point{X: float64((seed*37 + i*211) % 1000), Y: float64((seed*91 + i*53) % 1000)},
					L: 30, W: 30, N: 4,
				}
				if _, _, err := eng.NWC(q, SchemeNWCPlus, MeasureMax); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
