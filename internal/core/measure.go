package core

import (
	"math"
	"slices"

	"nwcq/internal/geom"
)

// groupDist computes the distance between q and objs (which must already
// be the n objects chosen from a window win) under measure m. For
// MeasureWindow the value is MINDIST(q, win): the engine keeps the
// minimum over every qualified window it sees containing a better group,
// which realises Equation (4)'s minimum over all qualified windows.
func groupDist(q geom.Point, objs []geom.Point, win geom.Rect, m Measure) float64 {
	switch m {
	case MeasureMin:
		best := math.Inf(1)
		for _, p := range objs {
			if d := q.Dist(p); d < best {
				best = d
			}
		}
		return best
	case MeasureAvg:
		sum := 0.0
		for _, p := range objs {
			sum += q.Dist(p)
		}
		return sum / float64(len(objs))
	case MeasureWindow:
		return win.MinDist(q)
	default: // MeasureMax
		worst := 0.0
		for _, p := range objs {
			if d := q.Dist(p); d > worst {
				worst = d
			}
		}
		return worst
	}
}

// distOrder is the deterministic object ordering used to pick the n
// closest objects of a window: by squared distance, then coordinates,
// then ID, so every scheme returns identical groups regardless of
// discovery order.
type distPoint struct {
	d2 float64
	p  geom.Point
}

func distLess(a, b distPoint) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	if a.p.X != b.p.X {
		return a.p.X < b.p.X
	}
	if a.p.Y != b.p.Y {
		return a.p.Y < b.p.Y
	}
	return a.p.ID < b.p.ID
}

// nClosest returns the n objects of pts closest to q in ascending
// distance order (all of them if n ≥ len(pts)), breaking distance ties
// deterministically. pts is not modified. The selection runs in
// O(len(pts) + n log n) expected time via quickselect — this sits on the
// hot path of window evaluation.
func nClosest(q geom.Point, pts []geom.Point, n int) []geom.Point {
	return nClosestScratch(q, pts, n, nil)
}

// nClosestScratch is nClosest drawing its selection buffer from sc (nil
// allocates fresh, as callers off the query path do). The returned
// slice is always freshly allocated — it ends up in result groups and
// must not alias pooled memory.
func nClosestScratch(q geom.Point, pts []geom.Point, n int, sc *searchScratch) []geom.Point {
	if n > len(pts) {
		n = len(pts)
	}
	var scratch []distPoint
	if sc != nil {
		scratch = sc.distPoints(len(pts))
	} else {
		scratch = make([]distPoint, len(pts))
	}
	for i, p := range pts {
		scratch[i] = distPoint{d2: p.Dist2(q), p: p}
	}
	quickselect(scratch, n)
	top := scratch[:n]
	slices.SortFunc(top, func(a, b distPoint) int {
		if distLess(a, b) {
			return -1
		}
		if distLess(b, a) {
			return 1
		}
		return 0
	})
	out := make([]geom.Point, n)
	for i, dp := range top {
		out[i] = dp.p
	}
	return out
}

// quickselect partitions s so that the k smallest elements under
// distLess occupy s[:k] (unordered). Median-of-three pivoting keeps the
// expected cost linear and behaves well on the nearly-sorted inputs the
// engine produces.
func quickselect(s []distPoint, k int) {
	lo, hi := 0, len(s)
	for hi-lo > 1 && k > lo && k < hi {
		p := medianOfThree(s, lo, hi)
		i, j := lo, hi-1
		for i <= j {
			for distLess(s[i], p) {
				i++
			}
			for distLess(p, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// s[lo..j] ≤ pivot ≤ s[i..hi).
		switch {
		case k <= j+1:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return // k lands in the pivot band; done
		}
	}
}

func medianOfThree(s []distPoint, lo, hi int) distPoint {
	a, b, c := s[lo], s[(lo+hi)/2], s[hi-1]
	if distLess(b, a) {
		a, b = b, a
	}
	if distLess(c, b) {
		b = c
		if distLess(b, a) {
			b = a
		}
	}
	return b
}
