package qcache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitAfterDo(t *testing.T) {
	c := New[int, string](8)
	ctx := context.Background()
	v, err := c.Do(ctx, 1, 42, func() (string, error) { return "answer", nil })
	if err != nil || v != "answer" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if v, ok := c.Get(1, 42); !ok || v != "answer" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGenerationAdvanceInvalidates(t *testing.T) {
	c := New[int, string](8)
	ctx := context.Background()
	if _, err := c.Do(ctx, 1, 1, func() (string, error) { return "old", nil }); err != nil {
		t.Fatal(err)
	}
	// A reader at a newer generation must never see the old entry.
	if _, ok := c.Get(2, 1); ok {
		t.Fatal("stale hit across a generation advance")
	}
	v, err := c.Do(ctx, 2, 1, func() (string, error) { return "new", nil })
	if err != nil || v != "new" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestOldGenerationBypasses(t *testing.T) {
	c := New[int, string](8)
	ctx := context.Background()
	if _, err := c.Do(ctx, 5, 1, func() (string, error) { return "gen5", nil }); err != nil {
		t.Fatal(err)
	}
	// A delayed reader of a superseded generation computes uncached: it
	// must neither read the newer entry nor replace it.
	v, err := c.Do(ctx, 3, 1, func() (string, error) { return "gen3", nil })
	if err != nil || v != "gen3" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if v, ok := c.Get(5, 1); !ok || v != "gen5" {
		t.Fatalf("newer entry poisoned: %q, %v", v, ok)
	}
	if _, ok := c.Get(3, 1); ok {
		t.Fatal("old-generation Get hit a newer map")
	}
}

func TestCoalescing(t *testing.T) {
	c := New[int, int](8)
	ctx := context.Background()
	const waiters = 8
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	go func() {
		_, _ = c.Do(ctx, 1, 7, func() (int, error) {
			close(started)
			<-release
			calls.Add(1)
			return 99, nil
		})
	}()
	<-started
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(ctx, 1, 7, func() (int, error) {
				calls.Add(1)
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Release the leader only after every waiter has joined the flight,
	// so all of them provably coalesced rather than hitting the landed
	// entry.
	for c.Stats().Coalesced < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != 99 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalesced lookups recorded: %+v", st)
	}
}

func TestLeaderErrorNotCached(t *testing.T) {
	c := New[int, int](8)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := c.Do(ctx, 1, 3, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get(1, 3); ok {
		t.Fatal("failed computation was cached")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after failed flight", st.Entries)
	}
	// The next Do recomputes and caches normally.
	v, err := c.Do(ctx, 1, 3, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("Do = %d, %v", v, err)
	}
}

func TestWaiterRecomputesOnLeaderFailure(t *testing.T) {
	c := New[int, int](8)
	ctx := context.Background()
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = c.Do(ctx, 1, 1, func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started
	done := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(done)
		v, err = c.Do(ctx, 1, 1, func() (int, error) { return 42, nil })
	}()
	close(release)
	<-done
	if err != nil || v != 42 {
		t.Fatalf("waiter fallback = %d, %v", v, err)
	}
}

func TestWaiterAbandonsOnContextCancel(t *testing.T) {
	c := New[int, int](8)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = c.Do(context.Background(), 1, 1, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, 1, 1, func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestCapacityEviction(t *testing.T) {
	c := New[int, int](2)
	ctx := context.Background()
	for k := 0; k < 5; k++ {
		if _, err := c.Do(ctx, 1, k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 2 {
		t.Fatalf("entries = %d, capacity 2", st.Entries)
	}
}

func TestGetZeroAlloc(t *testing.T) {
	c := New[int, int](8)
	if _, err := c.Do(context.Background(), 1, 1, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get(1, 1); !ok {
			t.Fatal("miss on warm cache")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %.1f per hit, want 0", allocs)
	}
}

func TestConcurrentGenerationChurn(t *testing.T) {
	// Hammer Do/Get across advancing generations; run with -race. The
	// invariant checked is that a value cached at generation g is never
	// served at a later generation.
	c := New[int, uint64](16)
	ctx := context.Background()
	var gen atomic.Uint64
	gen.Store(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g := gen.Load()
				if v, ok := c.Get(g, 1); ok && v > g {
					// Values encode the generation they were computed at; a
					// cached value from a *newer* generation is fine for a
					// lagging reader (see syncGen), but the map can only be
					// at most at our generation in that case. v < g means a
					// stale entry survived an advance.
					panic("impossible: newer value at older map generation")
				} else if ok && v < g {
					panic("stale generation served")
				}
				_, _ = c.Do(ctx, g, 1, func() (uint64, error) { return g, nil })
				if i%50 == 0 {
					gen.Add(1)
				}
			}
		}()
	}
	wg.Wait()
}
