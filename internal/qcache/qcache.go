// Package qcache implements the single-flight, generation-keyed query
// result cache behind WithResultCache and shard.Options.ResultCache.
//
// The design leans entirely on the index's RCU view publication (PR 4):
// views are immutable and swapped in atomically, so a query result is
// valid exactly until the next publish. Each publish bumps a monotone
// generation counter; the cache stores the generation its entries were
// computed under and compares it on every access — invalidation is one
// integer compare, with the whole map dropped lazily on first access at
// a newer generation. Entries are the result values themselves, so a
// hit copies nothing and allocates nothing.
//
// Duplicate concurrent lookups of the same key coalesce: the first
// caller computes (the leader), the rest wait on the flight's channel
// and share its value. A leader error is never cached — waiters fall
// back to computing for themselves, uncached, since the error may be
// private to the leader's context.
package qcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time copy of a cache's counters.
type Stats struct {
	// Hits served a stored value; Misses computed one (or bypassed a
	// stale generation); Coalesced waited on another caller's in-flight
	// computation instead of duplicating it.
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	// Invalidations counts generation advances that dropped a non-empty
	// map.
	Invalidations uint64
	// Entries is the current population (including in-flight leaders).
	Entries int
}

// entry is one cache slot: a completed value, or an in-flight
// computation other callers wait on.
type entry[V any] struct {
	done chan struct{} // closed when the flight lands
	// landed/val/ok are written under the cache mutex before done is
	// closed; map readers check landed under the mutex, channel waiters
	// read after <-done. ok is false when the leader failed (the entry
	// is then already removed from the map).
	landed bool
	val    V
	ok     bool
}

// Cache is a single-flight result cache over one generation counter.
// The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	capacity int

	mu  sync.Mutex
	gen uint64
	m   map[K]*entry[V]

	hits, misses, coalesced, invalidations atomic.Uint64
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{capacity: capacity, m: make(map[K]*entry[V], capacity)}
}

// syncGen aligns the map with the caller's generation, reporting
// whether the caller may use it. Callers hold mu.
//
// A caller ahead of the map (gen > c.gen) resets it: every stored entry
// predates a publish the caller has observed. A caller *behind* the map
// (gen < c.gen) is a delayed reader of a superseded view; it must not
// read newer entries as its own nor poison the newer map with its
// older-generation result, so it bypasses the cache entirely.
func (c *Cache[K, V]) syncGen(gen uint64) bool {
	if gen == c.gen {
		return true
	}
	if gen < c.gen {
		return false
	}
	if len(c.m) > 0 {
		c.invalidations.Add(1)
		clear(c.m)
	}
	c.gen = gen
	return true
}

// Get is the zero-allocation hit path: it returns the value stored for
// k at generation gen, if one is present and landed. It never waits and
// never counts a miss — callers follow up with Do, which does both.
func (c *Cache[K, V]) Get(gen uint64, k K) (v V, ok bool) {
	c.mu.Lock()
	if c.syncGen(gen) {
		if e := c.m[k]; e != nil && e.landed {
			v, ok = e.val, true
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// Do returns the value for k at generation gen, computing it with fn on
// a miss. Concurrent Dos for one key coalesce onto a single fn call;
// waiters abandon the wait (but not the leader) when ctx is done. A gen
// older than the cache's computes uncached. fn errors are returned to
// the leader and never cached.
func (c *Cache[K, V]) Do(ctx context.Context, gen uint64, k K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if !c.syncGen(gen) {
		c.mu.Unlock()
		c.misses.Add(1)
		return fn()
	}
	if e := c.m[k]; e != nil {
		if e.landed {
			v := e.val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, nil
		}
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-e.done:
			if e.ok {
				return e.val, nil
			}
			// The leader failed; its error may belong to its own context.
			// Compute independently, uncached.
			return fn()
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	if len(c.m) >= c.capacity {
		c.evictLocked()
	}
	c.m[k] = e
	c.mu.Unlock()

	c.misses.Add(1)
	v, err := fn()

	c.mu.Lock()
	e.val, e.ok, e.landed = v, err == nil, true
	// A generation advance while computing cleared the map (and any
	// newer flight owns the key now); only unlink our own failed entry.
	if err != nil && c.m[k] == e {
		delete(c.m, k)
	}
	c.mu.Unlock()
	close(e.done)
	return v, err
}

// evictLocked frees one slot, preferring a landed entry over an
// in-flight one (evicting a flight is harmless — its leader still
// completes and wakes its waiters — but wastes the coalescing).
// Callers hold mu.
func (c *Cache[K, V]) evictLocked() {
	var fallback K
	haveFallback := false
	for k, e := range c.m {
		if e.landed {
			delete(c.m, k)
			return
		}
		fallback, haveFallback = k, true
	}
	if haveFallback {
		delete(c.m, fallback)
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	entries := len(c.m)
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       entries,
	}
}

// Add merges two stats snapshots (summing counters), for frontends
// aggregating an NWC and a kNWC cache into one report.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Invalidations += o.Invalidations
	s.Entries += o.Entries
	return s
}
