package pager

import "container/list"

// lru is a fixed-capacity least-recently-used page cache. A capacity of
// zero disables caching entirely. Values are defensive copies so cached
// pages cannot be mutated by callers.
type lru struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[PageID]*list.Element
}

type lruEntry struct {
	id  PageID
	buf []byte
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[PageID]*list.Element),
	}
}

func (c *lru) get(id PageID) ([]byte, bool) {
	if c.cap == 0 {
		return nil, false
	}
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, true
}

func (c *lru) put(id PageID, buf []byte) {
	if c.cap == 0 {
		return
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	if el, ok := c.entries[id]; ok {
		el.Value.(*lruEntry).buf = cp
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&lruEntry{id: id, buf: cp})
	c.entries[id] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).id)
	}
}

func (c *lru) drop(id PageID) {
	if el, ok := c.entries[id]; ok {
		c.order.Remove(el)
		delete(c.entries, id)
	}
}

func (c *lru) len() int { return c.order.Len() }
