package pager

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestStore(t *testing.T, cache int) (*Store, *MemFile) {
	t.Helper()
	f := NewMemFile()
	s, err := Create(f, Options{CacheSize: cache})
	if err != nil {
		t.Fatal(err)
	}
	return s, f
}

func TestAllocateReadWrite(t *testing.T) {
	s, _ := newTestStore(t, 0)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("allocated invalid page")
	}
	payload := []byte("hello pages")
	if err := s.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("read back %q, want %q", got[:len(payload)], payload)
	}
	if len(got) != PayloadSize() {
		t.Fatalf("payload length %d, want %d", len(got), PayloadSize())
	}
}

func TestHeaderPageProtected(t *testing.T) {
	s, _ := newTestStore(t, 0)
	if err := s.Write(0, []byte("x")); !errors.Is(err, ErrPageRange) {
		t.Errorf("writing header page: err = %v, want ErrPageRange", err)
	}
	if _, err := s.Read(0); !errors.Is(err, ErrPageRange) {
		t.Errorf("reading header page: err = %v, want ErrPageRange", err)
	}
	if _, err := s.Read(999); !errors.Is(err, ErrPageRange) {
		t.Errorf("reading past EOF: err = %v, want ErrPageRange", err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	s, _ := newTestStore(t, 0)
	id, _ := s.Allocate()
	if err := s.Write(id, make([]byte, PageSize)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestFreeListReuse(t *testing.T) {
	s, _ := newTestStore(t, 0)
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	c, _ := s.Allocate()
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse: a then b.
	r1, _ := s.Allocate()
	r2, _ := s.Allocate()
	if r1 != a || r2 != b {
		t.Errorf("reused %d,%d; want %d,%d", r1, r2, a, b)
	}
	r3, _ := s.Allocate()
	if r3 != c+1 {
		t.Errorf("fresh page %d, want %d", r3, c+1)
	}
	st := s.Stats()
	if st.Frees != 2 || st.Allocs != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	f := NewMemFile()
	s, err := Create(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	rng := rand.New(rand.NewSource(7))
	contents := map[PageID][]byte{}
	for i := 0; i < 50; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, rng.Intn(PayloadSize()))
		rng.Read(buf)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		contents[id] = buf
	}
	if err := s.SetUserRoot(ids[3], []byte("tree-meta")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root, meta := reopened.UserRoot()
	if root != ids[3] {
		t.Errorf("user root %d, want %d", root, ids[3])
	}
	if !bytes.Equal(meta[:9], []byte("tree-meta")) {
		t.Errorf("user meta %q", meta[:9])
	}
	for id, want := range contents {
		got, err := reopened.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("page %d content mismatch", id)
		}
	}
	if reopened.NumPages() != s.NumPages() {
		t.Errorf("NumPages %d, want %d", reopened.NumPages(), s.NumPages())
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := NewMemFile()
	s, err := Create(f, Options{}) // no cache: reads must hit the file
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("precious data")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the page's on-disk image.
	off := int64(id)*PageSize + 5
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted read err = %v, want ErrChecksum", err)
	}
}

func TestHeaderCorruptionRejectedOnOpen(t *testing.T) {
	f := NewMemFile()
	if _, err := Create(f, Options{}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 9); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], 9); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, Options{}); !errors.Is(err, ErrChecksum) {
		t.Errorf("open corrupted header err = %v, want ErrChecksum", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	f := NewMemFile()
	garbage := make([]byte, PageSize)
	for i := range garbage {
		garbage[i] = byte(i)
	}
	if _, err := f.WriteAt(garbage, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, Options{}); err == nil {
		t.Error("opened garbage file without error")
	}
}

func TestCacheHits(t *testing.T) {
	s, _ := newTestStore(t, 8)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("cached")); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	for i := 0; i < 5; i++ {
		if _, err := s.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reads != 0 {
		t.Errorf("physical reads = %d, want 0 (write-through cache)", st.Reads)
	}
	if st.CacheHits != 5 {
		t.Errorf("cache hits = %d, want 5", st.CacheHits)
	}
}

func TestCacheEviction(t *testing.T) {
	s, _ := newTestStore(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := s.Allocate()
		s.Write(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	s.ResetStats()
	// Only the two most recent pages are cached.
	if _, err := s.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 1 || st.CacheHits != 0 {
		t.Errorf("stats after cold read = %+v", st)
	}
	if _, err := s.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("stats after warm read = %+v", st)
	}
}

// TestFrameStableAcrossWrite pins down the zero-copy ownership
// contract: Read returns a shared immutable frame, and a later Write
// installs a fresh frame instead of mutating the old one, so slices
// handed out earlier keep their contents.
func TestFrameStableAcrossWrite(t *testing.T) {
	s, _ := newTestStore(t, 4)
	id, _ := s.Allocate()
	s.Write(id, []byte("immutable"))
	old, _ := s.Read(id)
	if err := s.Write(id, []byte("replaced!")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old[:9], []byte("immutable")) {
		t.Errorf("earlier frame mutated by write: %q", old[:9])
	}
	fresh, _ := s.Read(id)
	if !bytes.Equal(fresh[:9], []byte("replaced!")) {
		t.Errorf("read after write = %q", fresh[:9])
	}
}

func TestPoolZeroCapacity(t *testing.T) {
	var ev atomic.Uint64
	p := newPool(0, &ev)
	p.put(&Frame{id: 1, data: []byte("a")}, false)
	if p.get(1, false) != nil {
		t.Error("zero-capacity pool stored a frame")
	}
	if p.len() != 0 {
		t.Error("zero-capacity pool non-empty")
	}
}

func TestPoolDrop(t *testing.T) {
	var ev atomic.Uint64
	p := newPool(4, &ev)
	p.put(&Frame{id: 1, data: []byte("a")}, false)
	p.put(&Frame{id: 2, data: []byte("b")}, false)
	p.drop(1)
	if p.get(1, false) != nil {
		t.Error("dropped page still pooled")
	}
	if p.get(2, false) == nil {
		t.Error("unrelated page evicted by drop")
	}
}

// TestPoolEvictionOrder verifies LRU order within a shard: capacity 2
// keeps the pool unsharded, so touching page 1 must make page 2 the
// eviction victim.
func TestPoolEvictionOrder(t *testing.T) {
	var ev atomic.Uint64
	p := newPool(2, &ev)
	p.put(&Frame{id: 1, data: []byte("a")}, false)
	p.put(&Frame{id: 2, data: []byte("b")}, false)
	if p.get(1, false) == nil { // 1 becomes MRU; 2 is now LRU
		t.Fatal("page 1 missing")
	}
	p.put(&Frame{id: 3, data: []byte("c")}, false)
	if p.get(2, false) != nil {
		t.Error("LRU page 2 survived eviction")
	}
	if p.get(1, false) == nil || p.get(3, false) == nil {
		t.Error("MRU pages evicted out of order")
	}
	if ev.Load() != 1 {
		t.Errorf("evictions = %d, want 1", ev.Load())
	}
}

// TestPoolPinBlocksEviction verifies a pinned frame is rotated past by
// eviction (the shard temporarily exceeding capacity if needed) and
// becomes evictable again after Release.
func TestPoolPinBlocksEviction(t *testing.T) {
	var ev atomic.Uint64
	p := newPool(2, &ev)
	p.put(&Frame{id: 1, data: []byte("a")}, true) // pinned
	p.put(&Frame{id: 2, data: []byte("b")}, false)
	p.put(&Frame{id: 3, data: []byte("c")}, false) // evicts 2, not pinned 1
	if p.get(1, false) == nil {
		t.Error("pinned frame evicted")
	}
	if p.get(2, false) != nil {
		t.Error("unpinned frame survived while pinned one was protected")
	}
	// Pin the survivors too: the shard must over-fill rather than evict.
	if f := p.get(3, false); f == nil {
		t.Fatal("page 3 missing")
	} else {
		f.pins.Add(1)
	}
	p.put(&Frame{id: 4, data: []byte("d")}, false)
	if p.len() != 3 {
		t.Errorf("pool len = %d, want 3 (over-capacity with all-pinned residents)", p.len())
	}
	// Releasing page 1 makes it the eviction victim on the next insert.
	p.get(1, false).Release()
	p.put(&Frame{id: 5, data: []byte("e")}, false)
	if p.get(1, false) != nil {
		t.Error("released frame not evicted under pressure")
	}
}

// TestReadPinnedKeepsResident exercises pinning through the Store API:
// a pinned page survives eviction pressure without physical rereads,
// and is reclaimed normally once released.
func TestReadPinnedKeepsResident(t *testing.T) {
	s, _ := newTestStore(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := s.Allocate()
		if err := s.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	f, err := s.ReadPinned(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != ids[0] || f.Data()[0] != 0 {
		t.Fatalf("pinned frame = id %d data %v", f.ID(), f.Data()[0])
	}
	// Churn every other page through the 2-frame pool.
	for round := 0; round < 3; round++ {
		for _, id := range ids[1:] {
			if _, err := s.Read(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.ResetStats()
	if _, err := s.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Reads != 0 || st.CacheHits != 1 {
		t.Errorf("pinned page not resident under churn: %+v", st)
	}
	f.Release()
	for round := 0; round < 3; round++ {
		for _, id := range ids[1:] {
			if _, err := s.Read(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.ResetStats()
	if _, err := s.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Reads != 1 {
		t.Errorf("released page still resident after churn: %+v", st)
	}
}

// TestZeroCapacityPassthrough verifies a cache-disabled store reads the
// file every time and counts every read as a miss.
func TestZeroCapacityPassthrough(t *testing.T) {
	s, _ := newTestStore(t, 0)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("cold")); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	for i := 0; i < 3; i++ {
		if _, err := s.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reads != 3 || st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Errorf("passthrough stats = %+v", st)
	}
}

// blockingFile gates ReadAt on non-header pages so a test can hold a
// physical read open while other readers pile up behind it.
type blockingFile struct {
	*MemFile
	gate    chan struct{} // close to let reads proceed
	entered chan struct{} // receives one value per gated ReadAt entry
}

func (f *blockingFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= PageSize {
		f.entered <- struct{}{}
		<-f.gate
	}
	return f.MemFile.ReadAt(p, off)
}

// TestSingleFlightCoalescing holds one physical read open while K-1
// more readers request the same cold page; they must coalesce onto the
// leader's read: exactly one physical read, K-1 coalesced misses.
func TestSingleFlightCoalescing(t *testing.T) {
	mem := NewMemFile()
	s, err := Create(mem, Options{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("cold page")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the store on a gated file so the page is cold again.
	bf := &blockingFile{MemFile: mem, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	s2, err := Open(bf, Options{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	results := make(chan []byte, readers)
	errs := make(chan error, readers)
	wg.Add(1)
	go func() { // leader: blocks inside ReadAt
		defer wg.Done()
		buf, err := s2.Read(id)
		if err != nil {
			errs <- err
			return
		}
		results <- buf
	}()
	<-bf.entered // leader is inside the physical read
	for i := 1; i < readers; i++ {
		wg.Add(1)
		go func() { // followers: must join the leader's flight
			defer wg.Done()
			buf, err := s2.Read(id)
			if err != nil {
				errs <- err
				return
			}
			results <- buf
		}()
	}
	// Give followers time to reach the in-flight map, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(bf.gate)
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	for buf := range results {
		if !bytes.Equal(buf[:9], []byte("cold page")) {
			t.Fatalf("coalesced read returned %q", buf[:9])
		}
	}
	st := s2.Stats()
	if st.Reads != 1 {
		t.Errorf("physical reads = %d, want 1 (single-flight)", st.Reads)
	}
	if st.Coalesced != readers-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, readers-1)
	}
	if st.CacheMisses != readers {
		t.Errorf("misses = %d, want %d", st.CacheMisses, readers)
	}
}

// TestPoolConcurrent hammers one pool from many goroutines mixing gets,
// puts, pins and drops (run under -race).
func TestPoolConcurrent(t *testing.T) {
	var ev atomic.Uint64
	p := newPool(64, &ev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := PageID(1 + (g*7+i)%128)
				switch i % 4 {
				case 0:
					p.put(&Frame{id: id, data: []byte{byte(i)}}, false)
				case 1:
					if f := p.get(id, true); f != nil {
						f.Release()
					}
				case 2:
					p.get(id, false)
				default:
					p.drop(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if p.len() > 96 { // 64 cap; transient pin overflow only
		t.Errorf("pool len = %d after churn", p.len())
	}
}

func TestOSFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, f, err := CreateFile(path, Options{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("on disk")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUserRoot(id, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, f2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	root, _ := s2.UserRoot()
	got, err := s2.Read(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:7], []byte("on disk")) {
		t.Errorf("read back %q", got[:7])
	}
}

func TestMemFileTruncate(t *testing.T) {
	f := NewMemFile()
	f.WriteAt([]byte("0123456789"), 0)
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Errorf("len = %d, want 4", f.Len())
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Errorf("grown content = %v", buf)
	}
}

func TestManyPagesStress(t *testing.T) {
	s, _ := newTestStore(t, 16)
	rng := rand.New(rand.NewSource(99))
	live := map[PageID][]byte{}
	var order []PageID
	for i := 0; i < 3000; i++ {
		switch {
		case len(order) == 0 || rng.Intn(3) > 0:
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := live[id]; dup {
				t.Fatalf("allocated live page %d twice", id)
			}
			buf := make([]byte, 1+rng.Intn(64))
			rng.Read(buf)
			if err := s.Write(id, buf); err != nil {
				t.Fatal(err)
			}
			live[id] = buf
			order = append(order, id)
		default:
			i := rng.Intn(len(order))
			id := order[i]
			order = append(order[:i], order[i+1:]...)
			delete(live, id)
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id, want := range live {
		got, err := s.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("page %d corrupted", id)
		}
	}
}

// TestConcurrentStoreAccess exercises the Store's concurrency safety:
// parallel readers and writers on disjoint and shared pages (run under
// -race).
func TestConcurrentStoreAccess(t *testing.T) {
	s, _ := newTestStore(t, 16)
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*31+i)%len(ids)]
				switch i % 3 {
				case 0:
					if _, err := s.Read(id); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := s.Write(id, []byte{byte(g), byte(i)}); err != nil {
						errs <- err
						return
					}
				default:
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every page still reads back with a valid checksum.
	for _, id := range ids {
		if _, err := s.Read(id); err != nil {
			t.Fatalf("page %d unreadable after concurrent access: %v", id, err)
		}
	}
}

// TestConcurrentAllocateFree hammers the allocator from many
// goroutines; every returned ID must be unique among live pages.
func TestConcurrentAllocateFree(t *testing.T) {
	s, _ := newTestStore(t, 0)
	var mu sync.Mutex
	live := map[PageID]bool{}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []PageID
			for i := 0; i < 100; i++ {
				id, err := s.Allocate()
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if live[id] {
					mu.Unlock()
					errs <- fmt.Errorf("page %d allocated twice", id)
					return
				}
				live[id] = true
				mu.Unlock()
				mine = append(mine, id)
				if len(mine) > 10 {
					victim := mine[0]
					mine = mine[1:]
					mu.Lock()
					delete(live, victim)
					mu.Unlock()
					if err := s.Free(victim); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
