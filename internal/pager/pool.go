package pager

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// The buffer pool is sharded by PageID so concurrent readers on
// different pages take different locks. Each shard is an independent
// LRU over immutable pinned frames; a cache hit touches exactly one
// shard mutex for a map lookup and a list splice — no copying.
const (
	// maxPoolShards bounds the shard count; page IDs are assigned
	// sequentially, so id & mask spreads hot neighbourhoods evenly.
	maxPoolShards = 16
	// minPagesPerShard keeps tiny pools unsharded so their LRU order
	// stays meaningful (and deterministic for tests).
	minPagesPerShard = 8
)

// Frame is one resident page image: an immutable payload shared,
// zero-copy, by every reader that fetched it. Frames are never written
// in place — a page write installs a fresh frame, so a slice handed out
// earlier keeps its old contents and stays valid forever (eviction only
// drops pool residency; the garbage collector reclaims the bytes when
// the last holder lets go).
//
// The pin count is a residency guarantee: while a frame is pinned the
// pool will not evict it, so hot pages (such as an index root) can be
// kept memory-resident regardless of scan traffic. Pinning is not
// needed for memory safety.
type Frame struct {
	id   PageID
	data []byte // payloadSize bytes, read-only after construction
	pins atomic.Int32
}

// ID returns the page this frame holds.
func (f *Frame) ID() PageID { return f.id }

// Data returns the frame's payload. The slice is shared and read-only.
func (f *Frame) Data() []byte { return f.data }

// Release undoes one pin obtained via Store.ReadPinned. The frame's
// data remains valid afterwards; only its eviction protection ends.
func (f *Frame) Release() { f.pins.Add(-1) }

// pool is the sharded buffer pool. A nil-sharded pool (capacity 0) is a
// valid passthrough that caches nothing.
type pool struct {
	shards []poolShard
	mask   uint32
	// evictions counts frames dropped to make room; it points at the
	// owning store's atomic so Stats snapshots need no pool lock.
	evictions *atomic.Uint64
}

type poolShard struct {
	mu      sync.Mutex
	cap     int
	entries map[PageID]*list.Element
	order   *list.List // front = most recently used; values are *Frame
}

// newPool sizes the shard array to the capacity: one shard per
// minPagesPerShard pages, at most maxPoolShards, so small pools stay
// deterministic and large ones spread lock traffic.
func newPool(capacity int, evictions *atomic.Uint64) *pool {
	if capacity <= 0 {
		return &pool{evictions: evictions}
	}
	n := 1
	for n < maxPoolShards && capacity/(n*2) >= minPagesPerShard {
		n *= 2
	}
	p := &pool{shards: make([]poolShard, n), mask: uint32(n - 1), evictions: evictions}
	for i := range p.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		p.shards[i] = poolShard{
			cap:     c,
			entries: make(map[PageID]*list.Element, c),
			order:   list.New(),
		}
	}
	return p
}

func (p *pool) shard(id PageID) *poolShard {
	return &p.shards[uint32(id)&p.mask]
}

// get returns the resident frame for id, nil on a miss. With pin set
// the frame's pin count is raised under the shard lock, so the caller
// holds an eviction-proof reference on return.
func (p *pool) get(id PageID, pin bool) *Frame {
	if p.shards == nil {
		return nil
	}
	sh := p.shard(id)
	sh.mu.Lock()
	el, ok := sh.entries[id]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	sh.order.MoveToFront(el)
	f := el.Value.(*Frame)
	if pin {
		f.pins.Add(1)
	}
	sh.mu.Unlock()
	return f
}

// put installs f as the current frame for its page, replacing any prior
// frame (holders of the old frame keep their stable old bytes). With
// pin set the new frame is pinned before any eviction can see it.
// Eviction walks from the LRU end, rotating pinned frames back to the
// front; when every frame is pinned the shard is allowed to exceed its
// capacity rather than evict a pinned frame.
func (p *pool) put(f *Frame, pin bool) {
	if p.shards == nil {
		return
	}
	if pin {
		f.pins.Add(1)
	}
	sh := p.shard(f.id)
	sh.mu.Lock()
	if el, ok := sh.entries[f.id]; ok {
		el.Value = f
		sh.order.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	el := sh.order.PushFront(f)
	sh.entries[f.id] = el
	for sh.order.Len() > sh.cap {
		back := sh.order.Back()
		if back == el {
			// Every other frame is pinned; over-fill rather than evict
			// the frame just inserted. (Each rotation below pushes el one
			// step toward the back, so this bounds the loop.)
			break
		}
		victim := back.Value.(*Frame)
		if victim.pins.Load() > 0 {
			sh.order.MoveToFront(back)
			continue
		}
		sh.order.Remove(back)
		delete(sh.entries, victim.id)
		p.evictions.Add(1)
	}
	sh.mu.Unlock()
}

// drop removes the frame for id, if resident (used when a page is
// freed). Pinned or not, holders keep their bytes.
func (p *pool) drop(id PageID) {
	if p.shards == nil {
		return
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if el, ok := sh.entries[id]; ok {
		sh.order.Remove(el)
		delete(sh.entries, id)
	}
	sh.mu.Unlock()
}

// len returns the number of resident frames across all shards.
func (p *pool) len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
