// Package pager implements a disk-oriented fixed-size page store with a
// header page, a free list, per-page CRC-32 checksums, an LRU buffer
// pool, and read/write statistics.
//
// It is the storage substrate beneath the paged R*-tree node store. The
// paper's evaluation (Section 5) uses a page size of 4096 bytes and
// counts R*-tree node accesses as the performance metric; the pager makes
// that accounting concrete: one tree node occupies exactly one page.
package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed on-disk page size in bytes, matching the paper's
// experimental setting.
const PageSize = 4096

// payloadSize is the number of bytes of each page available to callers;
// the remainder holds the page trailer (checksum).
const payloadSize = PageSize - trailerSize

const (
	trailerSize = 4          // CRC-32 of the payload
	magic       = 0x4e574351 // "NWCQ"
	version     = 1
)

// PageID identifies a page within a file. Page 0 is the header page and
// is never handed out by Allocate.
type PageID uint32

// InvalidPage is the zero PageID; it doubles as the nil pointer in
// on-page data structures (page 0 is the header and never allocatable).
const InvalidPage PageID = 0

// Stats counts physical page operations since the store was opened (or
// since ResetStats). CacheHits counts reads served by the buffer pool
// without touching the backing file.
type Stats struct {
	Reads     uint64
	Writes    uint64
	Allocs    uint64
	Frees     uint64
	CacheHits uint64
}

// ErrChecksum is returned when a page read fails CRC verification.
var ErrChecksum = errors.New("pager: page checksum mismatch")

// ErrPageRange is returned when a PageID refers past the end of the file
// or to the header page.
var ErrPageRange = errors.New("pager: page id out of range")

// File is the backing device abstraction: *os.File satisfies it, and
// MemFile provides an in-memory equivalent for tests and benchmarks.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
}

// MemFile is an in-memory File for tests and ephemeral stores.
type MemFile struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements io.ReaderAt.
func (f *MemFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file as needed.
func (f *MemFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	return len(p), nil
}

// Truncate implements File.
func (f *MemFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.buf)
	f.buf = grown
	return nil
}

// Len returns the current file size in bytes.
func (f *MemFile) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.buf)
}

// Store is a page store over a File. It is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	file     File
	numPages PageID // pages in the file, including the header page
	freeHead PageID // head of the free-list chain, InvalidPage if none
	cache    *lru
	stats    Stats
	dirtyHdr bool

	// UserRoot is an application-owned page reference persisted in the
	// header (the R*-tree stores its root here). Set via SetUserRoot.
	userRoot PageID
	userMeta [64]byte
}

// Options configures a Store.
type Options struct {
	// CacheSize is the LRU buffer-pool capacity in pages. Zero disables
	// caching so every Read hits the backing file.
	CacheSize int
}

// Create initialises a fresh store on f, truncating any prior content.
func Create(f File, opt Options) (*Store, error) {
	if err := f.Truncate(0); err != nil {
		return nil, fmt.Errorf("pager: truncate: %w", err)
	}
	s := &Store{
		file:     f,
		numPages: 1, // header
		freeHead: InvalidPage,
		cache:    newLRU(opt.CacheSize),
		dirtyHdr: true,
	}
	if err := s.flushHeaderLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open attaches to an existing store on f, validating the header.
func Open(f File, opt Options) (*Store, error) {
	s := &Store{file: f, cache: newLRU(opt.CacheSize)}
	if err := s.readHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// CreateFile creates (or truncates) a store in the named OS file.
func CreateFile(path string, opt Options) (*Store, *os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s, err := Create(f, opt)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, f, nil
}

// OpenFile opens an existing store in the named OS file.
func OpenFile(path string, opt Options) (*Store, *os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s, err := Open(f, opt)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, f, nil
}

// PayloadSize returns the usable bytes per page.
func PayloadSize() int { return payloadSize }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the operation counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// NumPages returns the total number of pages in the file, including the
// header page and any free pages.
func (s *Store) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.numPages)
}

// SetUserRoot records an application root page and metadata blob (at most
// 64 bytes) in the header. Call Sync to persist.
func (s *Store) SetUserRoot(root PageID, meta []byte) error {
	if len(meta) > len(s.userMeta) {
		return fmt.Errorf("pager: user meta %d bytes exceeds %d", len(meta), len(s.userMeta))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.userRoot = root
	s.userMeta = [64]byte{}
	copy(s.userMeta[:], meta)
	s.dirtyHdr = true
	return nil
}

// UserRoot returns the application root page and metadata recorded in the
// header.
func (s *Store) UserRoot() (PageID, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta := make([]byte, len(s.userMeta))
	copy(meta, s.userMeta[:])
	return s.userRoot, meta
}

// Allocate returns a fresh page, reusing a freed page when available.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Allocs++
	if s.freeHead != InvalidPage {
		id := s.freeHead
		buf, err := s.readLocked(id)
		if err != nil {
			return InvalidPage, err
		}
		s.freeHead = PageID(be32(buf[:4]))
		s.dirtyHdr = true
		return id, nil
	}
	id := s.numPages
	s.numPages++
	s.dirtyHdr = true
	// Materialise the page so reads within the file's range succeed.
	if err := s.writeLocked(id, make([]byte, payloadSize)); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// Free returns a page to the free list. The page's content is no longer
// meaningful after Free.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(id); err != nil {
		return err
	}
	s.stats.Frees++
	buf := make([]byte, payloadSize)
	putBE32(buf[:4], uint32(s.freeHead))
	if err := s.writeLocked(id, buf); err != nil {
		return err
	}
	s.freeHead = id
	s.dirtyHdr = true
	return nil
}

// Read returns the payload of page id. The returned slice is a copy and
// may be retained by the caller.
func (s *Store) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(id); err != nil {
		return nil, err
	}
	buf, err := s.readLocked(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, payloadSize)
	copy(out, buf)
	return out, nil
}

// Write stores payload (at most PayloadSize bytes) into page id.
func (s *Store) Write(id PageID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(id); err != nil {
		return err
	}
	if len(payload) > payloadSize {
		return fmt.Errorf("pager: payload %d bytes exceeds page payload %d", len(payload), payloadSize)
	}
	buf := make([]byte, payloadSize)
	copy(buf, payload)
	return s.writeLocked(id, buf)
}

// Sync flushes the header. Page writes are write-through, so after Sync
// the file is a complete, reopenable image.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirtyHdr {
		return s.flushHeaderLocked()
	}
	return nil
}

func (s *Store) checkRange(id PageID) error {
	if id == InvalidPage || id >= s.numPages {
		return fmt.Errorf("%w: page %d of %d", ErrPageRange, id, s.numPages)
	}
	return nil
}

func (s *Store) readLocked(id PageID) ([]byte, error) {
	if buf, ok := s.cache.get(id); ok {
		s.stats.CacheHits++
		return buf, nil
	}
	raw := make([]byte, PageSize)
	if _, err := s.file.ReadAt(raw, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	s.stats.Reads++
	payload := raw[:payloadSize]
	want := be32(raw[payloadSize:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	s.cache.put(id, payload)
	return payload, nil
}

func (s *Store) writeLocked(id PageID, payload []byte) error {
	raw := make([]byte, PageSize)
	copy(raw, payload)
	putBE32(raw[payloadSize:], crc32.ChecksumIEEE(raw[:payloadSize]))
	if _, err := s.file.WriteAt(raw, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	s.stats.Writes++
	s.cache.put(id, raw[:payloadSize])
	return nil
}

// Header layout (page 0 payload):
//
//	[0:4]   magic
//	[4:8]   version
//	[8:12]  numPages
//	[12:16] freeHead
//	[16:20] userRoot
//	[20:84] userMeta
func (s *Store) flushHeaderLocked() error {
	buf := make([]byte, payloadSize)
	putBE32(buf[0:4], magic)
	putBE32(buf[4:8], version)
	putBE32(buf[8:12], uint32(s.numPages))
	putBE32(buf[12:16], uint32(s.freeHead))
	putBE32(buf[16:20], uint32(s.userRoot))
	copy(buf[20:84], s.userMeta[:])
	raw := make([]byte, PageSize)
	copy(raw, buf)
	putBE32(raw[payloadSize:], crc32.ChecksumIEEE(raw[:payloadSize]))
	if _, err := s.file.WriteAt(raw, 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	s.dirtyHdr = false
	return nil
}

func (s *Store) readHeader() error {
	raw := make([]byte, PageSize)
	if _, err := s.file.ReadAt(raw, 0); err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	payload := raw[:payloadSize]
	if got := crc32.ChecksumIEEE(payload); got != be32(raw[payloadSize:]) {
		return fmt.Errorf("%w: header", ErrChecksum)
	}
	if be32(payload[0:4]) != magic {
		return errors.New("pager: bad magic, not a page store")
	}
	if v := be32(payload[4:8]); v != version {
		return fmt.Errorf("pager: unsupported version %d", v)
	}
	s.numPages = PageID(be32(payload[8:12]))
	s.freeHead = PageID(be32(payload[12:16]))
	s.userRoot = PageID(be32(payload[16:20]))
	copy(s.userMeta[:], payload[20:84])
	return nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
