// Package pager implements a disk-oriented fixed-size page store with a
// header page, a free list, per-page CRC-32 checksums, a sharded pinned
// buffer pool with single-flight miss handling, and atomic read/write
// statistics.
//
// It is the storage substrate beneath the paged R*-tree node store. The
// paper's evaluation (Section 5) uses a page size of 4096 bytes and
// counts R*-tree node accesses as the performance metric; the pager makes
// that accounting concrete: one tree node occupies exactly one page.
//
// # Concurrency
//
// A Store is safe for concurrent use and its read path is designed to
// scale with cores:
//
//   - Cache hits touch one buffer-pool shard mutex and return a shared
//     immutable frame — no page copy, no global lock, no CRC re-check
//     (checksums are verified once, when a page enters the pool).
//   - Cache misses are single-flight: concurrent readers of the same
//     cold page coalesce onto one file read.
//   - File I/O is serialised per page by striped reader/writer locks, so
//     reads of different pages proceed in parallel and a write never
//     tears a concurrent read of its page.
//   - Statistics are atomic counters, snapshotted without stopping
//     readers.
//
// Allocation, free-list maintenance and header updates remain under one
// metadata mutex; they are rare compared to reads.
package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed on-disk page size in bytes, matching the paper's
// experimental setting.
const PageSize = 4096

// payloadSize is the number of bytes of each page available to callers;
// the remainder holds the page trailer (checksum).
const payloadSize = PageSize - trailerSize

const (
	trailerSize = 4          // CRC-32 of the payload
	magic       = 0x4e574351 // "NWCQ"
	version     = 1
)

// ioStripes is the number of striped page locks serialising file access.
// Two pages conflict only when their IDs collide modulo this count.
const ioStripes = 64

// PageID identifies a page within a file. Page 0 is the header page and
// is never handed out by Allocate.
type PageID uint32

// InvalidPage is the zero PageID; it doubles as the nil pointer in
// on-page data structures (page 0 is the header and never allocatable).
const InvalidPage PageID = 0

// Stats counts physical page operations since the store was opened (or
// since ResetStats). All counters are atomic; a snapshot taken during
// concurrent traffic is consistent per counter.
type Stats struct {
	// Reads and Writes count pages physically transferred to or from the
	// backing file.
	Reads  uint64
	Writes uint64
	Allocs uint64
	Frees  uint64
	// CacheHits counts reads served by the buffer pool without touching
	// the backing file; CacheMisses counts reads that had to go to it.
	CacheHits   uint64
	CacheMisses uint64
	// Evictions counts frames dropped from the pool to make room.
	Evictions uint64
	// Coalesced counts readers of a cold page that piggybacked on
	// another reader's in-flight file read instead of issuing their own
	// (the single-flight saving: Coalesced misses cost no physical read).
	Coalesced uint64
	// Syncs counts fsyncs of the backing file (Sync, SyncData,
	// WriteCheckpoint) — the dominant cost of checkpoints.
	Syncs uint64
}

// storeStats is the atomic backing of Stats.
type storeStats struct {
	reads, writes, allocs, frees atomic.Uint64
	cacheHits, cacheMisses       atomic.Uint64
	evictions, coalesced         atomic.Uint64
	syncs                        atomic.Uint64
}

func (s *storeStats) snapshot() Stats {
	return Stats{
		Reads:       s.reads.Load(),
		Writes:      s.writes.Load(),
		Allocs:      s.allocs.Load(),
		Frees:       s.frees.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Evictions:   s.evictions.Load(),
		Coalesced:   s.coalesced.Load(),
		Syncs:       s.syncs.Load(),
	}
}

func (s *storeStats) reset() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.allocs.Store(0)
	s.frees.Store(0)
	s.cacheHits.Store(0)
	s.cacheMisses.Store(0)
	s.evictions.Store(0)
	s.coalesced.Store(0)
	s.syncs.Store(0)
}

// ErrChecksum is returned when a page read fails CRC verification.
var ErrChecksum = errors.New("pager: page checksum mismatch")

// ErrPageRange is returned when a PageID refers past the end of the file
// or to the header page.
var ErrPageRange = errors.New("pager: page id out of range")

// File is the backing device abstraction: *os.File satisfies it, and
// MemFile provides an in-memory equivalent for tests and benchmarks.
// ReadAt and WriteAt must be safe for concurrent use (as io.ReaderAt
// and io.WriterAt already require); the Store serialises overlapping
// accesses to the same page itself.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	// Sync makes previously written bytes durable (fsync). Page writes
	// are write-through but land in the OS cache; checkpoints call Sync
	// to pin them to stable storage.
	Sync() error
}

// MemFile is an in-memory File for tests and ephemeral stores.
type MemFile struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements io.ReaderAt.
func (f *MemFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file as needed.
func (f *MemFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	return len(p), nil
}

// Truncate implements File.
func (f *MemFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.buf)
	f.buf = grown
	return nil
}

// Sync implements File; memory is always "durable".
func (f *MemFile) Sync() error { return nil }

// Len returns the current file size in bytes.
func (f *MemFile) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.buf)
}

// Store is a page store over a File. It is safe for concurrent use; see
// the package comment for the locking design.
type Store struct {
	file  File
	pool  *pool
	stats storeStats

	// numPages is the number of pages in the file, including the header
	// page; read lock-free on the hot path for range checks.
	numPages atomic.Uint32

	// io stripes serialise file access per page: readers of a page take
	// the stripe's read lock, the writer its write lock, so a write can
	// never tear a concurrent read of the same page while reads of
	// different pages proceed in parallel.
	io [ioStripes]sync.RWMutex

	// flight coalesces concurrent cache misses on the same page onto one
	// physical read.
	flightMu sync.Mutex
	flight   map[PageID]*flightCall

	// meta guards the allocation state and the header image. Lock order:
	// meta before any io stripe; the read path takes neither meta nor
	// more than one stripe.
	meta     sync.Mutex
	freeHead PageID // head of the free-list chain, InvalidPage if none
	dirtyHdr bool

	// volatileFree switches Free/Allocate to an in-memory free set that
	// never touches pages on disk. WAL-backed stores use it: the durable
	// intrusive free list would scribble into pages the last checkpoint
	// still references, and recovery rebuilds the set from tree
	// reachability anyway.
	volatileFree bool
	freeMem      []PageID

	// ckptLSN is the WAL position whose effects the on-disk pages fully
	// contain; persisted in the header by WriteCheckpoint. Zero on
	// stores that never checkpointed (including pre-WAL files).
	ckptLSN uint64

	// replLSN is the highest leader LSN a replication follower has
	// applied into this store; zero on leaders and on files written
	// before replication existed (the header bytes read back as zero).
	// Persisted alongside ckptLSN so the replica position commits
	// atomically with the checkpoint that contains its effects.
	replLSN uint64

	// UserRoot is an application-owned page reference persisted in the
	// header (the R*-tree stores its root here). Set via SetUserRoot.
	userRoot PageID
	userMeta [64]byte
}

// flightCall is one in-flight physical page read. done is closed once
// frame/err are final; waiters that joined before completion share the
// result.
type flightCall struct {
	done  chan struct{}
	frame *Frame
	err   error
}

// Options configures a Store.
type Options struct {
	// CacheSize is the buffer-pool capacity in pages. Zero disables
	// caching so every Read hits the backing file. The pool is sharded
	// (up to 16 ways for large capacities), so the capacity is a total
	// across shards and eviction is approximately LRU per shard.
	CacheSize int

	// VolatileFreeList keeps the free list in memory only: Free never
	// writes to the page and the header records no free chain. Required
	// under a write-ahead log, where freed pages may still be reachable
	// from the durable checkpoint root; the owner reconstructs the free
	// set after recovery via AddFreePages.
	VolatileFreeList bool
}

func newStore(f File, opt Options) *Store {
	s := &Store{
		file:         f,
		flight:       make(map[PageID]*flightCall),
		volatileFree: opt.VolatileFreeList,
	}
	s.pool = newPool(opt.CacheSize, &s.stats.evictions)
	return s
}

// Create initialises a fresh store on f, truncating any prior content.
func Create(f File, opt Options) (*Store, error) {
	if err := f.Truncate(0); err != nil {
		return nil, fmt.Errorf("pager: truncate: %w", err)
	}
	s := newStore(f, opt)
	s.numPages.Store(1) // header
	s.freeHead = InvalidPage
	s.dirtyHdr = true
	if err := s.flushHeaderLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open attaches to an existing store on f, validating the header.
func Open(f File, opt Options) (*Store, error) {
	s := newStore(f, opt)
	if err := s.readHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// CreateFile creates (or truncates) a store in the named OS file.
func CreateFile(path string, opt Options) (*Store, *os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s, err := Create(f, opt)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, f, nil
}

// OpenFile opens an existing store in the named OS file.
func OpenFile(path string, opt Options) (*Store, *os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s, err := Open(f, opt)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, f, nil
}

// PayloadSize returns the usable bytes per page.
func PayloadSize() int { return payloadSize }

// Stats returns a snapshot of the operation counters. It takes no lock
// and never blocks readers or writers.
func (s *Store) Stats() Stats { return s.stats.snapshot() }

// ResetStats zeroes the operation counters.
func (s *Store) ResetStats() { s.stats.reset() }

// NumPages returns the total number of pages in the file, including the
// header page and any free pages.
func (s *Store) NumPages() int { return int(s.numPages.Load()) }

// SetUserRoot records an application root page and metadata blob (at most
// 64 bytes) in the header. Call Sync to persist.
func (s *Store) SetUserRoot(root PageID, meta []byte) error {
	if len(meta) > len(s.userMeta) {
		return fmt.Errorf("pager: user meta %d bytes exceeds %d", len(meta), len(s.userMeta))
	}
	s.meta.Lock()
	defer s.meta.Unlock()
	s.userRoot = root
	s.userMeta = [64]byte{}
	copy(s.userMeta[:], meta)
	s.dirtyHdr = true
	return nil
}

// UserRoot returns the application root page and metadata recorded in the
// header.
func (s *Store) UserRoot() (PageID, []byte) {
	s.meta.Lock()
	defer s.meta.Unlock()
	meta := make([]byte, len(s.userMeta))
	copy(meta, s.userMeta[:])
	return s.userRoot, meta
}

// Allocate returns a fresh page, reusing a freed page when available.
func (s *Store) Allocate() (PageID, error) {
	s.meta.Lock()
	defer s.meta.Unlock()
	s.stats.allocs.Add(1)
	if s.volatileFree {
		if n := len(s.freeMem); n > 0 {
			id := s.freeMem[n-1]
			s.freeMem = s.freeMem[:n-1]
			return id, nil
		}
	} else if s.freeHead != InvalidPage {
		id := s.freeHead
		buf, err := s.Read(id)
		if err != nil {
			return InvalidPage, err
		}
		s.freeHead = PageID(be32(buf[:4]))
		s.dirtyHdr = true
		return id, nil
	}
	id := PageID(s.numPages.Load())
	// Materialise the page before publishing the new page count, so a
	// racing reader can never pass the range check and find a hole.
	if err := s.writePage(id, make([]byte, payloadSize)); err != nil {
		return InvalidPage, err
	}
	s.numPages.Add(1)
	s.dirtyHdr = true
	return id, nil
}

// Free returns a page to the free list. The page's content is no longer
// meaningful after Free. With a volatile free list the page bytes are
// left untouched (a durable checkpoint may still reference them); the
// page simply becomes reusable by a later Allocate.
func (s *Store) Free(id PageID) error {
	if err := s.checkRange(id); err != nil {
		return err
	}
	s.meta.Lock()
	defer s.meta.Unlock()
	s.stats.frees.Add(1)
	if s.volatileFree {
		s.freeMem = append(s.freeMem, id)
		return nil
	}
	buf := make([]byte, payloadSize)
	putBE32(buf[:4], uint32(s.freeHead))
	if err := s.writePage(id, buf); err != nil {
		return err
	}
	s.freeHead = id
	s.dirtyHdr = true
	return nil
}

// AddFreePages hands the volatile free list a batch of reusable pages.
// Recovery uses it to reinstate the free set (every page the final tree
// does not reach); owners also use it to release retired shadow pages
// once the checkpoint that stops referencing them is durable.
func (s *Store) AddFreePages(ids []PageID) error {
	s.meta.Lock()
	defer s.meta.Unlock()
	if !s.volatileFree {
		return errors.New("pager: AddFreePages requires a volatile free list")
	}
	s.freeMem = append(s.freeMem, ids...)
	return nil
}

// Read returns the payload of page id.
//
// Ownership contract: the returned slice is a shared, immutable frame
// of the buffer pool and MUST be treated as read-only. It stays valid
// indefinitely — a later Write to the page installs a new frame rather
// than mutating this one, and eviction only ends pool residency — so
// callers may retain it, but must copy before modifying. Decoding
// callers (such as the R*-tree node store) read straight out of the
// frame with zero copies.
func (s *Store) Read(id PageID) ([]byte, error) {
	f, err := s.frame(id, false)
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// ReadPinned is Read returning the whole frame with one pin held: the
// buffer pool will not evict the page until the caller calls Release.
// Use it to keep hot pages (an index root, a directory page) resident
// regardless of intervening scan traffic.
func (s *Store) ReadPinned(id PageID) (*Frame, error) {
	return s.frame(id, true)
}

// frame returns the current frame for id, from the pool when resident,
// through a single-flight physical read otherwise.
func (s *Store) frame(id PageID, pin bool) (*Frame, error) {
	if err := s.checkRange(id); err != nil {
		return nil, err
	}
	if f := s.pool.get(id, pin); f != nil {
		s.stats.cacheHits.Add(1)
		return f, nil
	}
	s.stats.cacheMisses.Add(1)
	f, err := s.fetch(id, pin)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// fetch coalesces concurrent misses on one page: the first caller
// becomes the leader and performs the physical read; followers block on
// the leader's result and are counted as Coalesced. A concurrent Write
// to the page supersedes the flight entry so readers arriving after the
// write start a fresh read and cannot observe pre-write data.
func (s *Store) fetch(id PageID, pin bool) (*Frame, error) {
	s.flightMu.Lock()
	if c, ok := s.flight[id]; ok {
		s.flightMu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		s.stats.coalesced.Add(1)
		if pin {
			// Best-effort pin: the frame is valid regardless; residency
			// protection starts if the frame is (still) pooled.
			c.frame.pins.Add(1)
		}
		return c.frame, nil
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[id] = c
	s.flightMu.Unlock()

	c.frame, c.err = s.readPage(id, pin)

	s.flightMu.Lock()
	if s.flight[id] == c {
		delete(s.flight, id)
	}
	s.flightMu.Unlock()
	close(c.done)
	return c.frame, c.err
}

// readPage performs the physical read under the page's stripe read
// lock, verifies the checksum once, and installs the frame in the pool
// before releasing the stripe — so a racing writer (which installs its
// own frame under the stripe write lock) can never be overwritten by
// stale bytes.
func (s *Store) readPage(id PageID, pin bool) (*Frame, error) {
	mu := &s.io[uint32(id)%ioStripes]
	mu.RLock()
	defer mu.RUnlock()
	raw := make([]byte, PageSize)
	if _, err := s.file.ReadAt(raw, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	s.stats.reads.Add(1)
	payload := raw[:payloadSize:payloadSize]
	want := be32(raw[payloadSize:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	f := &Frame{id: id, data: payload}
	s.pool.put(f, pin)
	return f, nil
}

// Write stores payload (at most PayloadSize bytes) into page id.
func (s *Store) Write(id PageID, payload []byte) error {
	if err := s.checkRange(id); err != nil {
		return err
	}
	if len(payload) > payloadSize {
		return fmt.Errorf("pager: payload %d bytes exceeds page payload %d", len(payload), payloadSize)
	}
	return s.writePage(id, payload)
}

// writePage writes through to the file and installs the fresh frame in
// the pool, both under the page's stripe write lock, then supersedes
// any in-flight read of the page.
func (s *Store) writePage(id PageID, payload []byte) error {
	raw := make([]byte, PageSize)
	copy(raw, payload)
	putBE32(raw[payloadSize:], crc32.ChecksumIEEE(raw[:payloadSize]))
	mu := &s.io[uint32(id)%ioStripes]
	mu.Lock()
	if _, err := s.file.WriteAt(raw, int64(id)*PageSize); err != nil {
		mu.Unlock()
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	s.stats.writes.Add(1)
	s.pool.put(&Frame{id: id, data: raw[:payloadSize:payloadSize]}, false)
	mu.Unlock()
	// Readers that arrive after this write must not join a flight whose
	// physical read predates it.
	s.flightMu.Lock()
	delete(s.flight, id)
	s.flightMu.Unlock()
	return nil
}

// Sync flushes the header and fsyncs the backing file. Page writes are
// write-through, so after Sync the file is a complete, reopenable,
// durable image.
func (s *Store) Sync() error {
	s.meta.Lock()
	defer s.meta.Unlock()
	if s.dirtyHdr {
		if err := s.flushHeaderLocked(); err != nil {
			return err
		}
	}
	return s.fsyncLocked()
}

// SyncData fsyncs the backing file without touching the header. The
// checkpoint protocol uses it to pin shadow pages to stable storage
// before the header flip makes them reachable.
func (s *Store) SyncData() error {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.fsyncLocked()
}

// CheckpointLSN returns the WAL position recorded by the last
// WriteCheckpoint (zero if none).
func (s *Store) CheckpointLSN() uint64 {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.ckptLSN
}

// ReplicaLSN returns the follower replica position recorded in the
// header image (zero on leaders).
func (s *Store) ReplicaLSN() uint64 {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.replLSN
}

// SetReplicaLSN records the highest applied leader LSN in the header
// image. It becomes durable with the next WriteCheckpoint, whose single
// header write commits both LSNs atomically.
func (s *Store) SetReplicaLSN(lsn uint64) {
	s.meta.Lock()
	if s.replLSN != lsn {
		s.replLSN = lsn
		s.dirtyHdr = true
	}
	s.meta.Unlock()
}

// WriteCheckpoint atomically commits the current root/page state as the
// durable image covering WAL records up to lsn: it writes the header
// (root, page count, checkpoint LSN) in one page-sized write and fsyncs.
// Callers must have fsynced the data pages first (SyncData); the single
// header write is the commit point — before it the old checkpoint is
// recovered, after it the new one.
func (s *Store) WriteCheckpoint(lsn uint64) error {
	s.meta.Lock()
	defer s.meta.Unlock()
	s.ckptLSN = lsn
	if err := s.flushHeaderLocked(); err != nil {
		return err
	}
	return s.fsyncLocked()
}

// fsyncLocked syncs the backing file and counts it. Caller holds meta.
func (s *Store) fsyncLocked() error {
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	s.stats.syncs.Add(1)
	return nil
}

func (s *Store) checkRange(id PageID) error {
	if n := PageID(s.numPages.Load()); id == InvalidPage || id >= n {
		return fmt.Errorf("%w: page %d of %d", ErrPageRange, id, n)
	}
	return nil
}

// Header layout (page 0 payload):
//
//	[0:4]   magic
//	[4:8]   version
//	[8:12]  numPages
//	[12:16] freeHead (InvalidPage under a volatile free list)
//	[16:20] userRoot
//	[20:84] userMeta
//	[84:92] checkpoint LSN
//	[92:100] replica LSN (followers only; zero otherwise)
func (s *Store) flushHeaderLocked() error {
	buf := make([]byte, payloadSize)
	putBE32(buf[0:4], magic)
	putBE32(buf[4:8], version)
	putBE32(buf[8:12], s.numPages.Load())
	head := s.freeHead
	if s.volatileFree {
		head = InvalidPage
	}
	putBE32(buf[12:16], uint32(head))
	putBE32(buf[16:20], uint32(s.userRoot))
	copy(buf[20:84], s.userMeta[:])
	putBE64(buf[84:92], s.ckptLSN)
	putBE64(buf[92:100], s.replLSN)
	raw := make([]byte, PageSize)
	copy(raw, buf)
	putBE32(raw[payloadSize:], crc32.ChecksumIEEE(raw[:payloadSize]))
	if _, err := s.file.WriteAt(raw, 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	s.dirtyHdr = false
	return nil
}

func (s *Store) readHeader() error {
	raw := make([]byte, PageSize)
	if _, err := s.file.ReadAt(raw, 0); err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	payload := raw[:payloadSize]
	if got := crc32.ChecksumIEEE(payload); got != be32(raw[payloadSize:]) {
		return fmt.Errorf("%w: header", ErrChecksum)
	}
	if be32(payload[0:4]) != magic {
		return errors.New("pager: bad magic, not a page store")
	}
	if v := be32(payload[4:8]); v != version {
		return fmt.Errorf("pager: unsupported version %d", v)
	}
	s.numPages.Store(be32(payload[8:12]))
	s.freeHead = PageID(be32(payload[12:16]))
	if s.volatileFree {
		// The durable chain (if any, e.g. a file written without a WAL)
		// is ignored; the owner rebuilds the free set from reachability
		// after recovery.
		s.freeHead = InvalidPage
	}
	s.userRoot = PageID(be32(payload[16:20]))
	copy(s.userMeta[:], payload[20:84])
	s.ckptLSN = be64(payload[84:92])
	s.replLSN = be64(payload[92:100])
	return nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func be64(b []byte) uint64 {
	return uint64(be32(b[:4]))<<32 | uint64(be32(b[4:8]))
}

func putBE64(b []byte, v uint64) {
	putBE32(b[:4], uint32(v>>32))
	putBE32(b[4:8], uint32(v))
}
