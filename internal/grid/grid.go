// Package grid implements the density grid behind the paper's
// density-based pruning (DEP, Section 3.3.3): the object space is divided
// into square cells and each cell records how many objects it contains.
// Summing the counts of every cell that intersects a rectangle yields an
// upper bound on the number of objects inside the rectangle; when that
// bound is below the query's n, the rectangle cannot host a qualified
// window and DEP prunes the index node or cancels the window query.
package grid

import (
	"fmt"

	"nwcq/internal/geom"
)

// Density is a density grid over a bounded object space.
//
// Counts are stored per row so that the copy-on-write derivations
// (WithAdd, WithRemove) can produce an updated grid by cloning the row
// directory plus the single affected row — a few hundred words for the
// paper's 400 × 400 default — while sharing every untouched row with
// the original. A Density reached only through WithAdd/WithRemove is
// effectively immutable and safe for concurrent readers; the in-place
// Add/Remove methods remain for single-owner bulk construction and must
// never run on a grid that concurrent queries can see.
type Density struct {
	space    geom.Rect
	cellSize float64
	nx, ny   int
	rows     [][]uint32 // rows[cy][cx]
	total    int
}

// New builds a density grid over space with square cells of side
// cellSize (the paper's "grid size"; its default experimental setting is
// 25 on a 10,000-wide space, i.e. a 400 × 400 grid). Cells at the top
// and right edge may extend beyond the space.
func New(space geom.Rect, cellSize float64, pts []geom.Point) (*Density, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("grid: cell size %g must be positive", cellSize)
	}
	if space.IsEmpty() || space.Width() <= 0 || space.Height() <= 0 {
		return nil, fmt.Errorf("grid: invalid space %v", space)
	}
	d := &Density{
		space:    space,
		cellSize: cellSize,
		nx:       int(space.Width()/cellSize) + 1,
		ny:       int(space.Height()/cellSize) + 1,
	}
	// One backing array, sliced into rows: same locality as the old
	// flat layout for the build, while rows stay independently
	// shareable afterwards.
	flat := make([]uint32, d.nx*d.ny)
	d.rows = make([][]uint32, d.ny)
	for cy := 0; cy < d.ny; cy++ {
		d.rows[cy] = flat[cy*d.nx : (cy+1)*d.nx : (cy+1)*d.nx]
	}
	for _, p := range pts {
		cx, cy, ok := d.cellOf(p)
		if !ok {
			return nil, fmt.Errorf("grid: point %v outside space %v", p, space)
		}
		d.rows[cy][cx]++
		d.total++
	}
	return d, nil
}

// cellOf maps a point to its cell coordinates.
func (d *Density) cellOf(p geom.Point) (cx, cy int, ok bool) {
	if !d.space.ContainsPoint(p) {
		return 0, 0, false
	}
	cx = int((p.X - d.space.MinX) / d.cellSize)
	cy = int((p.Y - d.space.MinY) / d.cellSize)
	if cx >= d.nx {
		cx = d.nx - 1
	}
	if cy >= d.ny {
		cy = d.ny - 1
	}
	return cx, cy, true
}

// CellSize returns the configured cell side length.
func (d *Density) CellSize() float64 { return d.cellSize }

// Dims returns the number of cells along x and y.
func (d *Density) Dims() (nx, ny int) { return d.nx, d.ny }

// Total returns the number of indexed objects.
func (d *Density) Total() int { return d.total }

// StorageBytes returns the memory footprint of the cell counters. The
// paper stores one short integer per cell (Section 5.2: a 400 × 400 grid
// occupies about 312 KB); we report the same two bytes per cell so the
// storage-overhead experiment matches.
func (d *Density) StorageBytes() int { return d.nx * d.ny * 2 }

// UpperBound returns an upper bound on the number of objects within rect
// (Algorithm 2's ub): the sum of the counts of all cells intersecting
// rect. Cells partially covered by rect contribute their full count, so
// the result can exceed — but never undercount — the true population.
func (d *Density) UpperBound(rect geom.Rect) int {
	rect = rect.Intersection(d.space)
	if rect.IsEmpty() {
		return 0
	}
	x0 := int((rect.MinX - d.space.MinX) / d.cellSize)
	y0 := int((rect.MinY - d.space.MinY) / d.cellSize)
	x1 := int((rect.MaxX - d.space.MinX) / d.cellSize)
	y1 := int((rect.MaxY - d.space.MinY) / d.cellSize)
	if x1 >= d.nx {
		x1 = d.nx - 1
	}
	if y1 >= d.ny {
		y1 = d.ny - 1
	}
	sum := 0
	for cy := y0; cy <= y1; cy++ {
		row := d.rows[cy]
		for cx := x0; cx <= x1; cx++ {
			sum += int(row[cx])
		}
	}
	return sum
}

// PrunesRect implements Algorithm 2 (isPrunedByDEP): it reports whether
// rect cannot contain n objects according to the grid's upper bound.
func (d *Density) PrunesRect(rect geom.Rect, n int) bool {
	return d.UpperBound(rect) < n
}

// Space returns the grid's object space.
func (d *Density) Space() geom.Rect { return d.space }

// Add counts a newly inserted object in place. It fails when p lies
// outside the grid's space; callers then rebuild the grid over an
// enlarged space. In-place mutation is for single-owner grids only —
// published grids derive updates with WithAdd.
func (d *Density) Add(p geom.Point) error {
	cx, cy, ok := d.cellOf(p)
	if !ok {
		return fmt.Errorf("grid: point %v outside space %v", p, d.space)
	}
	d.rows[cy][cx]++
	d.total++
	return nil
}

// Remove uncounts a deleted object in place. Removing an object that
// was never added corrupts the bound and is rejected. See Add for the
// single-owner caveat.
func (d *Density) Remove(p geom.Point) error {
	cx, cy, ok := d.cellOf(p)
	if !ok {
		return fmt.Errorf("grid: point %v outside space %v", p, d.space)
	}
	if d.rows[cy][cx] == 0 {
		return fmt.Errorf("grid: removing %v from an empty cell", p)
	}
	d.rows[cy][cx]--
	d.total--
	return nil
}

// withRow returns a copy of d whose row directory is fresh and whose
// row cy is a private clone, ready to be edited without disturbing d.
func (d *Density) withRow(cy int) *Density {
	nd := *d
	nd.rows = make([][]uint32, len(d.rows))
	copy(nd.rows, d.rows)
	row := make([]uint32, d.nx)
	copy(row, d.rows[cy])
	nd.rows[cy] = row
	return &nd
}

// WithAdd returns a new grid equal to d plus one object at p, sharing
// every row except the affected one. d is not modified and stays safe
// for concurrent readers.
func (d *Density) WithAdd(p geom.Point) (*Density, error) {
	cx, cy, ok := d.cellOf(p)
	if !ok {
		return nil, fmt.Errorf("grid: point %v outside space %v", p, d.space)
	}
	nd := d.withRow(cy)
	nd.rows[cy][cx]++
	nd.total++
	return nd, nil
}

// WithRemove returns a new grid equal to d minus one object at p,
// sharing every row except the affected one. d is not modified and
// stays safe for concurrent readers.
func (d *Density) WithRemove(p geom.Point) (*Density, error) {
	cx, cy, ok := d.cellOf(p)
	if !ok {
		return nil, fmt.Errorf("grid: point %v outside space %v", p, d.space)
	}
	if d.rows[cy][cx] == 0 {
		return nil, fmt.Errorf("grid: removing %v from an empty cell", p)
	}
	nd := d.withRow(cy)
	nd.rows[cy][cx]--
	nd.total--
	return nd, nil
}
