package grid

import (
	"math/rand"
	"testing"

	"nwcq/internal/geom"
)

func TestNewValidation(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	if _, err := New(space, 0, nil); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := New(space, -5, nil); err == nil {
		t.Error("negative cell size accepted")
	}
	if _, err := New(geom.EmptyRect(), 10, nil); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := New(space, 10, []geom.Point{{X: 200, Y: 0}}); err == nil {
		t.Error("out-of-space point accepted")
	}
}

func TestDimsMatchPaper(t *testing.T) {
	// Section 5.2: grid size 25 on a 10,000-wide space gives 160,000
	// cells at ~312 KB of short integers.
	space := geom.NewRect(0, 0, 10000, 10000)
	d, err := New(space, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := d.Dims()
	if nx*ny < 160000 || nx*ny > 161*1001 {
		t.Errorf("dims %dx%d = %d cells, paper has 160000", nx, ny, nx*ny)
	}
	if d.StorageBytes() < 320000 || d.StorageBytes() > 322*1004 {
		t.Errorf("storage %d bytes, paper reports ~312KB", d.StorageBytes())
	}
}

func TestUpperBoundNeverUndercounts(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	for _, cell := range []float64{7, 25, 100, 333, 2000} {
		d, err := New(space, cell, pts)
		if err != nil {
			t.Fatal(err)
		}
		if d.Total() != len(pts) {
			t.Fatalf("total %d, want %d", d.Total(), len(pts))
		}
		for i := 0; i < 500; i++ {
			r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
				rng.Float64()*1000, rng.Float64()*1000)
			exact := 0
			for _, p := range pts {
				if r.ContainsPoint(p) {
					exact++
				}
			}
			ub := d.UpperBound(r)
			if ub < exact {
				t.Fatalf("cell=%g rect=%v: upper bound %d < exact %d", cell, r, ub, exact)
			}
			// The bound is limited by the cells the rect touches plus one
			// ring of partial cells; sanity-check it is not wildly loose.
			grown := r.Buffer(cell, cell)
			loose := 0
			for _, p := range pts {
				if grown.ContainsPoint(p) {
					loose++
				}
			}
			if ub > loose {
				t.Fatalf("cell=%g: upper bound %d exceeds one-ring population %d", cell, ub, loose)
			}
		}
	}
}

func TestUpperBoundFullAndOutside(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 50}, {X: 100, Y: 100}}
	d, err := New(space, 10, pts)
	if err != nil {
		t.Fatal(err)
	}
	if ub := d.UpperBound(space); ub != 3 {
		t.Errorf("full-space bound %d, want 3", ub)
	}
	if ub := d.UpperBound(geom.NewRect(-50, -50, -1, -1)); ub != 0 {
		t.Errorf("outside bound %d, want 0", ub)
	}
	if ub := d.UpperBound(geom.NewRect(-1000, -1000, 1000, 1000)); ub != 3 {
		t.Errorf("superset bound %d, want 3", ub)
	}
	if ub := d.UpperBound(geom.EmptyRect()); ub != 0 {
		t.Errorf("empty-rect bound %d, want 0", ub)
	}
}

func TestBoundaryPointsCounted(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	// Points exactly on space and cell boundaries.
	pts := []geom.Point{
		{X: 100, Y: 100}, // top-right corner of the space
		{X: 10, Y: 10},   // cell corner
		{X: 0, Y: 100},
	}
	d, err := New(space, 10, pts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 3 {
		t.Fatalf("total %d", d.Total())
	}
	for _, p := range pts {
		if ub := d.UpperBound(geom.RectAround(p)); ub < 1 {
			t.Errorf("boundary point %v not counted (ub=%d)", p, ub)
		}
	}
}

func TestPrunesRect(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	var pts []geom.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Point{X: 5, Y: 5, ID: uint64(i)}) // all in one cell
	}
	d, err := New(space, 10, pts)
	if err != nil {
		t.Fatal(err)
	}
	dense := geom.NewRect(0, 0, 9, 9)
	empty := geom.NewRect(50, 50, 90, 90)
	if d.PrunesRect(dense, 10) {
		t.Error("pruned a rect with enough objects")
	}
	if !d.PrunesRect(dense, 11) {
		t.Error("kept a rect that cannot satisfy n")
	}
	if !d.PrunesRect(empty, 1) {
		t.Error("kept an empty region")
	}
}

func TestCellSizeLargerThanSpace(t *testing.T) {
	space := geom.NewRect(0, 0, 10, 10)
	d, err := New(space, 100, []geom.Point{{X: 5, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := d.Dims()
	if nx != 1 || ny != 1 {
		t.Errorf("dims %dx%d, want 1x1", nx, ny)
	}
	if ub := d.UpperBound(geom.NewRect(8, 8, 9, 9)); ub != 1 {
		t.Errorf("single-cell bound %d, want 1 (whole cell counts)", ub)
	}
}

func TestAddRemove(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	d, err := New(space, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{X: 15, Y: 15}
	if err := d.Add(p); err != nil {
		t.Fatal(err)
	}
	if d.Total() != 1 || d.UpperBound(geom.NewRect(10, 10, 20, 20)) != 1 {
		t.Fatalf("count after add: total=%d", d.Total())
	}
	if err := d.Remove(p); err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 || d.UpperBound(space) != 0 {
		t.Fatalf("count after remove: total=%d", d.Total())
	}
	// Errors: outside space, and removal from an empty cell.
	if err := d.Add(geom.Point{X: 500, Y: 0}); err == nil {
		t.Error("out-of-space add accepted")
	}
	if err := d.Remove(p); err == nil {
		t.Error("underflow remove accepted")
	}
	if err := d.Remove(geom.Point{X: -5, Y: 0}); err == nil {
		t.Error("out-of-space remove accepted")
	}
}

func TestAddRemoveMatchesRebuild(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(9))
	var live []geom.Point
	d, err := New(space, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			if err := d.Remove(live[j]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		} else {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
	}
	rebuilt, err := New(space, 25, live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		if a, b := d.UpperBound(r), rebuilt.UpperBound(r); a != b {
			t.Fatalf("incremental bound %d, rebuilt %d for %v", a, b, r)
		}
	}
}

func TestWithAddWithRemoveCopyOnWrite(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	base, err := New(space, 25, pts)
	if err != nil {
		t.Fatal(err)
	}

	// Derive a long chain of COW updates, checking the base never moves.
	baseBound := base.UpperBound(space)
	cur := base
	live := append([]geom.Point(nil), pts...)
	for step := 0; step < 300; step++ {
		if step%2 == 0 {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(100000 + step)}
			next, err := cur.WithAdd(p)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Total() != len(live) {
				t.Fatalf("step %d: WithAdd mutated receiver total", step)
			}
			live = append(live, p)
			cur = next
		} else {
			victim := live[rng.Intn(len(live))]
			next, err := cur.WithRemove(victim)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Total() != len(live) {
				t.Fatalf("step %d: WithRemove mutated receiver total", step)
			}
			for i := range live {
				if live[i] == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			cur = next
		}
		if cur.Total() != len(live) {
			t.Fatalf("step %d: total %d, want %d", step, cur.Total(), len(live))
		}
	}
	if got := base.UpperBound(space); got != baseBound {
		t.Fatalf("base grid changed: bound %d, want %d", got, baseBound)
	}
	// The final grid must agree cell-for-cell with a fresh build.
	fresh, err := New(space, 25, live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		if a, b := cur.UpperBound(r), fresh.UpperBound(r); a != b {
			t.Fatalf("rect %d: COW bound %d, fresh bound %d", i, a, b)
		}
	}

	if _, err := base.WithAdd(geom.Point{X: -1, Y: -1}); err == nil {
		t.Error("WithAdd outside space accepted")
	}
	empty, err := New(space, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.WithRemove(geom.Point{X: 5, Y: 5}); err == nil {
		t.Error("WithRemove from empty cell accepted")
	}
}
