package costmodel

import (
	"math"
	"testing"
)

func defaultModel() Model {
	// 250,000 objects in a 10,000² space: the paper's Gaussian-dataset
	// cardinality at uniform density.
	return Model{Lambda: 250000.0 / 1e8, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
}

func TestValidate(t *testing.T) {
	good := defaultModel()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{Lambda: 0, SpaceWidth: 1, FanOut: 50, FillFactor: 0.7},
		{Lambda: 1, SpaceWidth: 0, FanOut: 50, FillFactor: 0.7},
		{Lambda: 1, SpaceWidth: 1, FanOut: 1, FillFactor: 0.7},
		{Lambda: 1, SpaceWidth: 1, FanOut: 50, FillFactor: 0},
		{Lambda: 1, SpaceWidth: 1, FanOut: 50, FillFactor: 1.5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

func TestPNotQualifiedProperties(t *testing.T) {
	m := defaultModel()
	// A probability in [0, 1], decreasing in window size, increasing in n.
	prev := -1.0
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		p := m.PNotQualified(8, 8, n)
		if p < 0 || p > 1 {
			t.Fatalf("P(n=%d) = %g outside [0,1]", n, p)
		}
		if p < prev {
			t.Fatalf("P should not decrease with n: P(n=%d)=%g < %g", n, p, prev)
		}
		prev = p
	}
	pSmall := m.PNotQualified(4, 4, 8)
	pBig := m.PNotQualified(64, 64, 8)
	if pBig > pSmall {
		t.Errorf("larger windows should qualify more easily: %g > %g", pBig, pSmall)
	}
	// Known value: n=1 means P = e^{-λlw}.
	mean := m.Lambda * 8 * 8
	if got, want := m.PNotQualified(8, 8, 1), math.Exp(-mean); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(n=1) = %g, want e^-mean = %g", got, want)
	}
	// Large-mean stability: no NaN/Inf.
	if p := m.PNotQualified(1000, 1000, 3); math.IsNaN(p) || p < 0 {
		t.Errorf("large-mean P = %g", p)
	}
}

func TestNRects(t *testing.T) {
	// Equation (9): 8i − 4; ring areas tile the space consistently —
	// the cumulative count is (2i)².
	cum := 0.0
	for i := 1; i <= 20; i++ {
		if got, want := NRects(i), float64(8*i-4); got != want {
			t.Fatalf("N(%d) = %g, want %g", i, got, want)
		}
		cum += NRects(i)
		if want := float64(4 * i * i); cum != want {
			t.Fatalf("cumulative rings through %d = %g, want %g", i, cum, want)
		}
	}
	if NRects(0) != 0 {
		t.Error("N(0) should be 0")
	}
}

func TestQNoQualifiedMonotone(t *testing.T) {
	m := defaultModel()
	// More rings at larger i mean more chances to qualify: Q decreases.
	prev := 1.1
	for i := 1; i <= 6; i++ {
		q := m.QNoQualified(16, 16, 8, i)
		if q < 0 || q > 1 {
			t.Fatalf("Q(%d) = %g outside [0,1]", i, q)
		}
		if q > prev {
			t.Fatalf("Q should not increase with i: Q(%d)=%g > %g", i, q, prev)
		}
		prev = q
	}
	if q := m.QNoQualified(16, 16, 8, 0); q != 1 {
		t.Errorf("Q(0) = %g, want 1", q)
	}
}

func TestObjectsThroughLevel(t *testing.T) {
	m := defaultModel()
	// O(i) = 2 i² λ l w: matches N-rect accumulation times per-ring
	// density (each ring rect holds λ·l·w objects, 4i² rects halved by
	// the upper-half convention of the derivation).
	for i := 1; i <= 5; i++ {
		got := m.ObjectsThroughLevel(8, 8, i)
		want := 2 * float64(i*i) * m.Lambda * 64
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("O(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestWindowQueryCostBehaviour(t *testing.T) {
	m := defaultModel()
	small := m.WindowQueryCost(8, 8)
	big := m.WindowQueryCost(512, 512)
	if small < 1 {
		t.Errorf("window cost %g below root access", small)
	}
	if big <= small {
		t.Errorf("bigger windows must cost more: %g <= %g", big, small)
	}
	full := m.WindowQueryCost(m.SpaceWidth, m.SpaceWidth)
	if full > m.FullScanCost()+1 {
		t.Errorf("full-space window %g exceeds full scan %g", full, m.FullScanCost())
	}
}

func TestKNNCostBehaviour(t *testing.T) {
	m := defaultModel()
	prev := 0.0
	for _, k := range []float64{1, 10, 100, 1000, 10000} {
		c := m.KNNCost(k)
		if c < 1 {
			t.Fatalf("KNN(%g) = %g below root access", k, c)
		}
		if c < prev {
			t.Fatalf("KNN cost must not decrease with k: KNN(%g)=%g < %g", k, c, prev)
		}
		prev = c
	}
	if got := m.KNNCost(0); got < 1 {
		t.Errorf("KNN(0) = %g", got)
	}
}

func TestFullScanCost(t *testing.T) {
	m := defaultModel()
	// ~250k objects at 35/leaf: ≥ 7142 leaves plus internals.
	fs := m.FullScanCost()
	if fs < 7000 || fs > 9000 {
		t.Errorf("full scan cost %g implausible for 250k objects", fs)
	}
}

func TestNWCCostBehaviour(t *testing.T) {
	m := defaultModel()
	// Feasible regime: a 64 × 64 window holds λ·l·w ≈ 10 objects on
	// average, so n = 4 qualifies near the query point and the search
	// stays far below a full traversal.
	cEasy, err := m.NWCCost(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cEasy <= 0 || math.IsNaN(cEasy) {
		t.Fatalf("NWCCost = %g", cEasy)
	}
	if cEasy > m.FullScanCost()/4 {
		t.Errorf("easy query cost %g not well below full scan %g", cEasy, m.FullScanCost())
	}
	// Within the feasible regime, raising n raises the expected cost.
	cHarder, err := m.NWCCost(64, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cHarder < cEasy {
		t.Errorf("n=9 cost %g below n=4 cost %g", cHarder, cEasy)
	}
	// An impossible query costs at least the full traversal.
	cHuge, err := m.NWCCost(8, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if cHuge < m.FullScanCost()*0.99 {
		t.Errorf("impossible query cost %g below full scan %g", cHuge, m.FullScanCost())
	}
	if _, err := m.NWCCost(-1, 8, 8); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := m.NWCCost(8, 8, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestNWCCostDensityEffect(t *testing.T) {
	// For a fixed feasible query, the dense dataset qualifies in the
	// first rings while the sparse one degenerates toward its own full
	// scan.
	dense := Model{Lambda: 25e-4, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
	sparse := Model{Lambda: 25e-6, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
	cd, err := dense.NWCCost(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sparse.NWCCost(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cd > dense.FullScanCost()/4 {
		t.Errorf("dense cost %g not well below full scan %g", cd, dense.FullScanCost())
	}
	if cs < sparse.FullScanCost()/2 {
		t.Errorf("sparse cost %g should approach full scan %g", cs, sparse.FullScanCost())
	}
}

func TestKNWCCostBehaviour(t *testing.T) {
	m := defaultModel()
	// Feasible regime (λ·l·w ≈ 10 ≥ n = 4): retrieving more groups
	// costs more, and relaxing the overlap constraint costs less.
	c1, err := m.KNWCCost(64, 64, 4, KNWCParams{K: 1, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	c8, err := m.KNWCCost(64, 64, 4, KNWCParams{K: 8, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c8 < c1 {
		t.Errorf("k=8 cost %g below k=1 cost %g", c8, c1)
	}
	cM0, err := m.KNWCCost(64, 64, 4, KNWCParams{K: 4, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	cM4, err := m.KNWCCost(64, 64, 4, KNWCParams{K: 4, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cM4 > cM0+1e-9 {
		t.Errorf("m=3 cost %g above m=0 cost %g", cM4, cM0)
	}
	if _, err := m.KNWCCost(16, 16, 8, KNWCParams{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := m.KNWCCost(16, 16, 8, KNWCParams{K: 1, M: -1}); err == nil {
		t.Error("negative m accepted")
	}
}

func TestBinomPMFSanity(t *testing.T) {
	// Sums to ~1 over the support for integer totals.
	total := 20.0
	p := 0.3
	sum := 0.0
	for i := 0.0; i <= total; i++ {
		v := binomPMF(total, i, p)
		if v < 0 || v > 1 {
			t.Fatalf("pmf(%g) = %g", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %g", sum)
	}
	if binomPMF(10, 11, 0.5) != 0 {
		t.Error("out-of-support pmf nonzero")
	}
	if binomPMF(10, 0, 0) != 1 || binomPMF(10, 10, 1) != 1 {
		t.Error("degenerate pmf wrong")
	}
}

func TestLogChoose(t *testing.T) {
	// Matches exact small binomials.
	cases := []struct {
		a, b float64
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20},
	}
	for _, c := range cases {
		got := math.Exp(logChoose(c.a, c.b))
		if math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("C(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}
