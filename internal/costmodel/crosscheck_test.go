package costmodel

import (
	"math/rand"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/rstar"
)

// Cross-validation of the per-operation estimators against a real
// R*-tree on uniform data: the closed forms should land within a small
// constant factor of measured node accesses — the accuracy class the
// Section 4 model needs to be useful.

func buildUniformTree(t *testing.T, n int, fanOut int) *rstar.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tr, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: fanOut})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: uint64(i)}
	}
	if err := tr.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWindowQueryCostAgainstMeasured(t *testing.T) {
	const n = 50000
	m := Model{Lambda: n / 1e8, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
	tr := buildUniformTree(t, n, 50)
	rng := rand.New(rand.NewSource(8))
	for _, side := range []float64{50, 200, 800} {
		predicted := m.WindowQueryCost(side, side)
		tr.ResetVisits()
		const trials = 50
		for i := 0; i < trials; i++ {
			x := rng.Float64() * (10000 - side)
			y := rng.Float64() * (10000 - side)
			if _, err := tr.SearchCollect(geom.NewRect(x, y, x+side, y+side)); err != nil {
				t.Fatal(err)
			}
		}
		measured := float64(tr.Visits()) / trials
		ratio := predicted / measured
		t.Logf("window %g: predicted %.1f, measured %.1f (ratio %.2f)", side, predicted, measured, ratio)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("window %g: predicted %.1f vs measured %.1f outside 4x band",
				side, predicted, measured)
		}
	}
}

func TestKNNCostAgainstMeasured(t *testing.T) {
	const n = 50000
	m := Model{Lambda: n / 1e8, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
	tr := buildUniformTree(t, n, 50)
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 16, 256} {
		predicted := m.KNNCost(float64(k))
		tr.ResetVisits()
		const trials = 50
		for i := 0; i < trials; i++ {
			q := geom.Point{X: 1000 + rng.Float64()*8000, Y: 1000 + rng.Float64()*8000}
			if _, err := tr.NearestK(q, k); err != nil {
				t.Fatal(err)
			}
		}
		measured := float64(tr.Visits()) / trials
		ratio := predicted / measured
		t.Logf("k=%d: predicted %.1f, measured %.1f (ratio %.2f)", k, predicted, measured, ratio)
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("k=%d: predicted %.1f vs measured %.1f outside 5x band", k, predicted, measured)
		}
	}
}

func TestFullScanAgainstMeasured(t *testing.T) {
	const n = 50000
	m := Model{Lambda: n / 1e8, SpaceWidth: 10000, FanOut: 50, FillFactor: 0.7}
	tr := buildUniformTree(t, n, 50)
	nodes, err := tr.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	predicted := m.FullScanCost()
	ratio := predicted / float64(nodes)
	t.Logf("full scan: predicted %.0f, actual nodes %d (ratio %.2f)", predicted, nodes, ratio)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("full-scan estimate %.0f vs %d nodes outside 2x band", predicted, nodes)
	}
}
