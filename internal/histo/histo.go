// Package histo implements the log-bucketed latency histogram shared by
// the in-process metrics aggregates (internal/metrics) and the load
// harness (internal/loadgen, cmd/nwcload). One implementation keeps the
// quantile semantics identical on both sides of the wire: the p99 a
// server reports and the p99 the load generator measures are estimated
// the same way, so they can be compared directly.
//
// Observe is wait-free — one binary search over the (immutable) bounds,
// two atomic adds and a CAS loop on the float64 running sum — so a
// histogram can sit on a hot query path or be shared by hundreds of
// load-generator workers without contention. Quantiles are estimated
// from a Snapshot by linear interpolation inside the bucket containing
// the target rank; with ×1.25 log-spaced buckets the estimate is within
// ~12% of the true value, tight enough for SLO verdicts at p999.
package histo

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. The zero value is
// not usable; construct with New or Must.
type Histogram struct {
	bounds []float64       // ascending bucket upper bounds (inclusive)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// New builds a histogram with the given ascending bucket upper bounds.
// An observation v lands in the first bucket with v <= bound; values
// above every bound land in an implicit overflow bucket.
func New(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("histo: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("histo: bounds not strictly ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}, nil
}

// Must is New panicking on invalid bounds; for package-level
// construction with known-good bounds.
func Must(bounds []float64) *Histogram {
	h, err := New(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// LogBuckets returns n strictly ascending bucket bounds starting at
// start and growing by factor: start, start*factor, start*factor², …
func LogBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the bucket ladder the load harness records into:
// 1µs to ~1600s in ×1.25 steps (96 buckets), fine enough that a p999
// read off the histogram is within ~12% of the true tail value.
func LatencyBuckets() []float64 { return LogBuckets(1e-6, 1.25, 96) }

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot is a point-in-time copy of a histogram, suitable for
// quantile estimation and JSON serialisation.
type Snapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may straddle the copy; each bucket value is individually consistent.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observation, 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. Results are
// clamped to the histogram's bound range. An empty histogram yields
// NaN: a distribution with no samples has no quantiles, and the old
// silent 0 read as "perfect p99" in lag and load reports. Callers that
// must encode the value (JSON rejects NaN) use QuantileOr.
func (s Snapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if next == cum {
				return hi
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileOr is Quantile with an explicit empty-histogram fallback, for
// reports that serialise the value (encoding/json rejects NaN). The
// report must carry the sample count alongside so a fallback zero stays
// distinguishable from a real measurement.
func (s Snapshot) QuantileOr(q, empty float64) float64 {
	if v := s.Quantile(q); !math.IsNaN(v) {
		return v
	}
	return empty
}
