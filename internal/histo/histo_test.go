package histo

import (
	"math"
	"sync"
	"testing"
)

func TestNewRejectsBadBounds(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := New([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := New([]float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestObserveAndQuantile(t *testing.T) {
	h := Must(LogBuckets(1, 2, 12))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Errorf("mean = %g", got)
	}
	// Log-bucketed estimates carry up to one bucket factor of error.
	for _, c := range []struct{ q, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990}, {0.999, 999},
	} {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%g = %g, want within 2x of %g", c.q, got, c.want)
		}
	}
}

func TestOverflowBucket(t *testing.T) {
	h := Must([]float64{1, 2})
	h.Observe(100) // above every bound
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d", s.Counts[len(s.Counts)-1])
	}
	// Quantiles clamp to the largest bound.
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2", got)
	}
}

func TestNaNDropped(t *testing.T) {
	h := Must([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN recorded: count = %d", h.Count())
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := Must(LatencyBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += float64(w+1) * 1e-4 * per
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestLatencyBucketsCoverTail(t *testing.T) {
	b := LatencyBuckets()
	if b[0] > 1e-6 {
		t.Errorf("first bound %g above 1µs", b[0])
	}
	if last := b[len(b)-1]; last < 60 {
		t.Errorf("last bound %g below 60s — stalled-server tails would all overflow", last)
	}
}

func BenchmarkObserve(b *testing.B) {
	h := Must(LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-3)
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	h := Must(LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1e-3)
		}
	})
}
