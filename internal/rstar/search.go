package rstar

import "nwcq/internal/geom"

// Search performs a window (range) query: fn is called for every indexed
// point inside rect (closed boundaries). fn returning false stops the
// search early. Every node touched counts as one visit.
//
// Queries needing cancellation or per-query I/O accounting should use a
// Reader (Tree.Reader) instead; this method counts only the cumulative
// total.
func (t *Tree) Search(rect geom.Rect, fn func(p geom.Point) bool) error {
	return t.Reader(nil, nil).Search(rect, fn)
}

// SearchFrom runs a window query over the subtree rooted at id. See
// Reader.SearchFrom; this variant has no context and no per-query
// accounting.
func (t *Tree) SearchFrom(id NodeID, rect geom.Rect, fn func(p geom.Point) bool) (bool, error) {
	return t.Reader(nil, nil).SearchFrom(id, rect, fn)
}

// SearchCollect runs Search and returns the matching points.
func (t *Tree) SearchCollect(rect geom.Rect) ([]geom.Point, error) {
	return t.Reader(nil, nil).SearchCollect(rect)
}

// All returns every indexed point in unspecified order.
func (t *Tree) All() ([]geom.Point, error) {
	out := make([]geom.Point, 0, t.count)
	err := t.walk(t.root, func(n *Node) bool {
		if n.Leaf {
			out = append(out, n.Points...)
		}
		return true
	})
	return out, err
}

// walk visits every node of the subtree depth-first. fn returning false
// prunes the node's subtree.
func (t *Tree) walk(id NodeID, fn func(n *Node) bool) error {
	node, err := t.store.Get(id)
	if err != nil {
		return err
	}
	if !fn(node) || node.Leaf {
		return nil
	}
	for _, c := range node.Children {
		if err := t.walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// Walk exposes a read-only depth-first traversal of the tree's nodes.
// It is used by the IWP build pass and by invariant checks; every node
// access is counted like any other visit.
func (t *Tree) Walk(fn func(n *Node) bool) error {
	return t.walk(t.root, fn)
}
