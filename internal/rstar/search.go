package rstar

import "nwcq/internal/geom"

// Search performs a window (range) query: fn is called for every indexed
// point inside rect (closed boundaries). fn returning false stops the
// search early. Every node touched counts as one visit.
func (t *Tree) Search(rect geom.Rect, fn func(p geom.Point) bool) error {
	_, err := t.SearchFrom(t.root, rect, fn)
	return err
}

// SearchFrom runs a window query over the subtree rooted at id. It is
// the primitive behind both traditional window queries (id = root) and
// IWP's incremental processing, which starts from intermediate nodes
// reached via backward pointers. It reports whether the traversal ran to
// completion (false when fn stopped it).
func (t *Tree) SearchFrom(id NodeID, rect geom.Rect, fn func(p geom.Point) bool) (bool, error) {
	if rect.IsEmpty() {
		return true, nil
	}
	node, err := t.store.Get(id)
	if err != nil {
		return false, err
	}
	if node.Leaf {
		for _, p := range node.Points {
			if rect.ContainsPoint(p) && !fn(p) {
				return false, nil
			}
		}
		return true, nil
	}
	for i, childRect := range node.Rects {
		if !rect.Intersects(childRect) {
			continue
		}
		done, err := t.SearchFrom(node.Children[i], rect, fn)
		if err != nil || !done {
			return done, err
		}
	}
	return true, nil
}

// SearchCollect runs Search and returns the matching points.
func (t *Tree) SearchCollect(rect geom.Rect) ([]geom.Point, error) {
	var out []geom.Point
	err := t.Search(rect, func(p geom.Point) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// All returns every indexed point in unspecified order.
func (t *Tree) All() ([]geom.Point, error) {
	out := make([]geom.Point, 0, t.count)
	err := t.walk(t.root, func(n *Node) bool {
		if n.Leaf {
			out = append(out, n.Points...)
		}
		return true
	})
	return out, err
}

// walk visits every node of the subtree depth-first. fn returning false
// prunes the node's subtree.
func (t *Tree) walk(id NodeID, fn func(n *Node) bool) error {
	node, err := t.store.Get(id)
	if err != nil {
		return err
	}
	if !fn(node) || node.Leaf {
		return nil
	}
	for _, c := range node.Children {
		if err := t.walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// Walk exposes a read-only depth-first traversal of the tree's nodes.
// It is used by the IWP build pass and by invariant checks; every node
// access is counted like any other visit.
func (t *Tree) Walk(fn func(n *Node) bool) error {
	return t.walk(t.root, fn)
}
