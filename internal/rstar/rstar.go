// Package rstar implements a disk-oriented R*-tree over two-dimensional
// points — the spatial index the NWC algorithm runs on (Section 3.2 of
// the paper: "To facilitate efficient visits of data objects, we adopt
// R-tree to index the data objects"; Section 5 uses an R*-tree with page
// size 4096 and fan-out 50).
//
// The tree implements the R*-tree heuristics of Beckmann, Kriegel,
// Schneider and Seeger (SIGMOD 1990): ChooseSubtree with minimum overlap
// enlargement at the leaf level, margin-driven split-axis selection,
// overlap-driven split-index selection, and forced reinsertion. It also
// offers STR (sort-tile-recursive) bulk loading, deletion with
// condense-and-reinsert, window (range) queries, and the incremental
// best-first nearest-neighbour iterator of Hjaltason and Samet (TODS
// 1999) that drives the NWC algorithm's distance-ordered object visits.
//
// Nodes live behind the NodeStore interface. MemStore keeps nodes
// resident; PagedStore serialises each node onto one fixed-size page of
// an internal/pager Store. Either way every node access is counted, and
// that count — "the number of R*-tree nodes visited" — is the paper's
// performance metric.
package rstar

import (
	"errors"
	"fmt"

	"nwcq/internal/geom"
)

// NodeID identifies a node within a store. The zero value is invalid.
type NodeID uint32

// InvalidNode is the nil node reference.
const InvalidNode NodeID = 0

// DefaultMaxEntries matches the paper's fan-out of 50 entries per node.
const DefaultMaxEntries = 50

// Node is an R*-tree node. A leaf holds data points; an internal node
// holds child references with their MBRs, kept index-aligned in Rects
// and Children.
//
// Nodes are owned by the tree's NodeStore: read them via Tree.Node and
// treat them as immutable outside this package.
type Node struct {
	ID   NodeID
	Leaf bool
	// Rects holds, for internal nodes, the MBR of each child.
	Rects []geom.Rect
	// Children holds child node ids; internal nodes only.
	Children []NodeID
	// Points holds the data objects; leaf nodes only.
	Points []geom.Point
}

// Len returns the number of entries in the node.
func (n *Node) Len() int {
	if n.Leaf {
		return len(n.Points)
	}
	return len(n.Children)
}

// MBR returns the minimum bounding rectangle of the node's entries.
func (n *Node) MBR() geom.Rect {
	mbr := geom.EmptyRect()
	if n.Leaf {
		for _, p := range n.Points {
			mbr = mbr.ExtendPoint(p)
		}
		return mbr
	}
	for _, r := range n.Rects {
		mbr = mbr.Union(r)
	}
	return mbr
}

// NodeStore abstracts node persistence. Implementations count node
// accesses (Get) so the tree can report I/O in the paper's metric.
type NodeStore interface {
	// Alloc creates an empty node of the given kind.
	Alloc(leaf bool) (*Node, error)
	// Get fetches a node and counts one visit.
	Get(id NodeID) (*Node, error)
	// Put persists a node after mutation.
	Put(n *Node) error
	// Free releases a node.
	Free(id NodeID) error
	// Root returns the persisted root reference, tree height (number of
	// levels; 1 = root is a leaf) and object count.
	Root() (NodeID, int, int)
	// SetRoot persists the root reference, height and object count.
	SetRoot(id NodeID, height, count int) error
	// Visits returns the number of Get calls since the last reset.
	Visits() uint64
	// ResetVisits zeroes the visit counter.
	ResetVisits()
}

// Options configures a Tree.
type Options struct {
	// MaxEntries is the node fan-out M; DefaultMaxEntries if zero.
	MaxEntries int
	// MinEntries is the underflow threshold m; 40% of MaxEntries if
	// zero, per the R*-tree paper's recommendation.
	MinEntries int
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxEntries == 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.MinEntries == 0 {
		o.MinEntries = o.MaxEntries * 2 / 5
		if o.MinEntries < 1 {
			o.MinEntries = 1
		}
	}
	if o.MaxEntries < 4 {
		return o, fmt.Errorf("rstar: MaxEntries %d too small (minimum 4)", o.MaxEntries)
	}
	if o.MinEntries > o.MaxEntries/2 {
		return o, fmt.Errorf("rstar: MinEntries %d exceeds MaxEntries/2 = %d",
			o.MinEntries, o.MaxEntries/2)
	}
	return o, nil
}

// Tree is an R*-tree. It is not safe for concurrent mutation; concurrent
// read-only queries over a MemStore are safe.
type Tree struct {
	store NodeStore
	opts  Options

	root   NodeID
	height int // levels in the tree; 1 when the root is a leaf
	count  int // number of indexed points

	// reinsertedAtLevel tracks forced reinsertion per level within a
	// single insert, per the R*-tree OverflowTreatment rule.
	reinsertedAtLevel []bool

	// frozen marks an immutable snapshot (see Freeze in snapshot.go);
	// Insert/Delete/BulkLoad refuse to run and changes go through
	// BeginWrite instead.
	frozen bool
}

// New creates an empty tree on store.
func New(store NodeStore, opts Options) (*Tree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{store: store, opts: opts}
	root, err := store.Alloc(true)
	if err != nil {
		return nil, err
	}
	t.root = root.ID
	t.height = 1
	if err := store.Put(root); err != nil {
		return nil, err
	}
	return t, t.persistRoot()
}

// Attach opens a tree previously persisted in store (via its
// Root/SetRoot metadata).
func Attach(store NodeStore, opts Options) (*Tree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	root, height, count := store.Root()
	if root == InvalidNode || height < 1 {
		return nil, errors.New("rstar: store holds no tree")
	}
	return &Tree{store: store, opts: opts, root: root, height: height, count: count}, nil
}

func (t *Tree) persistRoot() error {
	return t.store.SetRoot(t.root, t.height, t.count)
}

// Root returns the root node id.
func (t *Tree) Root() NodeID { return t.root }

// Height returns the number of levels; 1 means the root is a leaf.
func (t *Tree) Height() int { return t.height }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// MaxEntries returns the configured fan-out.
func (t *Tree) MaxEntries() int { return t.opts.MaxEntries }

// Node fetches a node by id, counting one visit on the cumulative
// counter only. Custom traversals that need per-query I/O accounting or
// cancellation — such as the NWC algorithm's pruned best-first search —
// should go through a Reader (Tree.Reader) instead.
func (t *Tree) Node(id NodeID) (*Node, error) { return t.store.Get(id) }

// Visits returns the node-visit count accumulated by the store.
func (t *Tree) Visits() uint64 { return t.store.Visits() }

// ResetVisits zeroes the node-visit counter.
func (t *Tree) ResetVisits() { t.store.ResetVisits() }

// MBR returns the bounding rectangle of all indexed points. It visits
// the root node.
func (t *Tree) MBR() (geom.Rect, error) {
	root, err := t.store.Get(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	return root.MBR(), nil
}

// NodeIDs walks the tree and returns the id of every reachable node
// (root included; empty for an empty tree). Crash recovery uses the set
// to reconstruct the page allocator's free list as the complement of
// reachability. The walk counts visits on the cumulative counter;
// callers that care reset it afterwards.
func (t *Tree) NodeIDs() ([]NodeID, error) {
	if t.root == InvalidNode {
		return nil, nil
	}
	var ids []NodeID
	stack := []NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ids = append(ids, id)
		n, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		if !n.Leaf {
			stack = append(stack, n.Children...)
		}
	}
	return ids, nil
}
