package rstar

import (
	"fmt"

	"nwcq/internal/geom"
)

// CheckInvariants verifies the structural invariants of the tree and
// returns the first violation found. It is used heavily by the test
// suite and available to callers who want to audit a loaded index:
//
//  1. every child MBR recorded in a parent equals the child's actual MBR;
//  2. all leaves sit at the same depth, equal to Height−1;
//  3. every non-root node holds between MinEntries and MaxEntries
//     entries (bulk-loaded trees are exempt from the lower bound, which
//     STR does not guarantee; pass loose=true for them);
//  4. the recorded point count matches the number of stored points.
func (t *Tree) CheckInvariants(loose bool) error {
	root, err := t.store.Get(t.root)
	if err != nil {
		return err
	}
	seen := 0
	if err := t.checkNode(root, 0, true, loose, &seen); err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("rstar: count %d but %d points stored", t.count, seen)
	}
	return nil
}

func (t *Tree) checkNode(node *Node, depth int, isRoot, loose bool, seen *int) error {
	n := node.Len()
	if n > t.opts.MaxEntries {
		return fmt.Errorf("rstar: node %d overflows: %d > %d", node.ID, n, t.opts.MaxEntries)
	}
	if !isRoot && !loose && n < t.opts.MinEntries {
		return fmt.Errorf("rstar: node %d underflows: %d < %d", node.ID, n, t.opts.MinEntries)
	}
	if isRoot && !node.Leaf && n < 2 {
		return fmt.Errorf("rstar: internal root with %d children", n)
	}
	if node.Leaf {
		if depth != t.height-1 {
			return fmt.Errorf("rstar: leaf %d at depth %d, want %d", node.ID, depth, t.height-1)
		}
		*seen += len(node.Points)
		return nil
	}
	if len(node.Rects) != len(node.Children) {
		return fmt.Errorf("rstar: node %d has %d rects for %d children",
			node.ID, len(node.Rects), len(node.Children))
	}
	for i, childID := range node.Children {
		child, err := t.store.Get(childID)
		if err != nil {
			return err
		}
		actual := child.MBR()
		if !rectAlmostEqual(node.Rects[i], actual) {
			return fmt.Errorf("rstar: node %d entry %d MBR %v, child %d actual %v",
				node.ID, i, node.Rects[i], childID, actual)
		}
		if err := t.checkNode(child, depth+1, false, loose, seen); err != nil {
			return err
		}
	}
	return nil
}

func rectAlmostEqual(a, b geom.Rect) bool {
	const eps = 1e-9
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(a.MinX-b.MinX) <= eps && abs(a.MinY-b.MinY) <= eps &&
		abs(a.MaxX-b.MaxX) <= eps && abs(a.MaxY-b.MaxY) <= eps
}

// NumNodes counts the nodes in the tree (one page each in paged form).
func (t *Tree) NumNodes() (int, error) {
	n := 0
	err := t.Walk(func(*Node) bool { n++; return true })
	return n, err
}
