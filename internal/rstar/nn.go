package rstar

import (
	"container/heap"

	"nwcq/internal/geom"
)

// NNIterator enumerates indexed points in ascending order of distance to
// a query point using the best-first (priority-queue) algorithm of
// Hjaltason and Samet. The NWC algorithm's outer loop is exactly such a
// traversal, so the iterator also reports the leaf each point came from —
// the hook IWP needs for its backward pointers.
//
// An iterator built from a Reader inherits the reader's context and
// per-query visit accounting: every node it expands counts on the
// query's own Stats and a cancelled context stops the enumeration with
// the context's error.
type NNIterator struct {
	r   Reader
	q   geom.Point
	pq  nnHeap
	err error
}

// nnItem is a heap element: either an unexpanded node or a point pulled
// out of a leaf.
type nnItem struct {
	dist2 float64
	node  NodeID // InvalidNode for point items
	point geom.Point
	leaf  NodeID // leaf the point came from (point items only)
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist2 < h[j].dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewNNIterator starts a distance-ordered enumeration from q with no
// cancellation and cumulative-only accounting.
func (t *Tree) NewNNIterator(q geom.Point) *NNIterator {
	return t.Reader(nil, nil).NNIterator(q)
}

// NNIterator starts a distance-ordered enumeration from q under the
// reader's context and per-query accounting.
func (r Reader) NNIterator(q geom.Point) *NNIterator {
	it := &NNIterator{r: r, q: q}
	root, err := r.Node(r.t.root)
	if err != nil {
		it.err = err
		return it
	}
	it.pq = nnHeap{{dist2: root.MBR().MinDist2(q), node: r.t.root}}
	heap.Init(&it.pq)
	return it
}

// Next returns the next nearest point, the leaf node it is stored in and
// its squared distance to the query point. ok is false when the
// enumeration is exhausted or an error occurred (see Err).
func (it *NNIterator) Next() (p geom.Point, leaf NodeID, dist2 float64, ok bool) {
	if it.err != nil {
		return geom.Point{}, InvalidNode, 0, false
	}
	for len(it.pq) > 0 {
		item := heap.Pop(&it.pq).(nnItem)
		if item.node == InvalidNode {
			return item.point, item.leaf, item.dist2, true
		}
		node, err := it.r.Node(item.node)
		if err != nil {
			it.err = err
			return geom.Point{}, InvalidNode, 0, false
		}
		if node.Leaf {
			for _, p := range node.Points {
				heap.Push(&it.pq, nnItem{dist2: p.Dist2(it.q), point: p, leaf: node.ID})
			}
			continue
		}
		for i, r := range node.Rects {
			heap.Push(&it.pq, nnItem{dist2: r.MinDist2(it.q), node: node.Children[i]})
		}
	}
	return geom.Point{}, InvalidNode, 0, false
}

// PeekDist2 returns the squared distance key at the head of the queue —
// a lower bound on the distance of everything not yet returned — and
// false when the queue is exhausted.
func (it *NNIterator) PeekDist2() (float64, bool) {
	if it.err != nil || len(it.pq) == 0 {
		return 0, false
	}
	return it.pq[0].dist2, true
}

// Err reports a store or context error encountered during iteration, if
// any.
func (it *NNIterator) Err() error { return it.err }

// NearestK returns the k points nearest to q in ascending distance order
// (fewer if the tree holds fewer points).
func (t *Tree) NearestK(q geom.Point, k int) ([]geom.Point, error) {
	return t.Reader(nil, nil).NearestK(q, k)
}
