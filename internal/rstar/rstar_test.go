package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"nwcq/internal/geom"
)

// genPoints produces n points: a blend of uniform background and tight
// clusters, exercising both balanced and skewed tree shapes.
func genPoints(rng *rand.Rand, n int, clustered bool) []geom.Point {
	pts := make([]geom.Point, n)
	var centers []geom.Point
	if clustered {
		for i := 0; i < 8; i++ {
			centers = append(centers, geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		}
	}
	for i := range pts {
		if clustered && rng.Intn(4) > 0 {
			c := centers[rng.Intn(len(centers))]
			pts[i] = geom.Point{
				X:  c.X + rng.NormFloat64()*20,
				Y:  c.Y + rng.NormFloat64()*20,
				ID: uint64(i),
			}
		} else {
			pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
		}
	}
	return pts
}

func newTree(t *testing.T, opts Options) *Tree {
	t.Helper()
	tr, err := New(NewMemStore(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func insertAll(t *testing.T, tr *Tree, pts []geom.Point) {
	t.Helper()
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
}

func sortPoints(pts []geom.Point) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].ID != pts[b].ID {
			return pts[a].ID < pts[b].ID
		}
		if pts[a].X != pts[b].X {
			return pts[a].X < pts[b].X
		}
		return pts[a].Y < pts[b].Y
	})
}

func samePointSet(t *testing.T, got, want []geom.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	sortPoints(got)
	sortPoints(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

func bruteWindow(pts []geom.Point, r geom.Rect) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if r.ContainsPoint(p) {
			out = append(out, p)
		}
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(NewMemStore(), Options{MaxEntries: 2}); err == nil {
		t.Error("MaxEntries=2 accepted")
	}
	if _, err := New(NewMemStore(), Options{MaxEntries: 10, MinEntries: 6}); err == nil {
		t.Error("MinEntries > MaxEntries/2 accepted")
	}
	tr := newTree(t, Options{})
	if tr.MaxEntries() != DefaultMaxEntries {
		t.Errorf("default MaxEntries = %d, want %d", tr.MaxEntries(), DefaultMaxEntries)
	}
	if tr.opts.MinEntries != DefaultMaxEntries*2/5 {
		t.Errorf("default MinEntries = %d, want %d", tr.opts.MinEntries, DefaultMaxEntries*2/5)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, Options{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	got, err := tr.SearchCollect(geom.NewRect(0, 0, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("search on empty tree returned %d points", len(got))
	}
	it := tr.NewNNIterator(geom.Point{})
	if _, _, _, ok := it.Next(); ok {
		t.Error("NN on empty tree yielded a point")
	}
	if err := tr.CheckInvariants(false); err != nil {
		t.Error(err)
	}
}

func TestInsertInvariantsAndContents(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		for _, n := range []int{1, 7, 9, 63, 500, 3000} {
			rng := rand.New(rand.NewSource(int64(n)))
			pts := genPoints(rng, n, clustered)
			tr := newTree(t, Options{MaxEntries: 8})
			insertAll(t, tr, pts)
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			if err := tr.CheckInvariants(false); err != nil {
				t.Fatalf("n=%d clustered=%v: %v", n, clustered, err)
			}
			all, err := tr.All()
			if err != nil {
				t.Fatal(err)
			}
			samePointSet(t, all, pts, "All")
		}
	}
}

func TestWindowQueryMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := genPoints(rng, 2000, seed%2 == 0)
		tr := newTree(t, Options{MaxEntries: 16})
		insertAll(t, tr, pts)
		for i := 0; i < 200; i++ {
			r := geom.NewRect(
				rng.Float64()*1000, rng.Float64()*1000,
				rng.Float64()*1000, rng.Float64()*1000,
			)
			got, err := tr.SearchCollect(r)
			if err != nil {
				t.Fatal(err)
			}
			samePointSet(t, got, bruteWindow(pts, r), "window")
		}
		// Tiny and degenerate windows.
		p := pts[rng.Intn(len(pts))]
		got, err := tr.SearchCollect(geom.RectAround(p))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range got {
			if g == p {
				found = true
			}
		}
		if !found {
			t.Error("degenerate window missed its point")
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := genPoints(rng, 500, false)
	tr := newTree(t, Options{MaxEntries: 8})
	insertAll(t, tr, pts)
	n := 0
	err := tr.Search(geom.NewRect(0, 0, 1000, 1000), func(geom.Point) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop visited %d points, want 10", n)
	}
}

func TestNNIteratorOrderingAndCompleteness(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := genPoints(rng, 1500, seed%2 == 0)
		tr := newTree(t, Options{MaxEntries: 10})
		insertAll(t, tr, pts)
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		it := tr.NewNNIterator(q)
		var got []geom.Point
		last := -1.0
		for {
			p, leaf, d2, ok := it.Next()
			if !ok {
				break
			}
			if d2 < last {
				t.Fatalf("NN order violated: %g after %g", d2, last)
			}
			if d2 != p.Dist2(q) {
				t.Fatalf("reported dist2 %g, actual %g", d2, p.Dist2(q))
			}
			// The reported leaf must actually store the point.
			node, err := tr.Node(leaf)
			if err != nil {
				t.Fatal(err)
			}
			stored := false
			for _, lp := range node.Points {
				if lp == p {
					stored = true
				}
			}
			if !stored {
				t.Fatalf("point %v not in reported leaf %d", p, leaf)
			}
			last = d2
			got = append(got, p)
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		samePointSet(t, got, pts, "NN enumeration")
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := genPoints(rng, 800, true)
	tr := newTree(t, Options{MaxEntries: 12})
	insertAll(t, tr, pts)
	for i := 0; i < 50; i++ {
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		got, err := tr.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]geom.Point, len(pts))
		copy(want, pts)
		sort.Slice(want, func(a, b int) bool {
			return want[a].Dist2(q) < want[b].Dist2(q)
		})
		want = want[:k]
		if len(got) != k {
			t.Fatalf("NearestK returned %d, want %d", len(got), k)
		}
		for j := range got {
			// Ties make exact identity ambiguous; compare distances.
			if got[j].Dist2(q) != want[j].Dist2(q) {
				t.Fatalf("k-NN rank %d: dist %g, want %g", j, got[j].Dist2(q), want[j].Dist2(q))
			}
		}
	}
}

func TestPeekDist2LowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := genPoints(rng, 400, false)
	tr := newTree(t, Options{MaxEntries: 8})
	insertAll(t, tr, pts)
	q := geom.Point{X: 500, Y: 500}
	it := tr.NewNNIterator(q)
	for {
		lb, ok := it.PeekDist2()
		if !ok {
			break
		}
		p, _, d2, ok := it.Next()
		if !ok {
			break
		}
		if d2 < lb {
			t.Fatalf("returned %g below peeked bound %g (point %v)", d2, lb, p)
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := genPoints(rng, 1200, true)
	tr := newTree(t, Options{MaxEntries: 8})
	insertAll(t, tr, pts)

	perm := rng.Perm(len(pts))
	removed := map[int]bool{}
	for i, pi := range perm[:800] {
		ok, err := tr.Delete(pts[pi])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%v) found nothing", pts[pi])
		}
		removed[pi] = true
		if i%100 == 99 {
			if err := tr.CheckInvariants(false); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 400 {
		t.Fatalf("Len = %d, want 400", tr.Len())
	}
	var want []geom.Point
	for i, p := range pts {
		if !removed[i] {
			want = append(want, p)
		}
	}
	all, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	samePointSet(t, all, want, "after deletes")

	// Deleting a missing point reports false.
	ok, err := tr.Delete(geom.Point{X: -1, Y: -1, ID: 999999})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Delete of absent point reported true")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := newTree(t, Options{MaxEntries: 4})
	pts := genPoints(rand.New(rand.NewSource(11)), 100, false)
	insertAll(t, tr, pts)
	for _, p := range pts {
		if ok, err := tr.Delete(p); err != nil || !ok {
			t.Fatalf("delete %v: ok=%v err=%v", p, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting everything", tr.Height())
	}
	// The tree remains usable.
	insertAll(t, tr, pts[:50])
	if err := tr.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	all, _ := tr.All()
	samePointSet(t, all, pts[:50], "reuse after drain")
}

func TestDuplicatePoints(t *testing.T) {
	tr := newTree(t, Options{MaxEntries: 4})
	p := geom.Point{X: 5, Y: 5, ID: 1}
	for i := 0; i < 10; i++ {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := tr.SearchCollect(geom.RectAround(p))
	if len(got) != 10 {
		t.Fatalf("found %d duplicates, want 10", len(got))
	}
	// Delete removes exactly one instance per call.
	if ok, _ := tr.Delete(p); !ok {
		t.Fatal("delete failed")
	}
	got, _ = tr.SearchCollect(geom.RectAround(p))
	if len(got) != 9 {
		t.Fatalf("found %d duplicates after one delete, want 9", len(got))
	}
}

func TestBulkLoad(t *testing.T) {
	for _, n := range []int{1, 10, 100, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		pts := genPoints(rng, n, true)
		tr := newTree(t, Options{MaxEntries: 16})
		if err := tr.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		if err := tr.CheckInvariants(true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		all, err := tr.All()
		if err != nil {
			t.Fatal(err)
		}
		samePointSet(t, all, pts, "bulk-loaded contents")
		for i := 0; i < 30; i++ {
			r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
				rng.Float64()*1000, rng.Float64()*1000)
			got, err := tr.SearchCollect(r)
			if err != nil {
				t.Fatal(err)
			}
			samePointSet(t, got, bruteWindow(pts, r), "bulk-loaded window")
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := genPoints(rng, 2000, false)
	tr := newTree(t, Options{MaxEntries: 16})
	if err := tr.BulkLoad(pts[:1500]); err != nil {
		t.Fatal(err)
	}
	insertAll(t, tr, pts[1500:])
	for _, p := range pts[:200] {
		if ok, err := tr.Delete(p); err != nil || !ok {
			t.Fatalf("delete after bulk load: ok=%v err=%v", ok, err)
		}
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	all, _ := tr.All()
	samePointSet(t, all, pts[200:], "bulk+mutate contents")
}

func TestBulkLoadNonEmptyRejected(t *testing.T) {
	tr := newTree(t, Options{})
	if err := tr.Insert(geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad([]geom.Point{{X: 2, Y: 2}}); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
}

func TestVisitCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := genPoints(rng, 2000, false)
	tr := newTree(t, Options{MaxEntries: 10})
	insertAll(t, tr, pts)
	tr.ResetVisits()
	if v := tr.Visits(); v != 0 {
		t.Fatalf("visits after reset = %d", v)
	}
	if _, err := tr.SearchCollect(geom.NewRect(0, 0, 50, 50)); err != nil {
		t.Fatal(err)
	}
	small := tr.Visits()
	if small == 0 {
		t.Fatal("window query counted no visits")
	}
	tr.ResetVisits()
	if _, err := tr.SearchCollect(geom.NewRect(0, 0, 1000, 1000)); err != nil {
		t.Fatal(err)
	}
	full := tr.Visits()
	nodes, _ := tr.NumNodes()
	if full != uint64(nodes) {
		t.Errorf("full-space window visited %d nodes of %d", full, nodes)
	}
	if small >= full {
		t.Errorf("small window visits %d >= full scan visits %d", small, full)
	}
}

func TestWalkCountsNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := genPoints(rng, 300, false)
	tr := newTree(t, Options{MaxEntries: 8})
	insertAll(t, tr, pts)
	leaves, internal := 0, 0
	err := tr.Walk(func(n *Node) bool {
		if n.Leaf {
			leaves++
		} else {
			internal++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves == 0 || internal == 0 {
		t.Errorf("walk saw %d leaves, %d internal", leaves, internal)
	}
	total, _ := tr.NumNodes()
	if leaves+internal != total {
		t.Errorf("walk total %d != NumNodes %d", leaves+internal, total)
	}
}
