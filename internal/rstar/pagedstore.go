package rstar

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"nwcq/internal/geom"
	"nwcq/internal/pager"
)

// PagedStore persists each node on one 4096-byte page of a pager.Store,
// giving the tree its disk-oriented form: one node visit = one page
// access, exactly the paper's I/O accounting.
//
// Node page layout (big endian):
//
//	[0]    kind: 1 = leaf, 0 = internal
//	[1:3]  entry count (uint16)
//	leaf entries, 24 bytes each:      x float64, y float64, id uint64
//	internal entries, 36 bytes each:  minx, miny, maxx, maxy float64, child uint32
//
// A decoded-node cache sits in front of the page reads so hot
// upper-tree nodes are not re-decoded on every visit. The cache is
// transparent to the paper's I/O accounting: Get counts one visit
// whether the node came from the cache, the buffer pool, or the file —
// a visit models touching the node, and which memory tier supplied the
// bytes is the optimisation under study, not the metric.
type PagedStore struct {
	pages  *pager.Store
	visits atomic.Uint64

	// cache holds decoded nodes; nil when disabled. version is bumped by
	// every Put/Free, letting concurrent Gets detect that the bytes they
	// decoded are stale before inserting them (see insertIfVersion).
	cache   *nodeCache
	version atomic.Uint64
}

const (
	leafEntrySize     = 24
	internalEntrySize = 36
	nodeHeaderSize    = 3
)

// MaxPagedEntries returns the largest fan-out that fits a node on one
// page; both entry kinds must fit. The paper's fan-out of 50 fits with
// room to spare.
func MaxPagedEntries() int {
	return (pager.PayloadSize() - nodeHeaderSize) / internalEntrySize
}

// NewPagedStore wraps a pager.Store as a NodeStore with the default
// decoded-node cache.
func NewPagedStore(pages *pager.Store) *PagedStore {
	return NewPagedStoreCache(pages, DefaultNodeCacheSize)
}

// NewPagedStoreCache wraps a pager.Store as a NodeStore with a
// decoded-node cache holding about nodes entries; nodes <= 0 disables
// the cache so every Get decodes from the page image.
func NewPagedStoreCache(pages *pager.Store, nodes int) *PagedStore {
	return &PagedStore{pages: pages, cache: newNodeCache(nodes)}
}

// Pages exposes the underlying page store (for stats and Sync).
func (s *PagedStore) Pages() *pager.Store { return s.pages }

// Alloc implements NodeStore.
func (s *PagedStore) Alloc(leaf bool) (*Node, error) {
	id, err := s.pages.Allocate()
	if err != nil {
		return nil, err
	}
	n := &Node{ID: NodeID(id), Leaf: leaf}
	return n, s.Put(n)
}

// Get implements NodeStore and counts one visit. Cached nodes are
// shared between callers and must be treated as read-only during
// queries (mutating paths own the tree exclusively and invalidate via
// Put/Free).
func (s *PagedStore) Get(id NodeID) (*Node, error) {
	if n := s.cache.get(id); n != nil {
		s.visits.Add(1)
		return n, nil
	}
	v := s.version.Load()
	buf, err := s.pages.Read(pager.PageID(id))
	if err != nil {
		return nil, err
	}
	s.visits.Add(1)
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	s.cache.insertIfVersion(n, v, s.version.Load)
	return n, nil
}

// Put implements NodeStore. The order matters for concurrent readers:
// write the page, bump the version (so a reader that read the old bytes
// refuses to cache its decode), then drop any cached copy.
func (s *PagedStore) Put(n *Node) error {
	buf, err := encodeNode(n)
	if err != nil {
		return err
	}
	if err := s.pages.Write(pager.PageID(n.ID), buf); err != nil {
		return err
	}
	s.version.Add(1)
	s.cache.drop(n.ID)
	return nil
}

// Free implements NodeStore, invalidating like Put.
func (s *PagedStore) Free(id NodeID) error {
	s.version.Add(1)
	s.cache.drop(id)
	return s.pages.Free(pager.PageID(id))
}

// Root implements NodeStore, reading the reference persisted in the page
// file header.
func (s *PagedStore) Root() (NodeID, int, int) {
	root, meta := s.pages.UserRoot()
	if len(meta) < 16 {
		return NodeID(root), 0, 0
	}
	height := int(binary.BigEndian.Uint64(meta[0:8]))
	count := int(binary.BigEndian.Uint64(meta[8:16]))
	return NodeID(root), height, count
}

// SetRoot implements NodeStore.
func (s *PagedStore) SetRoot(id NodeID, height, count int) error {
	var meta [16]byte
	binary.BigEndian.PutUint64(meta[0:8], uint64(height))
	binary.BigEndian.PutUint64(meta[8:16], uint64(count))
	return s.pages.SetUserRoot(pager.PageID(id), meta[:])
}

// Visits implements NodeStore.
func (s *PagedStore) Visits() uint64 { return s.visits.Load() }

// ResetVisits implements NodeStore.
func (s *PagedStore) ResetVisits() { s.visits.Store(0) }

// ReserveID implements snapshotStore by allocating a fresh page. The
// pager never hands out a live page (the free list holds only pages
// released after their readers drained), so writing the page later
// cannot disturb a pinned version.
func (s *PagedStore) ReserveID() (NodeID, error) {
	id, err := s.pages.Allocate()
	if err != nil {
		return 0, err
	}
	return NodeID(id), nil
}

// UnreserveIDs implements snapshotStore. Nothing was published under
// the IDs, so the pages can rejoin the free list immediately.
func (s *PagedStore) UnreserveIDs(ids []NodeID) {
	for _, id := range ids {
		_ = s.pages.Free(pager.PageID(id))
	}
}

// PublishBatch implements snapshotStore: shadow paging. Every written
// node goes to a page allocated this batch — never on top of a live
// page — so readers of the previous version keep seeing their nodes
// byte-for-byte; the version flip is the SetRoot at the end. Dead pages
// are left untouched until ReleaseIDs (pager.Free scribbles a free-list
// link into the page, which would corrupt a pinned reader's view).
func (s *PagedStore) PublishBatch(written []*Node, dead []NodeID, root NodeID, height, count int) (NodeStore, error) {
	for _, n := range written {
		if err := s.Put(n); err != nil {
			return nil, err
		}
	}
	if err := s.SetRoot(root, height, count); err != nil {
		return nil, err
	}
	return s, nil
}

// ReleaseIDs implements snapshotStore, freeing the pages of retired
// nodes once the caller has proven no reader can reach them.
func (s *PagedStore) ReleaseIDs(ids []NodeID) {
	for _, id := range ids {
		_ = s.Free(id)
	}
}

func encodeNode(n *Node) ([]byte, error) {
	var size int
	if n.Leaf {
		size = nodeHeaderSize + leafEntrySize*len(n.Points)
	} else {
		size = nodeHeaderSize + internalEntrySize*len(n.Children)
	}
	if size > pager.PayloadSize() {
		return nil, fmt.Errorf("rstar: node %d with %d entries overflows page", n.ID, n.Len())
	}
	buf := make([]byte, size)
	if n.Leaf {
		buf[0] = 1
	}
	binary.BigEndian.PutUint16(buf[1:3], uint16(n.Len()))
	off := nodeHeaderSize
	if n.Leaf {
		for _, p := range n.Points {
			binary.BigEndian.PutUint64(buf[off:], math.Float64bits(p.X))
			binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
			binary.BigEndian.PutUint64(buf[off+16:], p.ID)
			off += leafEntrySize
		}
		return buf, nil
	}
	if len(n.Rects) != len(n.Children) {
		return nil, fmt.Errorf("rstar: node %d rects/children length mismatch", n.ID)
	}
	for i, c := range n.Children {
		r := n.Rects[i]
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(r.MinX))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(r.MinY))
		binary.BigEndian.PutUint64(buf[off+16:], math.Float64bits(r.MaxX))
		binary.BigEndian.PutUint64(buf[off+24:], math.Float64bits(r.MaxY))
		binary.BigEndian.PutUint32(buf[off+32:], uint32(c))
		off += internalEntrySize
	}
	return buf, nil
}

func decodeNode(id NodeID, buf []byte) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rstar: node %d page too short", id)
	}
	n := &Node{ID: id, Leaf: buf[0] == 1}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	off := nodeHeaderSize
	if n.Leaf {
		if off+count*leafEntrySize > len(buf) {
			return nil, fmt.Errorf("rstar: node %d truncated (%d leaf entries)", id, count)
		}
		n.Points = make([]geom.Point, 0, count)[:0]
		for i := 0; i < count; i++ {
			n.Points = append(n.Points, geom.Point{
				X:  math.Float64frombits(binary.BigEndian.Uint64(buf[off:])),
				Y:  math.Float64frombits(binary.BigEndian.Uint64(buf[off+8:])),
				ID: binary.BigEndian.Uint64(buf[off+16:]),
			})
			off += leafEntrySize
		}
		return n, nil
	}
	if off+count*internalEntrySize > len(buf) {
		return nil, fmt.Errorf("rstar: node %d truncated (%d internal entries)", id, count)
	}
	n.Rects = make([]geom.Rect, 0, count)
	n.Children = make([]NodeID, 0, count)
	for i := 0; i < count; i++ {
		n.Rects = append(n.Rects, geom.Rect{
			MinX: math.Float64frombits(binary.BigEndian.Uint64(buf[off:])),
			MinY: math.Float64frombits(binary.BigEndian.Uint64(buf[off+8:])),
			MaxX: math.Float64frombits(binary.BigEndian.Uint64(buf[off+16:])),
			MaxY: math.Float64frombits(binary.BigEndian.Uint64(buf[off+24:])),
		})
		n.Children = append(n.Children, NodeID(binary.BigEndian.Uint32(buf[off+32:])))
		off += internalEntrySize
	}
	return n, nil
}
