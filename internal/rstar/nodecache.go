package rstar

import (
	"container/list"
	"sync"
)

// DefaultNodeCacheSize is the decoded-node cache capacity used when the
// caller does not choose one. At the paper's fan-out of 50, 1024 nodes
// cover the full directory of a multi-million point tree, so steady-state
// queries decode only leaf pages.
const DefaultNodeCacheSize = 1024

// nodeCacheShards spreads cache lock traffic across concurrent queries;
// node IDs are page IDs, assigned sequentially, so id mod shards is
// uniform.
const nodeCacheShards = 8

// nodeCache is a sharded LRU of decoded nodes keyed by NodeID, sitting
// in front of PagedStore page reads so hot upper-tree nodes skip the
// header parse and entry-slice allocations of decodeNode on every visit.
//
// Cached *Node values are shared between queries and must be treated as
// read-only — the same contract Node already documents. Tree mutations
// (which do modify nodes obtained from Get, then Put them) are exclusive
// with queries per the Tree concurrency contract, and Put/Free drop the
// mutated node's entry, so readers never observe a node mid-mutation.
type nodeCache struct {
	shards [nodeCacheShards]nodeCacheShard
}

type nodeCacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[NodeID]*list.Element
	order   *list.List // front = most recently used; values are *Node
}

// newNodeCache returns a cache holding about capacity nodes in total,
// or nil when capacity <= 0 (callers treat a nil cache as a miss).
func newNodeCache(capacity int) *nodeCache {
	if capacity <= 0 {
		return nil
	}
	c := &nodeCache{}
	for i := range c.shards {
		per := capacity / nodeCacheShards
		if i < capacity%nodeCacheShards {
			per++
		}
		if per < 1 {
			per = 1
		}
		c.shards[i] = nodeCacheShard{
			cap:     per,
			entries: make(map[NodeID]*list.Element, per),
			order:   list.New(),
		}
	}
	return c
}

func (c *nodeCache) shard(id NodeID) *nodeCacheShard {
	return &c.shards[uint32(id)%nodeCacheShards]
}

func (c *nodeCache) get(id NodeID) *Node {
	if c == nil {
		return nil
	}
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[id]
	if !ok {
		return nil
	}
	sh.order.MoveToFront(el)
	return el.Value.(*Node)
}

// insertIfVersion installs n decoded at store version v, but only if the
// store is still at that version — the check runs under the shard lock,
// so a Put/Free that bumped the version after the caller's page read can
// never be shadowed by the stale decode.
func (c *nodeCache) insertIfVersion(n *Node, v uint64, current func() uint64) {
	if c == nil {
		return
	}
	sh := c.shard(n.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if current() != v {
		return
	}
	if el, ok := sh.entries[n.ID]; ok {
		el.Value = n
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[n.ID] = sh.order.PushFront(n)
	for sh.order.Len() > sh.cap {
		back := sh.order.Back()
		delete(sh.entries, back.Value.(*Node).ID)
		sh.order.Remove(back)
	}
}

// drop removes id from the cache; called by Put and Free after the
// version bump so in-flight decodes of the old bytes cannot re-enter.
func (c *nodeCache) drop(id NodeID) {
	if c == nil {
		return
	}
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[id]; ok {
		sh.order.Remove(el)
		delete(sh.entries, id)
	}
}

// len returns the number of cached nodes across all shards.
func (c *nodeCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
