package rstar

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/pager"
)

func newPagedTree(t *testing.T, opts Options, cache int) (*Tree, *PagedStore) {
	t.Helper()
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: cache})
	if err != nil {
		t.Fatal(err)
	}
	store := NewPagedStore(pages)
	tr, err := New(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, store
}

func TestMaxPagedEntriesFitsPaperFanout(t *testing.T) {
	if got := MaxPagedEntries(); got < DefaultMaxEntries {
		t.Fatalf("page fits %d entries, need at least %d", got, DefaultMaxEntries)
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	leaf := &Node{ID: 7, Leaf: true}
	for i := 0; i < 50; i++ {
		leaf.Points = append(leaf.Points, geom.Point{
			X: rng.NormFloat64() * 1e6, Y: rng.NormFloat64() * 1e-6, ID: rng.Uint64(),
		})
	}
	buf, err := encodeNode(leaf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeNode(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Leaf || len(back.Points) != len(leaf.Points) {
		t.Fatalf("decoded leaf shape wrong: %+v", back)
	}
	for i := range leaf.Points {
		if back.Points[i] != leaf.Points[i] {
			t.Fatalf("point %d: got %v, want %v", i, back.Points[i], leaf.Points[i])
		}
	}

	inner := &Node{ID: 9}
	for i := 0; i < 50; i++ {
		inner.Rects = append(inner.Rects, geom.NewRect(
			rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100))
		inner.Children = append(inner.Children, NodeID(rng.Uint32()))
	}
	buf, err = encodeNode(inner)
	if err != nil {
		t.Fatal(err)
	}
	back, err = decodeNode(9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Leaf || len(back.Children) != 50 {
		t.Fatalf("decoded internal shape wrong")
	}
	for i := range inner.Children {
		if back.Rects[i] != inner.Rects[i] || back.Children[i] != inner.Children[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestNodeEncodingOverflow(t *testing.T) {
	n := &Node{ID: 1}
	for i := 0; i < MaxPagedEntries()+1; i++ {
		n.Rects = append(n.Rects, geom.Rect{})
		n.Children = append(n.Children, 1)
	}
	if _, err := encodeNode(n); err == nil {
		t.Error("oversized node encoded without error")
	}
}

// TestPagedMatchesMem builds identical trees on both stores and checks
// that structure, query results and visit counts agree exactly.
func TestPagedMatchesMem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 3000, true)

	mem := newTree(t, Options{MaxEntries: 20})
	paged, _ := newPagedTree(t, Options{MaxEntries: 20}, 64)
	for _, p := range pts {
		if err := mem.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := paged.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := paged.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	if mem.Height() != paged.Height() {
		t.Errorf("heights differ: mem %d, paged %d", mem.Height(), paged.Height())
	}

	for i := 0; i < 50; i++ {
		r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		mem.ResetVisits()
		paged.ResetVisits()
		a, err := mem.SearchCollect(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := paged.SearchCollect(r)
		if err != nil {
			t.Fatal(err)
		}
		samePointSet(t, a, b, "mem vs paged window")
		if mem.Visits() != paged.Visits() {
			t.Errorf("visit counts differ: mem %d, paged %d", mem.Visits(), paged.Visits())
		}
	}
}

func TestPagedPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	pages, f, err := pager.CreateFile(path, pager.Options{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	store := NewPagedStore(pages)
	tr, err := New(store, Options{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := genPoints(rng, 1000, false)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := tr.SearchCollect(geom.NewRect(100, 100, 600, 600))
	if err != nil {
		t.Fatal(err)
	}
	if err := pages.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pages2, f2, err := pager.OpenFile(path, pager.Options{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	tr2, err := Attach(NewPagedStore(pages2), Options{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1000 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened tree Len=%d Height=%d, want %d/%d",
			tr2.Len(), tr2.Height(), 1000, tr.Height())
	}
	if err := tr2.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	got, err := tr2.SearchCollect(geom.NewRect(100, 100, 600, 600))
	if err != nil {
		t.Fatal(err)
	}
	samePointSet(t, got, want, "reopened window query")

	// Continue mutating after reopen.
	if err := tr2.Insert(geom.Point{X: 1, Y: 1, ID: 12345}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr2.Delete(pts[0]); err != nil || !ok {
		t.Fatalf("delete after reopen: ok=%v err=%v", ok, err)
	}
	if err := tr2.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
}

func TestAttachEmptyStoreFails(t *testing.T) {
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(NewPagedStore(pages), Options{}); err == nil {
		t.Error("Attach on empty store succeeded")
	}
}

func TestPagedDeleteStress(t *testing.T) {
	tr, _ := newPagedTree(t, Options{MaxEntries: 8}, 128)
	rng := rand.New(rand.NewSource(4))
	pts := genPoints(rng, 600, true)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range rng.Perm(len(pts))[:400] {
		if ok, err := tr.Delete(pts[i]); err != nil || !ok {
			t.Fatalf("paged delete: ok=%v err=%v", ok, err)
		}
	}
	if err := tr.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
}

// TestVisitsUnchangedByCachingLayers builds the same tree under three
// cache configurations — everything cold, buffer pool only, buffer pool
// plus decoded-node cache — and checks that identical queries report
// identical visit counts. The caches may change where bytes come from,
// never how many nodes the algorithm touches.
func TestVisitsUnchangedByCachingLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := genPoints(rng, 2000, true)
	queries := make([]geom.Rect, 40)
	for i := range queries {
		queries[i] = geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
	}

	configs := []struct {
		name      string
		pageCache int
		nodeCache int
	}{
		{"cold", 0, 0},
		{"pool-only", 256, 0},
		{"pool+nodes", 256, DefaultNodeCacheSize},
	}
	visits := make([][]uint64, len(configs))
	for ci, cfg := range configs {
		pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: cfg.pageCache})
		if err != nil {
			t.Fatal(err)
		}
		store := NewPagedStoreCache(pages, cfg.nodeCache)
		tr, err := New(store, Options{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range queries {
			tr.ResetVisits()
			if _, err := tr.SearchCollect(q); err != nil {
				t.Fatal(err)
			}
			visits[ci] = append(visits[ci], tr.Visits())
		}
		// Re-run the same queries on a warm cache: counts must not drop.
		for qi, q := range queries {
			tr.ResetVisits()
			if _, err := tr.SearchCollect(q); err != nil {
				t.Fatal(err)
			}
			if got := tr.Visits(); got != visits[ci][qi] {
				t.Fatalf("%s: query %d warm visits %d != cold visits %d",
					cfg.name, qi, got, visits[ci][qi])
			}
		}
	}
	for ci := 1; ci < len(configs); ci++ {
		for qi := range queries {
			if visits[ci][qi] != visits[0][qi] {
				t.Errorf("%s: query %d visits %d, want %d (as with no caches)",
					configs[ci].name, qi, visits[ci][qi], visits[0][qi])
			}
		}
	}
}

// TestNodeCacheInvalidation checks that Put and Free evict the decoded
// node so readers never see stale entries.
func TestNodeCacheInvalidation(t *testing.T) {
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := NewPagedStoreCache(pages, 64)
	n, err := s.Alloc(true)
	if err != nil {
		t.Fatal(err)
	}
	n.Points = append(n.Points, geom.Point{X: 1, Y: 2, ID: 3})
	if err := s.Put(n); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 1 || got.Points[0].ID != 3 {
		t.Fatalf("first get = %+v", got)
	}
	if s.cache.len() == 0 {
		t.Fatal("node not cached after get")
	}

	// Mutate-and-Put (the insert/delete pattern): next Get must decode
	// the new image, not return the cached old one.
	upd := &Node{ID: n.ID, Leaf: true,
		Points: []geom.Point{{X: 1, Y: 2, ID: 3}, {X: 4, Y: 5, ID: 6}}}
	if err := s.Put(upd); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 2 || got.Points[1].ID != 6 {
		t.Fatalf("get after put = %+v", got)
	}

	if err := s.Free(n.ID); err != nil {
		t.Fatal(err)
	}
	if s.cache.get(n.ID) != nil {
		t.Error("freed node still cached")
	}
}

// TestNodeCacheStaleDecodeNotInserted drives the version check directly:
// a decode that raced with a Put (read old bytes, then the store moved
// on) must not enter the cache.
func TestNodeCacheStaleDecodeNotInserted(t *testing.T) {
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := NewPagedStoreCache(pages, 64)
	n, err := s.Alloc(true)
	if err != nil {
		t.Fatal(err)
	}
	stale := &Node{ID: n.ID, Leaf: true}
	v := s.version.Load()
	s.version.Add(1) // a Put happened between the page read and the insert
	s.cache.insertIfVersion(stale, v, s.version.Load)
	if s.cache.get(n.ID) != nil {
		t.Error("stale decode entered the cache")
	}
	s.cache.insertIfVersion(stale, s.version.Load(), s.version.Load)
	if s.cache.get(n.ID) == nil {
		t.Error("current-version decode rejected")
	}
}

// TestPagedStoreConcurrentGetPut hammers one store with concurrent
// readers and a writer (run under -race). Readers must always decode a
// complete image — either the old or the new version of the node.
func TestPagedStoreConcurrentGetPut(t *testing.T) {
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := NewPagedStoreCache(pages, 64)
	var ids []NodeID
	for i := 0; i < 16; i++ {
		n, err := s.Alloc(true)
		if err != nil {
			t.Fatal(err)
		}
		n.Points = []geom.Point{{X: float64(i), Y: float64(i), ID: uint64(i)}}
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, n.ID)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: grows and rewrites nodes
		defer wg.Done()
		for round := 0; round < 200; round++ {
			id := ids[round%len(ids)]
			k := round/len(ids) + 2
			n := &Node{ID: id, Leaf: true}
			for j := 0; j < k; j++ {
				n.Points = append(n.Points, geom.Point{ID: uint64(j)})
			}
			if err := s.Put(n); err != nil {
				errs <- err
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n, err := s.Get(ids[(g*5+i)%len(ids)])
				if err != nil {
					errs <- err
					return
				}
				// Points IDs are always 0..len-1 in every version the
				// writer installs, so a torn or stale-cached read shows
				// up as a hole.
				for j, p := range n.Points {
					if int(p.ID) != j && len(n.Points) > 1 {
						errs <- fmt.Errorf("goroutine %d: inconsistent node %d: %+v", g, n.ID, n.Points)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
