package rstar

import (
	"math/rand"
	"path/filepath"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/pager"
)

func newPagedTree(t *testing.T, opts Options, cache int) (*Tree, *PagedStore) {
	t.Helper()
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: cache})
	if err != nil {
		t.Fatal(err)
	}
	store := NewPagedStore(pages)
	tr, err := New(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, store
}

func TestMaxPagedEntriesFitsPaperFanout(t *testing.T) {
	if got := MaxPagedEntries(); got < DefaultMaxEntries {
		t.Fatalf("page fits %d entries, need at least %d", got, DefaultMaxEntries)
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	leaf := &Node{ID: 7, Leaf: true}
	for i := 0; i < 50; i++ {
		leaf.Points = append(leaf.Points, geom.Point{
			X: rng.NormFloat64() * 1e6, Y: rng.NormFloat64() * 1e-6, ID: rng.Uint64(),
		})
	}
	buf, err := encodeNode(leaf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeNode(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Leaf || len(back.Points) != len(leaf.Points) {
		t.Fatalf("decoded leaf shape wrong: %+v", back)
	}
	for i := range leaf.Points {
		if back.Points[i] != leaf.Points[i] {
			t.Fatalf("point %d: got %v, want %v", i, back.Points[i], leaf.Points[i])
		}
	}

	inner := &Node{ID: 9}
	for i := 0; i < 50; i++ {
		inner.Rects = append(inner.Rects, geom.NewRect(
			rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100))
		inner.Children = append(inner.Children, NodeID(rng.Uint32()))
	}
	buf, err = encodeNode(inner)
	if err != nil {
		t.Fatal(err)
	}
	back, err = decodeNode(9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Leaf || len(back.Children) != 50 {
		t.Fatalf("decoded internal shape wrong")
	}
	for i := range inner.Children {
		if back.Rects[i] != inner.Rects[i] || back.Children[i] != inner.Children[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestNodeEncodingOverflow(t *testing.T) {
	n := &Node{ID: 1}
	for i := 0; i < MaxPagedEntries()+1; i++ {
		n.Rects = append(n.Rects, geom.Rect{})
		n.Children = append(n.Children, 1)
	}
	if _, err := encodeNode(n); err == nil {
		t.Error("oversized node encoded without error")
	}
}

// TestPagedMatchesMem builds identical trees on both stores and checks
// that structure, query results and visit counts agree exactly.
func TestPagedMatchesMem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 3000, true)

	mem := newTree(t, Options{MaxEntries: 20})
	paged, _ := newPagedTree(t, Options{MaxEntries: 20}, 64)
	for _, p := range pts {
		if err := mem.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := paged.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := paged.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	if mem.Height() != paged.Height() {
		t.Errorf("heights differ: mem %d, paged %d", mem.Height(), paged.Height())
	}

	for i := 0; i < 50; i++ {
		r := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		mem.ResetVisits()
		paged.ResetVisits()
		a, err := mem.SearchCollect(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := paged.SearchCollect(r)
		if err != nil {
			t.Fatal(err)
		}
		samePointSet(t, a, b, "mem vs paged window")
		if mem.Visits() != paged.Visits() {
			t.Errorf("visit counts differ: mem %d, paged %d", mem.Visits(), paged.Visits())
		}
	}
}

func TestPagedPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	pages, f, err := pager.CreateFile(path, pager.Options{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	store := NewPagedStore(pages)
	tr, err := New(store, Options{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := genPoints(rng, 1000, false)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := tr.SearchCollect(geom.NewRect(100, 100, 600, 600))
	if err != nil {
		t.Fatal(err)
	}
	if err := pages.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pages2, f2, err := pager.OpenFile(path, pager.Options{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	tr2, err := Attach(NewPagedStore(pages2), Options{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1000 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened tree Len=%d Height=%d, want %d/%d",
			tr2.Len(), tr2.Height(), 1000, tr.Height())
	}
	if err := tr2.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	got, err := tr2.SearchCollect(geom.NewRect(100, 100, 600, 600))
	if err != nil {
		t.Fatal(err)
	}
	samePointSet(t, got, want, "reopened window query")

	// Continue mutating after reopen.
	if err := tr2.Insert(geom.Point{X: 1, Y: 1, ID: 12345}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr2.Delete(pts[0]); err != nil || !ok {
		t.Fatalf("delete after reopen: ok=%v err=%v", ok, err)
	}
	if err := tr2.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
}

func TestAttachEmptyStoreFails(t *testing.T) {
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(NewPagedStore(pages), Options{}); err == nil {
		t.Error("Attach on empty store succeeded")
	}
}

func TestPagedDeleteStress(t *testing.T) {
	tr, _ := newPagedTree(t, Options{MaxEntries: 8}, 128)
	rng := rand.New(rand.NewSource(4))
	pts := genPoints(rng, 600, true)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range rng.Perm(len(pts))[:400] {
		if ok, err := tr.Delete(pts[i]); err != nil || !ok {
			t.Fatalf("paged delete: ok=%v err=%v", ok, err)
		}
	}
	if err := tr.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
}
