package rstar

import (
	"errors"
	"fmt"
	"sort"

	"nwcq/internal/geom"
)

// Snapshots and copy-on-write mutation.
//
// The R*-tree algorithms in insert.go and delete.go mutate nodes in
// place through the store (Get → modify → Put), which is fine while one
// goroutine owns the tree but fatal under concurrent readers. This file
// adds the machinery that makes online mutation safe without putting a
// single lock on the read path:
//
//   - Freeze seals a freshly built tree and returns an immutable read
//     view of it. A frozen *Tree value (root, height, count, pinned
//     store version) never changes; every traversal through it — window
//     queries, the NN iterator, the NWC engine — observes exactly the
//     point set it was frozen with.
//
//   - BeginWrite starts a mutation batch: a private overlay store whose
//     Get hands the R*-tree algorithms clones of the underlying nodes,
//     so Insert/Delete run completely unchanged while touching nothing
//     a concurrent reader can see.
//
//   - Commit publishes the batch with shadow allocation: every node the
//     batch wrote is assigned a fresh ID and written next to — never on
//     top of — the nodes of the current version, child references are
//     remapped, and the new root is installed with a single atomic
//     publication. Readers that pinned the old version keep traversing
//     the old nodes; readers that pin afterwards see the new tree.
//
//   - The IDs superseded by a commit (freed nodes plus the old IDs of
//     rewritten ones) are returned to the caller, which must hand them
//     back through ReleaseNodes once every reader that could reference
//     them has drained. Until then the slots stay live, so a reader in
//     the middle of a traversal can never observe a recycled node.
//
// Shadow allocation relies on one structural invariant of the R*-tree
// algorithms: whenever a node's content changes, its parent is also
// written in the same batch (MBR adjustment, split installation, or
// condense), so remapping a rewritten child always finds its parent in
// the batch too. The root is written by every mutating operation.
type snapshotStore interface {
	NodeStore
	// ReserveID allocates a fresh node ID without publishing any
	// content under it. The ID is invisible to readers until a
	// PublishBatch installs a node for it.
	ReserveID() (NodeID, error)
	// UnreserveIDs returns reserved-but-never-published IDs to the
	// allocator (a discarded or failed batch).
	UnreserveIDs(ids []NodeID)
	// PublishBatch atomically installs the written nodes (already under
	// their final IDs) and removes the dead IDs from the readable view,
	// persisting the new root metadata. It returns the NodeStore that
	// readers of the new version must use (the same store when versions
	// are implicit, as with shadow-paged files).
	PublishBatch(written []*Node, dead []NodeID, root NodeID, height, count int) (NodeStore, error)
	// ReleaseIDs returns dead IDs to the allocator for reuse. Callers
	// must guarantee no reader still holds a view that can reach them.
	ReleaseIDs(ids []NodeID)
}

// freezableStore is implemented by stores that need an explicit
// transition from the mutable build phase to immutable versioned reads.
type freezableStore interface {
	// Freeze seals the store against in-place mutation and returns the
	// read view of its current contents.
	Freeze() (NodeStore, error)
}

// ErrImmutableTree is returned by direct mutations (Insert, Delete,
// BulkLoad) on a frozen tree; changes must go through BeginWrite.
var ErrImmutableTree = errors.New("rstar: tree snapshot is immutable; use BeginWrite")

// Freeze seals the tree's store against in-place mutation and returns
// an immutable snapshot of the current tree. The returned tree is safe
// for any number of concurrent readers; all further changes must go
// through BeginWrite on it (or on any snapshot committed after it).
// The snapshot shares the store's cumulative visit counter.
func (t *Tree) Freeze() (*Tree, error) {
	switch s := t.store.(type) {
	case freezableStore:
		view, err := s.Freeze()
		if err != nil {
			return nil, err
		}
		return &Tree{store: view, opts: t.opts, root: t.root, height: t.height, count: t.count, frozen: true}, nil
	case snapshotStore:
		// Already snapshot-capable with implicit versions (shadow-paged
		// stores): the tree value itself is the pinned view.
		cp := *t
		cp.reinsertedAtLevel = nil
		cp.frozen = true
		return &cp, nil
	default:
		return nil, fmt.Errorf("rstar: store %T does not support snapshots", t.store)
	}
}

// ReleaseNodes returns node IDs retired by an earlier Commit to the
// store's allocator. Call it only after every reader pinned to a
// version that could reference the IDs has finished; typically this is
// driven by the caller's view reclamation (reference counts or
// quiescence), not by query code.
func (t *Tree) ReleaseNodes(ids []NodeID) error {
	if len(ids) == 0 {
		return nil
	}
	ss, ok := t.store.(snapshotStore)
	if !ok {
		return fmt.Errorf("rstar: store %T does not support snapshots", t.store)
	}
	ss.ReleaseIDs(ids)
	return nil
}

// WriteBatch is one copy-on-write mutation batch over a frozen tree.
// Run ordinary Tree mutations on Tree(), then Commit to publish them
// all at once or Discard to drop them. A batch is single-goroutine;
// concurrent batches over the same store must be serialised by the
// caller (the nwcq layer holds a writer mutex).
type WriteBatch struct {
	base *Tree // the snapshot the batch started from
	tree *Tree // overlay-backed tree the mutations run on
	ov   *cowStore
	done bool
}

// BeginWrite starts a mutation batch over a frozen tree. The returned
// batch's Tree accepts Insert and Delete exactly like a mutable tree;
// nothing is visible to readers of t until Commit.
func (t *Tree) BeginWrite() (*WriteBatch, error) {
	ss, ok := t.store.(snapshotStore)
	if !ok {
		return nil, fmt.Errorf("rstar: store %T does not support snapshot writes; Freeze the tree first", t.store)
	}
	ov := &cowStore{
		base:    ss,
		dirty:   make(map[NodeID]*Node),
		written: make(map[NodeID]bool),
		allocs:  make(map[NodeID]bool),
	}
	wt := &Tree{store: ov, opts: t.opts, root: t.root, height: t.height, count: t.count}
	return &WriteBatch{base: t, tree: wt, ov: ov}, nil
}

// Tree returns the mutable tree the batch's changes are applied to.
func (b *WriteBatch) Tree() *Tree { return b.tree }

// Commit publishes the batch: every written node is installed under a
// fresh ID next to the current version's nodes, child references are
// remapped, and the new root is persisted. It returns the new immutable
// snapshot plus the retired IDs — node slots that versions up to and
// including the superseded one may still reference. The caller must
// pass them to ReleaseNodes once those versions have drained.
//
// An empty batch (for example a Delete that found nothing) returns the
// base snapshot unchanged with no retired IDs. On error nothing has
// been published and the base snapshot is intact.
func (b *WriteBatch) Commit() (*Tree, []NodeID, error) {
	if b.done {
		return nil, nil, errors.New("rstar: write batch already finished")
	}
	b.done = true
	ov := b.ov
	if len(ov.written) == 0 && len(ov.freedBase) == 0 {
		ov.base.UnreserveIDs(ov.unreserved)
		return b.base, nil, nil
	}

	// Shadow-allocate a fresh ID for every rewritten base node. Batch
	// allocations already hold fresh IDs.
	remap := make(map[NodeID]NodeID, len(ov.written))
	writtenIDs := make([]NodeID, 0, len(ov.written))
	for id := range ov.written {
		writtenIDs = append(writtenIDs, id)
	}
	// Deterministic processing order keeps stores with sequential ID
	// allocation (page files) reproducible run to run.
	sort.Slice(writtenIDs, func(i, j int) bool { return writtenIDs[i] < writtenIDs[j] })
	for _, id := range writtenIDs {
		if ov.allocs[id] {
			continue
		}
		nid, err := ov.base.ReserveID()
		if err != nil {
			ov.base.UnreserveIDs(ov.unreserved)
			return nil, nil, err
		}
		remap[id] = nid
	}

	written := make([]*Node, 0, len(writtenIDs))
	for _, id := range writtenIDs {
		n := ov.dirty[id]
		if n == nil {
			return nil, nil, fmt.Errorf("rstar: written node %d missing from batch", id)
		}
		if nid, ok := remap[n.ID]; ok {
			n.ID = nid
		}
		for i, c := range n.Children {
			if nc, ok := remap[c]; ok {
				n.Children[i] = nc
			}
		}
		written = append(written, n)
	}

	root := b.tree.root
	if nr, ok := remap[root]; ok {
		root = nr
	}

	// Retired: explicitly freed base nodes plus the old IDs of every
	// rewritten one. They stay readable for pinned old versions.
	retired := make([]NodeID, 0, len(ov.freedBase)+len(remap))
	retired = append(retired, ov.freedBase...)
	for old := range remap {
		retired = append(retired, old)
	}

	view, err := ov.base.PublishBatch(written, retired, root, b.tree.height, b.tree.count)
	if err != nil {
		return nil, nil, err
	}
	ov.base.UnreserveIDs(ov.unreserved)
	return &Tree{store: view, opts: b.tree.opts, root: root, height: b.tree.height, count: b.tree.count, frozen: true}, retired, nil
}

// Discard drops the batch, returning any reserved IDs to the allocator.
// The base snapshot is untouched.
func (b *WriteBatch) Discard() {
	if b.done {
		return
	}
	b.done = true
	ids := b.ov.unreserved
	for id := range b.ov.allocs {
		ids = append(ids, id)
	}
	b.ov.base.UnreserveIDs(ids)
}

// cowStore is the overlay NodeStore a WriteBatch runs the unmodified
// R*-tree algorithms against. Get hands out private clones (memoised,
// so repeated Gets observe earlier in-place edits), Put records a node
// as written, Alloc reserves fresh IDs, and Free defers base-node
// reclamation to the commit.
type cowStore struct {
	base    snapshotStore
	dirty   map[NodeID]*Node // clones and new nodes, by pre-commit ID
	written map[NodeID]bool  // IDs that were Put or Alloc'd
	allocs  map[NodeID]bool  // IDs reserved by this batch
	// freedBase holds base IDs freed by the batch; unreserved holds
	// batch-allocated IDs freed again before commit.
	freedBase  []NodeID
	unreserved []NodeID

	root   NodeID
	height int
	count  int
	metaOK bool
}

func (s *cowStore) Get(id NodeID) (*Node, error) {
	if n, ok := s.dirty[id]; ok {
		return n, nil
	}
	n, err := s.base.Get(id) // counts one visit on the shared counter
	if err != nil {
		return nil, err
	}
	cl := cloneNode(n)
	s.dirty[id] = cl
	return cl, nil
}

func (s *cowStore) Put(n *Node) error {
	s.dirty[n.ID] = n
	s.written[n.ID] = true
	return nil
}

func (s *cowStore) Alloc(leaf bool) (*Node, error) {
	id, err := s.base.ReserveID()
	if err != nil {
		return nil, err
	}
	n := &Node{ID: id, Leaf: leaf}
	s.dirty[id] = n
	s.written[id] = true
	s.allocs[id] = true
	return n, nil
}

func (s *cowStore) Free(id NodeID) error {
	if _, ok := s.dirty[id]; !ok {
		// Freeing a node the batch never read would be an algorithm bug.
		return fmt.Errorf("rstar: cow free of unseen node %d", id)
	}
	delete(s.dirty, id)
	delete(s.written, id)
	if s.allocs[id] {
		delete(s.allocs, id)
		s.unreserved = append(s.unreserved, id)
		return nil
	}
	s.freedBase = append(s.freedBase, id)
	return nil
}

func (s *cowStore) Root() (NodeID, int, int) {
	if s.metaOK {
		return s.root, s.height, s.count
	}
	return s.base.Root()
}

func (s *cowStore) SetRoot(id NodeID, height, count int) error {
	s.root, s.height, s.count, s.metaOK = id, height, count, true
	return nil
}

func (s *cowStore) Visits() uint64 { return s.base.Visits() }
func (s *cowStore) ResetVisits()   { s.base.ResetVisits() }

// cloneNode deep-copies a node so in-place edits cannot reach the
// shared original. Slices get one slot of headroom: most batch edits
// append a single entry, and a fresh backing array guarantees appends
// never write into the original's storage.
func cloneNode(n *Node) *Node {
	cl := &Node{ID: n.ID, Leaf: n.Leaf}
	if len(n.Rects) > 0 {
		cl.Rects = append(make([]geom.Rect, 0, len(n.Rects)+1), n.Rects...)
	}
	if len(n.Children) > 0 {
		cl.Children = append(make([]NodeID, 0, len(n.Children)+1), n.Children...)
	}
	if len(n.Points) > 0 {
		cl.Points = append(make([]geom.Point, 0, len(n.Points)+1), n.Points...)
	}
	return cl
}
