package rstar

import (
	"fmt"
	"sync/atomic"
)

// MemStore keeps nodes resident in memory while still counting node
// visits. It is the store used by benchmarks: the paper's metric is node
// visits, which is identical whether nodes live in RAM or on pages.
type MemStore struct {
	nodes  []*Node // index = NodeID; slot 0 unused
	free   []NodeID
	visits atomic.Uint64

	root   NodeID
	height int
	count  int

	// sealed is set by Freeze; afterwards the store rejects in-place
	// mutation and all changes flow through versioned snapshots
	// (memsnap.go).
	sealed bool
}

// NewMemStore returns an empty resident node store.
func NewMemStore() *MemStore {
	return &MemStore{nodes: make([]*Node, 1)}
}

// Alloc implements NodeStore.
func (s *MemStore) Alloc(leaf bool) (*Node, error) {
	if s.sealed {
		return nil, ErrImmutableTree
	}
	var id NodeID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = NodeID(len(s.nodes))
		s.nodes = append(s.nodes, nil)
	}
	node := &Node{ID: id, Leaf: leaf}
	s.nodes[id] = node
	return node, nil
}

// Get implements NodeStore and counts one visit.
func (s *MemStore) Get(id NodeID) (*Node, error) {
	if int(id) >= len(s.nodes) || s.nodes[id] == nil {
		return nil, fmt.Errorf("rstar: memstore: no node %d", id)
	}
	s.visits.Add(1)
	return s.nodes[id], nil
}

// Put implements NodeStore. Nodes are shared pointers, so mutations made
// through Get are already visible; Put validates liveness.
func (s *MemStore) Put(n *Node) error {
	if s.sealed {
		return ErrImmutableTree
	}
	if int(n.ID) >= len(s.nodes) || s.nodes[n.ID] == nil {
		return fmt.Errorf("rstar: memstore: put of dead node %d", n.ID)
	}
	s.nodes[n.ID] = n
	return nil
}

// Free implements NodeStore.
func (s *MemStore) Free(id NodeID) error {
	if s.sealed {
		return ErrImmutableTree
	}
	if int(id) >= len(s.nodes) || s.nodes[id] == nil {
		return fmt.Errorf("rstar: memstore: free of dead node %d", id)
	}
	s.nodes[id] = nil
	s.free = append(s.free, id)
	return nil
}

// Root implements NodeStore.
func (s *MemStore) Root() (NodeID, int, int) { return s.root, s.height, s.count }

// SetRoot implements NodeStore.
func (s *MemStore) SetRoot(id NodeID, height, count int) error {
	if s.sealed {
		return ErrImmutableTree
	}
	s.root, s.height, s.count = id, height, count
	return nil
}

// Visits implements NodeStore.
func (s *MemStore) Visits() uint64 { return s.visits.Load() }

// ResetVisits implements NodeStore.
func (s *MemStore) ResetVisits() { s.visits.Store(0) }

// NumNodes returns the number of live nodes (for storage accounting).
func (s *MemStore) NumNodes() int {
	n := 0
	for _, node := range s.nodes[1:] {
		if node != nil {
			n++
		}
	}
	return n
}
