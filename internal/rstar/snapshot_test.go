package rstar

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/pager"
)

func snapPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i + 1)}
	}
	return pts
}

func sortedPoints(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func samePoints(t *testing.T, label string, got, want []geom.Point) {
	t.Helper()
	g, w := sortedPoints(got), sortedPoints(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d points, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: point %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func buildFrozenMem(t *testing.T, pts []geom.Point) *Tree {
	t.Helper()
	tr, err := New(NewMemStore(), Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	frozen, err := tr.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return frozen
}

func buildFrozenPaged(t *testing.T, pts []geom.Point) *Tree {
	t.Helper()
	pages, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(NewPagedStoreCache(pages, 128), Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	frozen, err := tr.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return frozen
}

func TestFrozenTreeRejectsInPlaceMutation(t *testing.T) {
	pts := snapPoints(100, 1)
	frozen := buildFrozenMem(t, pts)
	if err := frozen.Insert(geom.Point{X: 1, Y: 2, ID: 9999}); !errors.Is(err, ErrImmutableTree) {
		t.Fatalf("Insert on frozen tree: err = %v, want ErrImmutableTree", err)
	}
	if _, err := frozen.Delete(pts[0]); !errors.Is(err, ErrImmutableTree) {
		t.Fatalf("Delete on frozen tree: err = %v, want ErrImmutableTree", err)
	}
	all, err := frozen.All()
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "frozen tree after rejected mutations", all, pts)
}

func TestFreezeSealsOriginalStore(t *testing.T) {
	store := NewMemStore()
	tr, err := New(store, Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range snapPoints(50, 2) {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Freeze(); err != nil {
		t.Fatal(err)
	}
	// The pre-freeze tree value still points at the sealed store;
	// mutating through it must fail rather than corrupt snapshots.
	if err := tr.Insert(geom.Point{X: 1, Y: 1, ID: 9999}); !errors.Is(err, ErrImmutableTree) {
		t.Fatalf("Insert through sealed store: err = %v, want ErrImmutableTree", err)
	}
	if _, err := tr.Freeze(); err == nil {
		t.Fatal("second Freeze of the same store should fail")
	}
}

func TestWriteBatchCommitPreservesOldVersion(t *testing.T) {
	for _, kind := range []string{"mem", "paged"} {
		t.Run(kind, func(t *testing.T) {
			base := snapPoints(300, 3)
			var v0 *Tree
			if kind == "mem" {
				v0 = buildFrozenMem(t, base)
			} else {
				v0 = buildFrozenPaged(t, base)
			}

			extra := make([]geom.Point, 150)
			for i := range extra {
				extra[i] = geom.Point{X: float64(i) * 3.7, Y: float64(i) * 1.3, ID: uint64(10000 + i)}
			}
			b, err := v0.BeginWrite()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range extra {
				if err := b.Tree().Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range base[:100] {
				found, err := b.Tree().Delete(p)
				if err != nil {
					t.Fatal(err)
				}
				if !found {
					t.Fatalf("batch delete missed %v", p)
				}
			}
			v1, retired, err := b.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if len(retired) == 0 {
				t.Fatal("commit with mutations retired no nodes")
			}

			want1 := append(append([]geom.Point(nil), base[100:]...), extra...)
			all1, err := v1.All()
			if err != nil {
				t.Fatal(err)
			}
			samePoints(t, "new version", all1, want1)
			if err := v1.CheckInvariants(false); err != nil {
				t.Fatalf("new version invariants: %v", err)
			}

			// The old version must still read exactly the pre-batch
			// point set: shadow allocation may not touch its nodes.
			all0, err := v0.All()
			if err != nil {
				t.Fatal(err)
			}
			samePoints(t, "old version", all0, base)
			if err := v0.CheckInvariants(false); err != nil {
				t.Fatalf("old version invariants: %v", err)
			}

			// Releasing the retired IDs must leave the new version
			// intact (only the old one becomes unreadable).
			if err := v1.ReleaseNodes(retired); err != nil {
				t.Fatal(err)
			}
			all1b, err := v1.All()
			if err != nil {
				t.Fatal(err)
			}
			samePoints(t, "new version after release", all1b, want1)
			if err := v1.CheckInvariants(false); err != nil {
				t.Fatalf("new version invariants after release: %v", err)
			}
		})
	}
}

func TestWriteBatchEmptyCommit(t *testing.T) {
	pts := snapPoints(60, 4)
	v0 := buildFrozenMem(t, pts)
	b, err := v0.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	// A miss-delete reads nodes but writes nothing.
	if found, err := b.Tree().Delete(geom.Point{X: -5, Y: -5, ID: 424242}); err != nil || found {
		t.Fatalf("miss delete = (%v, %v), want (false, nil)", found, err)
	}
	v1, retired, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0 {
		t.Fatal("empty commit should return the base snapshot")
	}
	if len(retired) != 0 {
		t.Fatalf("empty commit retired %d nodes", len(retired))
	}
}

func TestWriteBatchDiscard(t *testing.T) {
	pts := snapPoints(80, 5)
	v0 := buildFrozenMem(t, pts)
	b, err := v0.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := b.Tree().Insert(geom.Point{X: float64(i), Y: float64(i), ID: uint64(5000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	b.Discard()
	all, err := v0.All()
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "base after discard", all, pts)

	// The discarded batch's reserved IDs must be reusable.
	b2, err := v0.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Tree().Insert(geom.Point{X: 1, Y: 1, ID: 7777}); err != nil {
		t.Fatal(err)
	}
	v1, _, err := b2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "commit after discard", mustAll(t, v1), append(append([]geom.Point(nil), pts...), geom.Point{X: 1, Y: 1, ID: 7777}))
}

func mustAll(t *testing.T, tr *Tree) []geom.Point {
	t.Helper()
	all, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// TestSnapshotChain drives a long chain of commits with releases lagging
// two versions behind, mirroring every state against a reference map —
// the reclamation discipline the nwcq view queue uses.
func TestSnapshotChain(t *testing.T) {
	for _, kind := range []string{"mem", "paged"} {
		t.Run(kind, func(t *testing.T) {
			base := snapPoints(200, 6)
			var cur *Tree
			if kind == "mem" {
				cur = buildFrozenMem(t, base)
			} else {
				cur = buildFrozenPaged(t, base)
			}
			ref := make(map[uint64]geom.Point, len(base))
			for _, p := range base {
				ref[p.ID] = p
			}
			rng := rand.New(rand.NewSource(7))
			nextID := uint64(100000)
			type pendingRelease struct {
				ids []NodeID
			}
			var pending []pendingRelease

			for step := 0; step < 40; step++ {
				b, err := cur.BeginWrite()
				if err != nil {
					t.Fatal(err)
				}
				nops := 1 + rng.Intn(8)
				for i := 0; i < nops; i++ {
					if rng.Intn(2) == 0 || len(ref) == 0 {
						p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: nextID}
						nextID++
						if err := b.Tree().Insert(p); err != nil {
							t.Fatal(err)
						}
						ref[p.ID] = p
					} else {
						var victim geom.Point
						for _, p := range ref {
							victim = p
							break
						}
						found, err := b.Tree().Delete(victim)
						if err != nil {
							t.Fatal(err)
						}
						if !found {
							t.Fatalf("step %d: delete missed %v", step, victim)
						}
						delete(ref, victim.ID)
					}
				}
				next, retired, err := b.Commit()
				if err != nil {
					t.Fatalf("step %d: commit: %v", step, err)
				}
				pending = append(pending, pendingRelease{ids: retired})
				// Lag releases: only versions two commits old drain.
				if len(pending) > 2 {
					if err := next.ReleaseNodes(pending[0].ids); err != nil {
						t.Fatal(err)
					}
					pending = pending[1:]
				}
				cur = next

				want := make([]geom.Point, 0, len(ref))
				for _, p := range ref {
					want = append(want, p)
				}
				samePoints(t, fmt.Sprintf("step %d", step), mustAll(t, cur), want)
				if err := cur.CheckInvariants(false); err != nil {
					t.Fatalf("step %d: invariants: %v", step, err)
				}
			}
		})
	}
}

// TestSnapshotConcurrentReaders commits mutations while readers hammer
// pinned versions; run under -race this is the core safety regression
// for shadow allocation.
func TestSnapshotConcurrentReaders(t *testing.T) {
	for _, kind := range []string{"mem", "paged"} {
		t.Run(kind, func(t *testing.T) {
			base := snapPoints(400, 8)
			var cur *Tree
			if kind == "mem" {
				cur = buildFrozenMem(t, base)
			} else {
				cur = buildFrozenPaged(t, base)
			}

			stop := make(chan struct{})
			errs := make(chan error, 4)
			baseSorted := sortedPoints(base)
			for g := 0; g < 3; g++ {
				go func() {
					for {
						select {
						case <-stop:
							errs <- nil
							return
						default:
						}
						all, err := cur.All() // pinned v0, never released during the test
						if err != nil {
							errs <- fmt.Errorf("reader: %v", err)
							return
						}
						got := sortedPoints(all)
						if len(got) != len(baseSorted) {
							errs <- fmt.Errorf("reader saw %d points, want %d", len(got), len(baseSorted))
							return
						}
					}
				}()
			}

			writer := cur
			var retired []NodeID
			for step := 0; step < 25; step++ {
				b, err := writer.BeginWrite()
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 5; i++ {
					p := geom.Point{X: float64(step*10 + i), Y: float64(step), ID: uint64(200000 + step*10 + i)}
					if err := b.Tree().Insert(p); err != nil {
						t.Fatal(err)
					}
				}
				next, dead, err := b.Commit()
				if err != nil {
					t.Fatal(err)
				}
				retired = append(retired, dead...)
				writer = next
			}
			close(stop)
			for g := 0; g < 3; g++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			// Only now, with all readers of v0 done, release the chain.
			if err := writer.ReleaseNodes(retired); err != nil {
				t.Fatal(err)
			}
			if err := writer.CheckInvariants(false); err != nil {
				t.Fatal(err)
			}
		})
	}
}
