package rstar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Versioned in-memory node storage.
//
// Freezing a MemStore converts it into a sequence of immutable versions
// (memView). Each version owns a chunked directory of node pointers;
// publishing a batch copies the directory and only the chunks it
// touches, so versions share almost all storage and a publication is a
// handful of small allocations regardless of tree size. The allocator
// (free list, next-ID high-water mark) and the cumulative visit counter
// live in memShared, common to every version.

const (
	memChunkShift = 9 // 512 node slots per chunk
	memChunkSize  = 1 << memChunkShift
	memChunkMask  = memChunkSize - 1
)

// memShared is the mutable state common to all versions of a frozen
// MemStore: the ID allocator and the cumulative visit counter.
type memShared struct {
	visits *atomic.Uint64

	mu   sync.Mutex
	free []NodeID
	next NodeID // lowest never-allocated ID
}

func (sh *memShared) reserve() NodeID {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n := len(sh.free); n > 0 {
		id := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return id
	}
	id := sh.next
	sh.next++
	return id
}

func (sh *memShared) release(ids []NodeID) {
	if len(ids) == 0 {
		return
	}
	sh.mu.Lock()
	sh.free = append(sh.free, ids...)
	sh.mu.Unlock()
}

// memView is one immutable version of a frozen MemStore. Reads are
// lock-free; all NodeStore mutation methods fail. New versions are
// derived through PublishBatch.
type memView struct {
	shared *memShared
	chunks [][]*Node // directory; chunks are shared across versions

	root   NodeID
	height int
	count  int
}

// Freeze implements freezableStore: it seals the store against further
// in-place mutation and returns the immutable view of its contents.
func (s *MemStore) Freeze() (NodeStore, error) {
	if s.sealed {
		return nil, errors.New("rstar: memstore already frozen")
	}
	s.sealed = true
	sh := &memShared{
		visits: &s.visits,
		free:   append([]NodeID(nil), s.free...),
		next:   NodeID(len(s.nodes)),
	}
	nChunks := (len(s.nodes) + memChunkMask) >> memChunkShift
	chunks := make([][]*Node, nChunks)
	for ci := range chunks {
		chunk := make([]*Node, memChunkSize)
		copy(chunk, s.nodes[ci<<memChunkShift:])
		chunks[ci] = chunk
	}
	return &memView{
		shared: sh,
		chunks: chunks,
		root:   s.root,
		height: s.height,
		count:  s.count,
	}, nil
}

func (v *memView) slot(id NodeID) *Node {
	ci := int(id) >> memChunkShift
	if ci >= len(v.chunks) {
		return nil
	}
	return v.chunks[ci][int(id)&memChunkMask]
}

// Get implements NodeStore and counts one visit.
func (v *memView) Get(id NodeID) (*Node, error) {
	n := v.slot(id)
	if n == nil {
		return nil, fmt.Errorf("rstar: memview: no node %d", id)
	}
	v.shared.visits.Add(1)
	return n, nil
}

func (v *memView) Alloc(bool) (*Node, error) { return nil, ErrImmutableTree }
func (v *memView) Put(*Node) error           { return ErrImmutableTree }
func (v *memView) Free(NodeID) error         { return ErrImmutableTree }

// Root implements NodeStore.
func (v *memView) Root() (NodeID, int, int) { return v.root, v.height, v.count }

// SetRoot implements NodeStore; versions are immutable.
func (v *memView) SetRoot(NodeID, int, int) error { return ErrImmutableTree }

// Visits implements NodeStore via the shared cumulative counter.
func (v *memView) Visits() uint64 { return v.shared.visits.Load() }

// ResetVisits implements NodeStore via the shared cumulative counter.
func (v *memView) ResetVisits() { v.shared.visits.Store(0) }

// ReserveID implements snapshotStore.
func (v *memView) ReserveID() (NodeID, error) { return v.shared.reserve(), nil }

// UnreserveIDs implements snapshotStore.
func (v *memView) UnreserveIDs(ids []NodeID) { v.shared.release(ids) }

// ReleaseIDs implements snapshotStore. The caller guarantees no live
// reader can reach the IDs; with in-memory versions the retired nodes
// simply become reusable slots (old versions keep their own chunk
// copies, so even a stale pinned view stays intact).
func (v *memView) ReleaseIDs(ids []NodeID) { v.shared.release(ids) }

// PublishBatch implements snapshotStore: it derives the next version by
// copying the chunk directory, rewriting only the chunks that hold
// written or dead slots.
func (v *memView) PublishBatch(written []*Node, dead []NodeID, root NodeID, height, count int) (NodeStore, error) {
	maxID := NodeID(0)
	for _, n := range written {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	nChunks := len(v.chunks)
	if need := (int(maxID) + 1 + memChunkMask) >> memChunkShift; need > nChunks {
		nChunks = need
	}
	chunks := make([][]*Node, nChunks)
	copy(chunks, v.chunks)

	cow := func(ci int) []*Node {
		chunk := chunks[ci]
		if chunk == nil {
			chunk = make([]*Node, memChunkSize)
		} else if ci < len(v.chunks) && &chunk[0] == &v.chunks[ci][0] {
			chunk = append([]*Node(nil), chunk...)
		}
		chunks[ci] = chunk
		return chunk
	}
	// Process dead slots first: a released-and-reused ID can appear in
	// both lists, and the written node must win.
	for _, id := range dead {
		ci := int(id) >> memChunkShift
		if ci >= len(chunks) || chunks[ci] == nil {
			return nil, fmt.Errorf("rstar: memview: publish retires unknown node %d", id)
		}
		cow(ci)[int(id)&memChunkMask] = nil
	}
	for _, n := range written {
		cow(int(n.ID) >> memChunkShift)[int(n.ID)&memChunkMask] = n
	}
	return &memView{
		shared: v.shared,
		chunks: chunks,
		root:   root,
		height: height,
		count:  count,
	}, nil
}

// NumNodes returns the number of live nodes in this version (for
// storage accounting).
func (v *memView) NumNodes() int {
	n := 0
	for _, chunk := range v.chunks {
		for _, node := range chunk {
			if node != nil {
				n++
			}
		}
	}
	return n
}
