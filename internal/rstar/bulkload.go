package rstar

import (
	"errors"
	"math"
	"sort"

	"nwcq/internal/geom"
)

// BulkLoad builds the tree from pts using sort-tile-recursive (STR)
// packing (Leutenegger, Edgington and Lopez, ICDE 1997). It is much
// faster than repeated insertion for large static datasets — the setting
// of the paper's experiments — at a small cost in node quality. The tree
// must be empty.
//
// Each node is packed to fillFactor × MaxEntries entries (fillFactor is
// fixed at 0.7, a customary STR choice that leaves room for later
// inserts).
func (t *Tree) BulkLoad(pts []geom.Point) error {
	if t.frozen {
		return ErrImmutableTree
	}
	if t.count != 0 {
		return errors.New("rstar: BulkLoad requires an empty tree")
	}
	if len(pts) == 0 {
		return nil
	}
	capacity := t.opts.MaxEntries * 7 / 10
	if capacity < 2 {
		capacity = 2
	}

	// Free the placeholder empty root.
	if err := t.store.Free(t.root); err != nil {
		return err
	}

	// Level 0: tile points into leaves.
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	level, err := t.packLeaves(sorted, capacity)
	if err != nil {
		return err
	}
	t.height = 1

	// Upper levels: tile child entries until a single node remains.
	for len(level) > 1 {
		level, err = t.packInternal(level, capacity)
		if err != nil {
			return err
		}
		t.height++
	}
	t.root = level[0].child
	t.count = len(pts)
	return t.persistRoot()
}

// packLeaves slices the points STR-style and returns the resulting child
// entries.
func (t *Tree) packLeaves(pts []geom.Point, capacity int) ([]entry, error) {
	nLeaves := (len(pts) + capacity - 1) / capacity
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * capacity

	sort.Slice(pts, func(a, b int) bool {
		if pts[a].X != pts[b].X {
			return pts[a].X < pts[b].X
		}
		return pts[a].Y < pts[b].Y
	})
	var out []entry
	for start := 0; start < len(pts); start += sliceSize {
		end := start + sliceSize
		if end > len(pts) {
			end = len(pts)
		}
		slice := pts[start:end]
		sort.Slice(slice, func(a, b int) bool {
			if slice[a].Y != slice[b].Y {
				return slice[a].Y < slice[b].Y
			}
			return slice[a].X < slice[b].X
		})
		for ls := 0; ls < len(slice); ls += capacity {
			le := ls + capacity
			if le > len(slice) {
				le = len(slice)
			}
			leaf, err := t.store.Alloc(true)
			if err != nil {
				return nil, err
			}
			leaf.Points = append(leaf.Points, slice[ls:le]...)
			if err := t.store.Put(leaf); err != nil {
				return nil, err
			}
			out = append(out, childEntry(leaf.MBR(), leaf.ID))
		}
	}
	return out, nil
}

// packInternal tiles child entries into internal nodes one level up.
func (t *Tree) packInternal(children []entry, capacity int) ([]entry, error) {
	nNodes := (len(children) + capacity - 1) / capacity
	nSlices := int(math.Ceil(math.Sqrt(float64(nNodes))))
	sliceSize := nSlices * capacity

	sort.Slice(children, func(a, b int) bool {
		ca, cb := children[a].rect.Center(), children[b].rect.Center()
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.Y < cb.Y
	})
	var out []entry
	for start := 0; start < len(children); start += sliceSize {
		end := start + sliceSize
		if end > len(children) {
			end = len(children)
		}
		slice := children[start:end]
		sort.Slice(slice, func(a, b int) bool {
			ca, cb := slice[a].rect.Center(), slice[b].rect.Center()
			if ca.Y != cb.Y {
				return ca.Y < cb.Y
			}
			return ca.X < cb.X
		})
		for ls := 0; ls < len(slice); ls += capacity {
			le := ls + capacity
			if le > len(slice) {
				le = len(slice)
			}
			node, err := t.store.Alloc(false)
			if err != nil {
				return nil, err
			}
			for _, e := range slice[ls:le] {
				node.Rects = append(node.Rects, e.rect)
				node.Children = append(node.Children, e.child)
			}
			if err := t.store.Put(node); err != nil {
				return nil, err
			}
			out = append(out, childEntry(node.MBR(), node.ID))
		}
	}
	return out, nil
}
