package rstar

import (
	"math"
	"sort"

	"nwcq/internal/geom"
)

// entry is a level-generic tree entry used by insertion and reinsertion:
// either a data point (leaf level) or a child reference with its MBR.
type entry struct {
	rect  geom.Rect
	child NodeID // InvalidNode for point entries
	point geom.Point
}

func pointEntry(p geom.Point) entry {
	return entry{rect: geom.RectAround(p), point: p}
}

func childEntry(rect geom.Rect, id NodeID) entry {
	return entry{rect: rect, child: id}
}

// Insert adds point p to the tree using the R*-tree insertion algorithm
// with forced reinsertion.
func (t *Tree) Insert(p geom.Point) error {
	if t.frozen {
		return ErrImmutableTree
	}
	// Forced reinsertion is permitted once per level per top-level
	// insertion (the R*-tree OverflowTreatment rule).
	t.reinsertedAtLevel = make([]bool, t.height+1)
	if err := t.insertEntry(pointEntry(p), 0); err != nil {
		return err
	}
	t.count++
	return t.persistRoot()
}

// insertEntry places e at the given level (0 = leaf level, counting up
// toward the root).
func (t *Tree) insertEntry(e entry, level int) error {
	path, err := t.chooseSubtree(e.rect, level)
	if err != nil {
		return err
	}
	node := path[len(path)-1].node
	if node.Leaf {
		node.Points = append(node.Points, e.point)
	} else {
		node.Rects = append(node.Rects, e.rect)
		node.Children = append(node.Children, e.child)
	}
	if err := t.store.Put(node); err != nil {
		return err
	}
	return t.adjustPath(path, level)
}

// pathItem records one step of a root-to-target descent: the node and the
// index of the child taken within it (meaningless for the last item).
type pathItem struct {
	node     *Node
	childIdx int
}

// chooseSubtree descends from the root to the node at the target level
// using the R*-tree ChooseSubtree criteria and returns the full path.
func (t *Tree) chooseSubtree(r geom.Rect, level int) ([]pathItem, error) {
	node, err := t.store.Get(t.root)
	if err != nil {
		return nil, err
	}
	path := []pathItem{{node: node}}
	// The node's level counted from the leaves.
	nodeLevel := t.height - 1
	for nodeLevel > level {
		var idx int
		if nodeLevel == level+1 && level == 0 {
			// Children are leaves: minimise overlap enlargement.
			idx = chooseLeastOverlapEnlargement(node, r)
		} else {
			idx = chooseLeastAreaEnlargement(node, r)
		}
		path[len(path)-1].childIdx = idx
		child, err := t.store.Get(node.Children[idx])
		if err != nil {
			return nil, err
		}
		node = child
		path = append(path, pathItem{node: node})
		nodeLevel--
	}
	return path, nil
}

// chooseLeastOverlapEnlargement picks the child whose MBR needs the least
// overlap enlargement to include r, breaking ties by area enlargement and
// then by area (the R*-tree leaf-level rule).
func chooseLeastOverlapEnlargement(node *Node, r geom.Rect) int {
	best := -1
	bestOverlap, bestEnlarge, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
	for i, cr := range node.Rects {
		grown := cr.Union(r)
		var overlapDelta float64
		for j, other := range node.Rects {
			if j == i {
				continue
			}
			overlapDelta += grown.OverlapArea(other) - cr.OverlapArea(other)
		}
		enlarge := grown.Area() - cr.Area()
		area := cr.Area()
		if overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && enlarge < bestEnlarge) ||
			(overlapDelta == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlapDelta, enlarge, area
		}
	}
	return best
}

// chooseLeastAreaEnlargement picks the child whose MBR needs the least
// area enlargement to include r, breaking ties by smaller area.
func chooseLeastAreaEnlargement(node *Node, r geom.Rect) int {
	best := -1
	bestEnlarge, bestArea := math.Inf(1), math.Inf(1)
	for i, cr := range node.Rects {
		enlarge := cr.Enlargement(r)
		area := cr.Area()
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return best
}

// adjustPath handles overflow at the tail of path (a node at the given
// level) and propagates MBR updates and splits toward the root.
func (t *Tree) adjustPath(path []pathItem, level int) error {
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i].node
		nodeLevel := level + (len(path) - 1 - i)
		var splitEntry *entry
		if node.Len() > t.opts.MaxEntries {
			isRoot := i == 0
			if !isRoot && !t.reinsertedAtLevel[nodeLevel] {
				t.reinsertedAtLevel[nodeLevel] = true
				return t.forceReinsert(path, i, nodeLevel)
			}
			newEntry, err := t.splitNode(node)
			if err != nil {
				return err
			}
			splitEntry = &newEntry
		}
		if i == 0 {
			if splitEntry != nil {
				return t.growRoot(node, *splitEntry)
			}
			return t.store.Put(node)
		}
		parent := path[i-1].node
		parent.Rects[path[i-1].childIdx] = node.MBR()
		if splitEntry != nil {
			parent.Rects = append(parent.Rects, splitEntry.rect)
			parent.Children = append(parent.Children, splitEntry.child)
		}
		if err := t.store.Put(parent); err != nil {
			return err
		}
	}
	return nil
}

// growRoot installs a new root above the old one after a root split.
func (t *Tree) growRoot(oldRoot *Node, extra entry) error {
	newRoot, err := t.store.Alloc(false)
	if err != nil {
		return err
	}
	newRoot.Rects = []geom.Rect{oldRoot.MBR(), extra.rect}
	newRoot.Children = []NodeID{oldRoot.ID, extra.child}
	if err := t.store.Put(newRoot); err != nil {
		return err
	}
	t.root = newRoot.ID
	t.height++
	// Grow the per-level reinsertion ledger to match.
	t.reinsertedAtLevel = append(t.reinsertedAtLevel, true)
	return t.persistRoot()
}

// forceReinsert implements the R*-tree forced-reinsertion heuristic: the
// 30% of the overflowing node's entries farthest from its MBR center are
// removed and reinserted at the same level, tending to improve the
// node's shape instead of splitting immediately.
func (t *Tree) forceReinsert(path []pathItem, idx, nodeLevel int) error {
	node := path[idx].node
	entries := nodeEntries(node)
	center := node.MBR().Center()
	sort.SliceStable(entries, func(a, b int) bool {
		return entries[a].rect.Center().Dist2(center) > entries[b].rect.Center().Dist2(center)
	})
	reinsertCount := (t.opts.MaxEntries + 1) * 3 / 10
	if reinsertCount < 1 {
		reinsertCount = 1
	}
	evicted := make([]entry, reinsertCount)
	copy(evicted, entries[:reinsertCount])
	setNodeEntries(node, entries[reinsertCount:])
	if err := t.store.Put(node); err != nil {
		return err
	}
	// Tighten ancestor MBRs before reinserting.
	for i := idx - 1; i >= 0; i-- {
		parent := path[i].node
		parent.Rects[path[i].childIdx] = path[i+1].node.MBR()
		if err := t.store.Put(parent); err != nil {
			return err
		}
	}
	// Reinsert farthest-first (the variant the R*-tree paper found best).
	for _, e := range evicted {
		if err := t.insertEntry(e, nodeLevel); err != nil {
			return err
		}
	}
	return nil
}

// splitNode splits an overflowing node in place using the R* topological
// split and returns the entry for the newly created sibling.
func (t *Tree) splitNode(node *Node) (entry, error) {
	entries := nodeEntries(node)
	left, right := rstarSplit(entries, t.opts.MinEntries)
	setNodeEntries(node, left)
	if err := t.store.Put(node); err != nil {
		return entry{}, err
	}
	sibling, err := t.store.Alloc(node.Leaf)
	if err != nil {
		return entry{}, err
	}
	setNodeEntries(sibling, right)
	if err := t.store.Put(sibling); err != nil {
		return entry{}, err
	}
	return childEntry(sibling.MBR(), sibling.ID), nil
}

func nodeEntries(node *Node) []entry {
	if node.Leaf {
		out := make([]entry, len(node.Points))
		for i, p := range node.Points {
			out[i] = pointEntry(p)
		}
		return out
	}
	out := make([]entry, len(node.Children))
	for i := range node.Children {
		out[i] = childEntry(node.Rects[i], node.Children[i])
	}
	return out
}

func setNodeEntries(node *Node, entries []entry) {
	if node.Leaf {
		node.Points = node.Points[:0]
		for _, e := range entries {
			node.Points = append(node.Points, e.point)
		}
		node.Rects = nil
		node.Children = nil
		return
	}
	node.Rects = node.Rects[:0]
	node.Children = node.Children[:0]
	for _, e := range entries {
		node.Rects = append(node.Rects, e.rect)
		node.Children = append(node.Children, e.child)
	}
	node.Points = nil
}

// rstarSplit distributes entries into two groups using the R*-tree split:
// choose the axis with the minimum total margin over all legal
// distributions, then the distribution with minimum overlap (ties: min
// total area).
func rstarSplit(entries []entry, minEntries int) (left, right []entry) {
	axis := chooseSplitAxis(entries, minEntries)
	sortEntriesByAxis(entries, axis)
	splitIdx := chooseSplitIndex(entries, minEntries)
	left = make([]entry, splitIdx)
	copy(left, entries[:splitIdx])
	right = make([]entry, len(entries)-splitIdx)
	copy(right, entries[splitIdx:])
	return left, right
}

// axis identifiers for split selection: sort key is (min, max) along the
// axis.
const (
	axisX = iota
	axisY
)

func sortEntriesByAxis(entries []entry, axis int) {
	sort.SliceStable(entries, func(a, b int) bool {
		ra, rb := entries[a].rect, entries[b].rect
		if axis == axisX {
			if ra.MinX != rb.MinX {
				return ra.MinX < rb.MinX
			}
			return ra.MaxX < rb.MaxX
		}
		if ra.MinY != rb.MinY {
			return ra.MinY < rb.MinY
		}
		return ra.MaxY < rb.MaxY
	})
}

func chooseSplitAxis(entries []entry, minEntries int) int {
	bestAxis, bestMargin := axisX, math.Inf(1)
	scratch := make([]entry, len(entries))
	for _, axis := range []int{axisX, axisY} {
		copy(scratch, entries)
		sortEntriesByAxis(scratch, axis)
		margin := 0.0
		forEachDistribution(scratch, minEntries, func(l, r geom.Rect) {
			margin += l.Margin() + r.Margin()
		})
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	return bestAxis
}

// chooseSplitIndex assumes entries are sorted along the chosen axis and
// returns the boundary index of the best distribution.
func chooseSplitIndex(entries []entry, minEntries int) int {
	bestIdx := minEntries
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	idx := minEntries
	forEachDistribution(entries, minEntries, func(l, r geom.Rect) {
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestIdx, bestOverlap, bestArea = idx, overlap, area
		}
		idx++
	})
	return bestIdx
}

// forEachDistribution calls fn with the group MBRs of every legal split
// boundary (left group sizes minEntries .. len-minEntries) of the sorted
// entries. Prefix/suffix MBRs are precomputed so the scan is linear.
func forEachDistribution(entries []entry, minEntries int, fn func(left, right geom.Rect)) {
	n := len(entries)
	prefix := make([]geom.Rect, n+1)
	prefix[0] = geom.EmptyRect()
	for i, e := range entries {
		prefix[i+1] = prefix[i].Union(e.rect)
	}
	suffix := make([]geom.Rect, n+1)
	suffix[n] = geom.EmptyRect()
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(entries[i].rect)
	}
	for k := minEntries; k <= n-minEntries; k++ {
		fn(prefix[k], suffix[k])
	}
}
