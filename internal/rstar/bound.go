package rstar

import (
	"context"
	"math"
	"sync/atomic"
)

// SharedBound is an atomic distance cell cooperating best-first searches
// publish their best result distance into and prune against. It lifts
// the paper's bound B out of a single traversal: when N searches run
// concurrently over disjoint partitions of one dataset (the sharded
// scatter phase), a tight bound found by any of them immediately
// shrinks every other one's frontier.
//
// The cell is monotone non-increasing: Tighten only ever lowers it, so
// a reader observes a value at least as large as the final bound. That
// is exactly the property the pruning rules need — pruning against a
// stale (larger) value is merely conservative, never wrong. See
// DESIGN.md §12 for the per-rule safety argument.
//
// The value is stored as IEEE 754 bits in a uint64 and updated with a
// compare-and-swap min loop; all methods are safe for unrestricted
// concurrent use and allocation-free. Use NewSharedBound: the zero
// value reads as bound 0, which prunes everything.
type SharedBound struct {
	bits atomic.Uint64
	// tightenings counts successful Tighten calls — how often one
	// search's discovery shrank the shared frontier.
	tightenings atomic.Uint64
}

// NewSharedBound returns a cell initialised to +Inf (no bound yet).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound. It is one atomic load; callers may
// read it as often as node-visit granularity.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to d if d improves on it, reporting whether
// it did. NaN is ignored. The CAS loop makes concurrent tightenings
// settle on the minimum regardless of arrival order.
func (b *SharedBound) Tighten(d float64) bool {
	if math.IsNaN(d) {
		return false
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			b.tightenings.Add(1)
			return true
		}
	}
}

// Tightenings returns how many Tighten calls improved the bound.
func (b *SharedBound) Tightenings() uint64 {
	return b.tightenings.Load()
}

// boundKey carries a SharedBound through a context so the sharded
// router can hand its scatter workers a shared cell without widening
// the public Querier interface.
type boundKey struct{}

// ContextWithBound returns a context carrying sb. Queries started under
// it join the cooperative bound; sb == nil returns ctx unchanged.
func ContextWithBound(ctx context.Context, sb *SharedBound) context.Context {
	if sb == nil {
		return ctx
	}
	return context.WithValue(ctx, boundKey{}, sb)
}

// BoundFromContext extracts the shared bound from ctx, nil when the
// query runs alone.
func BoundFromContext(ctx context.Context) *SharedBound {
	if ctx == nil {
		return nil
	}
	sb, _ := ctx.Value(boundKey{}).(*SharedBound)
	return sb
}
