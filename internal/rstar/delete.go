package rstar

import "nwcq/internal/geom"

// Delete removes one point equal to p (same coordinates and ID) from the
// tree. It reports whether a matching point was found. Underflowing
// nodes are condensed: their surviving entries are reinserted at their
// original level, and a single-child internal root is collapsed.
func (t *Tree) Delete(p geom.Point) (bool, error) {
	if t.frozen {
		return false, ErrImmutableTree
	}
	root, err := t.store.Get(t.root)
	if err != nil {
		return false, err
	}
	var orphans []orphan
	found, err := t.deleteRec(root, 0, nil, p, &orphans)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.count--

	// Reinsert entries orphaned by condensed nodes at their original
	// levels. Heights may change during these inserts; orphan levels are
	// counted from the leaves so they remain valid.
	for _, o := range orphans {
		t.reinsertedAtLevel = make([]bool, t.height+1)
		if err := t.insertEntry(o.e, o.level); err != nil {
			return false, err
		}
	}

	// Collapse a single-child internal root.
	for {
		root, err := t.store.Get(t.root)
		if err != nil {
			return false, err
		}
		if root.Leaf || root.Len() != 1 {
			break
		}
		child := root.Children[0]
		if err := t.store.Free(root.ID); err != nil {
			return false, err
		}
		t.root = child
		t.height--
	}
	return true, t.persistRoot()
}

type orphan struct {
	e     entry
	level int
}

// deleteRec searches for p below node (at the given depth from the
// root), removes it, and condenses on the way back up. parentRects is
// nil for the root. It returns whether p was found in this subtree.
func (t *Tree) deleteRec(node *Node, depth int, parentRects *geom.Rect, p geom.Point, orphans *[]orphan) (bool, error) {
	if node.Leaf {
		for i, q := range node.Points {
			if q == p {
				node.Points = append(node.Points[:i], node.Points[i+1:]...)
				if err := t.store.Put(node); err != nil {
					return false, err
				}
				if parentRects != nil {
					*parentRects = node.MBR()
				}
				return true, nil
			}
		}
		return false, nil
	}
	target := geom.RectAround(p)
	for i := 0; i < len(node.Children); i++ {
		if !node.Rects[i].ContainsRect(target) {
			continue
		}
		child, err := t.store.Get(node.Children[i])
		if err != nil {
			return false, err
		}
		found, err := t.deleteRec(child, depth+1, &node.Rects[i], p, orphans)
		if err != nil {
			return false, err
		}
		if !found {
			continue
		}
		// Condense: if the child underflowed, evict it and queue its
		// remaining entries for reinsertion.
		if child.Len() < t.opts.MinEntries {
			// The child sits one level below node; levels are counted
			// from the leaves so the reinsertion target stays valid even
			// if the height changes before reinsertion happens.
			childLevel := t.height - 2 - depth
			for _, e := range nodeEntries(child) {
				*orphans = append(*orphans, orphan{e: e, level: childLevel})
			}
			if err := t.store.Free(child.ID); err != nil {
				return false, err
			}
			node.Rects = append(node.Rects[:i], node.Rects[i+1:]...)
			node.Children = append(node.Children[:i], node.Children[i+1:]...)
		}
		if err := t.store.Put(node); err != nil {
			return false, err
		}
		if parentRects != nil {
			*parentRects = node.MBR()
		}
		return true, nil
	}
	return false, nil
}
