package rstar

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nwcq/internal/geom"
)

// faultStore wraps a NodeStore and fails the i-th operation of a chosen
// kind, for error-propagation testing.
type faultStore struct {
	NodeStore
	failGet                   int // fail the n-th Get (1-based); 0 = never
	failPut                   int
	failAlloc                 int
	failFree                  int
	gets, puts, allocs, frees int
}

var errInjected = errors.New("injected storage fault")

func (s *faultStore) Get(id NodeID) (*Node, error) {
	s.gets++
	if s.failGet > 0 && s.gets == s.failGet {
		return nil, fmt.Errorf("get %d: %w", id, errInjected)
	}
	return s.NodeStore.Get(id)
}

func (s *faultStore) Put(n *Node) error {
	s.puts++
	if s.failPut > 0 && s.puts == s.failPut {
		return fmt.Errorf("put %d: %w", n.ID, errInjected)
	}
	return s.NodeStore.Put(n)
}

func (s *faultStore) Alloc(leaf bool) (*Node, error) {
	s.allocs++
	if s.failAlloc > 0 && s.allocs == s.failAlloc {
		return nil, errInjected
	}
	return s.NodeStore.Alloc(leaf)
}

func (s *faultStore) Free(id NodeID) error {
	s.frees++
	if s.failFree > 0 && s.frees == s.failFree {
		return errInjected
	}
	return s.NodeStore.Free(id)
}

// TestFaultPropagation checks that storage errors surface from every
// tree operation instead of being swallowed or panicking.
func TestFaultPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	pts := genPoints(rng, 400, true)

	// Determine roughly how many operations a clean run performs, then
	// inject faults across that range.
	clean := &faultStore{NodeStore: NewMemStore()}
	tr, err := New(clean, Options{MaxEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.SearchCollect(geom.NewRect(0, 0, 500, 500)); err != nil {
		t.Fatal(err)
	}
	totalGets, totalPuts := clean.gets, clean.puts

	for _, failAt := range []int{1, 2, totalGets / 2, totalGets} {
		fs := &faultStore{NodeStore: NewMemStore(), failGet: failAt}
		tr, err := New(fs, Options{MaxEntries: 5})
		if err != nil {
			continue // fault hit during construction: also acceptable
		}
		sawErr := false
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				if !errors.Is(err, errInjected) {
					t.Fatalf("foreign error: %v", err)
				}
				sawErr = true
				break
			}
		}
		if !sawErr {
			// The fault may land in a query instead.
			if _, err := tr.SearchCollect(geom.NewRect(0, 0, 1000, 1000)); err != nil {
				if !errors.Is(err, errInjected) {
					t.Fatalf("foreign error: %v", err)
				}
				sawErr = true
			}
			it := tr.NewNNIterator(geom.Point{X: 1, Y: 1})
			for {
				if _, _, _, ok := it.Next(); !ok {
					break
				}
			}
			if it.Err() != nil && !errors.Is(it.Err(), errInjected) {
				t.Fatalf("foreign NN error: %v", it.Err())
			}
		}
	}

	for _, failAt := range []int{1, totalPuts / 3, totalPuts} {
		fs := &faultStore{NodeStore: NewMemStore(), failPut: failAt}
		tr, err := New(fs, Options{MaxEntries: 5})
		if err != nil {
			continue
		}
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				if !errors.Is(err, errInjected) {
					t.Fatalf("foreign error: %v", err)
				}
				break
			}
		}
	}

	// Alloc faults during bulk load.
	fs := &faultStore{NodeStore: NewMemStore(), failAlloc: 3}
	tr2, err := New(fs, Options{MaxEntries: 5})
	if err == nil {
		if err := tr2.BulkLoad(pts); err == nil {
			t.Error("bulk load over failing alloc succeeded")
		} else if !errors.Is(err, errInjected) {
			t.Errorf("foreign bulk-load error: %v", err)
		}
	}

	// Free faults during delete.
	fs = &faultStore{NodeStore: NewMemStore(), failFree: 1}
	tr3, err := New(fs, Options{MaxEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:100] {
		if err := tr3.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	sawFreeErr := false
	for _, p := range pts[:100] {
		if _, err := tr3.Delete(p); err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("foreign delete error: %v", err)
			}
			sawFreeErr = true
			break
		}
	}
	if !sawFreeErr {
		t.Log("no node was freed during deletes (acceptable for this shape)")
	}
}
