package rstar

import (
	"context"

	"nwcq/internal/geom"
	"nwcq/internal/trace"
)

// Reader is a read handle over a Tree that gives one query private,
// concurrency-correct accounting and cooperative cancellation.
//
// Every node access through a Reader does three things:
//
//  1. checks the reader's context (so a cancelled or expired context
//     aborts a traversal at node-visit granularity),
//  2. increments the reader's per-query visit counter — a plain local
//     counter owned by exactly one query, never shared, and
//  3. increments the store's cumulative atomic counter (the index-wide
//     total behind Tree.Visits).
//
// Concurrent queries therefore each observe their exact own I/O cost
// while the cumulative total stays exact too; nothing on the read path
// takes a lock. A Reader is a small value, cheap to copy, and is not
// safe for use by multiple goroutines at once (each query builds its
// own).
type Reader struct {
	t      *Tree
	ctx    context.Context
	visits *uint64
	rec    *trace.Recorder
	// bound is the cooperative shared distance bound, nil for solo
	// queries. It rides on the reader — next to the visit counter — so
	// every layer that holds a reader can consult the live global bound
	// without extra plumbing.
	bound *SharedBound
}

// Reader returns a read handle for one query. ctx may be nil, meaning
// no cancellation; visits may be nil, meaning no per-query accounting.
func (t *Tree) Reader(ctx context.Context, visits *uint64) Reader {
	return Reader{t: t, ctx: ctx, visits: visits}
}

// WithTrace returns a copy of the reader that attributes every node
// visit to rec's current phase. rec may be nil (tracing off), in which
// case the read path pays exactly one nil check per node access.
func (r Reader) WithTrace(rec *trace.Recorder) Reader {
	r.rec = rec
	return r
}

// Recorder returns the trace recorder attached to this reader, nil when
// tracing is off. Cooperating traversals (IWP's window queries) use it
// to record their own decisions against the same trace.
func (r Reader) Recorder() *trace.Recorder { return r.rec }

// WithBound returns a copy of the reader carrying a cooperative shared
// distance bound. sb may be nil (no sharing), costing the read path
// nothing; with a cell attached, pruning code that consults the
// reader's bound sees every other cooperating search's improvements at
// node-visit granularity.
func (r Reader) WithBound(sb *SharedBound) Reader {
	r.bound = sb
	return r
}

// SharedBound returns the cooperative bound cell attached to this
// reader, nil when the query runs alone.
func (r Reader) SharedBound() *SharedBound { return r.bound }

// Tree returns the tree this reader reads.
func (r Reader) Tree() *Tree { return r.t }

// Node fetches a node by id. It counts one visit on both the per-query
// counter and the store's cumulative counter, and fails with the
// context's error once the reader's context is done.
func (r Reader) Node(id NodeID) (*Node, error) {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
	}
	n, err := r.t.store.Get(id)
	if err == nil {
		if r.visits != nil {
			*r.visits++
		}
		r.rec.Visit() // nil-safe: one branch when tracing is off
	}
	return n, err
}

// Search performs a window (range) query: fn is called for every
// indexed point inside rect (closed boundaries). fn returning false
// stops the search early.
func (r Reader) Search(rect geom.Rect, fn func(p geom.Point) bool) error {
	_, err := r.SearchFrom(r.t.root, rect, fn)
	return err
}

// SearchFrom runs a window query over the subtree rooted at id. It is
// the primitive behind both traditional window queries (id = root) and
// IWP's incremental processing, which starts from intermediate nodes
// reached via backward pointers. It reports whether the traversal ran
// to completion (false when fn stopped it).
func (r Reader) SearchFrom(id NodeID, rect geom.Rect, fn func(p geom.Point) bool) (bool, error) {
	if rect.IsEmpty() {
		return true, nil
	}
	node, err := r.Node(id)
	if err != nil {
		return false, err
	}
	if node.Leaf {
		for _, p := range node.Points {
			if rect.ContainsPoint(p) && !fn(p) {
				return false, nil
			}
		}
		return true, nil
	}
	for i, childRect := range node.Rects {
		if !rect.Intersects(childRect) {
			continue
		}
		done, err := r.SearchFrom(node.Children[i], rect, fn)
		if err != nil || !done {
			return done, err
		}
	}
	return true, nil
}

// SearchCollect runs Search and returns the matching points.
func (r Reader) SearchCollect(rect geom.Rect) ([]geom.Point, error) {
	var out []geom.Point
	err := r.Search(rect, func(p geom.Point) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// NearestK returns the k points nearest to q in ascending distance
// order (fewer if the tree holds fewer points).
func (r Reader) NearestK(q geom.Point, k int) ([]geom.Point, error) {
	it := r.NNIterator(q)
	out := make([]geom.Point, 0, k)
	for len(out) < k {
		p, _, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, it.Err()
}
