// Package wal implements a segmented, append-only write-ahead log with
// CRC-32-framed records and monotonic LSNs.
//
// The log is the durability substrate for the paged index: mutations
// append a logical record and (depending on sync policy) wait for it to
// become durable before the page store publishes the change. Concurrent
// committers coalesce into one fsync (group commit, the same
// single-flight idea the buffer pool uses for cold misses). A
// checkpoint makes the page file itself durable, after which covered
// segments are recycled.
//
// On-disk layout: each segment file starts with a 16-byte header
// (magic, version, first LSN), followed by frames of
//
//	[u32 payload len][u32 crc][u64 lsn][payload]
//
// where the CRC covers the LSN and payload. A crash can tear the last
// frame; Open detects the first frame whose length, LSN, or CRC is
// inconsistent, truncates the segment there, and drops any later
// segments — appends resume on a clean boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

const (
	segmentSuffix = ".seg"
	segHeaderLen  = 16
	frameHeader   = 16
	segMagic      = 0x4e574357 // "NWCW"
	segVersion    = 1

	// maxRecordLen bounds a frame's payload; anything larger in a
	// length field is garbage from a torn write.
	maxRecordLen = 16 << 20

	// DefaultSegmentBytes is the rotation threshold for the active
	// segment.
	DefaultSegmentBytes = 1 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCompacted is returned by NewReader when the requested LSN has
// already been recycled by a checkpoint: the caller must re-bootstrap
// from a snapshot instead of the log.
var ErrCompacted = errors.New("wal: lsn compacted")

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEvery, when positive, schedules a background fsync that
	// interval after an append leaves undurable records (the
	// SyncInterval policy). Zero disables the timer; callers sync
	// explicitly (SyncAlways) or not at all (SyncNever).
	SyncEvery time.Duration
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Record is one logical entry recovered from the log.
type Record struct {
	LSN  uint64
	Data []byte
}

// Stats is a point-in-time snapshot of log activity.
type Stats struct {
	Appends     uint64 // records appended
	AppendBytes uint64 // payload bytes appended
	Syncs       uint64 // fsyncs issued (group commit coalesces)
	Rotations   uint64 // segment rotations
	Recycled    uint64 // segments removed after checkpoints
}

type segment struct {
	name     string
	file     File
	firstLSN uint64
	lastLSN  uint64 // 0 while the segment has no records
	size     int64
}

// Log is a segmented write-ahead log. Append/Sync are safe for
// concurrent use; Records is meant for single-threaded recovery right
// after Open.
type Log struct {
	fs  FS
	opt Options

	mu        sync.Mutex
	segs      []*segment // ascending by firstLSN; last is active
	nextLSN   uint64
	appended  uint64 // last LSN handed out by Append
	sinceCkpt int64  // frame bytes appended since the last checkpoint
	failed    error  // sticky: first append/rotation failure
	closed    bool

	// records holds what Open scanned, for recovery replay. Dropped at
	// the first checkpoint to free memory.
	records []Record

	// leases maps lease id → lowest LSN that holder may still need.
	// Checkpointed keeps every segment whose last record is at or above
	// the minimum of these floors, so a tailing reader can never have
	// its history recycled out from under it. Guarded by mu.
	leases   map[uint64]uint64
	leaseSeq uint64

	// syncMu serialises fsyncs: the holder is the group-commit leader,
	// everyone queued behind it finds durable already advanced.
	syncMu  sync.Mutex
	durable atomic.Uint64

	timerArmed atomic.Bool
	timerMu    sync.Mutex
	timer      *time.Timer

	stAppends     atomic.Uint64
	stAppendBytes atomic.Uint64
	stSyncs       atomic.Uint64
	stRotations   atomic.Uint64
	stRecycled    atomic.Uint64
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%016x%s", firstLSN, segmentSuffix)
}

// Create wipes any existing segments and starts an empty log at LSN 1.
func Create(fs FS, opt Options) (*Log, error) {
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	for _, name := range names {
		if err := fs.Remove(name); err != nil {
			return nil, fmt.Errorf("wal: remove stale segment %s: %w", name, err)
		}
	}
	l := &Log{fs: fs, opt: opt, nextLSN: 1}
	if err := l.addSegmentLocked(1); err != nil {
		return nil, err
	}
	l.durable.Store(0)
	return l, nil
}

// Open scans existing segments, truncates a torn tail, and positions
// the log to append after the last intact record. Everything scanned is
// available through Records until the first checkpoint. An empty
// directory yields a fresh log at LSN 1.
func Open(fs FS, opt Options) (*Log, error) {
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	if len(names) == 0 {
		return Create(fs, opt)
	}
	l := &Log{fs: fs, opt: opt}
	torn := false
	for _, name := range names {
		if torn {
			// Segments past a torn tail cannot hold committed records
			// (appends are sequential); drop them.
			if err := fs.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: drop post-tear segment %s: %w", name, err)
			}
			continue
		}
		f, err := fs.Open(name)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment %s: %w", name, err)
		}
		seg, segTorn, err := scanSegment(name, f, l.nextLSN, &l.records)
		if err != nil {
			f.Close()
			return nil, err
		}
		if seg == nil {
			// Header unreadable: the segment never got a single full
			// write. Treat it like a torn tail.
			f.Close()
			if err := fs.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: drop torn segment %s: %w", name, err)
			}
			torn = true
			continue
		}
		l.segs = append(l.segs, seg)
		if seg.lastLSN != 0 {
			l.nextLSN = seg.lastLSN + 1
		} else {
			l.nextLSN = seg.firstLSN
		}
		torn = segTorn
	}
	if len(l.segs) == 0 {
		// Every segment was torn away; start fresh but keep the LSN
		// sequence monotonic from what the headers claimed.
		if l.nextLSN == 0 {
			l.nextLSN = 1
		}
		if err := l.addSegmentLocked(l.nextLSN); err != nil {
			return nil, err
		}
	}
	l.appended = l.nextLSN - 1
	// Everything that survived the scan is on disk; only fsync state is
	// unknown, and recovery replays it anyway, so it is durable in the
	// only sense that matters after a restart.
	l.durable.Store(l.appended)
	return l, nil
}

// scanSegment validates a segment's header and frames, appending intact
// records to out. It returns the parsed segment (nil if even the header
// is unreadable), whether a torn tail was truncated, and any hard I/O
// error. expectLSN is the LSN the first record must carry when a prior
// segment already set the sequence; 0 accepts whatever the header says.
func scanSegment(name string, f File, expectLSN uint64, out *[]Record) (*segment, bool, error) {
	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, false, nil // truncated before the header finished
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != segMagic {
		return nil, false, fmt.Errorf("wal: segment %s: bad magic", name)
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != segVersion {
		return nil, false, fmt.Errorf("wal: segment %s: unsupported version %d", name, v)
	}
	firstLSN := binary.BigEndian.Uint64(hdr[8:16])
	if expectLSN != 0 && firstLSN != expectLSN {
		return nil, false, fmt.Errorf("wal: segment %s: first LSN %d, want %d", name, firstLSN, expectLSN)
	}
	seg := &segment{name: name, file: f, firstLSN: firstLSN}
	size, err := f.Size()
	if err != nil {
		return nil, false, fmt.Errorf("wal: segment %s: size: %w", name, err)
	}
	off := int64(segHeaderLen)
	lsn := firstLSN
	for {
		if off+frameHeader > size {
			break
		}
		var fh [frameHeader]byte
		if _, err := f.ReadAt(fh[:], off); err != nil {
			break
		}
		plen := binary.BigEndian.Uint32(fh[0:4])
		crc := binary.BigEndian.Uint32(fh[4:8])
		gotLSN := binary.BigEndian.Uint64(fh[8:16])
		if plen == 0 || plen > maxRecordLen || gotLSN != lsn {
			break
		}
		if off+frameHeader+int64(plen) > size {
			break
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
			break
		}
		h := crc32.NewIEEE()
		h.Write(fh[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			break
		}
		*out = append(*out, Record{LSN: lsn, Data: payload})
		seg.lastLSN = lsn
		lsn++
		off += frameHeader + int64(plen)
	}
	torn := off < size
	if torn {
		if err := f.Truncate(off); err != nil {
			return nil, false, fmt.Errorf("wal: segment %s: truncate torn tail: %w", name, err)
		}
	}
	seg.size = off
	return seg, torn, nil
}

// addSegmentLocked creates a fresh segment whose first record will be
// firstLSN and makes it active. Caller holds mu (or has exclusive
// access during construction).
func (l *Log) addSegmentLocked(firstLSN uint64) error {
	name := segName(firstLSN)
	f, err := l.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	var hdr [segHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	binary.BigEndian.PutUint64(hdr[8:16], firstLSN)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header %s: %w", name, err)
	}
	l.segs = append(l.segs, &segment{name: name, file: f, firstLSN: firstLSN, size: segHeaderLen})
	return nil
}

// Append writes one record and returns its LSN. The record is in the OS
// buffer but not necessarily durable; call Sync (or rely on the
// SyncEvery timer) to make it so. A write failure is sticky: the log
// refuses further appends so no record can land after a hole.
func (l *Log) Append(data []byte) (uint64, error) {
	if len(data) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(data) > maxRecordLen {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(data))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	active := l.segs[len(l.segs)-1]
	if active.size >= l.opt.segmentBytes() && active.lastLSN != 0 {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return 0, err
		}
		active = l.segs[len(l.segs)-1]
	}
	lsn := l.nextLSN
	frame := make([]byte, frameHeader+len(data))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(data)))
	binary.BigEndian.PutUint64(frame[8:16], lsn)
	copy(frame[frameHeader:], data)
	h := crc32.NewIEEE()
	h.Write(frame[8:16])
	h.Write(data)
	binary.BigEndian.PutUint32(frame[4:8], h.Sum32())
	if _, err := active.file.WriteAt(frame, active.size); err != nil {
		// The frame may be half on disk; recovery's CRC scan truncates
		// it. Refuse further appends so the torn frame stays the tail.
		l.failed = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	active.size += int64(len(frame))
	active.lastLSN = lsn
	l.nextLSN = lsn + 1
	l.appended = lsn
	l.sinceCkpt += int64(len(frame))
	l.stAppends.Add(1)
	l.stAppendBytes.Add(uint64(len(data)))
	if l.opt.SyncEvery > 0 {
		l.armTimer()
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsync so Sync never needs to
// revisit it) and opens a new one. Caller holds mu.
func (l *Log) rotateLocked() error {
	active := l.segs[len(l.segs)-1]
	if err := active.file.Sync(); err != nil {
		return fmt.Errorf("wal: sync on rotation: %w", err)
	}
	l.stSyncs.Add(1)
	advanceMax(&l.durable, active.lastLSN)
	if err := l.addSegmentLocked(l.nextLSN); err != nil {
		return err
	}
	l.stRotations.Add(1)
	return nil
}

// Sync makes every record up to lsn durable (lsn 0 means everything
// appended so far). Concurrent callers coalesce: one fsync covers all
// waiters queued behind the leader.
func (l *Log) Sync(lsn uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if lsn == 0 {
		lsn = l.appended
	}
	l.mu.Unlock()
	if l.durable.Load() >= lsn {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= lsn {
		return nil // a leader already covered us
	}
	l.mu.Lock()
	if l.failed != nil && l.appended < lsn {
		err := l.failed
		l.mu.Unlock()
		return fmt.Errorf("wal: log failed: %w", err)
	}
	target := l.appended
	active := l.segs[len(l.segs)-1].file
	l.mu.Unlock()
	// Rotation fsyncs the sealed segment, so the active file alone
	// covers every undurable record.
	if err := active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stSyncs.Add(1)
	advanceMax(&l.durable, target)
	return nil
}

func advanceMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// armTimer schedules a background sync if none is pending. Caller holds
// mu (so closed is stable).
func (l *Log) armTimer() {
	if !l.timerArmed.CompareAndSwap(false, true) {
		return
	}
	l.timerMu.Lock()
	l.timer = time.AfterFunc(l.opt.SyncEvery, func() {
		l.timerArmed.Store(false)
		_ = l.Sync(0) // best effort; SyncInterval trades loss window for latency
	})
	l.timerMu.Unlock()
}

// AppendedLSN returns the LSN of the last appended record (0 if none).
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// SizeSinceCheckpoint returns frame bytes appended since the last
// Checkpointed call — the checkpoint trigger input.
func (l *Log) SizeSinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// Records returns the recovered records with LSN > afterLSN, in order.
// Only meaningful between Open and the first checkpoint.
func (l *Log) Records(afterLSN uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.records) && l.records[i].LSN <= afterLSN {
		i++
	}
	return l.records[i:]
}

// minRetainedLocked returns the lowest LSN any live lease still needs,
// and whether a lease exists at all. Caller holds mu.
func (l *Log) minRetainedLocked() (uint64, bool) {
	var floor uint64
	found := false
	for _, lsn := range l.leases {
		if !found || lsn < floor {
			floor, found = lsn, true
		}
	}
	return floor, found
}

// Checkpointed tells the log every record up to lsn is now applied in
// the durably synced page file: covered segments are recycled and the
// recovery cache is dropped. If the active segment itself is fully
// covered it is replaced by a fresh one, so a quiesced log occupies one
// near-empty segment. Segments a reader lease still retains are kept
// regardless — a checkpoint must never delete history a tailing reader
// has yet to stream.
func (l *Log) Checkpointed(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.records = nil
	l.sinceCkpt = 0
	floor, leased := l.minRetainedLocked()
	recyclable := func(seg *segment) bool {
		if seg.lastLSN == 0 || seg.lastLSN > lsn {
			return false
		}
		return !leased || seg.lastLSN < floor
	}
	if len(l.segs) > 0 {
		last := l.segs[len(l.segs)-1]
		if last.lastLSN != 0 && last.lastLSN <= lsn && recyclable(last) {
			// Everything is covered and unretained; start a fresh active
			// segment so recycling below can take the old one too.
			if err := l.addSegmentLocked(l.nextLSN); err != nil {
				return err
			}
		}
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		isActive := i == len(l.segs)-1
		empty := seg.lastLSN == 0 && !isActive
		if !isActive && (recyclable(seg) || empty) {
			seg.file.Close()
			if err := l.fs.Remove(seg.name); err != nil {
				return fmt.Errorf("wal: recycle segment %s: %w", seg.name, err)
			}
			l.stRecycled.Add(1)
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// Close fsyncs outstanding records (best effort) and closes every
// segment. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var syncErr error
	if l.failed == nil && l.appended > l.durable.Load() {
		active := l.segs[len(l.segs)-1]
		if err := active.file.Sync(); err != nil {
			syncErr = fmt.Errorf("wal: close sync: %w", err)
		} else {
			l.stSyncs.Add(1)
			advanceMax(&l.durable, l.appended)
		}
	}
	l.closed = true
	var closeErr error
	for _, seg := range l.segs {
		if err := seg.file.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	l.mu.Unlock()
	l.timerMu.Lock()
	if l.timer != nil {
		l.timer.Stop()
	}
	l.timerMu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Stats returns a snapshot of log activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.stAppends.Load(),
		AppendBytes: l.stAppendBytes.Load(),
		Syncs:       l.stSyncs.Load(),
		Rotations:   l.stRotations.Load(),
		Recycled:    l.stRecycled.Load(),
	}
}
