package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Reader leases and segment streaming: the replication side of the log.
//
// A Lease pins history: while one is held at floor F, Checkpointed
// refuses to recycle any segment whose last record is at or above F.
// A Reader owns a lease and streams committed frames in LSN order,
// starting from an arbitrary LSN — catch-up across sealed segments
// first, then a live tail bounded by the durable watermark. Frames at
// or below the durable watermark are immutable (appends only ever
// extend the active segment), so the Reader locates its segment under
// the log mutex but reads file bytes outside it.

// Lease marks the lowest LSN its holder still needs. While held,
// checkpoint recycling keeps every segment containing that LSN or
// anything after it. Advance as consumption progresses so quiesced
// history can be reclaimed; Release when done.
type Lease struct {
	l  *Log
	id uint64
}

// RetainFrom registers a lease guaranteeing records from lsn onward
// stay readable until the lease advances past them or is released.
func (l *Log) RetainFrom(lsn uint64) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.leases == nil {
		l.leases = make(map[uint64]uint64)
	}
	l.leaseSeq++
	id := l.leaseSeq
	l.leases[id] = lsn
	return &Lease{l: l, id: id}, nil
}

// Advance moves the lease floor forward: records below lsn are no
// longer needed by this holder. Moving backwards is a no-op — history
// once released to recycling cannot be re-pinned.
func (le *Lease) Advance(lsn uint64) {
	le.l.mu.Lock()
	if cur, ok := le.l.leases[le.id]; ok && lsn > cur {
		le.l.leases[le.id] = lsn
	}
	le.l.mu.Unlock()
}

// Release drops the lease. Idempotent.
func (le *Lease) Release() {
	le.l.mu.Lock()
	delete(le.l.leases, le.id)
	le.l.mu.Unlock()
}

// OldestLSN returns the first LSN still present in the log's segments
// (the oldest record a new Reader could start from).
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.nextLSN
	}
	return l.segs[0].firstLSN
}

// Reader streams committed frames from the log in LSN order, holding a
// lease on everything it has not yet delivered. Next never returns a
// record past the durable watermark: replication must not ship a frame
// a crash could still erase. Not safe for concurrent use.
type Reader struct {
	l     *Log
	lease *Lease
	next  uint64 // LSN the next call to Next will deliver

	// Byte-offset memo for sequential scans: cacheOff is where the frame
	// for `next` starts inside the segment whose first LSN is cacheFirst.
	cacheFirst uint64
	cacheOff   int64
}

// NewReader opens a streaming reader positioned at from (0 reads from
// the beginning). Returns ErrCompacted if the log no longer holds that
// LSN; from may exceed the appended LSN, in which case Next reports no
// record until the log catches up.
func (l *Log) NewReader(from uint64) (*Reader, error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if len(l.segs) > 0 {
		if oldest := l.segs[0].firstLSN; from < oldest {
			return nil, fmt.Errorf("%w: want lsn %d, oldest retained is %d", ErrCompacted, from, oldest)
		}
	}
	if l.leases == nil {
		l.leases = make(map[uint64]uint64)
	}
	l.leaseSeq++
	id := l.leaseSeq
	l.leases[id] = from
	return &Reader{l: l, lease: &Lease{l: l, id: id}, next: from}, nil
}

// Pos returns the LSN the next successful Next call will deliver.
func (r *Reader) Pos() uint64 { return r.next }

// Next returns the next committed record at or below the durable
// watermark. ok is false when the reader has drained everything durable
// so far — poll again after more appends/syncs. The returned payload is
// a fresh copy.
func (r *Reader) Next() (rec Record, ok bool, err error) {
	if r.next > r.l.durable.Load() {
		return Record{}, false, nil
	}
	r.l.mu.Lock()
	if r.l.closed {
		r.l.mu.Unlock()
		return Record{}, false, ErrClosed
	}
	var file File
	var first uint64
	for _, seg := range r.l.segs {
		if seg.lastLSN != 0 && seg.firstLSN <= r.next && r.next <= seg.lastLSN {
			file, first = seg.file, seg.firstLSN
			break
		}
	}
	r.l.mu.Unlock()
	if file == nil {
		// Durable says the record exists, yet no segment holds it: the
		// retention invariant was violated (or the log was mutated out of
		// band). Surface loudly rather than skipping history.
		return Record{}, false, fmt.Errorf("wal: lsn %d durable but not retained (retention violated)", r.next)
	}
	// The lease pins this segment (its last LSN is at least r.next, the
	// lease floor), and frames at or below durable are immutable, so the
	// file reads below need no lock.
	if r.cacheFirst != first || r.cacheOff < segHeaderLen {
		off, err := seekFrame(file, first, r.next)
		if err != nil {
			return Record{}, false, err
		}
		r.cacheFirst, r.cacheOff = first, off
	}
	var fh [frameHeader]byte
	if _, err := file.ReadAt(fh[:], r.cacheOff); err != nil {
		return Record{}, false, fmt.Errorf("wal: read frame at lsn %d: %w", r.next, err)
	}
	plen := binary.BigEndian.Uint32(fh[0:4])
	crc := binary.BigEndian.Uint32(fh[4:8])
	gotLSN := binary.BigEndian.Uint64(fh[8:16])
	if gotLSN != r.next || plen == 0 || plen > maxRecordLen {
		return Record{}, false, fmt.Errorf("wal: frame at lsn %d has lsn %d, len %d", r.next, gotLSN, plen)
	}
	payload := make([]byte, plen)
	if _, err := file.ReadAt(payload, r.cacheOff+frameHeader); err != nil {
		return Record{}, false, fmt.Errorf("wal: read payload at lsn %d: %w", r.next, err)
	}
	h := crc32.NewIEEE()
	h.Write(fh[8:16])
	h.Write(payload)
	if h.Sum32() != crc {
		return Record{}, false, fmt.Errorf("wal: crc mismatch at lsn %d", r.next)
	}
	rec = Record{LSN: r.next, Data: payload}
	r.cacheOff += frameHeader + int64(plen)
	r.next++
	r.lease.Advance(r.next)
	return rec, true, nil
}

// seekFrame walks a segment's frames from the header to find the byte
// offset of the frame carrying lsn. Only frame headers are read; every
// frame before lsn is fully written (lsn is at most durable).
func seekFrame(f File, firstLSN, lsn uint64) (int64, error) {
	off := int64(segHeaderLen)
	for cur := firstLSN; cur < lsn; cur++ {
		var fh [frameHeader]byte
		if _, err := f.ReadAt(fh[:], off); err != nil {
			return 0, fmt.Errorf("wal: seek to lsn %d: %w", lsn, err)
		}
		plen := binary.BigEndian.Uint32(fh[0:4])
		if got := binary.BigEndian.Uint64(fh[8:16]); got != cur || plen == 0 || plen > maxRecordLen {
			return 0, fmt.Errorf("wal: seek to lsn %d: frame at offset %d has lsn %d, len %d", lsn, off, got, plen)
		}
		off += frameHeader + int64(plen)
	}
	return off, nil
}

// Close releases the reader's lease, letting checkpoints recycle the
// history it pinned.
func (r *Reader) Close() { r.lease.Release() }
