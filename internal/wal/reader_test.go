package wal

import (
	"errors"
	"fmt"
	"testing"
)

func appendSynced(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	lsn, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatalf("sync: %v", err)
	}
	return lsn
}

func TestReaderCatchUpAndLiveTail(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments so catch-up crosses several sealed files.
	l, err := Create(fs, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	for i := 1; i <= n; i++ {
		appendSynced(t, l, fmt.Sprintf("record-%03d", i))
	}
	r, err := l.NewReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 1; i <= n; i++ {
		rec, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		if rec.LSN != uint64(i) || string(rec.Data) != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("record %d: got lsn %d data %q", i, rec.LSN, rec.Data)
		}
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("drained reader: ok=%v err=%v", ok, err)
	}
	// Live tail: new appends become visible once durable.
	lsn := appendSynced(t, l, "tail")
	rec, ok, err := r.Next()
	if err != nil || !ok || rec.LSN != lsn || string(rec.Data) != "tail" {
		t.Fatalf("live tail: rec=%+v ok=%v err=%v", rec, ok, err)
	}
}

// TestCheckpointRetainsLeasedSegments is the regression test for the
// recycling bug: a checkpoint that lands mid-catch-up must not delete
// segments the reader has yet to stream. Before the retention fix,
// Checkpointed removed every covered segment unconditionally and the
// reader lost history.
func TestCheckpointRetainsLeasedSegments(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	for i := 1; i <= n; i++ {
		appendSynced(t, l, fmt.Sprintf("record-%03d", i))
	}
	r, err := l.NewReader(1)
	if err != nil {
		t.Fatal(err)
	}
	// Read a few records, then checkpoint everything appended so far
	// while the reader is mid-catch-up.
	for i := 1; i <= 5; i++ {
		if _, ok, err := r.Next(); !ok || err != nil {
			t.Fatalf("pre-checkpoint next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := l.OldestLSN(); got != 6 {
		t.Fatalf("after checkpoint under lease: oldest lsn = %d, want 6 (reader position)", got)
	}
	// The reader must still see every committed record.
	for i := 6; i <= n; i++ {
		rec, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("post-checkpoint next %d: ok=%v err=%v", i, ok, err)
		}
		if rec.LSN != uint64(i) || string(rec.Data) != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("post-checkpoint record %d: lsn %d data %q", i, rec.LSN, rec.Data)
		}
	}
	// Releasing the lease lets the next checkpoint reclaim everything.
	r.Close()
	before := l.Stats().Recycled
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatalf("post-release checkpoint: %v", err)
	}
	if after := l.Stats().Recycled; after <= before {
		t.Fatalf("post-release checkpoint recycled nothing (%d -> %d)", before, after)
	}
	if got := l.OldestLSN(); got <= uint64(n) {
		t.Fatalf("after release: oldest lsn = %d, want > %d", got, n)
	}
}

func TestNewReaderCompacted(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		appendSynced(t, l, fmt.Sprintf("record-%02d", i))
	}
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.NewReader(1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("NewReader(1) after full checkpoint: err=%v, want ErrCompacted", err)
	}
	// Starting at the current frontier is fine even though nothing is
	// there yet.
	r, err := l.NewReader(l.AppendedLSN() + 1)
	if err != nil {
		t.Fatalf("NewReader at frontier: %v", err)
	}
	defer r.Close()
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("frontier reader: ok=%v err=%v", ok, err)
	}
	lsn := appendSynced(t, l, "fresh")
	rec, ok, err := r.Next()
	if err != nil || !ok || rec.LSN != lsn {
		t.Fatalf("frontier reader after append: rec=%+v ok=%v err=%v", rec, ok, err)
	}
}

func TestReaderDurableBound(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{}) // large segment: no rotation syncs
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := l.NewReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := l.Append([]byte("undurable")); err != nil {
		t.Fatal(err)
	}
	// Appended but not fsynced: the reader must not ship it.
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("undurable record leaked: ok=%v err=%v", ok, err)
	}
	if err := l.Sync(0); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := r.Next()
	if err != nil || !ok || rec.LSN != 1 || string(rec.Data) != "undurable" {
		t.Fatalf("after sync: rec=%+v ok=%v err=%v", rec, ok, err)
	}
}

func TestLeaseAdvancePermitsPartialRecycling(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 30; i++ {
		appendSynced(t, l, fmt.Sprintf("record-%03d", i))
	}
	lease, err := l.RetainFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestLSN(); got != 1 {
		t.Fatalf("lease at 1 ignored: oldest = %d", got)
	}
	lease.Advance(20)
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	got := l.OldestLSN()
	if got > 20 {
		t.Fatalf("recycled past the lease floor: oldest = %d > 20", got)
	}
	if got == 1 {
		t.Fatalf("advanced lease retained everything: oldest still 1")
	}
	// Backward advance is a no-op.
	lease.Advance(5)
	if err := l.Checkpointed(l.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	if after := l.OldestLSN(); after < got {
		t.Fatalf("backward lease advance re-pinned history: oldest %d -> %d", got, after)
	}
}
