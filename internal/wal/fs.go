package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the backing device of one log segment. It is the injectable
// I/O seam: production code uses OS files via DirFS, tests substitute
// MemFS (or fault-injecting wrappers around either) to crash the log at
// any write or sync step.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate cuts the file to size (recovery uses it to drop a torn
	// tail so appends resume on a clean frame boundary).
	Truncate(size int64) error
	// Sync makes previously written bytes durable.
	Sync() error
	// Size returns the current length in bytes.
	Size() (int64, error)
	Close() error
}

// FS is the directory holding the log's segment files.
type FS interface {
	// Create creates (or truncates) a segment file.
	Create(name string) (File, error)
	// Open opens an existing segment file for read and append.
	Open(name string) (File, error)
	// Remove deletes a segment file (checkpoint recycling).
	Remove(name string) error
	// List returns the segment file names, sorted ascending.
	List() ([]string, error)
}

// DirFS is the OS-backed FS: one directory, one file per segment.
type DirFS struct {
	dir string
}

// NewDirFS creates (if needed) and returns the directory-backed FS.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the backing directory path.
func (fs *DirFS) Dir() string { return fs.dir }

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(fs.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (fs *DirFS) Open(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(fs.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.dir, name))
}

// List implements FS, returning only segment files.
func (fs *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// osFile adapts *os.File to File (Size via Stat).
type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MemFS is an in-memory FS for tests and benchmarks. Its files persist
// across Open/Close cycles (the map owns the bytes), which is exactly
// what a crash-recovery harness needs: abandon the crashed log, reopen
// over the same MemFS, and the surviving bytes are what a real disk
// would hold.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*MemFile
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*MemFile)} }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := NewMemFile()
	fs.files[name] = f
	return f, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	return f, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		if strings.HasSuffix(name, segmentSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemFile is an in-memory File. It also satisfies the pager's File
// interface, so one MemFile can back a page store in tests that need a
// shared fault-injection seam across both the log and the page file.
type MemFile struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements io.ReaderAt.
func (f *MemFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file as needed.
func (f *MemFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	return len(p), nil
}

// Truncate implements File.
func (f *MemFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.buf)
	f.buf = grown
	return nil
}

// Sync implements File (memory is always "durable").
func (f *MemFile) Sync() error { return nil }

// Size implements File.
func (f *MemFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.buf)), nil
}

// Close implements File; the bytes stay owned by the FS.
func (f *MemFile) Close() error { return nil }
