package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func appendAll(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(payloads))
	for i, p := range payloads {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func wantRecords(t *testing.T, got []Record, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if string(r.Data) != want[i] {
			t.Errorf("record %d = %q, want %q", i, r.Data, want[i])
		}
		if i > 0 && r.LSN != got[i-1].LSN+1 {
			t.Errorf("record %d LSN %d does not follow %d", i, r.LSN, got[i-1].LSN)
		}
	}
}

func TestAppendSyncReopen(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, "alpha", "beta", "gamma")
	if lsns[0] != 1 || lsns[2] != 3 {
		t.Fatalf("LSNs = %v, want 1..3", lsns)
	}
	if got := l.DurableLSN(); got != 0 {
		t.Fatalf("DurableLSN before sync = %d, want 0", got)
	}
	if err := l.Sync(0); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 3 {
		t.Fatalf("DurableLSN after sync = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	r, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wantRecords(t, r.Records(0), "alpha", "beta", "gamma")
	wantRecords(t, r.Records(2), "gamma")
	if got := r.AppendedLSN(); got != 3 {
		t.Fatalf("AppendedLSN after reopen = %d, want 3", got)
	}
	if lsn, err := r.Append([]byte("delta")); err != nil || lsn != 4 {
		t.Fatalf("Append after reopen = (%d, %v), want (4, nil)", lsn, err)
	}
}

func TestRotationAndRecycle(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments: every record rotates once the previous one landed.
	l, err := Create(fs, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		last, err = l.Append([]byte(fmt.Sprintf("record-%02d-%032d", i, i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("expected rotations with 64-byte segments")
	}
	names, _ := fs.List()
	if len(names) < 2 {
		t.Fatalf("expected multiple segments, got %v", names)
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpointed(last); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Recycled == 0 {
		t.Fatal("checkpoint recycled no segments")
	}
	names, _ = fs.List()
	if len(names) != 1 {
		t.Fatalf("after full checkpoint want 1 active segment, got %v", names)
	}
	if got := l.SizeSinceCheckpoint(); got != 0 {
		t.Fatalf("SizeSinceCheckpoint after checkpoint = %d, want 0", got)
	}
	// The log keeps appending on the fresh active segment.
	lsn, err := l.Append([]byte("after-checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("post-checkpoint LSN = %d, want %d", lsn, last+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wantRecords(t, r.Records(last), "after-checkpoint")
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "keep-1", "keep-2", "torn")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame mid-payload, as a crash during the write would.
	f, err := fs.Open(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if err := f.Truncate(size - 2); err != nil {
		t.Fatal(err)
	}

	r, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, r.Records(0), "keep-1", "keep-2")
	// Appends resume on the clean boundary, reusing the torn record's LSN.
	lsn, err := r.Append([]byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("post-tear LSN = %d, want 3", lsn)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	wantRecords(t, r2.Records(0), "keep-1", "keep-2", "replacement")
}

func TestCorruptionDropsSuffix(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d-%032d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first segment's first record's payload: its
	// CRC fails, and every record after it — including whole later
	// segments — must be discarded, because replay cannot skip a hole.
	f, err := fs.Open(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, segHeaderLen+frameHeader+3); err != nil {
		t.Fatal(err)
	}

	r, err := Open(fs, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs := r.Records(0); len(recs) != 0 {
		t.Fatalf("got %d records after corrupting the first, want 0", len(recs))
	}
	names, _ := fs.List()
	if len(names) != 1 {
		t.Fatalf("post-corruption segments = %v, want only the truncated head", names)
	}
}

func TestSyncIntervalTimer(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append([]byte("background"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("DurableLSN = %d, background sync never covered %d", l.DurableLSN(), lsn)
		}
		time.Sleep(time.Millisecond)
	}
}

// failAfterFile errors every write once the countdown reaches zero.
type failAfterFile struct {
	File
	remaining int
}

func (f *failAfterFile) WriteAt(p []byte, off int64) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("injected write failure")
	}
	f.remaining--
	return f.File.WriteAt(p, off)
}

func TestAppendFailureIsSticky(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn := appendAll(t, l, "good")[0]
	// Swap the active segment's file for one that fails the next write.
	l.mu.Lock()
	active := l.segs[len(l.segs)-1]
	active.file = &failAfterFile{File: active.file, remaining: 0}
	l.mu.Unlock()
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("Append over failing file succeeded")
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("Append after failure succeeded; failure must be sticky")
	}
	// Syncing the surviving prefix still works... the records up to the
	// failure stay recoverable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wantRecords(t, r.Records(0), "good")
	if got := r.AppendedLSN(); got != lsn {
		t.Fatalf("AppendedLSN after recovery = %d, want %d", got, lsn)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	fs := NewMemFS()
	l, err := Create(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers = 8
	lsns := make([]uint64, writers)
	for i := range lsns {
		lsn, err := l.Append([]byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	done := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(lsn uint64) { done <- l.Sync(lsn) }(lsns[i])
	}
	for i := 0; i < writers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableLSN(); got != lsns[writers-1] {
		t.Fatalf("DurableLSN = %d, want %d", got, lsns[writers-1])
	}
	// All eight waiters must not have issued eight fsyncs: the leader's
	// fsync covers everyone queued behind it. The exact count is timing
	// dependent, but it can never exceed the number of waiters and in
	// practice collapses to far fewer; the hard invariant is ≥1.
	if st := l.Stats(); st.Syncs == 0 || st.Syncs > writers {
		t.Fatalf("Syncs = %d, want 1..%d", st.Syncs, writers)
	}
}

func TestEmptyAndOversizeRecordsRejected(t *testing.T) {
	l, err := Create(NewMemFS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := l.Append(make([]byte, maxRecordLen+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
