// Package qevent carries one per-request "wide event" through the query
// stack on the context: the server attaches an Event to a sampled
// request, every layer that touches the query (result cache, engine
// trace recorder, shard router) fills in the fields it owns, and the
// server emits the completed event as a single structured log record.
// One record per request holding everything — cache outcome, engine
// phase timings, shard fan-out, border-fetch work, router phase split —
// is what lets a tail-latency spike found by the load harness be
// attributed to the layer that caused it without correlating log lines.
//
// An Event is owned by one request goroutine. Layers that fan work out
// (batch execution, scatter workers) must Detach the context before
// spawning, so concurrent sub-queries never write one event; the shard
// router fills the event itself, at routed-query granularity, after its
// workers have joined.
package qevent

import "context"

// Cache outcomes recorded by the caching layer (index- or router-level,
// whichever answered).
const (
	CacheOff    = "off"    // no result cache configured
	CacheHit    = "hit"    // served from the cache
	CacheMiss   = "miss"   // executed and (possibly) stored
	CacheBypass = "bypass" // execution kinds that never consult the cache
)

// Phase is one engine phase's share of the query, copied from the trace
// recorder ("descent", "srr", "window-enum", …) or synthesised by the
// router ("scatter", "border", "merge").
type Phase struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
	Entered    int    `json:"entered"`
	NodeVisits uint64 `json:"node_visits"`
}

// Router is the routing half of the event, filled by the sharded
// backend; nil for single-index deployments.
type Router struct {
	// ShardsQueried and ShardsPruned split the scatter fan-out: local
	// queries actually issued vs shards the MINDIST bound skipped.
	ShardsQueried int `json:"shards_queried"`
	ShardsPruned  int `json:"shards_pruned"`
	// BorderFetches/BorderPoints count border-pass window fetches and the
	// candidate points they returned; FetchReruns counts kNWC
	// certification retries (fetch-bound doublings).
	BorderFetches int `json:"border_fetches"`
	BorderPoints  int `json:"border_points"`
	FetchReruns   int `json:"fetch_reruns"`
	// Phase split of the routed query: scatter (shard queries), border
	// (cross-shard candidate fetches), merge (candidate enumeration and
	// greedy merging). Scatter+border+merge ≈ total routed latency.
	ScatterNs int64 `json:"scatter_ns"`
	BorderNs  int64 `json:"border_ns"`
	MergeNs   int64 `json:"merge_ns"`
}

// Event is the wide event for one sampled query.
type Event struct {
	// Cache is the caching layer's outcome: one of the Cache* constants,
	// or empty when no caching layer saw the query.
	Cache string
	// Phases is the engine phase breakdown from the trace recorder; empty
	// on cache hits (nothing executed) and for routed queries (the router
	// reports its own phase split in Router instead).
	Phases []Phase
	// Router is the shard router's attribution block, nil on single-index
	// backends.
	Router *Router
}

type ctxKey struct{}

// With returns ctx carrying ev.
func With(ctx context.Context, ev *Event) context.Context {
	return context.WithValue(ctx, ctxKey{}, ev)
}

// From returns the event carried by ctx, nil when there is none.
func From(ctx context.Context) *Event {
	ev, _ := ctx.Value(ctxKey{}).(*Event)
	return ev
}

// Detach strips any carried event, so work fanned out under the
// returned context cannot race on the parent's event. It returns ctx
// unchanged when no event is attached.
func Detach(ctx context.Context) context.Context {
	if From(ctx) == nil {
		return ctx
	}
	return With(ctx, nil)
}
