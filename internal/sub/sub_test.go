package sub

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwcq/internal/geom"
)

// pinCounter hands out pins and counts outstanding ones, so tests can
// assert every pinned snapshot is released exactly once.
type pinCounter struct{ out atomic.Int64 }

func (p *pinCounter) pin() (any, func()) {
	p.out.Add(1)
	var once sync.Once
	return nil, func() { once.Do(func() { p.out.Add(-1) }) }
}

func publish(r *Registry, p *pinCounter, gen uint64, op Op, pts ...geom.Point) {
	r.Publish(gen, gen, op, pts, p.pin)
}

// TestAffectBox pins the filter's geometry and state machine: after an
// evaluation reporting a found answer at distance d, only changes
// inside the |dx| ≤ d+L, |dy| ≤ d+W box (or degrading operations while
// stale) may enqueue.
func TestAffectBox(t *testing.T) {
	r := NewRegistry(0)
	p := &pinCounter{}
	s := r.Subscribe(Spec{X: 100, Y: 100, L: 10, W: 20})
	defer s.Close()
	s.Evaluated(true, 5, nil) // box: |dx| ≤ 15, |dy| ≤ 25

	cases := []struct {
		name string
		op   Op
		pt   geom.Point
		want bool
	}{
		{"inside", OpInsert, geom.Point{X: 110, Y: 110}, true},
		{"x-edge", OpInsert, geom.Point{X: 115, Y: 100}, true},
		{"x-outside", OpInsert, geom.Point{X: 116, Y: 100}, false},
		{"y-edge", OpDelete, geom.Point{X: 100, Y: 125}, true},
		{"y-outside", OpDelete, geom.Point{X: 100, Y: 126}, false},
		{"far-reset", OpReset, geom.Point{X: 900, Y: 900}, true},
	}
	gen := uint64(0)
	for _, c := range cases {
		gen++
		before := r.Stats().Notified
		publish(r, p, gen, c.op, c.pt)
		got := r.Stats().Notified > before
		if got != c.want {
			t.Fatalf("%s: affected=%v, want %v", c.name, got, c.want)
		}
		if got {
			// Re-arm a clean evaluated state: pop and re-evaluate.
			n, err := s.Next(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			n.Release()
			s.Evaluated(true, 5, nil)
		}
	}

	// With no found answer, inserts anywhere can create one; deletes
	// cannot (nothing to degrade) unless un-evaluated pushes are pending.
	s.Evaluated(false, 0, nil)
	before := r.Stats().Notified
	publish(r, p, gen+1, OpDelete, geom.Point{X: 100, Y: 100})
	if r.Stats().Notified != before {
		t.Fatal("delete affected a not-found, non-stale subscription")
	}
	publish(r, p, gen+2, OpInsert, geom.Point{X: 900, Y: 900})
	if r.Stats().Notified != before+1 {
		t.Fatal("insert did not affect a not-found subscription")
	}
	// Now stale (un-popped insert pending): a delete might neutralise it.
	publish(r, p, gen+3, OpDelete, geom.Point{X: 900, Y: 900})
	if r.Stats().Notified != before+2 {
		t.Fatal("delete did not affect a stale not-found subscription")
	}
}

// TestOverflowReleasesPinsAndFlagsResync: a full queue drops its oldest
// entry, releases that entry's pin immediately, and the next delivery
// carries the resync flag exactly once.
func TestOverflowReleasesPinsAndFlagsResync(t *testing.T) {
	r := NewRegistry(2)
	p := &pinCounter{}
	s := r.Subscribe(Spec{X: 0, Y: 0, L: 10, W: 10})
	defer s.Close()
	s.Evaluated(true, 5, nil)

	for gen := uint64(1); gen <= 5; gen++ {
		publish(r, p, gen, OpInsert, geom.Point{X: 1, Y: 1})
	}
	if got := p.out.Load(); got != 2 {
		t.Fatalf("%d pins outstanding with a 2-deep queue, want 2", got)
	}
	if st := r.Stats(); st.Coalesced != 3 {
		t.Fatalf("coalesced %d, want 3", st.Coalesced)
	}
	n1, err := s.Next(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Resync || n1.Gen != 4 {
		t.Fatalf("first pop gen %d resync=%v, want gen 4 flagged resync", n1.Gen, n1.Resync)
	}
	n1.Release()
	n1.Release() // idempotent
	n2, err := s.Next(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Resync || n2.Gen != 5 {
		t.Fatalf("second pop gen %d resync=%v, want gen 5 unflagged", n2.Gen, n2.Resync)
	}
	n2.Release()
	if got := p.out.Load(); got != 0 {
		t.Fatalf("%d pins outstanding after draining, want 0", got)
	}
}

// TestCloseReleasesPendingPins: Close drains the queue, releasing every
// pinned snapshot, and a concurrent Next unblocks with ErrClosed.
func TestCloseReleasesPendingPins(t *testing.T) {
	r := NewRegistry(8)
	p := &pinCounter{}
	s := r.Subscribe(Spec{X: 0, Y: 0, L: 10, W: 10})
	for gen := uint64(1); gen <= 4; gen++ {
		publish(r, p, gen, OpInsert, geom.Point{X: 1, Y: 1})
	}
	s.Close()
	s.Close() // idempotent
	if got := p.out.Load(); got != 0 {
		t.Fatalf("%d pins outstanding after Close, want 0", got)
	}
	if r.Active() != 0 {
		t.Fatalf("active %d after Close", r.Active())
	}
	if _, err := s.Next(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next on closed subscription: %v", err)
	}
}

// TestDiscardThrough drops exactly the prefix at or below the given
// generation, releasing its pins.
func TestDiscardThrough(t *testing.T) {
	r := NewRegistry(8)
	p := &pinCounter{}
	s := r.Subscribe(Spec{X: 0, Y: 0, L: 10, W: 10})
	defer s.Close()
	for gen := uint64(1); gen <= 4; gen++ {
		publish(r, p, gen, OpInsert, geom.Point{X: 1, Y: 1})
	}
	s.DiscardThrough(2)
	if got := p.out.Load(); got != 2 {
		t.Fatalf("%d pins outstanding after DiscardThrough(2), want 2", got)
	}
	n, err := s.Next(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Release()
	if n.Gen != 3 {
		t.Fatalf("first pop gen %d after DiscardThrough(2), want 3", n.Gen)
	}
}

// TestNextCancellation: the three unblock paths — context, cancel
// channel, Close — each end a blocked Next with the right error.
func TestNextCancellation(t *testing.T) {
	r := NewRegistry(0)
	s := r.Subscribe(Spec{})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context path: %v", err)
	}
	hostClosing := make(chan struct{})
	close(hostClosing)
	if _, err := s.Next(context.Background(), hostClosing); !errors.Is(err, ErrClosed) {
		t.Fatalf("cancel-channel path: %v", err)
	}
}

// TestRegistryChurnRace hammers Subscribe/Publish/Close concurrently —
// the -race workload for the registry's own locking. Every pin must be
// released by the time everything closes.
func TestRegistryChurnRace(t *testing.T) {
	r := NewRegistry(4)
	p := &pinCounter{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := uint64(1); gen <= 500; gen++ {
			publish(r, p, gen, OpInsert, geom.Point{X: 1, Y: 1})
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := r.Subscribe(Spec{X: 0, Y: 0, L: 10, W: 10})
				s.Evaluated(true, 5, nil)
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				for {
					n, err := s.Next(ctx, nil)
					if err != nil {
						break
					}
					n.Release()
					s.Evaluated(true, 5, nil)
				}
				cancel()
				s.Close()
			}
		}()
	}
	wg.Wait()
	if r.Active() != 0 {
		t.Fatalf("active %d after churn", r.Active())
	}
	if got := p.out.Load(); got != 0 {
		t.Fatalf("%d pins leaked", got)
	}
}
