// Package sub is the standing-query subsystem underneath continuous NWC
// queries: a subscription registry plus the incremental notifier the
// index's view-publish path drives.
//
// The host (package nwcq, or the sharded router) owns query evaluation
// and snapshot pinning; this package owns everything version- and
// delivery-shaped:
//
//   - the affect test: a per-subscription box check deciding whether a
//     published mutation can possibly change the subscription's answer
//     (see Subscription.affectedLocked for the invariant argument);
//   - per-subscriber bounded FIFO queues of pinned snapshots, pushed in
//     publish order under the host's writer lock, so delivered frames
//     carry monotone LSNs/generations;
//   - coalescing under backpressure: a full queue drops its oldest
//     entry (releasing its snapshot pin) and flags the next delivery as
//     a resync, telling the consumer intermediate states were skipped;
//   - the zero-subscriber fast path: Registry.Active is a single atomic
//     load, the only cost a publish pays when nobody is subscribed.
//
// Delivery is at-least-once: a consumer that reconnects replays from
// its last seen position via a fresh initial evaluation, and every
// frame is a full answer (the standing query's result at the frame's
// version), so redelivery and resync are always safe.
package sub

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nwcq/internal/geom"
)

// Op classifies a published mutation for the affect test.
type Op uint8

const (
	// OpInsert adds points; it can only improve (or leave) an answer.
	OpInsert Op = iota
	// OpDelete removes points; it can degrade an answer.
	OpDelete
	// OpReset discards the whole dataset (snapshot re-bootstrap); every
	// subscription is affected.
	OpReset
)

// Spec is the geometry of a standing query the affect test needs: the
// query point and the window extents. Scheme and measure stay with the
// host, which owns evaluation.
type Spec struct {
	X, Y float64
	L, W float64
}

// Notification is one pending version a subscription must re-evaluate:
// the snapshot handle the host pinned at publish time, the version
// stamps, and the publish wall-clock instant (for publish→notify
// latency accounting).
type Notification struct {
	// LSN is the version stamp delivered to clients. On a follower it is
	// the leader's LSN, so both replicas expose the same axis; zero on
	// hosts without a WAL.
	LSN uint64
	// Gen is the host-local publication generation — always monotone,
	// the ordering axis the queue itself uses.
	Gen uint64
	// Snap is the pinned snapshot, opaque to this package; the host
	// evaluates against it and then calls Release exactly once.
	Snap any
	// Resync reports that older notifications were coalesced away
	// before this one: the consumer may have missed intermediate states.
	Resync bool
	// At is when the mutation published.
	At time.Time

	release func()
}

// Release unpins the notification's snapshot. Safe on the zero value.
func (n *Notification) Release() {
	if n.release != nil {
		n.release()
		n.release = nil
	}
}

// ErrClosed reports Next on a subscription whose Close ran.
var ErrClosed = errors.New("sub: subscription closed")

// DefaultQueueCap bounds a subscriber's pending queue (and therefore
// how many superseded snapshots one slow subscriber can pin).
const DefaultQueueCap = 64

// Stats is a point-in-time snapshot of the registry's counters.
type Stats struct {
	// Active is the number of open subscriptions.
	Active int64 `json:"active"`
	// Published counts publishes that reached the registry while at
	// least one subscription was open.
	Published uint64 `json:"published"`
	// Notified counts notifications enqueued (publish × affected subs).
	Notified uint64 `json:"notified"`
	// Coalesced counts notifications dropped by queue overflow.
	Coalesced uint64 `json:"coalesced"`
	// Resyncs counts deliveries flagged resync after an overflow.
	Resyncs uint64 `json:"resyncs"`
	// Delivered counts successful evaluations reported back.
	Delivered uint64 `json:"delivered"`
	// EvalErrors counts failed evaluations reported back.
	EvalErrors uint64 `json:"eval_errors"`
}

// Registry is the set of open subscriptions on one host, and the
// notifier its publish path drives. All methods are safe for concurrent
// use; Publish additionally relies on the host calling it in publish
// order (under the host's writer lock).
type Registry struct {
	// active is the subscriber count — the publish path's entire cost
	// when it is zero.
	active atomic.Int64

	queueCap int

	mu   sync.Mutex
	subs map[uint64]*Subscription
	seq  uint64

	published  atomic.Uint64
	notified   atomic.Uint64
	coalesced  atomic.Uint64
	resyncs    atomic.Uint64
	delivered  atomic.Uint64
	evalErrors atomic.Uint64
}

// NewRegistry returns an empty registry whose subscriptions buffer up
// to queueCap pending notifications (DefaultQueueCap when not
// positive).
func NewRegistry(queueCap int) *Registry {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Registry{queueCap: queueCap, subs: make(map[uint64]*Subscription)}
}

// Active returns the number of open subscriptions with one atomic load.
// The host's publish path gates on this before paying anything else.
func (r *Registry) Active() int64 { return r.active.Load() }

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Active:     r.active.Load(),
		Published:  r.published.Load(),
		Notified:   r.notified.Load(),
		Coalesced:  r.coalesced.Load(),
		Resyncs:    r.resyncs.Load(),
		Delivered:  r.delivered.Load(),
		EvalErrors: r.evalErrors.Load(),
	}
}

// Publish runs the affect test for every open subscription against one
// published mutation and enqueues a pinned notification on each
// affected one. pin must pin the just-published snapshot once per call
// and return the handle plus its release; it is invoked only for
// affected subscriptions. The host calls Publish under its writer lock,
// in publish order — that lock is what makes queue order LSN order.
func (r *Registry) Publish(lsn, gen uint64, op Op, changed []geom.Point, pin func() (any, func())) {
	if r.active.Load() == 0 {
		return
	}
	now := time.Now()
	r.published.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		s.mu.Lock()
		if s.closed || !s.affectedLocked(op, changed) {
			s.mu.Unlock()
			continue
		}
		snap, release := pin()
		s.pushLocked(Notification{LSN: lsn, Gen: gen, Snap: snap, At: now, release: release}, op)
		s.mu.Unlock()
	}
}

// Subscribe registers a standing query. The new subscription starts
// maximally conservative (every mutation affects it) until the host
// reports its first evaluation via Evaluated.
func (r *Registry) Subscribe(spec Spec) *Subscription {
	s := &Subscription{
		r:      r,
		spec:   spec,
		signal: make(chan struct{}, 1),
		done:   make(chan struct{}),
		// No evaluation yet: treat the answer as unknown and degradable
		// so nothing is missed before the initial evaluation lands.
		stale:        true,
		staleDegrade: true,
	}
	// Raise active before the map insert: a racing publish then takes
	// the slow path and simply finds the map without us yet — the
	// initial evaluation covers that publish.
	r.active.Add(1)
	r.mu.Lock()
	r.seq++
	s.id = r.seq
	r.subs[s.id] = s
	r.mu.Unlock()
	return s
}

// Subscription is one registered standing query: its affect-test state
// and its bounded queue of pending notifications. One consumer at a
// time may call Next/Evaluated; Close is safe from anywhere.
type Subscription struct {
	id   uint64
	r    *Registry
	spec Spec

	// signal is a one-slot edge trigger: pushLocked tops it up, Next
	// drains it. done closes on Close.
	signal chan struct{}
	done   chan struct{}

	mu     sync.Mutex
	queue  []Notification
	closed bool
	// dropped remembers an overflow since the last delivery; the next
	// popped notification carries it out as Resync.
	dropped bool

	// Affect-test state. found/bound are the last reported evaluation:
	// when the answer exists at distance bound, only changes inside the
	// box |x−qx| ≤ bound+L, |y−qy| ≤ bound+W can alter it (any window
	// at distance ≤ bound lies wholly inside that box for every
	// measure, since each qualifying window contains a point within
	// bound of q and extends at most L×W beyond it).
	//
	// stale means mutations published after the evaluation that set
	// bound are not yet reflected in it. Inserts only shrink the true
	// bound, so the recorded (larger) box stays conservative; a
	// pending delete or reset can grow it, which staleDegrade records —
	// while set, every mutation is treated as affecting.
	found        bool
	bound        float64
	stale        bool
	staleDegrade bool
}

// ID returns the registry-unique subscription ID.
func (s *Subscription) ID() uint64 { return s.id }

func (s *Subscription) affectedLocked(op Op, changed []geom.Point) bool {
	if op == OpReset || s.staleDegrade {
		return true
	}
	if !s.found {
		// No current answer: an insert can create one anywhere; a delete
		// cannot — unless un-reflected inserts are pending, which the
		// delete might neutralise.
		return op == OpInsert || s.stale
	}
	hx := s.bound + s.spec.L
	hy := s.bound + s.spec.W
	for i := range changed {
		if math.Abs(changed[i].X-s.spec.X) <= hx && math.Abs(changed[i].Y-s.spec.Y) <= hy {
			return true
		}
	}
	return false
}

// pushLocked appends a notification, coalescing the oldest entry away
// when the queue is full. Caller holds s.mu.
func (s *Subscription) pushLocked(n Notification, op Op) {
	s.stale = true
	if op != OpInsert {
		s.staleDegrade = true
	}
	if len(s.queue) >= s.r.queueCap {
		old := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		old.Release()
		s.dropped = true
		s.r.coalesced.Add(1)
	}
	s.queue = append(s.queue, n)
	s.r.notified.Add(1)
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// Next blocks until a notification is pending and pops it, in publish
// order. It returns ErrClosed after Close, the context's error on
// cancellation, and ErrClosed when cancel closes (the host's shutdown
// drain). The caller must evaluate against the notification's snapshot,
// call Release, and report the outcome via Evaluated.
func (s *Subscription) Next(ctx context.Context, cancel <-chan struct{}) (Notification, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Notification{}, ErrClosed
		}
		if len(s.queue) > 0 {
			n := s.queue[0]
			copy(s.queue, s.queue[1:])
			s.queue[len(s.queue)-1] = Notification{}
			s.queue = s.queue[:len(s.queue)-1]
			if s.dropped {
				n.Resync = true
				s.dropped = false
				s.r.resyncs.Add(1)
			}
			s.mu.Unlock()
			return n, nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Notification{}, ctx.Err()
		case <-s.done:
			return Notification{}, ErrClosed
		case <-cancel:
			return Notification{}, ErrClosed
		case <-s.signal:
		}
	}
}

// Evaluated reports the outcome of one evaluation (the initial one or a
// popped notification's): the answer's existence and distance, or the
// error. A successful evaluation refreshes the affect box; the stale
// flags clear only when no further notifications are pending, since
// only then is the box known to describe the newest published state.
func (s *Subscription) Evaluated(found bool, dist float64, err error) {
	s.mu.Lock()
	if err != nil {
		s.stale = true
		s.staleDegrade = true
		s.mu.Unlock()
		s.r.evalErrors.Add(1)
		return
	}
	s.found = found
	s.bound = dist
	if len(s.queue) == 0 {
		s.stale = false
		s.staleDegrade = false
	}
	s.mu.Unlock()
	s.r.delivered.Add(1)
}

// DiscardThrough drops (and releases) pending notifications at or below
// gen. The host calls it after the initial evaluation so the stream
// never runs backwards past the init frame.
func (s *Subscription) DiscardThrough(gen uint64) {
	s.mu.Lock()
	kept := s.queue[:0]
	for i := range s.queue {
		if s.queue[i].Gen <= gen {
			s.queue[i].Release()
		} else {
			kept = append(kept, s.queue[i])
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = Notification{}
	}
	s.queue = kept
	s.mu.Unlock()
}

// Close unregisters the subscription, releases every pending snapshot
// pin and wakes any blocked Next. Idempotent.
func (s *Subscription) Close() {
	s.r.mu.Lock()
	_, registered := s.r.subs[s.id]
	delete(s.r.subs, s.id)
	s.r.mu.Unlock()
	// Exactly one caller finds the map entry; it owns the decrement.
	if registered {
		s.r.active.Add(-1)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for i := range s.queue {
		s.queue[i].Release()
	}
	s.queue = nil
	s.mu.Unlock()
	close(s.done)
}
