package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"nwcq"
)

// TestPagedIndexMutations serves a disk-backed, WAL-protected index and
// checks the durability contract the package doc promises: a mutation
// acknowledged with 200 survives closing and reopening the index, and
// the WAL's activity is visible through GET /metrics.
func TestPagedIndexMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	pts := make([]nwcq.Point, 500)
	for i := range pts {
		pts[i] = nwcq.Point{X: float64((i * 37) % 1000), Y: float64((i * 91) % 1000), ID: uint64(i + 1)}
	}
	px, err := nwcq.BuildPaged(pts, path, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(&px.Index, px).Handler())

	var ins struct {
		Inserted bool `json:"inserted"`
		Points   int  `json:"points"`
	}
	if code := postJSON(t, ts.URL+"/insert", `{"x": 321.5, "y": 654.5, "id": 90001}`, &ins); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if !ins.Inserted || ins.Points != 501 {
		t.Fatalf("insert response %+v", ins)
	}
	var del struct {
		Deleted bool `json:"deleted"`
		Points  int  `json:"points"`
	}
	if code := postJSON(t, ts.URL+"/delete", fmt.Sprintf(`{"x": %g, "y": %g, "id": 1}`, pts[0].X, pts[0].Y), &del); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if !del.Deleted || del.Points != 500 {
		t.Fatalf("delete response %+v", del)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:n])
	for _, want := range []string{"nwcq_wal_appends_total", "nwcq_page_syncs_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus metrics missing %s", want)
		}
	}

	ts.Close()
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := nwcq.OpenPaged(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 500 {
		t.Fatalf("reopened index has %d points, want 500", got)
	}
	win, err := re.Window(321, 654, 322, 655)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 1 || win[0].ID != 90001 {
		t.Fatalf("acknowledged insert missing after reopen: %v", win)
	}
}
