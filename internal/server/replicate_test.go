package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"nwcq"
	"nwcq/internal/repl"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// nwcBody fetches one NWC answer as decoded JSON for leader/follower
// comparison.
func nwcBody(t *testing.T, base string) map[string]any {
	t.Helper()
	var out map[string]any
	if code := getJSON(t, base+"/nwc?x=500&y=500&l=120&w=120&n=3", &out); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	delete(out, "stats") // I/O counters legitimately differ per process
	return out
}

// TestReplicationEndToEnd is the two-process deployment in miniature:
// a leader HTTP server shipping its WAL, a follower tailing it over
// GET /wal/stream into its own paged index, readiness gated on lag,
// mutations refused on the follower, and a leader kill/restart on the
// same address healed by reconnect — all with acked records preserved.
func TestReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lpath := filepath.Join(dir, "leader.nwc")
	pts := make([]nwcq.Point, 400)
	for i := range pts {
		pts[i] = nwcq.Point{X: float64((i * 37) % 1000), Y: float64((i * 91) % 1000), ID: uint64(i + 1)}
	}
	leader, err := nwcq.BuildPaged(pts, lpath, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	leaderSrv := &http.Server{Handler: New(leader, leader).Handler()}
	go leaderSrv.Serve(ln)

	// The follower: its own paged index, the replication client, and a
	// read-only server gated on replica readiness.
	fpath := filepath.Join(dir, "replica.nwc")
	replica, err := nwcq.BuildPaged(nil, fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	follower, err := repl.New(repl.Config{
		Leader:     "http://" + addr,
		MaxLag:     time.Hour, // effectively "caught up once"
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	}, replica)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		follower.Run(ctx)
	}()
	defer func() {
		cancel()
		<-followerDone
	}()
	followerTS := startTestServer(t, New(replica, nil, WithReplica(follower.Status)).Handler())

	// Catch-up: the bulk-built base must arrive via snapshot bootstrap.
	waitFor(t, "initial catch-up", func() bool {
		return follower.Status().Ready && replica.ReplicaLSN() == leader.ReplicationLSNs().Committed
	})
	if follower.Status().Snapshots == 0 {
		t.Fatal("bulk-built base arrived without a snapshot bootstrap")
	}
	if replica.Len() != leader.Len() {
		t.Fatalf("replica %d points, leader %d", replica.Len(), leader.Len())
	}

	// Mutations flow through: insert on the leader, observe it on the
	// follower, and the two answer NWC identically at the same LSN.
	var ins struct {
		Inserted bool `json:"inserted"`
	}
	if code := postJSON(t, "http://"+addr+"/insert", `{"x": 501, "y": 501, "id": 77001}`, &ins); code != http.StatusOK || !ins.Inserted {
		t.Fatalf("leader insert: code %d, %+v", code, ins)
	}
	waitFor(t, "live-tail convergence", func() bool {
		return replica.ReplicaLSN() == leader.ReplicationLSNs().Committed
	})
	if lb, fb := nwcBody(t, "http://"+addr), nwcBody(t, followerTS); !reflect.DeepEqual(lb, fb) {
		t.Fatalf("NWC diverges at the same LSN:\nleader   %v\nfollower %v", lb, fb)
	}

	// The follower is read-only.
	var ferr struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, followerTS+"/insert", `{"x": 1, "y": 1, "id": 9}`, &ferr); code != http.StatusNotImplemented {
		t.Fatalf("follower insert status %d, want 501", code)
	}
	// And ready while caught up.
	if resp, err := http.Get(followerTS + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower readyz: %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}
	// Follower metrics expose the replica block.
	var fm struct {
		Replica *repl.Status `json:"replica"`
	}
	if code := getJSON(t, followerTS+"/metrics", &fm); code != http.StatusOK || fm.Replica == nil || !fm.Replica.Ready {
		t.Fatalf("follower metrics replica block: code %d, %+v", code, fm.Replica)
	}

	// Kill the leader mid-stream: process gone, index abandoned without
	// Close (the crash case). Reopen on the same address; everything the
	// follower acked must still be covered, and replication must heal.
	leaderSrv.Close()
	// Drop pooled keep-alive connections to the dead listener so the
	// next request dials the restarted server instead of hitting EOF.
	http.DefaultClient.CloseIdleConnections()
	preKill := replica.ReplicaLSN()
	leader2, err := nwcq.OpenPaged(lpath)
	if err != nil {
		t.Fatalf("leader restart: %v", err)
	}
	defer leader2.Close()
	if c := leader2.ReplicationLSNs().Committed; c < preKill {
		t.Fatalf("restarted leader committed %d below follower position %d", c, preKill)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	leaderSrv2 := &http.Server{Handler: New(leader2, leader2).Handler()}
	go leaderSrv2.Serve(ln2)
	defer leaderSrv2.Close()

	waitFor(t, "post-restart insert to land", func() bool {
		return postJSONCode(t, "http://"+addr+"/insert", `{"x": 502, "y": 502, "id": 77002}`, &ins) == http.StatusOK
	})
	waitFor(t, "post-restart convergence", func() bool {
		return replica.ReplicaLSN() == leader2.ReplicationLSNs().Committed
	})
	if lb, fb := nwcBody(t, "http://"+addr), nwcBody(t, followerTS); !reflect.DeepEqual(lb, fb) {
		t.Fatalf("NWC diverges after leader restart:\nleader   %v\nfollower %v", lb, fb)
	}
	if follower.Status().Reconnects == 0 {
		t.Fatal("leader restart produced no reconnect")
	}
	// Prometheus exposition carries the follower gauges.
	resp, err := http.Get(followerTS + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	text := string(buf[:n])
	for _, want := range []string{"nwcq_replica_lag_seconds", "nwcq_replica_connected", "nwcq_replica_ready 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output lacks %q", want)
		}
	}
}

// TestReadyzGatesOnReplicaLag forces the staleness bound to trip: with
// the leader gone and a tiny MaxLag, /readyz must flip to 503.
func TestReadyzGatesOnReplicaLag(t *testing.T) {
	dir := t.TempDir()
	leader, err := nwcq.BuildPaged([]nwcq.Point{{X: 1, Y: 1, ID: 1}}, filepath.Join(dir, "leader.nwc"), nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv := &http.Server{Handler: New(leader, leader).Handler()}
	go leaderSrv.Serve(ln)

	replica, err := nwcq.BuildPaged(nil, filepath.Join(dir, "replica.nwc"))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	follower, err := repl.New(repl.Config{
		Leader:     "http://" + ln.Addr().String(),
		MaxLag:     150 * time.Millisecond,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	}, replica)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		follower.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()
	ts := startTestServer(t, New(replica, nil, WithReplica(follower.Status)).Handler())

	waitFor(t, "catch-up", func() bool { return follower.Ready() })
	// Kill the leader; heartbeats stop, lag grows past the bound.
	leaderSrv.Close()
	waitFor(t, "lag gate to trip", func() bool {
		resp, err := http.Get(ts + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
}

// TestWALStreamRequiresReplicator pins the 501 on backends without a
// WAL, and the 400 on a malformed position.
func TestWALStreamRequiresReplicator(t *testing.T) {
	idx, err := nwcq.Build([]nwcq.Point{{X: 1, Y: 1, ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := startTestServer(t, New(idx, idx).Handler())
	resp, err := http.Get(ts + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("wal/stream on in-memory index: status %d, want 501", resp.StatusCode)
	}

	px, err := nwcq.BuildPaged(nil, filepath.Join(t.TempDir(), "idx.nwc"))
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	ts2 := startTestServer(t, New(px, px).Handler())
	resp, err = http.Get(ts2 + "/wal/stream?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d, want 400", resp.StatusCode)
	}
}

// postJSONCode is postJSON but tolerant of transport errors (returns
// -1), for requests raced against a server restart.
func postJSONCode(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return -1
	}
	return resp.StatusCode
}

// startTestServer starts a plain HTTP server on a loopback port and
// registers its shutdown; unlike httptest.Server it shares the exact
// handler path production uses (flusher included).
func startTestServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return fmt.Sprintf("http://%s", ln.Addr())
}
