package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"nwcq"
)

// GET /subscribe serves a standing NWC query as a Server-Sent Events
// stream. It takes the same parameters as GET /nwc; each event is one
// frame of the continuous query:
//
//	id: <lsn>
//	event: init | update | resync
//	data: {"kind":..,"lsn":..,"gen":..,"found":..,"group":..,"published_unix_ns":..}
//
// The first event (init) is the answer at the version the subscription
// attached at; update events follow every published mutation that can
// have changed the answer; a resync event means intermediate frames
// were coalesced away (slow consumer) and its payload is the current
// full answer. Comment lines (": hb") flow as heartbeats so proxies and
// clients can distinguish an idle stream from a dead one.
//
// Reconnecting clients send the standard Last-Event-ID header (or a
// last_event_id query parameter): when it still matches the current
// version the duplicate init frame is suppressed; when it does not, the
// first frame is delivered as a resync so the client knows states may
// have been missed in between. Delivery is at-least-once either way.
const (
	sseHeartbeatInterval = 10 * time.Second
)

var (
	errNoSubscriber = errors.New("backend does not support standing queries")
	errNoTemporal   = errors.New("backend does not retain past views (need a single index, see WithViewRetention)")
)

// asOfFromRequest parses the optional as_of_lsn parameter shared by
// /nwc and /knwc (temporal reads against a retained view).
func asOfFromRequest(r *http.Request) (uint64, bool, error) {
	v := r.URL.Query().Get("as_of_lsn")
	if v == "" {
		return 0, false, nil
	}
	lsn, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("invalid as_of_lsn %q: %w", v, err)
	}
	return lsn, true, nil
}

// subFrameJSON is the data payload of one SSE event.
type subFrameJSON struct {
	Kind string `json:"kind"`
	LSN  uint64 `json:"lsn"`
	Gen  uint64 `json:"gen"`
	// PublishedUnixNS is when the triggering mutation published (0 on
	// init frames); subscribers derive publish→notify latency from it.
	PublishedUnixNS int64      `json:"published_unix_ns,omitempty"`
	Found           bool       `json:"found"`
	Group           *groupJSON `json:"group,omitempty"`
}

func toSubFrameJSON(u nwcq.SubUpdate) subFrameJSON {
	f := subFrameJSON{Kind: u.Kind, LSN: u.LSN, Gen: u.Gen, Found: u.Result.Found}
	if !u.PublishedAt.IsZero() {
		f.PublishedUnixNS = u.PublishedAt.UnixNano()
	}
	if u.Result.Found {
		g := toGroupJSON(u.Result.Group)
		f.Group = &g
	}
	return f
}

// lastEventID reads the client's resume position: the standard SSE
// Last-Event-ID header, or a last_event_id query parameter for clients
// (curl) that cannot set headers per reconnect.
func lastEventID(r *http.Request) (uint64, bool) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	sb, ok := s.idx.(nwcq.Subscriber)
	if !ok {
		s.fail(w, http.StatusNotImplemented, errNoSubscriber)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	q, err := queryFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	sub, err := sb.Subscribe(q)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	defer sub.Close()
	resumeID, resuming := lastEventID(r)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Frames are pulled in a goroutine so the write loop can interleave
	// heartbeats; done tears the puller down when the handler returns.
	type frameMsg struct {
		u   nwcq.SubUpdate
		err error
	}
	frames := make(chan frameMsg)
	done := make(chan struct{})
	defer close(done)
	ctx := r.Context()
	go func() {
		for {
			u, err := sub.Next(ctx, s.closing)
			select {
			case frames <- frameMsg{u, err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	beat := time.NewTicker(sseHeartbeatInterval)
	defer beat.Stop()
	first := true
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.closing:
			return
		case <-beat.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case m := <-frames:
			if m.err != nil {
				// Closed (shutdown) or evaluation error: end the stream; an
				// SSE client reconnects with Last-Event-ID and resumes.
				return
			}
			u := m.u
			if u.Kind == nwcq.SubResync {
				// Slow-subscriber visibility: one log line per coalescing
				// event, carrying enough to find the consumer.
				slog.Warn("slow subscriber: frames coalesced, delivering resync",
					"sub_id", sub.ID(), "lsn", u.LSN, "remote", r.RemoteAddr)
			}
			if first {
				first = false
				if resuming {
					if u.Kind == nwcq.SubInit && resumeID == u.LSN {
						continue // client already has this state
					}
					// The stream moved while the client was away: deliver the
					// current answer flagged as a resync.
					u.Kind = nwcq.SubResync
				}
			}
			data, err := json.Marshal(toSubFrameJSON(u))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", u.LSN, u.Kind, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
