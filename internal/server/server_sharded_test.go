package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nwcq"
	"nwcq/internal/shard"
)

// TestShardedBackend serves a scatter-gather router through the same
// handlers as a single index: the Querier/Mutator seam is the only
// coupling, so every endpoint must work unchanged.
func TestShardedBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]nwcq.Point, 400)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i + 1)}
	}
	sh, err := shard.NewSharded(pts, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	ts := httptest.NewServer(New(sh, sh).Handler())
	t.Cleanup(ts.Close)

	var nres struct {
		Found bool    `json:"found"`
		Dist  float64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &nres); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	if !nres.Found {
		t.Fatal("nwc found nothing")
	}

	var stats struct {
		Points     int `json:"points"`
		TreeHeight int `json:"tree_height"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Points != 400 {
		t.Fatalf("stats points=%d, want 400", stats.Points)
	}

	var ins struct {
		Inserted bool `json:"inserted"`
		Points   int  `json:"points"`
	}
	if code := postJSON(t, ts.URL+"/insert", `{"x": 500.5, "y": 500.5, "id": 9001}`, &ins); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if !ins.Inserted || ins.Points != 401 {
		t.Fatalf("insert response %+v", ins)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"nwcq_shards 4", "nwcq_queries_total", "nwcq_http_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	var metrics struct {
		Index struct {
			Router *struct {
				Shards int `json:"shards"`
			} `json:"router"`
		} `json:"index"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Index.Router == nil || metrics.Index.Router.Shards != 4 {
		t.Fatalf("router section = %+v", metrics.Index.Router)
	}
}

// TestReadOnlyServer checks a nil Mutator turns the mutation endpoints
// into 501s while queries keep working.
func TestReadOnlyServer(t *testing.T) {
	idx, err := nwcq.Build([]nwcq.Point{{X: 1, Y: 1, ID: 1}, {X: 2, Y: 2, ID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, nil).Handler())
	t.Cleanup(ts.Close)

	var nres struct {
		Found bool `json:"found"`
	}
	if code := getJSON(t, ts.URL+"/nwc?x=1&y=1&l=4&w=4&n=2", &nres); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	resp, err := http.Post(ts.URL+"/insert", "application/json",
		strings.NewReader(`{"x": 3, "y": 3, "id": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert on read-only server: status %d, want 501", resp.StatusCode)
	}
}
