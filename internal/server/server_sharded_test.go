package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nwcq"
	"nwcq/internal/shard"
)

// shardedServer builds a 4-shard router over deterministic points and
// serves it through the standard handlers.
func shardedServer(t *testing.T, opts ...Option) (*shard.Sharded, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]nwcq.Point, 1200)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i + 1)}
	}
	sh, err := shard.NewSharded(pts, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	ts := httptest.NewServer(New(sh, sh, opts...).Handler())
	t.Cleanup(ts.Close)
	return sh, ts
}

// TestShardedBackend serves a scatter-gather router through the same
// handlers as a single index: the Querier/Mutator seam is the only
// coupling, so every endpoint must work unchanged.
func TestShardedBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]nwcq.Point, 400)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i + 1)}
	}
	sh, err := shard.NewSharded(pts, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	ts := httptest.NewServer(New(sh, sh).Handler())
	t.Cleanup(ts.Close)

	var nres struct {
		Found bool    `json:"found"`
		Dist  float64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &nres); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	if !nres.Found {
		t.Fatal("nwc found nothing")
	}

	var stats struct {
		Points     int `json:"points"`
		TreeHeight int `json:"tree_height"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Points != 400 {
		t.Fatalf("stats points=%d, want 400", stats.Points)
	}

	var ins struct {
		Inserted bool `json:"inserted"`
		Points   int  `json:"points"`
	}
	if code := postJSON(t, ts.URL+"/insert", `{"x": 500.5, "y": 500.5, "id": 9001}`, &ins); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if !ins.Inserted || ins.Points != 401 {
		t.Fatalf("insert response %+v", ins)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"nwcq_shards 4", "nwcq_queries_total", "nwcq_http_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	var metrics struct {
		Index struct {
			Router *struct {
				Shards int `json:"shards"`
			} `json:"router"`
		} `json:"index"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Index.Router == nil || metrics.Index.Router.Shards != 4 {
		t.Fatalf("router section = %+v", metrics.Index.Router)
	}
}

// TestShardedPrometheusFormat parses the full exposition of a sharded
// backend line by line: every router-level family must be well-formed,
// the phase histograms must hold the cumulative-bucket invariant, and
// the build-identity gauge must be present exactly once.
func TestShardedPrometheusFormat(t *testing.T) {
	_, ts := shardedServer(t)
	var tmp struct {
		Found bool `json:"found"`
	}
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})

	values, typed := scrapeProm(t, ts.URL)

	if v := values["nwcq_shards"]; v != 4 {
		t.Errorf("nwcq_shards = %g, want 4", v)
	}
	var shardPoints float64
	for i := 0; i < 4; i++ {
		name := `nwcq_shard_points{shard="` + strconv.Itoa(i) + `"}`
		v, ok := values[name]
		if !ok {
			t.Errorf("%s missing", name)
		}
		shardPoints += v
	}
	if shardPoints != 1200 {
		t.Errorf("shard points sum to %g, want 1200", shardPoints)
	}

	// Router phase split: every routed query observes all three phase
	// histograms exactly once (zero for skipped phases), so the counts
	// stay equal and the quantiles comparable.
	if typed["nwcq_router_phase_seconds"] != "histogram" {
		t.Errorf("phase family type = %q", typed["nwcq_router_phase_seconds"])
	}
	for _, phase := range []string{"scatter", "border", "merge"} {
		count := checkPromHistogram(t, values, "nwcq_router_phase_seconds", `phase="`+phase+`"`)
		if count != 2 {
			t.Errorf("phase %s count = %g, want 2 (one nwc + one knwc)", phase, count)
		}
	}

	if typed["nwcq_slow_queries_total"] != "counter" {
		t.Errorf("slow-query family type = %q", typed["nwcq_slow_queries_total"])
	}
	if v, ok := values["nwcq_slow_queries_total"]; !ok || v != 0 {
		t.Errorf("nwcq_slow_queries_total = %g present=%v, want 0 with no threshold set", v, ok)
	}
	if checkPromHistogram(t, values, "nwcq_query_latency_seconds", `kind="nwc"`) != 1 {
		t.Error("routed nwc latency count != 1")
	}
	checkBuildInfo(t, values, typed)
}

// TestShardedSlowlogSources drives slow traffic through the router and
// checks /debug/slowlog carries both granularities: router-level
// entries (whole routed execution, Source "router") and the per-shard
// local shares stamped "shard<i>".
func TestShardedSlowlogSources(t *testing.T) {
	sh, ts := shardedServer(t)
	sh.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	var tmp struct {
		Found bool `json:"found"`
	}
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})

	var out struct {
		ThresholdNs int64 `json:"threshold_ns"`
		Entries     []struct {
			Kind       string `json:"kind"`
			Source     string `json:"source"`
			DurationNs int64  `json:"duration_ns"`
		} `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/debug/slowlog", &out); code != http.StatusOK {
		t.Fatalf("slowlog status %d", code)
	}
	if out.ThresholdNs != 1 {
		t.Errorf("threshold_ns = %d", out.ThresholdNs)
	}
	routerKinds := map[string]int{}
	shardEntries := 0
	for _, e := range out.Entries {
		switch {
		case e.Source == "router":
			routerKinds[e.Kind]++
			if e.DurationNs <= 0 {
				t.Errorf("router entry %+v lacks duration", e)
			}
		case strings.HasPrefix(e.Source, "shard"):
			shardEntries++
		default:
			t.Errorf("entry with unexpected source %q", e.Source)
		}
	}
	if routerKinds["nwc"] != 1 || routerKinds["knwc"] != 1 {
		t.Errorf("router entries by kind = %v, want one nwc and one knwc", routerKinds)
	}
	if shardEntries == 0 {
		t.Error("no shard-level entries in merged slowlog")
	}
}

// TestReadOnlyServer checks a nil Mutator turns the mutation endpoints
// into 501s while queries keep working.
func TestReadOnlyServer(t *testing.T) {
	idx, err := nwcq.Build([]nwcq.Point{{X: 1, Y: 1, ID: 1}, {X: 2, Y: 2, ID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, nil).Handler())
	t.Cleanup(ts.Close)

	var nres struct {
		Found bool `json:"found"`
	}
	if code := getJSON(t, ts.URL+"/nwc?x=1&y=1&l=4&w=4&n=2", &nres); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	resp, err := http.Post(ts.URL+"/insert", "application/json",
		strings.NewReader(`{"x": 3, "y": 3, "id": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert on read-only server: status %d, want 501", resp.StatusCode)
	}
}
