package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"nwcq"
)

// Batch endpoints: POST /batch/nwc and /batch/knwc answer many queries
// in one round trip, fanning them out over the backend's worker pool
// (Index.NWCBatchCtx / the sharded router's batch forms). Results come
// back in input order; the first failing query aborts the whole batch,
// matching the library semantics. The load harness uses these to drive
// batch-shaped traffic.

// batchMaxQueries caps one batch request; larger batches should be
// split client-side so a single request cannot monopolise the pool.
const batchMaxQueries = 4096

// batchQueryJSON is one query in a batch body. K and M are only read
// by /batch/knwc.
type batchQueryJSON struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	L       float64 `json:"l"`
	W       float64 `json:"w"`
	N       int     `json:"n"`
	K       int     `json:"k,omitempty"`
	M       int     `json:"m,omitempty"`
	Scheme  string  `json:"scheme,omitempty"`
	Measure string  `json:"measure,omitempty"`
}

type batchRequestJSON struct {
	Queries []batchQueryJSON `json:"queries"`
	// Parallelism overrides the backend's batch worker width for this
	// request; 0 keeps the server default.
	Parallelism int `json:"parallelism,omitempty"`
}

func (bq batchQueryJSON) query() (nwcq.Query, error) {
	q := nwcq.Query{X: bq.X, Y: bq.Y, Length: bq.L, Width: bq.W, N: bq.N}
	if bq.Scheme != "" {
		scheme, err := ParseScheme(bq.Scheme)
		if err != nil {
			return q, err
		}
		q.Scheme = scheme
	}
	if bq.Measure != "" {
		measure, err := ParseMeasure(bq.Measure)
		if err != nil {
			return q, err
		}
		q.Measure = measure
	}
	return q, nil
}

// decodeBatch reads and bounds-checks a batch body.
func decodeBatch(r *http.Request) (batchRequestJSON, error) {
	var req batchRequestJSON
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("invalid batch body: %w", err)
	}
	if len(req.Queries) == 0 {
		return req, fmt.Errorf("batch needs at least one query")
	}
	if len(req.Queries) > batchMaxQueries {
		return req, fmt.Errorf("batch holds %d queries, limit is %d", len(req.Queries), batchMaxQueries)
	}
	return req, nil
}

func (s *Server) handleBatchNWC(w http.ResponseWriter, r *http.Request) {
	req, err := decodeBatch(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	queries := make([]nwcq.Query, len(req.Queries))
	for i, bq := range req.Queries {
		if queries[i], err = bq.query(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
	}
	results, err := s.idx.NWCBatchCtx(r.Context(), queries, nwcq.BatchOptions{Parallelism: req.Parallelism})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type result struct {
		Found bool       `json:"found"`
		Group *groupJSON `json:"group,omitempty"`
		Stats statsJSON  `json:"stats"`
	}
	out := make([]result, len(results))
	for i, res := range results {
		out[i] = result{Found: res.Found, Stats: toStatsJSON(res.Stats)}
		if res.Found {
			g := toGroupJSON(res.Group)
			out[i].Group = &g
		}
	}
	s.ok(w, map[string]any{"results": out})
}

func (s *Server) handleBatchKNWC(w http.ResponseWriter, r *http.Request) {
	req, err := decodeBatch(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	queries := make([]nwcq.KQuery, len(req.Queries))
	for i, bq := range req.Queries {
		q, err := bq.query()
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = nwcq.KQuery{Query: q, K: bq.K, M: bq.M}
	}
	results, err := s.idx.KNWCBatchCtx(r.Context(), queries, nwcq.BatchOptions{Parallelism: req.Parallelism})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type result struct {
		Found  bool        `json:"found"`
		Groups []groupJSON `json:"groups"`
		Stats  statsJSON   `json:"stats"`
	}
	out := make([]result, len(results))
	for i, res := range results {
		out[i] = result{Found: res.Found, Groups: make([]groupJSON, 0, len(res.Groups)), Stats: toStatsJSON(res.Stats)}
		for _, g := range res.Groups {
			out[i].Groups = append(out[i].Groups, toGroupJSON(g))
		}
	}
	s.ok(w, map[string]any{"results": out})
}
