package server

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"nwcq"
	"nwcq/internal/qevent"
)

// Option configures optional Server behaviour; pass options to New.
type Option func(*Server)

// Health is the server's readiness gate, shared between the process
// that knows when startup finished (nwcserve: after the backend opened
// and any WAL replay completed) and the /readyz endpoint. Liveness
// (/healthz) is unconditional — the process is up — while readiness
// flips only once the backend can actually answer queries, so load
// balancers and load generators (cmd/nwcload) can gate on it without
// racing crash recovery.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a not-yet-ready gate.
func NewHealth() *Health { return &Health{} }

// SetReady publishes the readiness state; safe for concurrent use.
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// WithHealth attaches a readiness gate to the server: GET /readyz
// answers 503 until h.SetReady(true). Without it /readyz is always 200
// (a server constructed around an already-open backend is ready by
// definition).
func WithHealth(h *Health) Option {
	return func(s *Server) { s.health = h }
}

// WithQueryLog enables the sampled wide-event query log: one structured
// record per sampled NWC/kNWC request carrying everything the stack
// attributed to it — cache outcome, engine phase timings, shard
// fan-out, border-fetch work and the router's scatter/border/merge
// split. sampleN is the 1-in-N sampling rate; n <= 1 logs every
// request. A nil logger disables the log.
func WithQueryLog(logger *slog.Logger, sampleN int) Option {
	return func(s *Server) {
		if logger == nil {
			return
		}
		if sampleN < 1 {
			sampleN = 1
		}
		s.qlog = &queryLog{logger: logger, n: uint64(sampleN)}
	}
}

// queryLog samples requests and emits their wide events. Sampling is a
// single atomic increment; unsampled requests never allocate an event,
// so the stack's attribution hooks all stay on their nil fast paths.
type queryLog struct {
	logger *slog.Logger
	n      uint64
	seq    atomic.Uint64
}

// attach returns ctx carrying a fresh wide event when this request is
// sampled, and the event itself (nil when unsampled or logging is off).
func (ql *queryLog) attach(ctx context.Context) (context.Context, *qevent.Event) {
	if ql == nil {
		return ctx, nil
	}
	if ql.n > 1 && ql.seq.Add(1)%ql.n != 1 {
		return ctx, nil
	}
	ev := &qevent.Event{}
	return qevent.With(ctx, ev), ev
}

// emit writes the completed wide event as one structured record. A nil
// event (unsampled request) is a no-op.
func (ql *queryLog) emit(op string, q nwcq.Query, k, m int, elapsed time.Duration, found bool, ev *qevent.Event, err error) {
	if ev == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("op", op),
		slog.String("scheme", q.Scheme.String()),
		slog.String("measure", q.Measure.String()),
		slog.Float64("x", q.X), slog.Float64("y", q.Y),
		slog.Float64("l", q.Length), slog.Float64("w", q.Width),
		slog.Int("n", q.N),
		slog.Int64("duration_ns", elapsed.Nanoseconds()),
		slog.Bool("found", found),
	}
	if k > 0 {
		attrs = append(attrs, slog.Int("k", k), slog.Int("m", m))
	}
	if ev.Cache != "" {
		attrs = append(attrs, slog.String("cache", ev.Cache))
	}
	if len(ev.Phases) > 0 {
		attrs = append(attrs, slog.Any("phases", ev.Phases))
	}
	if ev.Router != nil {
		attrs = append(attrs, slog.Any("router", ev.Router))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	ql.logger.LogAttrs(context.Background(), slog.LevelInfo, "query", attrs...)
}
