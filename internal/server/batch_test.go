package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestBatchNWCEndpoint answers several queries in one round trip and
// checks each slot matches the corresponding single-query endpoint.
func TestBatchNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)

	centers := [][2]float64{{200, 300}, {500, 500}, {800, 650}}
	body := `{"queries": [
		{"x": 200, "y": 300, "l": 80, "w": 80, "n": 4},
		{"x": 500, "y": 500, "l": 80, "w": 80, "n": 4},
		{"x": 800, "y": 650, "l": 80, "w": 80, "n": 4}
	], "parallelism": 2}`
	var out struct {
		Results []struct {
			Found bool `json:"found"`
			Group *struct {
				Dist float64 `json:"dist"`
			} `json:"group"`
			Stats struct {
				NodeVisits uint64 `json:"node_visits"`
			} `json:"stats"`
		} `json:"results"`
	}
	if code := postJSON(t, ts.URL+"/batch/nwc", body, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if !res.Found || res.Group == nil {
			t.Fatalf("result %d found nothing on dense data", i)
		}
		if res.Stats.NodeVisits == 0 {
			t.Errorf("result %d reports no I/O", i)
		}
		// Results must line up with the request order: the batch answer
		// for slot i equals the single-query answer for the same params.
		var single nwcResponse
		url := fmt.Sprintf("%s/nwc?x=%g&y=%g&l=80&w=80&n=4", ts.URL, centers[i][0], centers[i][1])
		getJSON(t, url, &single)
		if !single.Found || single.Group.Dist != res.Group.Dist {
			t.Errorf("result %d dist %g != single-query dist %g", i, res.Group.Dist, single.Group.Dist)
		}
	}
}

func TestBatchKNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)
	body := `{"queries": [
		{"x": 500, "y": 500, "l": 80, "w": 80, "n": 4, "k": 3, "m": 1},
		{"x": 300, "y": 700, "l": 80, "w": 80, "n": 3, "k": 2, "m": 1, "scheme": "SRR"}
	]}`
	var out struct {
		Results []struct {
			Found  bool `json:"found"`
			Groups []struct {
				Dist float64 `json:"dist"`
			} `json:"groups"`
		} `json:"results"`
	}
	if code := postJSON(t, ts.URL+"/batch/knwc", body, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) != 2 {
		t.Fatalf("%d results, want 2", len(out.Results))
	}
	if len(out.Results[0].Groups) != 3 || len(out.Results[1].Groups) != 2 {
		t.Fatalf("group counts = %d/%d, want 3/2",
			len(out.Results[0].Groups), len(out.Results[1].Groups))
	}
	for i, res := range out.Results {
		for j := 1; j < len(res.Groups); j++ {
			if res.Groups[j].Dist < res.Groups[j-1].Dist {
				t.Errorf("result %d groups out of order", i)
			}
		}
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := testServer(t)

	oversized, err := json.Marshal(batchRequestJSON{Queries: make([]batchQueryJSON, batchMaxQueries+1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"queries": [`},
		{"empty batch", `{"queries": []}`},
		{"unknown field", `{"queries": [{"x": 1, "y": 1, "l": 4, "w": 4, "n": 2}], "bogus": 1}`},
		{"bad scheme in slot 1", `{"queries": [{"x": 1, "y": 1, "l": 4, "w": 4, "n": 2}, {"x": 1, "y": 1, "l": 4, "w": 4, "n": 2, "scheme": "zzz"}]}`},
		{"invalid query params", `{"queries": [{"x": 1, "y": 1, "l": 4, "w": 4, "n": 0}]}`},
		{"over the batch cap", string(oversized)},
	}
	for _, endpoint := range []string{"/batch/nwc", "/batch/knwc"} {
		for _, c := range cases {
			var out struct {
				Error string `json:"error"`
			}
			code := postJSON(t, ts.URL+endpoint, c.body, &out)
			if code != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", endpoint, c.name, code)
			}
			if out.Error == "" {
				t.Errorf("%s %s: no error message", endpoint, c.name)
			}
		}
	}
}

// TestBatchEndpointStats checks batch traffic shows up under its own
// endpoint counters.
func TestBatchEndpointStats(t *testing.T) {
	_, ts := testServer(t)
	var tmp struct {
		Results []json.RawMessage `json:"results"`
	}
	postJSON(t, ts.URL+"/batch/nwc", `{"queries": [{"x": 500, "y": 500, "l": 80, "w": 80, "n": 3}]}`, &tmp)
	postJSON(t, ts.URL+"/batch/nwc", `{"queries": []}`, &struct{ Error string }{})

	var out struct {
		Endpoints map[string]struct {
			Requests uint64 `json:"requests"`
			Failures uint64 `json:"failures"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &out); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	ep := out.Endpoints["batch_nwc"]
	if ep.Requests != 2 || ep.Failures != 1 {
		t.Errorf("batch_nwc requests/failures = %d/%d, want 2/1", ep.Requests, ep.Failures)
	}
}
