package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nwcq"
)

// sseEvent is one parsed Server-Sent Events frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSEEvent reads the next event off the stream, skipping heartbeat
// comments.
func readSSEEvent(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// mustReadEvent bounds a stream read so a stalled server fails the test
// instead of hanging it.
func mustReadEvent(t *testing.T, br *bufio.Reader) sseEvent {
	t.Helper()
	type res struct {
		ev  sseEvent
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ev, err := readSSEEvent(br)
		ch <- res{ev, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("read SSE event: %v", r.err)
		}
		return r.ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an SSE event")
		return sseEvent{}
	}
}

// subFrame mirrors the wire payload the handler emits.
type subFrame struct {
	Kind            string `json:"kind"`
	LSN             uint64 `json:"lsn"`
	Gen             uint64 `json:"gen"`
	PublishedUnixNS int64  `json:"published_unix_ns"`
	Found           bool   `json:"found"`
	Group           *struct {
		Dist float64 `json:"dist"`
	} `json:"group"`
}

func parseFrame(t *testing.T, ev sseEvent) subFrame {
	t.Helper()
	var f subFrame
	if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
		t.Fatalf("frame data %q: %v", ev.data, err)
	}
	if f.Kind != ev.event {
		t.Fatalf("data kind %q disagrees with event line %q", f.Kind, ev.event)
	}
	if ev.id != fmt.Sprint(f.LSN) {
		t.Fatalf("id line %q disagrees with frame LSN %d", ev.id, f.LSN)
	}
	return f
}

func mustPost(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

// subTestPaged builds a WAL-backed index whose 60×60 window around
// (500, 500) starts empty: base points live in [0, 300]², so the test
// fully controls when the standing query's answer appears.
func subTestPaged(t *testing.T, opts ...nwcq.BuildOption) *nwcq.PagedIndex {
	t.Helper()
	pts := make([]nwcq.Point, 200)
	for i := range pts {
		pts[i] = nwcq.Point{X: float64((i * 37) % 300), Y: float64((i * 91) % 300), ID: uint64(i + 1)}
	}
	opts = append([]nwcq.BuildOption{nwcq.WithBulkLoad(), nwcq.WithSpace(0, 0, 1000, 1000)}, opts...)
	px, err := nwcq.BuildPaged(pts, filepath.Join(t.TempDir(), "sub.nwcq"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	return px
}

// TestSubscribeSSEEndToEnd drives the full SSE path through the
// production handler chain (instrument wraps every handler in a
// StatusWriter, so this test also fails if that wrapper ever drops
// http.Flusher): init frame, a mutation-triggered update with a real
// WAL LSN, then the two Last-Event-ID reconnect behaviours.
func TestSubscribeSSEEndToEnd(t *testing.T) {
	px := subTestPaged(t)
	ts := httptest.NewServer(New(px, px).Handler())
	defer ts.Close()
	subURL := ts.URL + "/subscribe?x=500&y=500&l=60&w=60&n=2"

	resp, err := http.Get(subURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	init := parseFrame(t, mustReadEvent(t, br))
	// The base cluster is ~300 away, so the init answer exists but is
	// distant; the two inserts below form an n=2 group right at q.
	if init.Kind != "init" || !init.Found || init.Group == nil || init.Group.Dist < 100 {
		t.Fatalf("init frame %+v; want a distant base-cluster answer", init)
	}

	mustPost(t, ts.URL+"/insert", `{"x": 495, "y": 500, "id": 90001}`)
	mustPost(t, ts.URL+"/insert", `{"x": 505, "y": 500, "id": 90002}`)
	up1 := parseFrame(t, mustReadEvent(t, br))
	up2 := parseFrame(t, mustReadEvent(t, br))
	if up1.Kind != "update" || up2.Kind != "update" {
		t.Fatalf("update kinds %q, %q", up1.Kind, up2.Kind)
	}
	if up1.LSN <= init.LSN || up2.LSN <= up1.LSN {
		t.Fatalf("LSNs not monotone: init %d, updates %d, %d", init.LSN, up1.LSN, up2.LSN)
	}
	if up1.PublishedUnixNS == 0 || up2.PublishedUnixNS == 0 {
		t.Fatal("update frames carry no publish stamp")
	}
	if !up2.Found || up2.Group == nil || up2.Group.Dist > 20 {
		t.Fatalf("second update %+v; the inserted pair should be the ~5-away answer", up2)
	}
	resp.Body.Close()

	// A stale resume position: the first frame must arrive flagged as a
	// resync carrying the current state, not a replay of the gap.
	req, _ := http.NewRequest("GET", subURL, nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(init.LSN))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rs := parseFrame(t, mustReadEvent(t, bufio.NewReader(resp2.Body)))
	if rs.Kind != "resync" || rs.LSN != up2.LSN || !rs.Found {
		t.Fatalf("stale resume delivered %+v; want a resync at LSN %d", rs, up2.LSN)
	}
	resp2.Body.Close()

	// A current resume position (via the query parameter, the curl
	// path): the duplicate init is suppressed, so the first event is the
	// next mutation's update.
	resp3, err := http.Get(subURL + "&last_event_id=" + fmt.Sprint(up2.LSN))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	br3 := bufio.NewReader(resp3.Body)
	mustPost(t, ts.URL+"/insert", `{"x": 500, "y": 505, "id": 90003}`)
	up3 := parseFrame(t, mustReadEvent(t, br3))
	if up3.Kind != "update" || up3.LSN <= up2.LSN {
		t.Fatalf("current resume delivered %+v; want only the fresh update above LSN %d", up3, up2.LSN)
	}
}

// TestSubscribeShutdownDrain pins the graceful-shutdown contract:
// Server.Close must promptly terminate open /subscribe and /wal/stream
// responses, so http.Server.Shutdown is never held hostage by streaming
// clients that would otherwise stay connected forever.
func TestSubscribeShutdownDrain(t *testing.T) {
	px := subTestPaged(t)
	api := New(px, px)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: api.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	subResp, err := http.Get(base + "/subscribe?x=500&y=500&l=60&w=60&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	subBR := bufio.NewReader(subResp.Body)
	mustReadEvent(t, subBR) // init delivered: the stream is live

	walResp, err := http.Get(base + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer walResp.Body.Close()
	one := make([]byte, 1)
	walLive := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(walResp.Body, one)
		walLive <- err
	}()
	select {
	case err := <-walLive:
		if err != nil {
			t.Fatalf("wal stream never started: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wal stream sent nothing (heartbeats should flow within 250ms)")
	}

	if err := api.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with drained streams: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown took %v; the streaming handlers did not drain promptly", d)
	}
	// Both bodies must now terminate cleanly instead of blocking.
	drained := make(chan struct{}, 2)
	go func() { io.Copy(io.Discard, subResp.Body); drained <- struct{}{} }()
	go func() { io.Copy(io.Discard, walResp.Body); drained <- struct{}{} }()
	for i := 0; i < 2; i++ {
		select {
		case <-drained:
		case <-time.After(5 * time.Second):
			t.Fatal("a streaming response body did not terminate after shutdown")
		}
	}
}

// TestNWCAsOfEndpoint exercises the as_of_lsn parameter on /nwc and
// /knwc against a retention-enabled index: reads at a retained LSN see
// exactly that version, reads beyond the committed LSN answer 410 Gone,
// and junk answers 400.
func TestNWCAsOfEndpoint(t *testing.T) {
	px := subTestPaged(t, nwcq.WithViewRetention(16))
	ts := httptest.NewServer(New(px, px).Handler())
	defer ts.Close()

	mustPost(t, ts.URL+"/insert", `{"x": 495, "y": 500, "id": 90001}`)
	lsn1 := px.ReplicationLSNs().Committed
	mustPost(t, ts.URL+"/insert", `{"x": 505, "y": 500, "id": 90002}`)
	lsn2 := px.ReplicationLSNs().Committed
	if lsn2 <= lsn1 {
		t.Fatalf("LSNs did not advance: %d then %d", lsn1, lsn2)
	}

	nwcURL := func(lsn uint64) string {
		return fmt.Sprintf("%s/nwc?x=500&y=500&l=60&w=60&n=2&as_of_lsn=%d", ts.URL, lsn)
	}
	distAt := func(lsn uint64) float64 {
		var res struct {
			Found bool `json:"found"`
			Group *struct {
				Dist float64 `json:"dist"`
			} `json:"group"`
		}
		if code := getJSON(t, nwcURL(lsn), &res); code != http.StatusOK || !res.Found || res.Group == nil {
			t.Fatalf("as of %d: code %d, response %+v", lsn, code, res)
		}
		return res.Group.Dist
	}
	// As of lsn1 only one of the pair exists: the answer is still the
	// distant base cluster. As of lsn2 the nearby pair wins.
	if d1, d2 := distAt(lsn1), distAt(lsn2); d1 < 100 || d2 > 20 {
		t.Fatalf("as-of answers d1=%g d2=%g; want the second insert visible only at lsn2", d1, d2)
	}
	var kres struct {
		Found bool `json:"found"`
	}
	kURL := fmt.Sprintf("%s/knwc?x=500&y=500&l=60&w=60&n=2&k=2&m=1&as_of_lsn=%d", ts.URL, lsn2)
	if code := getJSON(t, kURL, &kres); code != http.StatusOK || !kres.Found {
		t.Fatalf("knwc as of %d: code %d found=%v", lsn2, code, kres.Found)
	}

	var errBody struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, nwcURL(lsn2+50), &errBody); code != http.StatusGone {
		t.Fatalf("read beyond the committed LSN answered %d, want 410", code)
	}
	if code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=60&w=60&n=2&as_of_lsn=junk", &errBody); code != http.StatusBadRequest {
		t.Fatalf("unparseable as_of_lsn answered %d, want 400", code)
	}
}

// TestAsOfOnShardedBackendNotImplemented: the router retains no unified
// version axis, so temporal reads must answer 501, not garbage.
func TestAsOfOnShardedBackendNotImplemented(t *testing.T) {
	_, ts := shardedServer(t)
	var errBody struct {
		Error string `json:"error"`
	}
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=100&w=100&n=3&as_of_lsn=1", &errBody)
	if code != http.StatusNotImplemented {
		t.Fatalf("sharded as-of read answered %d, want 501", code)
	}
}
