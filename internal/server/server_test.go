package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"nwcq"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]nwcq.Point, 3000)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	idx, err := nwcq.Build(pts, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" && resp.StatusCode == 200 {
		t.Fatalf("content type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

type nwcResponse struct {
	Found bool `json:"found"`
	Group *struct {
		Objects []struct {
			X  float64 `json:"x"`
			Y  float64 `json:"y"`
			ID uint64  `json:"id"`
		} `json:"objects"`
		Dist   float64 `json:"dist"`
		Window struct {
			MinX float64 `json:"min_x"`
			MaxX float64 `json:"max_x"`
		} `json:"window"`
	} `json:"group"`
	Stats struct {
		NodeVisits uint64 `json:"node_visits"`
	} `json:"stats"`
}

func TestNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out nwcResponse
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=100&w=100&n=5", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !out.Found || out.Group == nil {
		t.Fatal("no result on dense data")
	}
	if len(out.Group.Objects) != 5 {
		t.Fatalf("%d objects", len(out.Group.Objects))
	}
	if out.Group.Window.MaxX-out.Group.Window.MinX > 100+1e-9 {
		t.Error("window too wide")
	}
	if out.Stats.NodeVisits == 0 {
		t.Error("no I/O reported")
	}
}

func TestNWCEndpointSchemesAgree(t *testing.T) {
	_, ts := testServer(t)
	var base nwcResponse
	getJSON(t, ts.URL+"/nwc?x=300&y=700&l=80&w=80&n=4&scheme=NWC", &base)
	for _, scheme := range []string{"SRR", "DIP", "DEP", "IWP", "NWC%2B", "NWC*"} {
		var out nwcResponse
		code := getJSON(t, ts.URL+"/nwc?x=300&y=700&l=80&w=80&n=4&scheme="+scheme, &out)
		if code != 200 {
			t.Fatalf("scheme %s: status %d", scheme, code)
		}
		if out.Found != base.Found || (out.Found && out.Group.Dist != base.Group.Dist) {
			t.Fatalf("scheme %s disagrees with NWC", scheme)
		}
	}
}

func TestNWCEndpointNotFound(t *testing.T) {
	_, ts := testServer(t)
	var out nwcResponse
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=0.001&w=0.001&n=5", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Found || out.Group != nil {
		t.Error("impossible query reported found")
	}
}

func TestKNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Groups []struct {
			Dist    float64 `json:"dist"`
			Objects []struct {
				ID uint64 `json:"id"`
			} `json:"objects"`
		} `json:"groups"`
	}
	code := getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=4&k=3&m=1&measure=avg", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Groups) != 3 {
		t.Fatalf("%d groups", len(out.Groups))
	}
	for i := 1; i < len(out.Groups); i++ {
		if out.Groups[i].Dist < out.Groups[i-1].Dist {
			t.Error("groups out of order")
		}
	}
}

func TestNearestEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out []struct {
		X, Y float64
		ID   uint64 `json:"id"`
	}
	code := getJSON(t, ts.URL+"/nearest?x=500&y=500&k=7", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 7 {
		t.Fatalf("%d neighbours", len(out))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []string{
		"/nwc",                                  // missing everything
		"/nwc?x=1&y=2&l=10&w=10",                // missing n
		"/nwc?x=abc&y=2&l=10&w=10&n=3",          // bad number
		"/nwc?x=1&y=2&l=10&w=10&n=0",            // invalid n
		"/nwc?x=1&y=2&l=10&w=10&n=3&scheme=zzz", // bad scheme
		"/nwc?x=1&y=2&l=10&w=10&n=3&measure=zz", // bad measure
		"/knwc?x=1&y=2&l=10&w=10&n=3",           // missing k
		"/knwc?x=1&y=2&l=10&w=10&n=3&k=2&m=-1",  // bad m
		"/nearest?x=1&y=2",                      // missing k
	}
	for _, c := range cases {
		var out struct {
			Error string `json:"error"`
		}
		code := getJSON(t, ts.URL+c, &out)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c, code)
		}
		if out.Error == "" {
			t.Errorf("%s: no error message", c)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	// Generate some traffic first.
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/nwc?bad=1", &struct{ Error string }{})

	var stats map[string]any
	code := getJSON(t, ts.URL+"/stats", &stats)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["points"].(float64) != 3000 {
		t.Errorf("points = %v", stats["points"])
	}
	if stats["requests_served"].(float64) < 1 {
		t.Errorf("served = %v", stats["requests_served"])
	}
	if stats["requests_failed"].(float64) < 1 {
		t.Errorf("failed = %v", stats["requests_failed"])
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// Traffic: two good queries, one bad request.
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})
	getJSON(t, ts.URL+"/nwc?x=1&y=2&l=10&w=10&n=0", &struct{ Error string }{})

	var out struct {
		Index struct {
			Queries map[string]struct {
				Count        uint64  `json:"count"`
				Errors       uint64  `json:"errors"`
				LatencyP95Ms float64 `json:"latency_p95_ms"`
				VisitsP50    float64 `json:"node_visits_p50"`
			} `json:"queries"`
			SchemeCounts         map[string]uint64 `json:"scheme_counts"`
			CumulativeNodeVisits uint64            `json:"cumulative_node_visits"`
		} `json:"index"`
		Endpoints map[string]struct {
			Requests uint64 `json:"requests"`
			Failures uint64 `json:"failures"`
		} `json:"endpoints"`
	}
	code := getJSON(t, ts.URL+"/metrics", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	nwc := out.Index.Queries["nwc"]
	if nwc.Count != 2 || nwc.Errors != 1 {
		t.Errorf("index nwc count/errors = %d/%d, want 2/1", nwc.Count, nwc.Errors)
	}
	if nwc.VisitsP50 <= 0 {
		t.Errorf("node visit p50 = %g", nwc.VisitsP50)
	}
	if out.Index.Queries["knwc"].Count != 1 {
		t.Errorf("knwc count = %d", out.Index.Queries["knwc"].Count)
	}
	if out.Index.SchemeCounts["NWC*"] == 0 {
		t.Errorf("scheme counts = %v", out.Index.SchemeCounts)
	}
	if out.Index.CumulativeNodeVisits == 0 {
		t.Error("cumulative node visits = 0")
	}
	ep := out.Endpoints["nwc"]
	if ep.Requests != 2 || ep.Failures != 1 {
		t.Errorf("endpoint nwc requests/failures = %d/%d, want 2/1", ep.Requests, ep.Failures)
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				url := fmt.Sprintf("%s/nwc?x=%d&y=%d&l=60&w=60&n=4", ts.URL, (g*113+i*37)%1000, (g*59+i*211)%1000)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("bad scheme accepted")
	}
	if s, err := ParseScheme("nwc+"); err != nil || s != nwcq.SchemeNWCPlus {
		t.Error("case-insensitive scheme parse failed")
	}
	if _, err := ParseMeasure("nope"); err == nil {
		t.Error("bad measure accepted")
	}
	if m, err := ParseMeasure("WINDOW"); err != nil || m != nwcq.WindowDistance {
		t.Error("case-insensitive measure parse failed")
	}
}
