package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nwcq"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]nwcq.Point, 3000)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	idx, err := nwcq.Build(pts, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx, idx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" && resp.StatusCode == 200 {
		t.Fatalf("content type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

type nwcResponse struct {
	Found bool `json:"found"`
	Group *struct {
		Objects []struct {
			X  float64 `json:"x"`
			Y  float64 `json:"y"`
			ID uint64  `json:"id"`
		} `json:"objects"`
		Dist   float64 `json:"dist"`
		Window struct {
			MinX float64 `json:"min_x"`
			MaxX float64 `json:"max_x"`
		} `json:"window"`
	} `json:"group"`
	Stats struct {
		NodeVisits uint64 `json:"node_visits"`
	} `json:"stats"`
}

func TestNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out nwcResponse
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=100&w=100&n=5", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !out.Found || out.Group == nil {
		t.Fatal("no result on dense data")
	}
	if len(out.Group.Objects) != 5 {
		t.Fatalf("%d objects", len(out.Group.Objects))
	}
	if out.Group.Window.MaxX-out.Group.Window.MinX > 100+1e-9 {
		t.Error("window too wide")
	}
	if out.Stats.NodeVisits == 0 {
		t.Error("no I/O reported")
	}
}

func TestNWCEndpointSchemesAgree(t *testing.T) {
	_, ts := testServer(t)
	var base nwcResponse
	getJSON(t, ts.URL+"/nwc?x=300&y=700&l=80&w=80&n=4&scheme=NWC", &base)
	for _, scheme := range []string{"SRR", "DIP", "DEP", "IWP", "NWC%2B", "NWC*"} {
		var out nwcResponse
		code := getJSON(t, ts.URL+"/nwc?x=300&y=700&l=80&w=80&n=4&scheme="+scheme, &out)
		if code != 200 {
			t.Fatalf("scheme %s: status %d", scheme, code)
		}
		if out.Found != base.Found || (out.Found && out.Group.Dist != base.Group.Dist) {
			t.Fatalf("scheme %s disagrees with NWC", scheme)
		}
	}
}

func TestNWCEndpointNotFound(t *testing.T) {
	_, ts := testServer(t)
	var out nwcResponse
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=0.001&w=0.001&n=5", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Found || out.Group != nil {
		t.Error("impossible query reported found")
	}
}

func TestKNWCEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Groups []struct {
			Dist    float64 `json:"dist"`
			Objects []struct {
				ID uint64 `json:"id"`
			} `json:"objects"`
		} `json:"groups"`
	}
	code := getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=4&k=3&m=1&measure=avg", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Groups) != 3 {
		t.Fatalf("%d groups", len(out.Groups))
	}
	for i := 1; i < len(out.Groups); i++ {
		if out.Groups[i].Dist < out.Groups[i-1].Dist {
			t.Error("groups out of order")
		}
	}
}

func TestNearestEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out []struct {
		X, Y float64
		ID   uint64 `json:"id"`
	}
	code := getJSON(t, ts.URL+"/nearest?x=500&y=500&k=7", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 7 {
		t.Fatalf("%d neighbours", len(out))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []string{
		"/nwc",                                  // missing everything
		"/nwc?x=1&y=2&l=10&w=10",                // missing n
		"/nwc?x=abc&y=2&l=10&w=10&n=3",          // bad number
		"/nwc?x=1&y=2&l=10&w=10&n=0",            // invalid n
		"/nwc?x=1&y=2&l=10&w=10&n=3&scheme=zzz", // bad scheme
		"/nwc?x=1&y=2&l=10&w=10&n=3&measure=zz", // bad measure
		"/knwc?x=1&y=2&l=10&w=10&n=3",           // missing k
		"/knwc?x=1&y=2&l=10&w=10&n=3&k=2&m=-1",  // bad m
		"/nearest?x=1&y=2",                      // missing k
	}
	for _, c := range cases {
		var out struct {
			Error string `json:"error"`
		}
		code := getJSON(t, ts.URL+c, &out)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c, code)
		}
		if out.Error == "" {
			t.Errorf("%s: no error message", c)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	// Generate some traffic first.
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/nwc?bad=1", &struct{ Error string }{})

	var stats map[string]any
	code := getJSON(t, ts.URL+"/stats", &stats)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["points"].(float64) != 3000 {
		t.Errorf("points = %v", stats["points"])
	}
	if stats["requests_served"].(float64) < 1 {
		t.Errorf("served = %v", stats["requests_served"])
	}
	if stats["requests_failed"].(float64) < 1 {
		t.Errorf("failed = %v", stats["requests_failed"])
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// Traffic: two good queries, one bad request.
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})
	getJSON(t, ts.URL+"/nwc?x=1&y=2&l=10&w=10&n=0", &struct{ Error string }{})

	var out struct {
		Index struct {
			Queries map[string]struct {
				Count        uint64  `json:"count"`
				Errors       uint64  `json:"errors"`
				LatencyP95Ms float64 `json:"latency_p95_ms"`
				VisitsP50    float64 `json:"node_visits_p50"`
			} `json:"queries"`
			SchemeCounts         map[string]uint64 `json:"scheme_counts"`
			CumulativeNodeVisits uint64            `json:"cumulative_node_visits"`
		} `json:"index"`
		Endpoints map[string]struct {
			Requests uint64 `json:"requests"`
			Failures uint64 `json:"failures"`
		} `json:"endpoints"`
	}
	code := getJSON(t, ts.URL+"/metrics", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	nwc := out.Index.Queries["nwc"]
	if nwc.Count != 2 || nwc.Errors != 1 {
		t.Errorf("index nwc count/errors = %d/%d, want 2/1", nwc.Count, nwc.Errors)
	}
	if nwc.VisitsP50 <= 0 {
		t.Errorf("node visit p50 = %g", nwc.VisitsP50)
	}
	if out.Index.Queries["knwc"].Count != 1 {
		t.Errorf("knwc count = %d", out.Index.Queries["knwc"].Count)
	}
	if out.Index.SchemeCounts["NWC*"] == 0 {
		t.Errorf("scheme counts = %v", out.Index.SchemeCounts)
	}
	if out.Index.CumulativeNodeVisits == 0 {
		t.Error("cumulative node visits = 0")
	}
	ep := out.Endpoints["nwc"]
	if ep.Requests != 2 || ep.Failures != 1 {
		t.Errorf("endpoint nwc requests/failures = %d/%d, want 2/1", ep.Requests, ep.Failures)
	}
}

func TestExplainParam(t *testing.T) {
	_, ts := testServer(t)
	type traced struct {
		nwcResponse
		Trace *struct {
			Kind       string `json:"kind"`
			Scheme     string `json:"scheme"`
			NodeVisits uint64 `json:"node_visits"`
			DurationNs int64  `json:"duration_ns"`
			Phases     []struct {
				Phase      string `json:"phase"`
				NodeVisits uint64 `json:"node_visits"`
			} `json:"phases"`
		} `json:"trace"`
	}
	var plain traced
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=100&w=100&n=5", &plain)
	if plain.Trace != nil {
		t.Error("trace present without explain=1")
	}
	var out traced
	code := getJSON(t, ts.URL+"/nwc?x=500&y=500&l=100&w=100&n=5&explain=1", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !out.Found {
		t.Fatal("no result")
	}
	if out.Trace == nil {
		t.Fatal("explain=1 returned no trace")
	}
	if out.Trace.Kind != "nwc" || out.Trace.Scheme == "" {
		t.Errorf("trace kind/scheme = %q/%q", out.Trace.Kind, out.Trace.Scheme)
	}
	if out.Trace.NodeVisits != out.Stats.NodeVisits {
		t.Errorf("trace visits %d != stats visits %d", out.Trace.NodeVisits, out.Stats.NodeVisits)
	}
	var sum uint64
	for _, p := range out.Trace.Phases {
		sum += p.NodeVisits
	}
	if sum != out.Stats.NodeVisits {
		t.Errorf("phase visit sum %d != stats visits %d", sum, out.Stats.NodeVisits)
	}
	if out.Trace.DurationNs <= 0 {
		t.Errorf("duration_ns = %d", out.Trace.DurationNs)
	}

	var kout traced
	code = getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=4&k=2&m=1&explain=true", &kout)
	if code != 200 {
		t.Fatalf("knwc status %d", code)
	}
	if kout.Trace == nil || kout.Trace.Kind != "knwc" {
		t.Fatalf("knwc trace = %+v", kout.Trace)
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	s, ts := testServer(t)
	s.idx.(nwcq.SlowLogger).SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})

	var out struct {
		ThresholdNs int64 `json:"threshold_ns"`
		Entries     []struct {
			Kind       string  `json:"kind"`
			Scheme     string  `json:"scheme"`
			X          float64 `json:"x"`
			DurationNs int64   `json:"duration_ns"`
			NodeVisits uint64  `json:"node_visits"`
		} `json:"entries"`
	}
	code := getJSON(t, ts.URL+"/debug/slowlog", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.ThresholdNs != 1 {
		t.Errorf("threshold_ns = %d", out.ThresholdNs)
	}
	if len(out.Entries) != 2 {
		t.Fatalf("%d slow entries, want 2", len(out.Entries))
	}
	kinds := map[string]bool{}
	for _, e := range out.Entries {
		kinds[e.Kind] = true
		if e.DurationNs <= 0 || e.NodeVisits == 0 {
			t.Errorf("entry %+v lacks duration/visits", e)
		}
		if e.X != 500 {
			t.Errorf("entry x = %g", e.X)
		}
	}
	if !kinds["nwc"] || !kinds["knwc"] {
		t.Errorf("kinds = %v", kinds)
	}
}

// promLine matches a Prometheus 0.0.4 sample line:
// metric_name{label="v",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? \S+$`)

// scrapeProm fetches /metrics?format=prometheus, validates every line
// of the exposition, and returns sample values keyed by full series
// name plus the declared TYPE per family.
func scrapeProm(t *testing.T, baseURL string) (values map[string]float64, typed map[string]string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	values = map[string]float64{}
	typed = map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return values, typed
}

// checkPromHistogram asserts the histogram invariants for one labelled
// series — buckets cumulative, +Inf bucket equal to the _count sample —
// and returns the observation count.
func checkPromHistogram(t *testing.T, values map[string]float64, family, labels string) float64 {
	t.Helper()
	inf := -1.0
	type bkt struct{ le, v float64 }
	var buckets []bkt
	for name, v := range values {
		if !strings.HasPrefix(name, family+"_bucket{"+labels) {
			continue
		}
		le := name[strings.Index(name, `le="`)+4:]
		le = le[:strings.IndexByte(le, '"')]
		if le == "+Inf" {
			inf = v
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", le, err)
		}
		buckets = append(buckets, bkt{f, v})
	}
	if len(buckets) == 0 {
		t.Errorf("%s{%s}: no buckets in exposition", family, labels)
		return 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].v < buckets[i-1].v {
			t.Errorf("%s{%s} bucket le=%g count %g < previous %g: not cumulative",
				family, labels, buckets[i].le, buckets[i].v, buckets[i-1].v)
		}
	}
	count := values[family+"_count{"+labels+"}"]
	if inf != count {
		t.Errorf("%s{%s}: +Inf bucket %g != count %g", family, labels, inf, count)
	}
	return count
}

// checkBuildInfo pins the nwcq_build_info gauge: a gauge family with
// exactly one series, constant value 1, identity in labels.
func checkBuildInfo(t *testing.T, values map[string]float64, typed map[string]string) {
	t.Helper()
	if typed["nwcq_build_info"] != "gauge" {
		t.Errorf("nwcq_build_info type = %q, want gauge", typed["nwcq_build_info"])
	}
	series := 0
	for name, v := range values {
		if !strings.HasPrefix(name, "nwcq_build_info{") {
			continue
		}
		series++
		if v != 1 {
			t.Errorf("%s = %g, want constant 1", name, v)
		}
		if !strings.Contains(name, `go_version="go`) || !strings.Contains(name, `version="`) {
			t.Errorf("build info labels incomplete: %s", name)
		}
	}
	if series != 1 {
		t.Errorf("nwcq_build_info series = %d, want 1", series)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := testServer(t)
	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=50&w=50&n=3", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2", &struct{}{})

	values, typed := scrapeProm(t, ts.URL)

	if v := values[`nwcq_queries_total{kind="nwc"}`]; v != 1 {
		t.Errorf("nwcq_queries_total{kind=nwc} = %g, want 1", v)
	}
	if v := values[`nwcq_index_points`]; v != 3000 {
		t.Errorf("nwcq_index_points = %g", v)
	}
	if typed["nwcq_query_latency_seconds"] != "histogram" {
		t.Errorf("latency family type = %q", typed["nwcq_query_latency_seconds"])
	}
	if count := checkPromHistogram(t, values, "nwcq_query_latency_seconds", `kind="nwc"`); count != 1 {
		t.Errorf("latency count = %g, want 1", count)
	}
	if values[`nwcq_http_requests_total{endpoint="nwc"}`] != 1 {
		t.Errorf("http requests for nwc = %g", values[`nwcq_http_requests_total{endpoint="nwc"}`])
	}
	checkBuildInfo(t, values, typed)
}

func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				url := fmt.Sprintf("%s/nwc?x=%d&y=%d&l=60&w=60&n=4", ts.URL, (g*113+i*37)%1000, (g*59+i*211)%1000)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("bad scheme accepted")
	}
	if s, err := ParseScheme("nwc+"); err != nil || s != nwcq.SchemeNWCPlus {
		t.Error("case-insensitive scheme parse failed")
	}
	if _, err := ParseMeasure("nope"); err == nil {
		t.Error("bad measure accepted")
	}
	if m, err := ParseMeasure("WINDOW"); err != nil || m != nwcq.WindowDistance {
		t.Error("case-insensitive measure parse failed")
	}
}

// postJSON posts body as JSON and decodes the response into out.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestInsertDeleteEndpoints round-trips a point through POST /insert and
// POST /delete while GET /nwc traffic is continuously in flight, per the
// concurrency contract: mutations and queries need no external locking.
func TestInsertDeleteEndpoints(t *testing.T) {
	_, ts := testServer(t)

	// Background query load for the duration of the test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	queryErrs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				x := float64(100 + (g*37+i*13)%800)
				y := float64(100 + (g*53+i*29)%800)
				resp, err := http.Get(fmt.Sprintf("%s/nwc?x=%g&y=%g&l=60&w=60&n=3", ts.URL, x, y))
				if err != nil {
					queryErrs <- err
					return
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code != http.StatusOK {
					queryErrs <- fmt.Errorf("GET /nwc status %d", code)
					return
				}
			}
		}(g)
	}

	var ins struct {
		Inserted bool `json:"inserted"`
		Points   int  `json:"points"`
	}
	var del struct {
		Deleted bool `json:"deleted"`
		Points  int  `json:"points"`
	}
	for i := 0; i < 30; i++ {
		id := 1_000_000 + uint64(i)
		body := fmt.Sprintf(`{"x": %g, "y": %g, "id": %d}`, 400+float64(i), 400.5, id)
		if code := postJSON(t, ts.URL+"/insert", body, &ins); code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
		if !ins.Inserted {
			t.Fatalf("insert %d: inserted=false", i)
		}
		if i%2 == 0 {
			if code := postJSON(t, ts.URL+"/delete", body, &del); code != http.StatusOK {
				t.Fatalf("delete %d: status %d", i, code)
			}
			if !del.Deleted {
				t.Fatalf("delete %d: deleted=false", i)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-queryErrs:
		t.Fatal(err)
	default:
	}

	// 30 inserted, 15 deleted: net +15 over the seed 3000.
	if ins.Points < 3000 || del.Points < 3000 {
		t.Errorf("point counts went below seed: insert=%d delete=%d", ins.Points, del.Points)
	}
	var stats struct {
		Points int `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Points != 3015 {
		t.Errorf("points = %d, want 3015", stats.Points)
	}

	// A surviving inserted point must be visible to queries.
	var out nwcResponse
	if code := getJSON(t, ts.URL+"/nwc?x=401&y=400.5&l=2&w=2&n=1", &out); code != http.StatusOK {
		t.Fatalf("nwc status %d", code)
	}
	if !out.Found {
		t.Error("inserted point not found by /nwc")
	}

	// Error paths.
	var errOut struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/insert", `{"x": "oops"}`, &errOut); code != http.StatusBadRequest {
		t.Errorf("malformed insert body: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/delete", `{"x": 1, "y": 2, "id": 99999999}`, &errOut); code != http.StatusNotFound {
		t.Errorf("delete of absent point: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/insert", `{"x": 1e999, "y": 0, "id": 1}`, &errOut); code != http.StatusBadRequest {
		t.Errorf("non-finite insert: status %d, want 400", code)
	}
}
