// Package server exposes an nwcq index as a JSON-over-HTTP
// location-based service — the deployment shape the paper's motivating
// scenario implies (Section 1: a service suggesting the nearest cluster
// of shops back to the user).
//
// Endpoints:
//
//	GET /nwc?x=&y=&l=&w=&n=[&scheme=][&measure=]         one group
//	GET /knwc?x=&y=&l=&w=&n=&k=[&m=][&scheme=][&measure=] k groups
//	GET /nearest?x=&y=&k=                                  plain k-NN
//	GET /stats                                             index + I/O counters
//	GET /healthz                                           liveness
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"nwcq"
)

// Server handles queries against one index. It is safe for concurrent
// use: the underlying index is static and reads are lock-free; only the
// served-request counters take a mutex.
type Server struct {
	idx *nwcq.Index

	mu     sync.Mutex
	served uint64
	failed uint64
}

// New wraps an index.
func New(idx *nwcq.Index) *Server {
	return &Server{idx: idx}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /nwc", s.handleNWC)
	mux.HandleFunc("GET /knwc", s.handleKNWC)
	mux.HandleFunc("GET /nearest", s.handleNearest)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// pointJSON mirrors nwcq.Point for stable JSON field names.
type pointJSON struct {
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	ID uint64  `json:"id"`
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type groupJSON struct {
	Objects []pointJSON `json:"objects"`
	Dist    float64     `json:"dist"`
	Window  rectJSON    `json:"window"`
}

type statsJSON struct {
	NodeVisits       uint64 `json:"node_visits"`
	ObjectsProcessed int    `json:"objects_processed"`
	ObjectsSkipped   int    `json:"objects_skipped"`
	NodesPruned      int    `json:"nodes_pruned"`
	WindowQueries    int    `json:"window_queries"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func toGroupJSON(g nwcq.Group) groupJSON {
	out := groupJSON{
		Dist: g.Dist,
		Window: rectJSON{
			MinX: g.Window.MinX, MinY: g.Window.MinY,
			MaxX: g.Window.MaxX, MaxY: g.Window.MaxY,
		},
	}
	for _, o := range g.Objects {
		out.Objects = append(out.Objects, pointJSON{X: o.X, Y: o.Y, ID: o.ID})
	}
	return out
}

func toStatsJSON(st nwcq.Stats) statsJSON {
	return statsJSON{
		NodeVisits:       st.NodeVisits,
		ObjectsProcessed: st.ObjectsProcessed,
		ObjectsSkipped:   st.ObjectsSkipped,
		NodesPruned:      st.NodesPruned,
		WindowQueries:    st.WindowQueries,
	}
}

// queryFromRequest parses the shared NWC parameters.
func queryFromRequest(r *http.Request) (nwcq.Query, error) {
	var q nwcq.Query
	var err error
	get := func(name string) (float64, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return 0, fmt.Errorf("missing parameter %q", name)
		}
		return strconv.ParseFloat(v, 64)
	}
	if q.X, err = get("x"); err != nil {
		return q, err
	}
	if q.Y, err = get("y"); err != nil {
		return q, err
	}
	if q.Length, err = get("l"); err != nil {
		return q, err
	}
	if q.Width, err = get("w"); err != nil {
		return q, err
	}
	n, err := get("n")
	if err != nil {
		return q, err
	}
	q.N = int(n)
	if sv := r.URL.Query().Get("scheme"); sv != "" {
		scheme, err := ParseScheme(sv)
		if err != nil {
			return q, err
		}
		q.Scheme = &scheme
	}
	if mv := r.URL.Query().Get("measure"); mv != "" {
		measure, err := ParseMeasure(mv)
		if err != nil {
			return q, err
		}
		q.Measure = measure
	}
	return q, nil
}

// ParseScheme maps the paper's scheme names onto Scheme values.
func ParseScheme(s string) (nwcq.Scheme, error) {
	switch strings.ToUpper(s) {
	case "NWC":
		return nwcq.SchemeNWC, nil
	case "SRR":
		return nwcq.SchemeSRR, nil
	case "DIP":
		return nwcq.SchemeDIP, nil
	case "DEP":
		return nwcq.SchemeDEP, nil
	case "IWP":
		return nwcq.SchemeIWP, nil
	case "NWC+":
		return nwcq.SchemeNWCPlus, nil
	case "NWC*":
		return nwcq.SchemeNWCStar, nil
	default:
		return nwcq.Scheme{}, fmt.Errorf("unknown scheme %q", s)
	}
}

// ParseMeasure maps measure names onto Measure values.
func ParseMeasure(s string) (nwcq.Measure, error) {
	switch strings.ToLower(s) {
	case "max":
		return nwcq.MaxDistance, nil
	case "min":
		return nwcq.MinDistance, nil
	case "avg":
		return nwcq.AvgDistance, nil
	case "window":
		return nwcq.WindowDistance, nil
	default:
		return 0, fmt.Errorf("unknown measure %q", s)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorJSON{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, payload any) {
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

func (s *Server) handleNWC(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.idx.NWC(q)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	type response struct {
		Found bool       `json:"found"`
		Group *groupJSON `json:"group,omitempty"`
		Stats statsJSON  `json:"stats"`
	}
	out := response{Found: res.Found, Stats: toStatsJSON(res.Stats)}
	if res.Found {
		g := toGroupJSON(res.Group)
		out.Group = &g
	}
	s.ok(w, out)
}

func (s *Server) handleKNWC(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	kv := r.URL.Query().Get("k")
	if kv == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing parameter %q", "k"))
		return
	}
	k, err := strconv.Atoi(kv)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	m := 0
	if mv := r.URL.Query().Get("m"); mv != "" {
		if m, err = strconv.Atoi(mv); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	groups, st, err := s.idx.KNWC(nwcq.KQuery{Query: q, K: k, M: m})
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	type response struct {
		Groups []groupJSON `json:"groups"`
		Stats  statsJSON   `json:"stats"`
	}
	out := response{Groups: make([]groupJSON, 0, len(groups)), Stats: toStatsJSON(st)}
	for _, g := range groups {
		out.Groups = append(out.Groups, toGroupJSON(g))
	}
	s.ok(w, out)
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	x, err1 := strconv.ParseFloat(vals.Get("x"), 64)
	y, err2 := strconv.ParseFloat(vals.Get("y"), 64)
	k, err3 := strconv.Atoi(vals.Get("k"))
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("nearest needs numeric x, y, k: %v", err))
			return
		}
	}
	pts, err := s.idx.Nearest(x, y, k)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	out := make([]pointJSON, 0, len(pts))
	for _, p := range pts {
		out = append(out, pointJSON{X: p.X, Y: p.Y, ID: p.ID})
	}
	s.ok(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	gridB, iwpB := s.idx.StorageOverheadBytes()
	s.mu.Lock()
	served, failed := s.served, s.failed
	s.mu.Unlock()
	s.ok(w, map[string]any{
		"points":          s.idx.Len(),
		"tree_height":     s.idx.TreeHeight(),
		"node_visits":     s.idx.IOStats(),
		"grid_bytes":      gridB,
		"iwp_bytes":       iwpB,
		"requests_served": served,
		"requests_failed": failed,
	})
}
