// Package server exposes an nwcq index as a JSON-over-HTTP
// location-based service — the deployment shape the paper's motivating
// scenario implies (Section 1: a service suggesting the nearest cluster
// of shops back to the user).
//
// Endpoints:
//
//	GET  /nwc?x=&y=&l=&w=&n=[&scheme=][&measure=][&explain=1][&as_of_lsn=] one group
//	GET  /knwc?x=&y=&l=&w=&n=&k=[&m=][&scheme=][&measure=][&explain=1][&as_of_lsn=] k groups
//	GET  /nearest?x=&y=&k=                                 plain k-NN
//	POST /insert {"x":,"y":,"id":}                         add one point
//	POST /delete {"x":,"y":,"id":}                         remove one point
//	POST /batch/nwc {"queries":[...]}                      many NWC in one call
//	POST /batch/knwc {"queries":[...]}                     many kNWC in one call
//	GET  /subscribe?x=&y=&l=&w=&n=[&last_event_id=]        standing NWC query (SSE)
//	GET  /stats                                            index + I/O counters
//	GET  /metrics[?format=prometheus]                      latency/I-O histograms
//	GET  /debug/slowlog                                    slow-query ring
//	GET  /healthz                                          liveness
//	GET  /readyz                                           readiness (503 until the backend opened)
//
// Query handlers run under the request's context, so a client that
// disconnects (or a server read timeout) cancels the index traversal
// mid-flight. Request accounting is lock-free: per-endpoint counters
// and latency histograms are atomic, so instrumentation adds no
// contention between concurrent requests.
//
// Mutations may run concurrently with queries: the index publishes
// immutable views atomically, so every in-flight GET observes one
// consistent version and POST /insert / POST /delete never block reads.
// When the server wraps a paged index (nwcserve -index), a mutation is
// additionally written ahead to the index's log before the 200 is sent,
// so an acknowledged insert or delete survives a crash.
//
// GET /subscribe holds the connection open and streams the standing
// query's answer as Server-Sent Events — one full answer per frame,
// stamped with the WAL LSN that produced it — with Last-Event-ID
// resume. When the index retains superseded views (-retain-views),
// as_of_lsn= on /nwc and /knwc answers the query as of that LSN (410
// once the view has aged out).
//
// Passing explain=1 to /nwc or /knwc runs the query with per-query
// structured tracing enabled and attaches the phase-by-phase trace to
// the response; /metrics?format=prometheus renders the same metrics in
// the Prometheus text exposition format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nwcq"
	"nwcq/internal/metrics"
	"nwcq/internal/repl"
)

// endpointStats aggregates one route's request count, failure count and
// latency distribution with atomics only.
type endpointStats struct {
	requests metrics.Counter
	failures metrics.Counter
	latency  *metrics.Histogram // seconds
}

func newEndpointStats() *endpointStats {
	return &endpointStats{
		// 10µs .. ~80s in ×2 steps.
		latency: metrics.MustHistogram(metrics.ExponentialBounds(1e-5, 2, 23)),
	}
}

// Server handles queries and mutations against one index. It is safe
// for concurrent use: reads run lock-free against atomically published
// index views, mutations serialise inside the index, and all request
// accounting is atomic.
type Server struct {
	idx nwcq.Querier
	mut nwcq.Mutator

	served metrics.Counter
	failed metrics.Counter
	// endpoints is built once in New and read-only afterwards.
	endpoints map[string]*endpointStats

	// health gates /readyz (WithHealth); nil means always ready.
	health *Health
	// qlog is the sampled wide-event query log (WithQueryLog); nil means
	// off.
	qlog *queryLog
	// replica reports follower status (WithReplica); nil on leaders and
	// standalone servers.
	replica func() repl.Status

	// closing is closed by Close: the long-lived streaming handlers
	// (GET /wal/stream, GET /subscribe) select on it so a graceful
	// shutdown terminates them promptly instead of waiting out their
	// clients.
	closing   chan struct{}
	closeOnce sync.Once
}

// New wraps a query backend and an optional mutation backend. Any
// nwcq.Querier works: a single *nwcq.Index (in-memory or paged) or a
// shard.Sharded router — the handlers are backend-agnostic. A nil
// Mutator makes the deployment read-only: POST /insert and /delete
// answer 501. Backends that also implement nwcq.Introspector and
// nwcq.SlowLogger unlock /stats and /debug/slowlog; others get 501
// there too. Options attach the readiness gate (WithHealth) and the
// sampled wide-event query log (WithQueryLog).
func New(q nwcq.Querier, m nwcq.Mutator, opts ...Option) *Server {
	s := &Server{idx: q, mut: m, endpoints: make(map[string]*endpointStats), closing: make(chan struct{})}
	for _, name := range []string{"nwc", "knwc", "nearest", "insert", "delete", "stats", "metrics", "slowlog", "batch_nwc", "batch_knwc", "wal_stream", "subscribe"} {
		s.endpoints[name] = newEndpointStats()
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /nwc", s.instrument("nwc", s.handleNWC))
	mux.HandleFunc("GET /knwc", s.instrument("knwc", s.handleKNWC))
	mux.HandleFunc("GET /nearest", s.instrument("nearest", s.handleNearest))
	mux.HandleFunc("POST /insert", s.instrument("insert", s.handleInsert))
	mux.HandleFunc("POST /delete", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/slowlog", s.instrument("slowlog", s.handleSlowlog))
	mux.HandleFunc("POST /batch/nwc", s.instrument("batch_nwc", s.handleBatchNWC))
	mux.HandleFunc("POST /batch/knwc", s.instrument("batch_knwc", s.handleBatchKNWC))
	mux.HandleFunc("GET /wal/stream", s.instrument("wal_stream", s.handleWALStream))
	mux.HandleFunc("GET /subscribe", s.instrument("subscribe", s.handleSubscribe))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.health != nil && !s.health.Ready() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		if s.replica != nil {
			if st := s.replica(); !st.Ready {
				http.Error(w, fmt.Sprintf(
					"replica lagging: replica_lsn=%d leader_committed_lsn=%d lag_seconds=%.1f diverged=%t",
					st.ReplicaLSN, st.LeaderCommittedLSN, st.LagSeconds, st.Diverged),
					http.StatusServiceUnavailable)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Close signals the long-lived streaming handlers (GET /wal/stream,
// GET /subscribe) to end their responses. Call it before (or alongside)
// http.Server.Shutdown: Shutdown waits for active handlers, and a
// streaming handler never finishes on its own. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closing) })
	return nil
}

// instrument wraps a handler with per-endpoint timing and counting. The
// StatusWriter wrapper preserves http.Flusher for the streaming
// endpoints (statuswriter.go).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := NewStatusWriter(w)
		h(sw, r)
		ep.requests.Inc()
		ep.latency.Observe(time.Since(start).Seconds())
		if sw.Status() >= 400 {
			ep.failures.Inc()
			s.failed.Inc()
		} else {
			s.served.Inc()
		}
	}
}

// pointJSON mirrors nwcq.Point for stable JSON field names.
type pointJSON struct {
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	ID uint64  `json:"id"`
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type groupJSON struct {
	Objects []pointJSON `json:"objects"`
	Dist    float64     `json:"dist"`
	Window  rectJSON    `json:"window"`
}

type statsJSON struct {
	NodeVisits       uint64 `json:"node_visits"`
	ObjectsProcessed int    `json:"objects_processed"`
	ObjectsSkipped   int    `json:"objects_skipped"`
	NodesPruned      int    `json:"nodes_pruned"`
	WindowQueries    int    `json:"window_queries"`
	GridProbes       int    `json:"grid_probes"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func toGroupJSON(g nwcq.Group) groupJSON {
	out := groupJSON{
		Dist: g.Dist,
		Window: rectJSON{
			MinX: g.Window.MinX, MinY: g.Window.MinY,
			MaxX: g.Window.MaxX, MaxY: g.Window.MaxY,
		},
	}
	for _, o := range g.Objects {
		out.Objects = append(out.Objects, pointJSON{X: o.X, Y: o.Y, ID: o.ID})
	}
	return out
}

func toStatsJSON(st nwcq.Stats) statsJSON {
	return statsJSON{
		NodeVisits:       st.NodeVisits,
		ObjectsProcessed: st.ObjectsProcessed,
		ObjectsSkipped:   st.ObjectsSkipped,
		NodesPruned:      st.NodesPruned,
		WindowQueries:    st.WindowQueries,
		GridProbes:       st.GridProbes,
	}
}

// queryFromRequest parses the shared NWC parameters.
func queryFromRequest(r *http.Request) (nwcq.Query, error) {
	var q nwcq.Query
	var err error
	get := func(name string) (float64, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return 0, fmt.Errorf("missing parameter %q", name)
		}
		return strconv.ParseFloat(v, 64)
	}
	if q.X, err = get("x"); err != nil {
		return q, err
	}
	if q.Y, err = get("y"); err != nil {
		return q, err
	}
	if q.Length, err = get("l"); err != nil {
		return q, err
	}
	if q.Width, err = get("w"); err != nil {
		return q, err
	}
	n, err := get("n")
	if err != nil {
		return q, err
	}
	q.N = int(n)
	if sv := r.URL.Query().Get("scheme"); sv != "" {
		scheme, err := ParseScheme(sv)
		if err != nil {
			return q, err
		}
		q.Scheme = scheme
	}
	if mv := r.URL.Query().Get("measure"); mv != "" {
		measure, err := ParseMeasure(mv)
		if err != nil {
			return q, err
		}
		q.Measure = measure
	}
	return q, nil
}

// ParseScheme maps the paper's scheme names onto Scheme values.
func ParseScheme(s string) (nwcq.Scheme, error) {
	switch strings.ToUpper(s) {
	case "NWC":
		return nwcq.SchemeNWC, nil
	case "SRR":
		return nwcq.SchemeSRR, nil
	case "DIP":
		return nwcq.SchemeDIP, nil
	case "DEP":
		return nwcq.SchemeDEP, nil
	case "IWP":
		return nwcq.SchemeIWP, nil
	case "NWC+":
		return nwcq.SchemeNWCPlus, nil
	case "NWC*":
		return nwcq.SchemeNWCStar, nil
	default:
		return nwcq.Scheme{}, fmt.Errorf("unknown scheme %q", s)
	}
}

// ParseMeasure maps measure names onto Measure values.
func ParseMeasure(s string) (nwcq.Measure, error) {
	switch strings.ToLower(s) {
	case "max":
		return nwcq.MaxDistance, nil
	case "min":
		return nwcq.MinDistance, nil
	case "avg":
		return nwcq.AvgDistance, nil
	case "window":
		return nwcq.WindowDistance, nil
	default:
		return 0, fmt.Errorf("unknown measure %q", s)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorJSON{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

// wantExplain reports whether the request opted into per-query tracing.
func wantExplain(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleNWC(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	asOf, asOfSet, err := asOfFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var (
		res nwcq.Result
		qt  *nwcq.QueryTrace
	)
	ctx, ev := s.qlog.attach(r.Context())
	start := time.Now()
	switch {
	case asOfSet:
		tq, ok := s.idx.(nwcq.TemporalQuerier)
		if !ok {
			s.fail(w, http.StatusNotImplemented, errNoTemporal)
			return
		}
		res, err = tq.NWCAsOf(ctx, q, asOf)
	case wantExplain(r):
		res, qt, err = s.idx.ExplainNWC(ctx, q)
	default:
		res, err = s.idx.NWCCtx(ctx, q)
	}
	s.qlog.emit("nwc", q, 0, 0, time.Since(start), res.Found, ev, err)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type response struct {
		Found bool             `json:"found"`
		Group *groupJSON       `json:"group,omitempty"`
		Stats statsJSON        `json:"stats"`
		Trace *nwcq.QueryTrace `json:"trace,omitempty"`
	}
	out := response{Found: res.Found, Stats: toStatsJSON(res.Stats), Trace: qt}
	if res.Found {
		g := toGroupJSON(res.Group)
		out.Group = &g
	}
	s.ok(w, out)
}

func (s *Server) handleKNWC(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	kv := r.URL.Query().Get("k")
	if kv == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing parameter %q", "k"))
		return
	}
	k, err := strconv.Atoi(kv)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	m := 0
	if mv := r.URL.Query().Get("m"); mv != "" {
		if m, err = strconv.Atoi(mv); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	kq := nwcq.KQuery{Query: q, K: k, M: m}
	asOf, asOfSet, err := asOfFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var (
		res nwcq.KResult
		qt  *nwcq.QueryTrace
	)
	ctx, ev := s.qlog.attach(r.Context())
	start := time.Now()
	switch {
	case asOfSet:
		tq, ok := s.idx.(nwcq.TemporalQuerier)
		if !ok {
			s.fail(w, http.StatusNotImplemented, errNoTemporal)
			return
		}
		res, err = tq.KNWCAsOf(ctx, kq, asOf)
	case wantExplain(r):
		res, qt, err = s.idx.ExplainKNWC(ctx, kq)
	default:
		res, err = s.idx.KNWCCtx(ctx, kq)
	}
	s.qlog.emit("knwc", q, k, m, time.Since(start), res.Found, ev, err)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type response struct {
		Found  bool             `json:"found"`
		Groups []groupJSON      `json:"groups"`
		Stats  statsJSON        `json:"stats"`
		Trace  *nwcq.QueryTrace `json:"trace,omitempty"`
	}
	out := response{Found: res.Found, Groups: make([]groupJSON, 0, len(res.Groups)), Stats: toStatsJSON(res.Stats), Trace: qt}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, toGroupJSON(g))
	}
	s.ok(w, out)
}

// statusFor maps index errors onto HTTP statuses: parameter rejections
// are the client's fault, a cancelled request context is the client
// hanging up (499 by nginx convention), anything else is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, nwcq.ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, nwcq.ErrLSNNotRetained):
		// The requested version is outside the retained window: gone (or
		// not yet); retrying the same LSN will not help.
		return http.StatusGone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499: client closed request (nginx convention); the write will
		// usually go nowhere, but the accounting classifies it failed.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	x, err1 := strconv.ParseFloat(vals.Get("x"), 64)
	y, err2 := strconv.ParseFloat(vals.Get("y"), 64)
	k, err3 := strconv.Atoi(vals.Get("k"))
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("nearest needs numeric x, y, k: %v", err))
			return
		}
	}
	pts, err := s.idx.Nearest(x, y, k)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	out := make([]pointJSON, 0, len(pts))
	for _, p := range pts {
		out = append(out, pointJSON{X: p.X, Y: p.Y, ID: p.ID})
	}
	s.ok(w, out)
}

// decodePoint reads the JSON body shared by /insert and /delete. The
// body is capped well above any legitimate point payload so a
// misbehaving client cannot tie up the handler.
func decodePoint(r *http.Request) (nwcq.Point, error) {
	var p pointJSON
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nwcq.Point{}, fmt.Errorf("invalid point body: %w", err)
	}
	return nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}, nil
}

// points reports the live point count when the backend can introspect
// it, -1 otherwise (keeps the mutation responses' shape stable).
func (s *Server) points() int {
	if in, ok := s.idx.(nwcq.Introspector); ok {
		return in.Len()
	}
	return -1
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.mut == nil {
		s.fail(w, http.StatusNotImplemented, errReadOnly)
		return
	}
	p, err := decodePoint(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mut.Insert(p); err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.ok(w, map[string]any{"inserted": true, "points": s.points()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.mut == nil {
		s.fail(w, http.StatusNotImplemented, errReadOnly)
		return
	}
	p, err := decodePoint(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	found, err := s.mut.Delete(p)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	if !found {
		s.fail(w, http.StatusNotFound, fmt.Errorf("point (%g, %g, %d) not indexed", p.X, p.Y, p.ID))
		return
	}
	s.ok(w, map[string]any{"deleted": true, "points": s.points()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	in, ok := s.idx.(nwcq.Introspector)
	if !ok {
		s.fail(w, http.StatusNotImplemented, fmt.Errorf("backend does not expose index stats"))
		return
	}
	gridB, iwpB := in.StorageOverheadBytes()
	s.ok(w, map[string]any{
		"points":          in.Len(),
		"tree_height":     in.TreeHeight(),
		"node_visits":     in.IOStats(),
		"grid_bytes":      gridB,
		"iwp_bytes":       iwpB,
		"requests_served": s.served.Value(),
		"requests_failed": s.failed.Value(),
	})
}

// endpointJSON summarises one route for /metrics.
type endpointJSON struct {
	Requests     uint64  `json:"requests"`
	Failures     uint64  `json:"failures"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handleMetricsPrometheus(w)
		return
	}
	eps := make(map[string]endpointJSON, len(s.endpoints))
	for name, ep := range s.endpoints {
		lat := ep.latency.Snapshot()
		eps[name] = endpointJSON{
			Requests:     ep.requests.Value(),
			Failures:     ep.failures.Value(),
			LatencyP50Ms: lat.QuantileOr(0.50, 0) * 1e3,
			LatencyP95Ms: lat.QuantileOr(0.95, 0) * 1e3,
			LatencyP99Ms: lat.QuantileOr(0.99, 0) * 1e3,
		}
	}
	out := map[string]any{
		"index":     s.idx.Metrics(),
		"endpoints": eps,
	}
	if s.replica != nil {
		out["replica"] = s.replica()
	}
	s.ok(w, out)
}

// handleMetricsPrometheus renders the index metrics plus the server's
// per-endpoint counters in the Prometheus text exposition format.
func (s *Server) handleMetricsPrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.idx.WritePrometheus(w); err != nil {
		return // client went away mid-write; nothing sensible to do
	}
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP nwcq_http_requests_total HTTP requests served, by endpoint.\n# TYPE nwcq_http_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "nwcq_http_requests_total{endpoint=%q} %d\n", name, s.endpoints[name].requests.Value())
	}
	fmt.Fprintf(w, "# HELP nwcq_http_failures_total HTTP requests answered with status >= 400, by endpoint.\n# TYPE nwcq_http_failures_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "nwcq_http_failures_total{endpoint=%q} %d\n", name, s.endpoints[name].failures.Value())
	}
	fmt.Fprintf(w, "# HELP nwcq_http_latency_seconds HTTP request latency, by endpoint.\n# TYPE nwcq_http_latency_seconds histogram\n")
	for _, name := range names {
		snap := s.endpoints[name].latency.Snapshot()
		cum := uint64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "nwcq_http_latency_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += snap.Counts[len(snap.Counts)-1]
		fmt.Fprintf(w, "nwcq_http_latency_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "nwcq_http_latency_seconds_sum{endpoint=%q} %s\n",
			name, strconv.FormatFloat(snap.Sum, 'g', -1, 64))
		fmt.Fprintf(w, "nwcq_http_latency_seconds_count{endpoint=%q} %d\n", name, cum)
	}
	if s.replica != nil {
		s.writeReplicaPrometheus(w)
	}
}

// handleSlowlog serves the retained slow-query log entries, newest
// first, plus the configured threshold.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	sl, ok := s.idx.(nwcq.SlowLogger)
	if !ok {
		s.fail(w, http.StatusNotImplemented, fmt.Errorf("backend does not keep a slow-query log"))
		return
	}
	s.ok(w, map[string]any{
		"threshold_ns": sl.SlowQueryThreshold(),
		"entries":      sl.SlowQueries(),
	})
}

// errReadOnly is returned by the mutation endpoints when the server was
// built without a Mutator.
var errReadOnly = errors.New("server is read-only: no mutation backend configured")
