package server

import (
	"bufio"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"nwcq"
	"nwcq/internal/repl"
)

// WithReplica attaches a follower's status source. The server then
// reports the replica block on /metrics, exports follower gauges on the
// Prometheus endpoint, and gates /readyz on the replica being caught up
// within its staleness bound.
func WithReplica(status func() repl.Status) Option {
	return func(s *Server) { s.replica = status }
}

// Stream pacing: how often the handler polls the replication stream for
// newly settled records, and how often it emits a heartbeat when no
// records flow.
const (
	streamPollInterval      = 10 * time.Millisecond
	streamHeartbeatInterval = 250 * time.Millisecond
)

var errNotReplicator = errors.New("backend does not ship its WAL (need a single paged index)")

// handleWALStream serves GET /wal/stream?from=<lsn>: a chunked binary
// stream of committed WAL records from the requested LSN onward,
// interleaved with heartbeats carrying the leader's durable and
// committed positions. If the requested position was already recycled
// by a checkpoint, the stream opens with a full snapshot (at an LSN the
// WAL still covers) and continues from there. The response never ends
// on its own; the client hangs up when done.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.idx.(nwcq.Replicator)
	if !ok {
		s.fail(w, http.StatusNotImplemented, errNotReplicator)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid from LSN %q: %w", v, err))
			return
		}
		from = parsed
	}

	// Open the stream; a compacted position bootstraps via snapshot. A
	// checkpoint can race between taking the snapshot and opening the
	// reader at its LSN (the snapshot holds no lease), so retry a few
	// times — each retry's snapshot is strictly newer.
	var (
		stream       *nwcq.ReplicationStream
		snapPts      []nwcq.Point
		snapLSN      uint64
		bootstrapped bool
	)
	stream, err := rep.StreamFrom(from)
	for attempt := 0; errors.Is(err, nwcq.ErrCompacted); attempt++ {
		if attempt >= 5 {
			s.fail(w, http.StatusInternalServerError,
				errors.New("snapshot bootstrap kept racing WAL recycling"))
			return
		}
		snapPts, snapLSN, err = rep.ReplicationSnapshot()
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		bootstrapped = true
		stream, err = rep.StreamFrom(snapLSN + 1)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	defer stream.Close()

	w.Header().Set("Content-Type", "application/octet-stream")
	// Tell intermediary proxies (nginx) not to buffer the live stream.
	w.Header().Set("X-Accel-Buffering", "no")
	bw := bufio.NewWriterSize(w, 32<<10)
	pw := repl.NewWriter(bw)
	flush := func() bool {
		if bw.Flush() != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	if bootstrapped {
		if pw.Snapshot(snapLSN, len(snapPts)) != nil {
			return
		}
		for off := 0; off < len(snapPts); off += repl.SnapshotChunk {
			end := min(off+repl.SnapshotChunk, len(snapPts))
			if pw.Points(snapPts[off:end]) != nil {
				return
			}
		}
	}
	heartbeat := func() bool {
		lsns := rep.ReplicationLSNs()
		return pw.Heartbeat(lsns.Durable, lsns.Committed, time.Now()) == nil
	}
	// Leading heartbeat: the follower learns the leader's position (and
	// can detect divergence) before any record arrives.
	if !heartbeat() || !flush() {
		return
	}

	ctx := r.Context()
	poll := time.NewTicker(streamPollInterval)
	defer poll.Stop()
	beat := time.NewTicker(streamHeartbeatInterval)
	defer beat.Stop()
	for {
		progressed := false
		for {
			rec, err := stream.Next()
			if err != nil {
				// The WAL went away under us (index closing): end the
				// stream; the follower reconnects.
				return
			}
			if rec == nil {
				break
			}
			if pw.Record(rec.LSN, rec.Data) != nil {
				return
			}
			progressed = true
		}
		if progressed {
			// Piggyback the new committed position on the batch so the
			// follower's lag drops the moment it applies these records.
			if !heartbeat() || !flush() {
				return
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-s.closing:
			// Server shutdown: end the stream now so http.Server.Shutdown
			// is not held hostage by a follower that never hangs up.
			return
		case <-beat.C:
			if !heartbeat() || !flush() {
				return
			}
		case <-poll.C:
		}
	}
}

// writeReplicaPrometheus appends the follower gauges to the Prometheus
// exposition.
func (s *Server) writeReplicaPrometheus(w http.ResponseWriter) {
	st := s.replica()
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "# HELP nwcq_replica_lag_seconds Time since the replica last matched the leader's committed LSN (-1 before first catch-up).\n# TYPE nwcq_replica_lag_seconds gauge\nnwcq_replica_lag_seconds %g\n", st.LagSeconds)
	fmt.Fprintf(w, "# HELP nwcq_replica_connected Whether the WAL stream to the leader is open.\n# TYPE nwcq_replica_connected gauge\nnwcq_replica_connected %d\n", b2i(st.Connected))
	fmt.Fprintf(w, "# HELP nwcq_replica_ready Whether the replica serves within its staleness bound.\n# TYPE nwcq_replica_ready gauge\nnwcq_replica_ready %d\n", b2i(st.Ready))
	fmt.Fprintf(w, "# HELP nwcq_replica_reconnects_total Stream reconnect attempts.\n# TYPE nwcq_replica_reconnects_total counter\nnwcq_replica_reconnects_total %d\n", st.Reconnects)
	fmt.Fprintf(w, "# HELP nwcq_replica_snapshots_total Snapshot bootstraps received.\n# TYPE nwcq_replica_snapshots_total counter\nnwcq_replica_snapshots_total %d\n", st.Snapshots)
	fmt.Fprintf(w, "# HELP nwcq_replica_records_applied_total Replicated WAL records applied.\n# TYPE nwcq_replica_records_applied_total counter\nnwcq_replica_records_applied_total %d\n", st.RecordsApplied)
	fmt.Fprintf(w, "# HELP nwcq_replica_leader_durable_lsn Leader durable LSN from the last heartbeat.\n# TYPE nwcq_replica_leader_durable_lsn gauge\nnwcq_replica_leader_durable_lsn %d\n", st.LeaderDurableLSN)
	fmt.Fprintf(w, "# HELP nwcq_replica_leader_committed_lsn Leader committed LSN from the last heartbeat.\n# TYPE nwcq_replica_leader_committed_lsn gauge\nnwcq_replica_leader_committed_lsn %d\n", st.LeaderCommittedLSN)
}
