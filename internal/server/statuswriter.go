package server

import "net/http"

// StatusWriter wraps a ResponseWriter to record the response status
// while passing http.Flusher through. Every wrapper on the request path
// must preserve Flusher: the streaming endpoints (GET /wal/stream,
// GET /subscribe) refuse to serve through a non-Flusher writer, and a
// wrapper that silently drops the interface buffers live frames until
// net/http's buffer overflows — the bug this shared type exists to
// prevent recurring (it was fixed independently in two wrappers before
// being extracted here).
type StatusWriter struct {
	http.ResponseWriter
	status int
}

// NewStatusWriter wraps w, with the status defaulting to 200 (net/http
// sends 200 when a handler writes without calling WriteHeader).
func NewStatusWriter(w http.ResponseWriter) *StatusWriter {
	return &StatusWriter{ResponseWriter: w, status: http.StatusOK}
}

// Status returns the recorded response status.
func (w *StatusWriter) Status() int { return w.status }

// WriteHeader records the status and forwards it.
func (w *StatusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's Flusher, if any.
func (w *StatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
