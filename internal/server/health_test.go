package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nwcq"
)

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestReadyzEndpoint: without a health gate /readyz is always 200; with
// one it answers 503 until SetReady(true) and follows later flips, so a
// load balancer never routes to a server still replaying its WAL.
func TestReadyzEndpoint(t *testing.T) {
	_, ts := testServer(t)
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz without gate: status %d, want 200", code)
	}

	idx, err := nwcq.Build([]nwcq.Point{{X: 1, Y: 1, ID: 1}, {X: 2, Y: 2, ID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHealth()
	gated := httptest.NewServer(New(idx, idx, WithHealth(h)).Handler())
	t.Cleanup(gated.Close)

	if code := getStatus(t, gated.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("not ready: status %d, want 503", code)
	}
	// Liveness stays up regardless of readiness.
	if code := getStatus(t, gated.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz while not ready: status %d, want 200", code)
	}
	h.SetReady(true)
	if code := getStatus(t, gated.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("ready: status %d, want 200", code)
	}
	h.SetReady(false)
	if code := getStatus(t, gated.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readiness revoked: status %d, want 503", code)
	}
}

// syncBuffer makes a bytes.Buffer safe to share between the handler
// goroutines writing log records and the test reading them back.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) Lines() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	s := strings.TrimSpace(sb.b.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// queryLogRecord mirrors the wide-event record's fields of interest.
type queryLogRecord struct {
	Msg        string `json:"msg"`
	Op         string `json:"op"`
	Scheme     string `json:"scheme"`
	Cache      string `json:"cache"`
	DurationNs int64  `json:"duration_ns"`
	Found      bool   `json:"found"`
	K          int    `json:"k"`
	M          int    `json:"m"`
	Phases     []struct {
		Name       string `json:"name"`
		NodeVisits uint64 `json:"node_visits"`
	} `json:"phases"`
	Router *struct {
		ShardsQueried int   `json:"shards_queried"`
		ShardsPruned  int   `json:"shards_pruned"`
		ScatterNs     int64 `json:"scatter_ns"`
	} `json:"router"`
}

func decodeQueryLog(t *testing.T, lines []string) []queryLogRecord {
	t.Helper()
	out := make([]queryLogRecord, len(lines))
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &out[i]); err != nil {
			t.Fatalf("record %d: %v\n%s", i, err, line)
		}
		if out[i].Msg != "query" {
			t.Fatalf("record %d: msg = %q", i, out[i].Msg)
		}
	}
	return out
}

// TestQueryLogWideEvents drives a single-index server with the sampled
// query log at 1-in-1 and checks each record is one complete wide
// event: operation, cache outcome and the engine phase breakdown.
func TestQueryLogWideEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]nwcq.Point, 2000)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	idx, err := nwcq.Build(pts, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	var sb syncBuffer
	logger := slog.New(slog.NewJSONHandler(&sb, nil))
	ts := httptest.NewServer(New(idx, idx, WithQueryLog(logger, 1)).Handler())
	t.Cleanup(ts.Close)

	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &tmp)
	getJSON(t, ts.URL+"/knwc?x=500&y=500&l=80&w=80&n=3&k=2&m=1", &struct{}{})

	recs := decodeQueryLog(t, sb.Lines())
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	nwc, knwc := recs[0], recs[1]
	if nwc.Op != "nwc" || knwc.Op != "knwc" {
		t.Fatalf("ops = %q, %q", nwc.Op, knwc.Op)
	}
	if !nwc.Found || nwc.DurationNs <= 0 || nwc.Scheme == "" {
		t.Errorf("nwc record incomplete: %+v", nwc)
	}
	if nwc.Cache != "off" {
		t.Errorf("cache outcome = %q, want off (no result cache configured)", nwc.Cache)
	}
	if len(nwc.Phases) == 0 {
		t.Error("nwc record carries no engine phase breakdown")
	}
	var visits uint64
	for _, p := range nwc.Phases {
		visits += p.NodeVisits
	}
	if visits == 0 {
		t.Error("phase breakdown reports zero node visits")
	}
	if nwc.Router != nil {
		t.Error("router block on a single-index backend")
	}
	if knwc.K != 2 || knwc.M != 1 {
		t.Errorf("knwc k/m = %d/%d, want 2/1", knwc.K, knwc.M)
	}
}

// TestQueryLogSampling checks 1-in-N sampling: with n=3 requests
// 1, 4, 7, ... are logged, the rest never allocate an event.
func TestQueryLogSampling(t *testing.T) {
	idx, err := nwcq.Build([]nwcq.Point{{X: 1, Y: 1, ID: 1}, {X: 2, Y: 2, ID: 2}, {X: 3, Y: 3, ID: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var sb syncBuffer
	logger := slog.New(slog.NewJSONHandler(&sb, nil))
	ts := httptest.NewServer(New(idx, idx, WithQueryLog(logger, 3)).Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 7; i++ {
		var tmp nwcResponse
		getJSON(t, ts.URL+"/nwc?x=2&y=2&l=6&w=6&n=2", &tmp)
	}
	if got := len(sb.Lines()); got != 3 {
		t.Errorf("%d records for 7 requests at 1-in-3, want 3", got)
	}
}

// TestQueryLogSharded checks the router fills the event's attribution
// block: a routed query's record carries shard fan-out counts and the
// scatter/border/merge phase split instead of engine phases.
func TestQueryLogSharded(t *testing.T) {
	var sb syncBuffer
	logger := slog.New(slog.NewJSONHandler(&sb, nil))
	_, ts := shardedServer(t, WithQueryLog(logger, 1))

	var tmp nwcResponse
	getJSON(t, ts.URL+"/nwc?x=500&y=500&l=80&w=80&n=4", &tmp)

	recs := decodeQueryLog(t, sb.Lines())
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Router == nil {
		t.Fatal("routed query record has no router block")
	}
	if rec.Router.ShardsQueried < 1 || rec.Router.ShardsQueried > 4 {
		t.Errorf("shards_queried = %d", rec.Router.ShardsQueried)
	}
	if rec.Router.ShardsQueried+rec.Router.ShardsPruned != 4 {
		t.Errorf("queried %d + pruned %d != 4 shards",
			rec.Router.ShardsQueried, rec.Router.ShardsPruned)
	}
	if rec.Router.ScatterNs <= 0 {
		t.Errorf("scatter_ns = %d", rec.Router.ScatterNs)
	}
	if len(rec.Phases) != 0 {
		t.Error("routed record carries engine phases; router split expected instead")
	}
}
