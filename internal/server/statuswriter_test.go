package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// flushCounter is a ResponseWriter that counts Flush calls.
type flushCounter struct {
	http.ResponseWriter
	flushes int
}

func (f *flushCounter) Flush() { f.flushes++ }

// plainWriter deliberately does not implement http.Flusher.
type plainWriter struct{ http.ResponseWriter }

// TestStatusWriterPreservesFlusher is the regression guard for the bug
// this wrapper was extracted to fix twice: a logging/metrics wrapper
// that hides the underlying Flusher silently breaks every streaming
// endpoint. The wrapper must stay a Flusher and must forward the call.
func TestStatusWriterPreservesFlusher(t *testing.T) {
	under := &flushCounter{ResponseWriter: httptest.NewRecorder()}
	sw := NewStatusWriter(under)
	fl, ok := any(sw).(http.Flusher)
	if !ok {
		t.Fatal("StatusWriter does not implement http.Flusher")
	}
	fl.Flush()
	if under.flushes != 1 {
		t.Fatalf("Flush reached the underlying writer %d times, want 1", under.flushes)
	}

	// A non-flushing underlying writer: Flush must be a safe no-op.
	NewStatusWriter(&plainWriter{httptest.NewRecorder()}).Flush()
}

// TestStatusWriterRecordsStatus pins the other half of the contract:
// the default is 200, and WriteHeader is observed.
func TestStatusWriterRecordsStatus(t *testing.T) {
	sw := NewStatusWriter(httptest.NewRecorder())
	if sw.Status() != http.StatusOK {
		t.Fatalf("default status %d, want 200", sw.Status())
	}
	sw.WriteHeader(http.StatusTeapot)
	if sw.Status() != http.StatusTeapot {
		t.Fatalf("status %d after WriteHeader(418)", sw.Status())
	}
}
