package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("value = %d, want 16000", c.Value())
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 1} // (<=1)=2, (<=2)=1, (<=4)=1, overflow=1
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %g", s.Sum)
	}
	if math.Abs(s.Mean()-106.0/5) > 1e-9 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := MustHistogram([]float64{10, 20, 30})
	// 100 observations uniform in (10, 20]: all land in bucket 1.
	for i := 0; i < 100; i++ {
		h.Observe(10 + float64(i%10) + 1)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 10 || p50 > 20 {
		t.Fatalf("p50 = %g outside its bucket", p50)
	}
	if got := s.Quantile(0); got < 10-1e-9 {
		t.Fatalf("p0 = %g", got)
	}
	if got := s.Quantile(1); got > 20+1e-9 {
		t.Fatalf("p100 = %g beyond occupied bucket", got)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	h := MustHistogram([]float64{1, 2})
	// An empty distribution has no quantiles: NaN, never a fake 0 that
	// reads as a perfect p99 in reports.
	if q := h.Snapshot().Quantile(0.99); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %g, want NaN", q)
	}
	if q := h.Snapshot().QuantileOr(0.99, -1); q != -1 {
		t.Fatalf("empty QuantileOr = %g, want fallback -1", q)
	}
	h.Observe(50) // overflow bucket only
	if q := h.Snapshot().Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %g, want clamp to top bound 2", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := MustHistogram(ExponentialBounds(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64((seed*per + i) % 700))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}
