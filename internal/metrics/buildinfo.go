package metrics

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the serving binary: the main module's version as
// stamped by the Go toolchain ("(devel)" for plain go build, the module
// version for released binaries) and the Go toolchain that compiled it.
// Both expositions carry it so a latency regression surfaced by the
// load harness can be tied to the exact build that produced it.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	return b
})

// Build returns the process's build identity, resolved once.
func Build() BuildInfo { return buildOnce() }

// BuildInfoProm renders the nwcq_build_info gauge: constant value 1
// with the identity in labels — the Prometheus convention for build
// metadata, joinable onto any other family by label matching.
func (p *PromWriter) BuildInfoProm() {
	b := Build()
	p.Header("nwcq_build_info", "gauge", "Build identity of the serving binary (constant 1; identity in labels).")
	p.Value("nwcq_build_info", Labels{"version", b.Version, "go_version", b.GoVersion}, 1)
}
