package metrics

import (
	"sync"
	"testing"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 10; i++ {
		v := i
		r.Put(&v)
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", r.Recorded())
	}
	got := map[int]bool{}
	for _, v := range r.Snapshot() {
		got[*v] = true
	}
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d entries, want 4", len(got))
	}
	for i := 6; i < 10; i++ {
		if !got[i] {
			t.Errorf("newest entry %d missing from snapshot %v", i, got)
		}
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing[int](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamped 1", r.Cap())
	}
	v := 7
	r.Put(&v)
	if s := r.Snapshot(); len(s) != 1 || *s[0] != 7 {
		t.Fatalf("Snapshot = %v", s)
	}
}

// TestRingConcurrent hammers Put and Snapshot from many goroutines; the
// race detector verifies lock-freedom is actually data-race-free.
func TestRingConcurrent(t *testing.T) {
	r := NewRing[uint64](8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				v := seed*1000 + i
				r.Put(&v)
				if i%64 == 0 {
					for _, p := range r.Snapshot() {
						_ = *p
					}
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if r.Recorded() != 4000 {
		t.Fatalf("Recorded = %d, want 4000", r.Recorded())
	}
	if len(r.Snapshot()) != 8 {
		t.Fatalf("Snapshot = %d entries, want 8", len(r.Snapshot()))
	}
}
