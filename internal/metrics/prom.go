package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) rendering, shared
// by every backend that exports metrics: the single-index observe path
// and the shard router's aggregated families.

// Labels is a flat name/value pair list ({"kind", "nwc"} renders as
// {kind="nwc"}).
type Labels []string

// With returns a copy of l extended with more pairs.
func (l Labels) With(extra ...string) Labels {
	return append(append(Labels{}, l...), extra...)
}

func (l Labels) String() string {
	if len(l) == 0 {
		return ""
	}
	s := "{"
	for i := 0; i+1 < len(l); i += 2 {
		if i > 0 {
			s += ","
		}
		s += l[i] + `="` + l[i+1] + `"`
	}
	return s + "}"
}

// PromWriter emits Prometheus text-format lines, remembering the first
// write error so call sites stay linear; read it from Err when done.
type PromWriter struct {
	W   io.Writer
	Err error
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.Err != nil {
		return
	}
	_, p.Err = fmt.Fprintf(p.W, format, args...)
}

// Header emits the # HELP and # TYPE lines for a metric family.
func (p *PromWriter) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value emits one sample line.
func (p *PromWriter) Value(name string, l Labels, v float64) {
	p.printf("%s%s %s\n", name, l.String(), FormatPromValue(v))
}

// Histogram renders one histogram with Prometheus's cumulative buckets:
// every _bucket line counts observations at or below its le bound, the
// +Inf bucket equals _count.
func (p *PromWriter) Histogram(name string, l Labels, s HistogramSnapshot) {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		p.Value(name+"_bucket", l.With("le", FormatPromValue(bound)), float64(cum))
	}
	cum += s.Counts[len(s.Counts)-1]
	p.Value(name+"_bucket", l.With("le", "+Inf"), float64(cum))
	p.Value(name+"_sum", l, s.Sum)
	p.Value(name+"_count", l, float64(cum))
}

// FormatPromValue renders a float the way Prometheus clients expect:
// shortest round-trip representation, integers without an exponent.
func FormatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedKeys returns m's keys in lexical order, for deterministic
// exposition output.
func SortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
