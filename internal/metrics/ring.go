package metrics

import "sync/atomic"

// Ring is a fixed-capacity, lock-free ring of recent entries, the
// storage behind the slow-query log. Writers claim a slot with one
// atomic increment and publish with one atomic pointer store, so
// recording never blocks a query; the newest entries overwrite the
// oldest once the ring is full.
//
// Snapshot returns the retained entries in unspecified order (a writer
// racing the snapshot may have claimed a slot it has not yet published;
// callers sort by their own timestamp field). Entries are published as
// pointers and never mutated afterwards, so readers need no copies.
type Ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64
}

// NewRing builds a ring holding up to capacity entries (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{slots: make([]atomic.Pointer[T], capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Recorded returns the total number of entries ever put, including
// those already overwritten.
func (r *Ring[T]) Recorded() uint64 { return r.next.Load() }

// Put publishes one entry, overwriting the oldest when full. v must not
// be mutated after Put.
func (r *Ring[T]) Put(v *T) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// Snapshot returns the currently retained entries, at most Cap of them.
func (r *Ring[T]) Snapshot() []*T {
	out := make([]*T, 0, len(r.slots))
	for i := range r.slots {
		if v := r.slots[i].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}
