// Package metrics provides lock-free observability primitives for the
// query hot path: monotonic counters and fixed-bucket histograms whose
// every operation is a handful of atomic adds. Nothing here allocates
// or takes a lock after construction, so instrumented queries stay
// wait-free with respect to each other at any parallelism.
//
// The histogram implementation lives in internal/histo — the same
// log-bucketed core the load harness (cmd/nwcload) records into, so
// server-side and client-side quantiles are estimated identically —
// and is re-exported here under the names the metrics call sites have
// always used. Quantiles are estimated from a Snapshot by linear
// interpolation inside the bucket containing the target rank — the
// standard bucketed-histogram p50/p95/p99 estimate.
package metrics

import (
	"sync/atomic"

	"nwcq/internal/histo"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram counts observations into fixed buckets. Observe is safe for
// concurrent use and performs no allocation and no locking: one atomic
// add on the bucket, one on the total count, and a CAS loop on the
// float64 running sum. It is internal/histo's histogram under its
// historical name.
type Histogram = histo.Histogram

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for quantile estimation and JSON serialisation.
type HistogramSnapshot = histo.Snapshot

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An observation v lands in the first bucket with v <= bound;
// values above every bound land in an implicit overflow bucket.
func NewHistogram(bounds []float64) (*Histogram, error) { return histo.New(bounds) }

// MustHistogram is NewHistogram panicking on invalid bounds; for
// package-level construction with known-good bounds.
func MustHistogram(bounds []float64) *Histogram { return histo.Must(bounds) }

// ExponentialBounds returns n strictly ascending bucket bounds starting
// at start and growing by factor: start, start*factor, …
func ExponentialBounds(start, factor float64, n int) []float64 {
	return histo.LogBuckets(start, factor, n)
}
