// Package metrics provides lock-free observability primitives for the
// query hot path: monotonic counters and fixed-bucket histograms whose
// every operation is a handful of atomic adds. Nothing here allocates
// or takes a lock after construction, so instrumented queries stay
// wait-free with respect to each other at any parallelism.
//
// Histograms use fixed bucket upper bounds chosen at construction
// (ExponentialBounds builds the usual log-spaced ladder). Quantiles are
// estimated from a Snapshot by linear interpolation inside the bucket
// containing the target rank — the standard bucketed-histogram p50/p95/
// p99 estimate.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram counts observations into fixed buckets. Observe is safe for
// concurrent use and performs no allocation and no locking: one atomic
// add on the bucket, one on the total count, and a CAS loop on the
// float64 running sum.
type Histogram struct {
	bounds []float64       // ascending bucket upper bounds (inclusive)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An observation v lands in the first bucket with v <= bound;
// values above every bound land in an implicit overflow bucket.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("metrics: bounds not strictly ascending at %d", i)
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h, nil
}

// MustHistogram is NewHistogram panicking on invalid bounds; for
// package-level construction with known-good bounds.
func MustHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// ExponentialBounds returns n strictly ascending bucket bounds starting
// at start and growing by factor: start, start*factor, …
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for quantile estimation and JSON serialisation.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may straddle the copy; each bucket value is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observation, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. Results are
// clamped to the histogram's bound range; an empty histogram yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if next == cum {
				return hi
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
