package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"nwcq"
)

// Replica is the follower-side surface of the index the stream replays
// into. *nwcq.PagedIndex satisfies it.
type Replica interface {
	ReplicaLSN() uint64
	Len() int
	ApplyReplicated(leaderLSN uint64, data []byte) error
	ApplySnapshotChunk(pts []nwcq.Point, leaderLSN uint64) error
	ResetForSnapshot() error
}

// Config shapes a follower.
type Config struct {
	// Leader is the base URL of the leader's HTTP endpoint, e.g.
	// "http://localhost:8080".
	Leader string
	// MaxLag bounds staleness for readiness: once caught up, the
	// follower reports Ready while its lag stays at or under MaxLag.
	// Zero or negative disables the gate (always ready once caught up).
	MaxLag time.Duration
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
	// Client issues the streaming requests; nil uses a client with no
	// overall timeout (the stream is long-lived).
	Client *http.Client
	// MinBackoff and MaxBackoff bound the reconnect delay; zero values
	// default to 100ms and 5s.
	MinBackoff, MaxBackoff time.Duration
}

// Follower tails a leader's WAL stream into a local replica index.
type Follower struct {
	cfg Config
	idx Replica
	log *slog.Logger

	connected       atomic.Bool
	reconnects      atomic.Uint64
	snapshots       atomic.Uint64
	applied         atomic.Uint64
	leaderDurable   atomic.Uint64
	leaderCommitted atomic.Uint64
	// caughtUp is the unix-nano instant the replica last matched the
	// leader's committed LSN; 0 means it never has.
	caughtUp atomic.Int64
	diverged atomic.Bool

	// Snapshot reassembly state, touched only by the single Run loop.
	snapRemaining uint64
	snapLSN       uint64
}

// New builds a follower replaying into idx. Run must be started by the
// caller.
func New(cfg Config, idx Replica) (*Follower, error) {
	u, err := url.Parse(cfg.Leader)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: leader URL %q: want e.g. http://host:port", cfg.Leader)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Follower{cfg: cfg, idx: idx, log: cfg.Logger}, nil
}

// Run streams until ctx is cancelled, reconnecting with exponential
// backoff. It always returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.cfg.MinBackoff
	for {
		productive, err := f.streamOnce(ctx)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			f.log.Warn("replication stream failed", "leader", f.cfg.Leader, "err", err)
		} else {
			f.log.Info("replication stream ended, reconnecting", "leader", f.cfg.Leader)
		}
		if productive {
			backoff = f.cfg.MinBackoff
		}
		f.reconnects.Add(1)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
	}
}

// streamOnce runs one stream session; productive reports whether any
// frame was applied or observed, which resets the reconnect backoff.
func (f *Follower) streamOnce(ctx context.Context) (productive bool, err error) {
	from := f.idx.ReplicaLSN() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/wal/stream?from=%d", f.cfg.Leader, from), nil)
	if err != nil {
		return false, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("repl: leader returned %s: %s", resp.Status, body)
	}
	f.connected.Store(true)
	f.log.Info("replication stream open", "leader", f.cfg.Leader, "from", from)

	r := NewReader(resp.Body)
	for {
		fr, err := r.Next()
		if err != nil {
			return productive, err
		}
		productive = true
		if err := f.handle(fr); err != nil {
			return productive, err
		}
	}
}

// handle applies one frame to the replica.
func (f *Follower) handle(fr Frame) error {
	switch fr.Type {
	case FrameSnapshot:
		f.snapshots.Add(1)
		f.log.Info("snapshot bootstrap begins", "leader_lsn", fr.LSN, "points", fr.Count)
		// A snapshot replaces local state wholesale. Reset whenever the
		// replica holds anything — points or a position — so chunks from
		// an earlier, interrupted snapshot can never double-apply.
		if f.idx.Len() > 0 || f.idx.ReplicaLSN() > 0 {
			if err := f.idx.ResetForSnapshot(); err != nil {
				return fmt.Errorf("repl: reset for snapshot: %w", err)
			}
		}
		f.snapRemaining, f.snapLSN = fr.Count, fr.LSN
		if fr.Count == 0 {
			// Empty leader: a single stamp records the position.
			if err := f.idx.ApplySnapshotChunk(nil, fr.LSN); err != nil {
				return fmt.Errorf("repl: empty snapshot stamp: %w", err)
			}
			f.snapLSN = 0
		}
		return nil
	case FramePoints:
		if uint64(len(fr.Points)) > f.snapRemaining {
			return fmt.Errorf("repl: snapshot chunk of %d points with only %d expected", len(fr.Points), f.snapRemaining)
		}
		f.snapRemaining -= uint64(len(fr.Points))
		// Intermediate chunks carry stamp 0 (position unknown); only the
		// final chunk commits the snapshot LSN, so a crash mid-bootstrap
		// reconnects below the leader's floor and restarts the snapshot.
		stamp := uint64(0)
		if f.snapRemaining == 0 {
			stamp = f.snapLSN
			f.snapLSN = 0
		}
		if err := f.idx.ApplySnapshotChunk(fr.Points, stamp); err != nil {
			return fmt.Errorf("repl: snapshot chunk: %w", err)
		}
		return nil
	case FrameRecord:
		if err := f.idx.ApplyReplicated(fr.LSN, fr.Payload); err != nil {
			return fmt.Errorf("repl: apply record %d: %w", fr.LSN, err)
		}
		f.applied.Add(1)
		return nil
	case FrameHeartbeat:
		f.leaderDurable.Store(fr.Durable)
		f.leaderCommitted.Store(fr.Committed)
		replica := f.idx.ReplicaLSN()
		switch {
		case replica > fr.Committed:
			// The replica is ahead of the leader: the leader lost history
			// (restored from an older backup, or a different instance now
			// answers on this address). Auto-wiping would destroy the only
			// up-to-date copy, so stay unready and demand operator action.
			if !f.diverged.Swap(true) {
				f.log.Error("replica ahead of leader: histories diverged; refusing to serve until re-pointed or re-seeded",
					"replica_lsn", replica, "leader_committed_lsn", fr.Committed)
			}
		case replica >= fr.Committed:
			f.diverged.Store(false)
			f.caughtUp.Store(time.Now().UnixNano())
		default:
			f.diverged.Store(false)
		}
		return nil
	default:
		return fmt.Errorf("repl: unhandled frame type %q", fr.Type)
	}
}

// Lag is the time since the replica last matched the leader's committed
// position; ok is false if it never has.
func (f *Follower) Lag() (time.Duration, bool) {
	at := f.caughtUp.Load()
	if at == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, at)), true
}

// Ready reports whether reads may be served within the staleness bound:
// the follower has caught up at least once, is not diverged, and its
// lag is within MaxLag (if one is set).
func (f *Follower) Ready() bool {
	if f.diverged.Load() {
		return false
	}
	lag, ok := f.Lag()
	if !ok {
		return false
	}
	return f.cfg.MaxLag <= 0 || lag <= f.cfg.MaxLag
}

// Status is a point-in-time follower summary for health and metrics
// endpoints.
type Status struct {
	Leader             string `json:"leader"`
	Connected          bool   `json:"connected"`
	ReplicaLSN         uint64 `json:"replica_lsn"`
	LeaderDurableLSN   uint64 `json:"leader_durable_lsn"`
	LeaderCommittedLSN uint64 `json:"leader_committed_lsn"`
	// LagSeconds is -1 until the follower has caught up once (NaN and
	// +Inf do not JSON-encode).
	LagSeconds     float64 `json:"lag_seconds"`
	Reconnects     uint64  `json:"reconnects"`
	Snapshots      uint64  `json:"snapshots"`
	RecordsApplied uint64  `json:"records_applied"`
	Diverged       bool    `json:"diverged,omitempty"`
	Ready          bool    `json:"ready"`
	MaxLagSeconds  float64 `json:"max_lag_seconds,omitempty"`
}

// Status snapshots the follower.
func (f *Follower) Status() Status {
	st := Status{
		Leader:             f.cfg.Leader,
		Connected:          f.connected.Load(),
		ReplicaLSN:         f.idx.ReplicaLSN(),
		LeaderDurableLSN:   f.leaderDurable.Load(),
		LeaderCommittedLSN: f.leaderCommitted.Load(),
		LagSeconds:         -1,
		Reconnects:         f.reconnects.Load(),
		Snapshots:          f.snapshots.Load(),
		RecordsApplied:     f.applied.Load(),
		Diverged:           f.diverged.Load(),
		Ready:              f.Ready(),
		MaxLagSeconds:      f.cfg.MaxLag.Seconds(),
	}
	if lag, ok := f.Lag(); ok {
		st.LagSeconds = lag.Seconds()
	}
	return st
}
