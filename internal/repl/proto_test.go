package repl

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"nwcq"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pts := []nwcq.Point{
		{X: 1.5, Y: -2.25, ID: 42},
		{X: math.MaxFloat64, Y: math.SmallestNonzeroFloat64, ID: math.MaxUint64},
		{X: 0, Y: 0, ID: 0},
	}
	at := time.Unix(0, 1754550000000000000)
	if err := w.Snapshot(77, len(pts)); err != nil {
		t.Fatal(err)
	}
	if err := w.Points(pts); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(78, []byte{1, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Heartbeat(80, 79, at); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	fr, err := r.Next()
	if err != nil || fr.Type != FrameSnapshot || fr.LSN != 77 || fr.Count != uint64(len(pts)) {
		t.Fatalf("snapshot frame = %+v, %v", fr, err)
	}
	fr, err = r.Next()
	if err != nil || fr.Type != FramePoints || len(fr.Points) != len(pts) {
		t.Fatalf("points frame = %+v, %v", fr, err)
	}
	for i, p := range pts {
		if fr.Points[i] != p {
			t.Fatalf("point %d = %+v, want %+v", i, fr.Points[i], p)
		}
	}
	fr, err = r.Next()
	if err != nil || fr.Type != FrameRecord || fr.LSN != 78 || !bytes.Equal(fr.Payload, []byte{1, 0, 0, 0, 0}) {
		t.Fatalf("record frame = %+v, %v", fr, err)
	}
	fr, err = r.Next()
	if err != nil || fr.Type != FrameHeartbeat || fr.Durable != 80 || fr.Committed != 79 || !fr.At.Equal(at) {
		t.Fatalf("heartbeat frame = %+v, %v", fr, err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("X")).Next(); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
		t.Fatalf("unknown frame type: %v", err)
	}
	// A record frame claiming a payload beyond the limit is corruption,
	// not an allocation request.
	var buf bytes.Buffer
	buf.WriteByte(FrameRecord)
	buf.Write(make([]byte, 8))                // lsn
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	if _, err := NewReader(&buf).Next(); err == nil {
		t.Fatal("oversized record length accepted")
	}
	// A truncated frame body is an error, not a hang or a zero frame.
	var buf2 bytes.Buffer
	w := NewWriter(&buf2)
	if err := w.Record(5, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-2]
	if _, err := NewReader(bytes.NewReader(trunc)).Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestWriterChunksLargePointSets(t *testing.T) {
	// One writer reused across chunks must not corrupt earlier frames
	// via its scratch buffer.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := []nwcq.Point{{X: 1, Y: 1, ID: 1}, {X: 2, Y: 2, ID: 2}}
	b := []nwcq.Point{{X: 3, Y: 3, ID: 3}}
	if err := w.Points(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Points(b); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	fr, err := r.Next()
	if err != nil || len(fr.Points) != 2 || fr.Points[0].ID != 1 || fr.Points[1].ID != 2 {
		t.Fatalf("first chunk = %+v, %v", fr, err)
	}
	fr, err = r.Next()
	if err != nil || len(fr.Points) != 1 || fr.Points[0].ID != 3 {
		t.Fatalf("second chunk = %+v, %v", fr, err)
	}
}
