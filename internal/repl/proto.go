// Package repl implements WAL-shipping replication: the binary frame
// codec spoken between a leader's GET /wal/stream endpoint and the
// follower that tails it, plus the follower lifecycle (snapshot
// bootstrap, catch-up, live tail, reconnect with backoff, lag
// tracking).
//
// The stream is a flat sequence of length-delimited frames:
//
//	'S' snapshot header  [8B snapshot LSN][8B point count]
//	'P' point chunk      [4B n][n × 24B point (x, y float64 bits, id)]
//	'R' record           [8B lsn][4B payload len][payload]
//	'H' heartbeat        [8B leader durable LSN][8B leader committed LSN][8B unix nanos]
//
// A session either starts with one 'S' frame (followed by its 'P'
// chunks) when the follower's position was already recycled, or goes
// straight to 'R' frames. 'H' frames interleave at a fixed cadence so
// the follower can measure lag and detect divergence even when no
// records flow.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"nwcq"
)

// Frame type bytes.
const (
	FrameSnapshot  byte = 'S'
	FramePoints    byte = 'P'
	FrameRecord    byte = 'R'
	FrameHeartbeat byte = 'H'
)

const (
	pointSize = 24
	// maxFramePayload bounds a record frame's payload, mirroring the
	// WAL's own record limit; larger lengths are stream corruption.
	maxFramePayload = 16 << 20
	// maxPointChunk bounds one 'P' frame (the writer chunks at
	// SnapshotChunk, far below this).
	maxPointChunk = 1 << 20
	// SnapshotChunk is how many points the writer packs per 'P' frame.
	SnapshotChunk = 4096
)

// Writer encodes frames onto a stream.
type Writer struct {
	w       io.Writer
	scratch []byte
}

// NewWriter wraps w. Callers own buffering and flushing.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Snapshot writes a snapshot header: count points follow in 'P' chunks,
// and the whole set represents the leader's state at lsn.
func (w *Writer) Snapshot(lsn uint64, count int) error {
	var buf [17]byte
	buf[0] = FrameSnapshot
	binary.BigEndian.PutUint64(buf[1:9], lsn)
	binary.BigEndian.PutUint64(buf[9:17], uint64(count))
	_, err := w.w.Write(buf[:])
	return err
}

// Points writes one chunk of snapshot points.
func (w *Writer) Points(pts []nwcq.Point) error {
	need := 5 + len(pts)*pointSize
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	buf[0] = FramePoints
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(pts)))
	off := 5
	for _, p := range pts {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(p.X))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
		binary.BigEndian.PutUint64(buf[off+16:], p.ID)
		off += pointSize
	}
	_, err := w.w.Write(buf)
	return err
}

// Record writes one committed WAL record.
func (w *Writer) Record(lsn uint64, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("repl: record of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [13]byte
	hdr[0] = FrameRecord
	binary.BigEndian.PutUint64(hdr[1:9], lsn)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Heartbeat writes the leader's position so the follower can measure
// lag without traffic.
func (w *Writer) Heartbeat(durable, committed uint64, at time.Time) error {
	var buf [25]byte
	buf[0] = FrameHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], durable)
	binary.BigEndian.PutUint64(buf[9:17], committed)
	binary.BigEndian.PutUint64(buf[17:25], uint64(at.UnixNano()))
	_, err := w.w.Write(buf[:])
	return err
}

// Frame is one decoded stream element; the fields populated depend on
// Type.
type Frame struct {
	Type byte

	// FrameRecord
	LSN     uint64
	Payload []byte

	// FrameSnapshot (LSN shared above), FramePoints
	Count  uint64
	Points []nwcq.Point

	// FrameHeartbeat
	Durable   uint64
	Committed uint64
	At        time.Time
}

// Reader decodes frames off a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r with its own buffering.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 64<<10)} }

// Next blocks for the next frame. io.EOF (possibly wrapped) means the
// stream ended; the follower reconnects.
func (r *Reader) Next() (Frame, error) {
	t, err := r.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	switch t {
	case FrameSnapshot:
		var buf [16]byte
		if _, err := io.ReadFull(r.r, buf[:]); err != nil {
			return Frame{}, fmt.Errorf("repl: snapshot header: %w", err)
		}
		return Frame{
			Type:  FrameSnapshot,
			LSN:   binary.BigEndian.Uint64(buf[0:8]),
			Count: binary.BigEndian.Uint64(buf[8:16]),
		}, nil
	case FramePoints:
		var nbuf [4]byte
		if _, err := io.ReadFull(r.r, nbuf[:]); err != nil {
			return Frame{}, fmt.Errorf("repl: point chunk header: %w", err)
		}
		n := binary.BigEndian.Uint32(nbuf[:])
		if n > maxPointChunk {
			return Frame{}, fmt.Errorf("repl: point chunk of %d points exceeds limit", n)
		}
		raw := make([]byte, int(n)*pointSize)
		if _, err := io.ReadFull(r.r, raw); err != nil {
			return Frame{}, fmt.Errorf("repl: point chunk body: %w", err)
		}
		pts := make([]nwcq.Point, n)
		off := 0
		for i := range pts {
			pts[i] = nwcq.Point{
				X:  math.Float64frombits(binary.BigEndian.Uint64(raw[off:])),
				Y:  math.Float64frombits(binary.BigEndian.Uint64(raw[off+8:])),
				ID: binary.BigEndian.Uint64(raw[off+16:]),
			}
			off += pointSize
		}
		return Frame{Type: FramePoints, Points: pts}, nil
	case FrameRecord:
		var hdr [12]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			return Frame{}, fmt.Errorf("repl: record header: %w", err)
		}
		plen := binary.BigEndian.Uint32(hdr[8:12])
		if plen == 0 || plen > maxFramePayload {
			return Frame{}, fmt.Errorf("repl: record payload of %d bytes", plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r.r, payload); err != nil {
			return Frame{}, fmt.Errorf("repl: record body: %w", err)
		}
		return Frame{
			Type:    FrameRecord,
			LSN:     binary.BigEndian.Uint64(hdr[0:8]),
			Payload: payload,
		}, nil
	case FrameHeartbeat:
		var buf [24]byte
		if _, err := io.ReadFull(r.r, buf[:]); err != nil {
			return Frame{}, fmt.Errorf("repl: heartbeat body: %w", err)
		}
		return Frame{
			Type:      FrameHeartbeat,
			Durable:   binary.BigEndian.Uint64(buf[0:8]),
			Committed: binary.BigEndian.Uint64(buf[8:16]),
			At:        time.Unix(0, int64(binary.BigEndian.Uint64(buf[16:24]))),
		}, nil
	default:
		return Frame{}, fmt.Errorf("repl: unknown frame type %q", t)
	}
}
