package repl

import (
	"fmt"
	"testing"
	"time"

	"nwcq"
)

// fakeReplica records frame applications for lifecycle tests without a
// real index.
type fakeReplica struct {
	replica uint64
	points  int
	resets  int
	applies []uint64
	chunks  []uint64
}

func (f *fakeReplica) ReplicaLSN() uint64 { return f.replica }
func (f *fakeReplica) Len() int           { return f.points }
func (f *fakeReplica) ApplyReplicated(leaderLSN uint64, data []byte) error {
	f.applies = append(f.applies, leaderLSN)
	if leaderLSN > f.replica {
		f.replica = leaderLSN
	}
	f.points++
	return nil
}
func (f *fakeReplica) ApplySnapshotChunk(pts []nwcq.Point, leaderLSN uint64) error {
	f.chunks = append(f.chunks, leaderLSN)
	f.points += len(pts)
	if leaderLSN > f.replica {
		f.replica = leaderLSN
	}
	return nil
}
func (f *fakeReplica) ResetForSnapshot() error {
	f.resets++
	f.points, f.replica = 0, 0
	return nil
}

func newTestFollower(t *testing.T, idx Replica, maxLag time.Duration) *Follower {
	t.Helper()
	f, err := New(Config{Leader: "http://localhost:1", MaxLag: maxLag}, idx)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadLeaderURL(t *testing.T) {
	for _, bad := range []string{"", "localhost:8080", "http://", "::"} {
		if _, err := New(Config{Leader: bad}, &fakeReplica{}); err == nil {
			t.Errorf("leader URL %q accepted", bad)
		}
	}
}

// TestSnapshotResetSemantics drives the frame handler through a
// snapshot onto a dirty replica: the reset must precede the chunks, and
// only the final chunk may stamp the snapshot LSN.
func TestSnapshotResetSemantics(t *testing.T) {
	idx := &fakeReplica{points: 3, replica: 9}
	f := newTestFollower(t, idx, 0)
	pts := make([]nwcq.Point, 10)
	if err := f.handle(Frame{Type: FrameSnapshot, LSN: 50, Count: 10}); err != nil {
		t.Fatal(err)
	}
	if idx.resets != 1 {
		t.Fatalf("resets = %d, want 1 (replica was dirty)", idx.resets)
	}
	if err := f.handle(Frame{Type: FramePoints, Points: pts[:6]}); err != nil {
		t.Fatal(err)
	}
	if err := f.handle(Frame{Type: FramePoints, Points: pts[6:]}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(idx.chunks) != "[0 50]" {
		t.Fatalf("chunk stamps = %v, want [0 50]: only the final chunk commits the position", idx.chunks)
	}
	if idx.replica != 50 || idx.points != 10 {
		t.Fatalf("after snapshot: replica %d, %d points", idx.replica, idx.points)
	}
	// An overflowing chunk is stream corruption, not silent growth.
	if err := f.handle(Frame{Type: FramePoints, Points: pts[:1]}); err == nil {
		t.Fatal("chunk beyond the announced count accepted")
	}
}

// TestEmptySnapshotStampsPosition covers an empty leader: the position
// must still advance or the follower would re-bootstrap forever.
func TestEmptySnapshotStampsPosition(t *testing.T) {
	idx := &fakeReplica{}
	f := newTestFollower(t, idx, 0)
	if err := f.handle(Frame{Type: FrameSnapshot, LSN: 7, Count: 0}); err != nil {
		t.Fatal(err)
	}
	if idx.replica != 7 {
		t.Fatalf("replica = %d after empty snapshot, want 7", idx.replica)
	}
	if idx.resets != 0 {
		t.Fatal("clean empty replica was reset needlessly")
	}
}

// TestHeartbeatLagAndReadiness walks the readiness state machine:
// never-caught-up → caught up → diverged.
func TestHeartbeatLagAndReadiness(t *testing.T) {
	idx := &fakeReplica{}
	f := newTestFollower(t, idx, time.Hour)
	if f.Ready() {
		t.Fatal("ready before ever catching up")
	}
	st := f.Status()
	if st.LagSeconds != -1 {
		t.Fatalf("pre-catch-up lag = %g, want -1 sentinel", st.LagSeconds)
	}

	idx.replica = 20
	if err := f.handle(Frame{Type: FrameHeartbeat, Durable: 21, Committed: 20}); err != nil {
		t.Fatal(err)
	}
	if !f.Ready() {
		t.Fatal("not ready though replica matches committed")
	}
	st = f.Status()
	if st.LagSeconds < 0 || st.LeaderDurableLSN != 21 || st.LeaderCommittedLSN != 20 {
		t.Fatalf("status after catch-up = %+v", st)
	}

	// A leader that answers with an older history: diverged, not ready,
	// and no auto-wipe (the fake would record a reset).
	if err := f.handle(Frame{Type: FrameHeartbeat, Durable: 10, Committed: 10}); err != nil {
		t.Fatal(err)
	}
	if f.Ready() {
		t.Fatal("ready while diverged")
	}
	if !f.Status().Diverged {
		t.Fatal("divergence not reported")
	}
	if idx.resets != 0 {
		t.Fatal("divergence auto-wiped the replica")
	}
	// The same leader catching back up clears the divergence.
	if err := f.handle(Frame{Type: FrameHeartbeat, Durable: 20, Committed: 20}); err != nil {
		t.Fatal(err)
	}
	if !f.Ready() || f.Status().Diverged {
		t.Fatal("divergence not cleared after the leader caught up")
	}
}

// TestMaxLagGate pins the staleness bound: lag beyond MaxLag flips
// readiness off without touching the caught-up state.
func TestMaxLagGate(t *testing.T) {
	idx := &fakeReplica{replica: 5}
	f := newTestFollower(t, idx, time.Nanosecond)
	if err := f.handle(Frame{Type: FrameHeartbeat, Durable: 5, Committed: 5}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if f.Ready() {
		t.Fatal("ready though lag exceeds the 1ns bound")
	}
	if lag, ok := f.Lag(); !ok || lag <= 0 {
		t.Fatalf("lag = %v, %v", lag, ok)
	}
}
