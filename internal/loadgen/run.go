// Package loadgen is the SLO-driven load harness behind cmd/nwcload:
// it drives an nwcserve instance over HTTP with a configurable query
// mix, records latency per op class, and scores the run against parsed
// service-level objectives.
//
// Two arrival models are supported. The closed loop runs N workers in
// lock-step — each issues its next request when the previous response
// lands — which measures service latency but, like every closed-loop
// tool, coordinates with the server: a stall pauses the arrival stream
// itself, so stalls are under-sampled and the recorded tail looks
// flatteringly thin. The open loop fixes that the way wrk2 does: a
// scheduler emits intended arrival times at the target rate (fixed gaps
// or a Poisson process), workers pick them up, and each sample's
// latency is measured from the intended arrival, not the actual send.
// When the server falls behind, queued intents keep aging, so the delay
// the clients actually suffered lands in the histogram instead of being
// omitted — the coordinated-omission correction.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Mode is "closed" (Workers in lock-step) or "open" (Rate arrivals/s
	// with Workers as the concurrency cap).
	Mode string
	// Rate is the open-loop target arrival rate per second.
	Rate float64
	// Poisson draws open-loop inter-arrival gaps from an exponential
	// distribution instead of fixed 1/Rate spacing.
	Poisson bool
	// Workers is the closed-loop width, and in open mode the maximum
	// number of requests in flight. 0 means 8.
	Workers int
	// Duration is the measured window; Warmup runs the same load first
	// without recording (cold caches and connection setup would skew
	// the tail).
	Duration, Warmup time.Duration
	// Profile is the query mix.
	Profile Profile
	// Subs opens that many standing-query SSE subscriptions
	// (GET /subscribe) for the whole run, each recording publish→notify
	// latency per delivered frame under the "sub" class. Pair with a
	// non-zero Profile.MutateShare — without mutations nothing publishes
	// and the subscribers only ever see their init frame.
	Subs int
	// Seed makes the generated op stream reproducible.
	Seed int64
	// Client overrides the HTTP client (tests); nil builds one sized to
	// Workers.
	Client *http.Client
}

func (c *Config) validate() error {
	if c.BaseURL == "" {
		return errors.New("loadgen: BaseURL is required")
	}
	switch c.Mode {
	case "closed":
	case "open":
		if c.Rate <= 0 {
			return fmt.Errorf("loadgen: open loop needs a positive rate, got %g", c.Rate)
		}
	default:
		return fmt.Errorf("loadgen: mode %q, want open or closed", c.Mode)
	}
	if c.Workers < 0 {
		return fmt.Errorf("loadgen: negative workers")
	}
	if c.Subs < 0 {
		return fmt.Errorf("loadgen: negative subs")
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup")
	}
	return c.Profile.Validate()
}

// WaitReady polls GET /readyz until it answers 200, the context ends,
// or timeout elapses. Connection errors count as not ready: the server
// may still be binding its listener or replaying its WAL.
func WaitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Now().Add(timeout)
	url := strings.TrimSuffix(baseURL, "/") + "/readyz"
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready after %v", url, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// issue sends one op and reports whether it failed (transport error or
// non-2xx status). The response body is drained so the connection is
// reused.
func issue(ctx context.Context, client *http.Client, baseURL string, op Op) bool {
	var body io.Reader
	if op.Body != "" {
		body = strings.NewReader(op.Body)
	}
	req, err := http.NewRequestWithContext(ctx, op.Method, baseURL+op.Path, body)
	if err != nil {
		return true
	}
	if op.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < 200 || resp.StatusCode >= 300
}

// Run executes one load run and returns the measured report (SLO
// verdicts unfilled; see Evaluate). The context cancels the run early;
// whatever was measured so far is still reported.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers + 4,
			MaxIdleConnsPerHost: cfg.Workers + 4,
		}}
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")

	// Two recorders: workers write through the pointer, and the swap at
	// the end of warmup atomically starts the measured window.
	warm, meas := NewRecorder(), NewRecorder()
	var rec atomic.Pointer[Recorder]
	var measStart atomic.Int64 // UnixNano of the swap
	if cfg.Warmup > 0 {
		rec.Store(warm)
	} else {
		rec.Store(meas)
	}
	start := time.Now()
	if cfg.Warmup == 0 {
		measStart.Store(start.UnixNano())
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Warmup+cfg.Duration)
	defer cancel()
	if cfg.Warmup > 0 {
		swap := time.AfterFunc(cfg.Warmup, func() {
			measStart.Store(time.Now().UnixNano())
			rec.Store(meas)
		})
		defer swap.Stop()
	}

	ids := &atomic.Uint64{}
	var dropped atomic.Uint64
	var wg sync.WaitGroup

	// Standing-query subscribers ride alongside the request workers:
	// each holds one SSE stream open and records every delivered frame's
	// publish→notify latency (subscribe.go).
	for i := 0; i < cfg.Subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := cfg.Profile.NewGen(cfg.Seed+int64(i)*104729+31, ids)
			subscribeLoop(runCtx, client, base, gen, &rec)
		}(i)
	}

	switch cfg.Mode {
	case "closed":
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := cfg.Profile.NewGen(cfg.Seed+int64(w)*7919, ids)
				for runCtx.Err() == nil {
					op := gen.Next()
					opStart := time.Now()
					failed := issue(runCtx, client, base, op)
					if runCtx.Err() != nil {
						return // cancellation, not a server error
					}
					rec.Load().Record(op.Class, time.Since(opStart), failed)
				}
			}(w)
		}
	case "open":
		// The scheduler emits intended arrival instants; workers stamp
		// each sample against that instant. The buffer absorbs a server
		// running behind — intents queue and age instead of the stream
		// thinning out. Overflow and end-of-run backlog are counted, not
		// hidden: every scheduled-but-unissued arrival is one the server
		// definitively could not absorb.
		capHint := int(cfg.Rate * (cfg.Warmup + cfg.Duration).Seconds())
		if capHint < 1024 {
			capHint = 1024
		}
		if capHint > 1<<20 {
			capHint = 1 << 20
		}
		sched := make(chan time.Time, capHint)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(sched)
			next := time.Now()
			for {
				if d := time.Until(next); d > 0 {
					select {
					case <-runCtx.Done():
						return
					case <-time.After(d):
					}
				} else if runCtx.Err() != nil {
					return
				}
				select {
				case sched <- next:
				default:
					dropped.Add(1)
				}
				gap := 1 / cfg.Rate
				if cfg.Poisson {
					gap = rng.ExpFloat64() / cfg.Rate
				}
				next = next.Add(time.Duration(gap * float64(time.Second)))
			}
		}()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := cfg.Profile.NewGen(cfg.Seed+int64(w)*7919, ids)
				for intended := range sched {
					if runCtx.Err() != nil {
						dropped.Add(1) // backlog the run's end cut off
						continue
					}
					op := gen.Next()
					failed := issue(runCtx, client, base, op)
					if runCtx.Err() != nil {
						dropped.Add(1)
						continue
					}
					rec.Load().Record(op.Class, time.Since(intended), failed)
				}
			}(w)
		}
	}
	wg.Wait()

	elapsed := time.Duration(time.Now().UnixNano() - measStart.Load())
	if elapsed > cfg.Duration {
		elapsed = cfg.Duration
	}
	rep := &Report{
		Target:      cfg.BaseURL,
		Mode:        cfg.Mode,
		Workers:     cfg.Workers,
		DurationSec: cfg.Duration.Seconds(),
		WarmupSec:   cfg.Warmup.Seconds(),
		StartedAt:   start.UTC().Format(time.RFC3339),
		Dropped:     dropped.Load(),
	}
	if cfg.Mode == "open" {
		rep.TargetRPS = cfg.Rate
		rep.Arrival = "fixed"
		if cfg.Poisson {
			rep.Arrival = "poisson"
		}
	}
	rep.Total, rep.Classes = meas.Snapshot(elapsed)
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}
