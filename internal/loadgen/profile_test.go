package loadgen

import (
	"encoding/json"
	"math"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

func parseOpQuery(t *testing.T, op Op) url.Values {
	t.Helper()
	i := strings.IndexByte(op.Path, '?')
	if i < 0 {
		t.Fatalf("op path %q has no query", op.Path)
	}
	v, err := url.ParseQuery(op.Path[i+1:])
	if err != nil {
		t.Fatalf("op query: %v", err)
	}
	return v
}

func TestGenMixShares(t *testing.T) {
	p := Profile{KNWCShare: 0.25, BatchShare: 0.1, MutateShare: 0.1}
	var ids atomic.Uint64
	g := p.NewGen(1, &ids)
	counts := map[string]int{}
	const total = 4000
	for i := 0; i < total; i++ {
		op := g.Next()
		counts[op.Class]++
		switch op.Class {
		case ClassNWC, ClassKNWC:
			if op.Method != "GET" {
				t.Fatalf("%s op method %q", op.Class, op.Method)
			}
		case ClassBatch, ClassMutate:
			if op.Method != "POST" || op.Body == "" {
				t.Fatalf("%s op %+v lacks a body", op.Class, op)
			}
		}
	}
	within := func(class string, share float64) {
		t.Helper()
		got := float64(counts[class]) / total
		if math.Abs(got-share) > 0.04 {
			t.Errorf("%s share = %.3f, want ~%.2f", class, got, share)
		}
	}
	within(ClassKNWC, 0.25)
	within(ClassBatch, 0.1)
	within(ClassMutate, 0.1)
	within(ClassNWC, 0.55)
}

func TestGenQueryShape(t *testing.T) {
	p := Profile{Window: 150, N: 6, K: 4, M: 2, KNWCShare: 1, Schemes: []string{"NWC*", "SRR"}}
	var ids atomic.Uint64
	g := p.NewGen(2, &ids)
	schemes := map[string]int{}
	for i := 0; i < 50; i++ {
		op := g.Next()
		if op.Class != ClassKNWC {
			t.Fatalf("class %q with KNWCShare=1", op.Class)
		}
		v := parseOpQuery(t, op)
		if v.Get("l") != "150" || v.Get("w") != "150" || v.Get("n") != "6" {
			t.Fatalf("query params %v", v)
		}
		if v.Get("k") != "4" || v.Get("m") != "2" {
			t.Fatalf("k/m params %v", v)
		}
		x, err := strconv.ParseFloat(v.Get("x"), 64)
		if err != nil || x < 0 || x > 10000 {
			t.Fatalf("x = %q outside the space", v.Get("x"))
		}
		schemes[v.Get("scheme")]++
	}
	if schemes["NWC*"] != 25 || schemes["SRR"] != 25 {
		t.Errorf("scheme rotation = %v", schemes)
	}
}

func TestGenHotSpot(t *testing.T) {
	p := Profile{HotShare: 1, HotX: 2000, HotY: 3000, HotSigma: 50}
	var ids atomic.Uint64
	g := p.NewGen(3, &ids)
	far := 0
	for i := 0; i < 200; i++ {
		v := parseOpQuery(t, g.Next())
		x, _ := strconv.ParseFloat(v.Get("x"), 64)
		y, _ := strconv.ParseFloat(v.Get("y"), 64)
		// 4 sigma covers all but ~1e-4 of draws.
		if math.Abs(x-2000) > 200 || math.Abs(y-3000) > 200 {
			far++
		}
	}
	if far > 2 {
		t.Errorf("%d/200 hot-spot centers far from (2000, 3000)", far)
	}
}

func TestGenMutateAlternates(t *testing.T) {
	p := Profile{MutateShare: 1}
	var ids atomic.Uint64
	g := p.NewGen(4, &ids)
	type mutation struct {
		X  float64 `json:"x"`
		Y  float64 `json:"y"`
		ID uint64  `json:"id"`
	}
	var lastIns mutation
	for i := 0; i < 20; i++ {
		op := g.Next()
		var m mutation
		if err := json.Unmarshal([]byte(op.Body), &m); err != nil {
			t.Fatalf("mutation body %q: %v", op.Body, err)
		}
		if i%2 == 0 {
			if op.Path != "/insert" {
				t.Fatalf("op %d path %q, want /insert", i, op.Path)
			}
			if m.ID <= 1<<40 {
				t.Fatalf("insert id %d not above the collision base", m.ID)
			}
			lastIns = m
		} else {
			if op.Path != "/delete" {
				t.Fatalf("op %d path %q, want /delete", i, op.Path)
			}
			if m != lastIns {
				t.Fatalf("delete %+v does not match the preceding insert %+v", m, lastIns)
			}
		}
	}
}

func TestGenBatchBody(t *testing.T) {
	p := Profile{BatchShare: 1, BatchSize: 5, Schemes: []string{"DIP"}}
	var ids atomic.Uint64
	g := p.NewGen(5, &ids)
	op := g.Next()
	if op.Path != "/batch/nwc" {
		t.Fatalf("batch path %q", op.Path)
	}
	var body struct {
		Queries []struct {
			X, Y, L, W float64
			N          int
			Scheme     string `json:"scheme"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(op.Body), &body); err != nil {
		t.Fatalf("batch body: %v\n%s", err, op.Body)
	}
	if len(body.Queries) != 5 {
		t.Fatalf("%d queries in batch, want 5", len(body.Queries))
	}
	for _, q := range body.Queries {
		if q.N != 8 || q.L != 200 || q.Scheme != "DIP" {
			t.Fatalf("batch query %+v", q)
		}
	}
}

func TestGenUniqueInsertIDs(t *testing.T) {
	var ids atomic.Uint64
	p := Profile{MutateShare: 1}
	a, b := p.NewGen(6, &ids), p.NewGen(7, &ids)
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		for _, g := range []*Gen{a, b} {
			op := g.Next()
			if op.Path != "/insert" {
				continue
			}
			if seen[op.Body] {
				t.Fatalf("duplicate insert across workers: %s", op.Body)
			}
			seen[op.Body] = true
		}
	}
}

func TestProfileValidate(t *testing.T) {
	for _, bad := range []Profile{
		{KNWCShare: -0.1},
		{BatchShare: 1.5},
		{KNWCShare: 0.6, BatchShare: 0.3, MutateShare: 0.3},
		{SpaceMin: 10, SpaceMax: 5},
		{N: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("profile %+v accepted", bad)
		}
	}
	if err := (Profile{}).Validate(); err != nil {
		t.Errorf("zero profile rejected: %v", err)
	}
}
