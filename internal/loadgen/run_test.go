package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwcq"
	"nwcq/internal/server"
)

// liveBackend serves a real index through the real handlers, so a run
// exercises the same wire format production does.
func liveBackend(t *testing.T) *httptest.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts := make([]nwcq.Point, 2000)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: uint64(i + 1)}
	}
	idx, err := nwcq.Build(pts, nwcq.WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(idx, idx).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunClosedLoop(t *testing.T) {
	ts := liveBackend(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Mode:     "closed",
		Workers:  4,
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     1,
		Profile: Profile{
			Window:      300,
			KNWCShare:   0.3,
			BatchShare:  0.1,
			BatchSize:   4,
			MutateShare: 0.1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Count == 0 {
		t.Fatal("no samples measured")
	}
	if rep.Total.Errors != 0 {
		t.Fatalf("%d errors against a healthy server", rep.Total.Errors)
	}
	if rep.Total.ThroughputRPS <= 0 {
		t.Errorf("throughput = %g", rep.Total.ThroughputRPS)
	}
	for _, class := range []string{ClassNWC, ClassKNWC} {
		c, ok := rep.Classes[class]
		if !ok || c.Count == 0 {
			t.Errorf("class %s missing from report: %+v", class, rep.Classes)
			continue
		}
		if c.LatencyP50Ms <= 0 || c.LatencyP99Ms < c.LatencyP50Ms {
			t.Errorf("%s quantiles p50=%g p99=%g", class, c.LatencyP50Ms, c.LatencyP99Ms)
		}
	}
	if rep.Mode != "closed" || rep.Workers != 4 {
		t.Errorf("report config echo %+v", rep)
	}

	// A deliberately unmeetable objective must fail the report.
	slos, err := ParseSLOs("nwc_p50<1ns")
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(slos, rep) || rep.Passed {
		t.Error("unmeetable objective passed")
	}
	// And a trivially loose one passes the same report.
	slos, err = ParseSLOs("all_p999<10m")
	if err != nil {
		t.Fatal(err)
	}
	if !Evaluate(slos, rep) {
		t.Errorf("loose objective failed: %+v", rep.SLOs)
	}
}

// stallServer answers every request in answer time but fully
// serialized: capacity is 1/answer requests per second no matter how
// many arrive concurrently — a stand-in for a stalled backend.
func stallServer(t *testing.T, answer time.Duration) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		time.Sleep(answer)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"found": false}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestOpenLoopCoordinatedOmission is the harness's reason to exist:
// against a server that serializes 20ms answers, a closed loop records
// ~20ms per request — each worker politely waits, so the stall never
// shows in the tail. The open loop keeps scheduling arrivals at the
// target rate and measures from the intended arrival time, so the
// queueing delay real clients would suffer lands in the histogram. The
// open-loop p99 must come out several times the closed-loop p99 on the
// same server.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	const answer = 20 * time.Millisecond

	closedRep, err := Run(context.Background(), Config{
		BaseURL:  stallServer(t, answer).URL,
		Mode:     "closed",
		Workers:  1,
		Duration: 600 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if closedRep.Total.Count == 0 {
		t.Fatal("closed loop measured nothing")
	}
	closedP99 := closedRep.Total.LatencyP99Ms
	if closedP99 < 15 || closedP99 > 60 {
		t.Fatalf("closed-loop p99 = %gms, expected near the 20ms service time", closedP99)
	}

	// 200 arrivals/s against a 50/s server: the backlog grows all run.
	openRep, err := Run(context.Background(), Config{
		BaseURL:  stallServer(t, answer).URL,
		Mode:     "open",
		Rate:     200,
		Workers:  4,
		Duration: time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if openRep.Total.Count == 0 {
		t.Fatal("open loop measured nothing")
	}
	openP99 := openRep.Total.LatencyP99Ms
	if openP99 < 3*closedP99 {
		t.Errorf("open-loop p99 = %gms, closed-loop p99 = %gms: stall not reflected in the tail (coordinated omission)",
			openP99, closedP99)
	}
	// The server definitively could not absorb the offered rate; the
	// report must say so rather than silently thinning the load.
	if openRep.Dropped == 0 {
		t.Error("open loop dropped nothing despite a 4x overload")
	}
}

// TestOpenLoopKeepsUp: against a server that keeps up with the offered
// rate, open-loop latencies stay near the true service time — the
// coordinated-omission correction only inflates the tail when there is
// an actual backlog to account for.
func TestOpenLoopKeepsUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"found": false}`))
	}))
	t.Cleanup(ts.Close)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Mode:     "open",
		Rate:     100,
		Poisson:  true,
		Workers:  8,
		Duration: 500 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Count == 0 {
		t.Fatal("no samples measured")
	}
	if rep.Arrival != "poisson" || rep.TargetRPS != 100 {
		t.Errorf("report config echo %+v", rep)
	}
	if rep.Total.LatencyP50Ms > 100 {
		t.Errorf("p50 = %gms against an idle local server", rep.Total.LatencyP50Ms)
	}
}

func TestWaitReady(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !ready.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)

	if err := WaitReady(context.Background(), nil, ts.URL, 100*time.Millisecond); err == nil {
		t.Error("not-ready server reported ready")
	}
	time.AfterFunc(100*time.Millisecond, func() { ready.Store(true) })
	if err := WaitReady(context.Background(), nil, ts.URL, 5*time.Second); err != nil {
		t.Errorf("ready server reported not ready: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() Config {
		return Config{BaseURL: "http://x", Mode: "closed", Duration: time.Second}
	}
	if err := func() error { c := base(); return c.validate() }(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.BaseURL = "" },
		func(c *Config) { c.Mode = "zigzag" },
		func(c *Config) { c.Mode = "open"; c.Rate = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -time.Second },
		func(c *Config) { c.Workers = -1 },
		func(c *Config) { c.Profile.KNWCShare = 2 },
	}
	for i, mutate := range bads {
		c := base()
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
