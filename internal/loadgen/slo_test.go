package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec      string
		class     string
		quantile  float64
		threshold time.Duration
		minRPS    float64
	}{
		{"nwc_p99<5ms", ClassNWC, 0.99, 5 * time.Millisecond, 0},
		{"all_p999<50ms", ClassAll, 0.999, 50 * time.Millisecond, 0},
		{"knwc_p95<2ms@1krps", ClassKNWC, 0.95, 2 * time.Millisecond, 1000},
		{"mutate_p50<1s@500rps", ClassMutate, 0.50, time.Second, 500},
		{"batch_p50 < 100ms @ 1.5krps", ClassBatch, 0.50, 100 * time.Millisecond, 1500},
	}
	for _, c := range cases {
		s, err := ParseSLO(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if s.Class != c.class || s.Quantile != c.quantile || s.Threshold != c.threshold || s.MinRPS != c.minRPS {
			t.Errorf("%q parsed to %+v", c.spec, s)
		}
	}

	for _, bad := range []string{
		"",
		"nwc_p99",           // no bound
		"p99<5ms",           // no class
		"zzz_p99<5ms",       // unknown class
		"nwc_p99<zzz",       // unparseable duration
		"nwc_p99<-5ms",      // negative bound
		"nwc_p0<5ms",        // zero quantile
		"nwc_p<5ms",         // empty quantile
		"nwc_p99<5ms@3",     // rate floor without unit
		"nwc_p99<5ms@krps",  // rate floor without number
		"nwc_p99<5ms@-1rps", // negative rate floor
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs(" nwc_p99<5ms, all_p999<50ms ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("%d objectives, want 2", len(slos))
	}
	if slos, err := ParseSLOs(""); err != nil || len(slos) != 0 {
		t.Errorf("empty list: %v, %d objectives", err, len(slos))
	}
	if _, err := ParseSLOs("nwc_p99<5ms,bogus"); err == nil {
		t.Error("bad member accepted")
	}
}

func TestLoadSLOFile(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`["nwc_p99<5ms", "all_p999<50ms"]`), 0o644)
	wrapped := filepath.Join(dir, "wrapped.json")
	os.WriteFile(wrapped, []byte(`{"slos": ["knwc_p95<2ms@1krps"]}`), 0o644)

	if slos, err := LoadSLOFile(bare); err != nil || len(slos) != 2 {
		t.Errorf("bare array: %v, %d objectives", err, len(slos))
	}
	slos, err := LoadSLOFile(wrapped)
	if err != nil || len(slos) != 1 {
		t.Fatalf("wrapped: %v, %d objectives", err, len(slos))
	}
	if slos[0].MinRPS != 1000 {
		t.Errorf("wrapped rate floor = %g", slos[0].MinRPS)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"not": "slos"}`), 0o644)
	if _, err := LoadSLOFile(bad); err == nil {
		t.Error("shapeless file accepted")
	}
	if _, err := LoadSLOFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEvaluate(t *testing.T) {
	rep := &Report{
		Total: ClassReport{Count: 1000, ThroughputRPS: 900, LatencyP999Ms: 40},
		Classes: map[string]ClassReport{
			ClassNWC:  {Count: 800, ThroughputRPS: 700, LatencyP50Ms: 1, LatencyP99Ms: 4.2},
			ClassKNWC: {Count: 200, ThroughputRPS: 200, LatencyP95Ms: 8},
		},
	}
	mustSLOs := func(list string) []SLO {
		t.Helper()
		slos, err := ParseSLOs(list)
		if err != nil {
			t.Fatal(err)
		}
		return slos
	}

	if !Evaluate(mustSLOs("nwc_p99<5ms,all_p999<50ms"), rep) {
		t.Errorf("passing objectives failed: %+v", rep.SLOs)
	}
	if !rep.Passed || len(rep.SLOs) != 2 {
		t.Errorf("report verdict %v with %d results", rep.Passed, len(rep.SLOs))
	}
	if rep.SLOs[0].ObservedMs != 4.2 {
		t.Errorf("observed = %g, want 4.2", rep.SLOs[0].ObservedMs)
	}

	// Latency bound violated.
	if Evaluate(mustSLOs("knwc_p95<2ms"), rep) || rep.Passed {
		t.Error("violated latency bound passed")
	}
	// Latency fine but throughput floor missed.
	if Evaluate(mustSLOs("nwc_p99<5ms@1krps"), rep) {
		t.Error("missed throughput floor passed")
	}
	if rep.SLOs[0].Detail == "" {
		t.Error("throughput failure carries no detail")
	}
	// Class with no samples fails loudly.
	if Evaluate(mustSLOs("batch_p50<1s"), rep) {
		t.Error("objective on an empty class passed")
	}
	// Unarchived quantile fails loudly.
	if Evaluate(mustSLOs("nwc_p90<1s"), rep) {
		t.Error("objective on an unarchived quantile passed")
	}
	// No objectives: vacuous pass.
	if !Evaluate(nil, rep) {
		t.Error("empty objective list failed")
	}
}
