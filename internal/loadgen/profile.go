package loadgen

import (
	"fmt"
	"math/rand"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
)

// Op classes the harness records separately: each gets its own latency
// histogram and its own SLO line, because a p99 mixing point queries
// with 16-query batches is meaningless.
const (
	ClassNWC    = "nwc"
	ClassKNWC   = "knwc"
	ClassBatch  = "batch"
	ClassMutate = "mutate"
	// ClassSub records standing-query delivery: each sample is one SSE
	// frame's publish→notify latency (server publish instant to client
	// receipt), not a request round trip (subscribe.go).
	ClassSub = "sub"
	ClassAll = "all" // aggregate pseudo-class, SLO targets only
)

// Classes lists the concrete op classes in report order.
var Classes = []string{ClassNWC, ClassKNWC, ClassBatch, ClassMutate, ClassSub}

// Op is one generated request, ready to issue.
type Op struct {
	Class  string
	Method string
	Path   string // URL path + raw query, relative to the base URL
	Body   string // JSON body for POSTs, empty for GETs
}

// Profile describes the query mix the generator draws from. The zero
// value is usable: uniform NWC-only traffic over the standard space.
type Profile struct {
	// SpaceMin/SpaceMax bound the query-center range per axis; both zero
	// means the standard normalised space [0, 10000].
	SpaceMin, SpaceMax float64
	// Window is the query window side length (both axes); 0 means 200.
	Window float64
	// N, K, M are the query cardinalities; zero values mean 8, 3, 1.
	N, K, M int
	// Schemes rotates the optimisation scheme across queries; empty
	// leaves the server default.
	Schemes []string
	// KNWCShare, BatchShare and MutateShare are the fractions of ops
	// drawn as kNWC queries, batch requests and mutations; the remainder
	// are single NWC queries. Each in [0, 1], summing to at most 1.
	KNWCShare, BatchShare, MutateShare float64
	// BatchSize is the number of queries per batch op; 0 means 16.
	BatchSize int
	// HotShare is the fraction of query centers drawn from a Gaussian
	// hot spot instead of uniformly; HotX/HotY/HotSigma place it. Zero
	// HotX/HotY default to the space center, zero HotSigma to 1/40 of
	// the space side. A skewed center distribution is what makes shard
	// pruning and the result cache actually matter under load.
	HotShare                                     float64
	HotX, HotY, HotSigma                         float64
	rngSpaceLo, rngSpaceHi                       float64 // resolved bounds, set by normalized
	resolvedWindow                               float64
	resolvedN, resolvedK                         int
	resolvedM, resolvedBatch                     int
	resolvedHotX, resolvedHotY, resolvedHotSigma float64
}

// Validate reports a configuration error, nil when the profile is
// usable.
func (p Profile) Validate() error {
	for _, s := range []struct {
		name string
		v    float64
	}{{"knwc", p.KNWCShare}, {"batch", p.BatchShare}, {"mutate", p.MutateShare}, {"hot", p.HotShare}} {
		if s.v < 0 || s.v > 1 {
			return fmt.Errorf("loadgen: %s share %g outside [0, 1]", s.name, s.v)
		}
	}
	if sum := p.KNWCShare + p.BatchShare + p.MutateShare; sum > 1 {
		return fmt.Errorf("loadgen: class shares sum to %g > 1", sum)
	}
	if p.SpaceMax < p.SpaceMin {
		return fmt.Errorf("loadgen: space max %g < min %g", p.SpaceMax, p.SpaceMin)
	}
	if p.Window < 0 || p.N < 0 || p.K < 0 || p.M < 0 || p.BatchSize < 0 {
		return fmt.Errorf("loadgen: negative query parameter")
	}
	return nil
}

// normalized resolves defaults into the private fields the generator
// reads.
func (p Profile) normalized() Profile {
	p.rngSpaceLo, p.rngSpaceHi = p.SpaceMin, p.SpaceMax
	if p.rngSpaceLo == 0 && p.rngSpaceHi == 0 {
		p.rngSpaceHi = 10000
	}
	p.resolvedWindow = p.Window
	if p.resolvedWindow == 0 {
		p.resolvedWindow = 200
	}
	p.resolvedN, p.resolvedK, p.resolvedM = p.N, p.K, p.M
	if p.resolvedN == 0 {
		p.resolvedN = 8
	}
	if p.resolvedK == 0 {
		p.resolvedK = 3
	}
	if p.resolvedM == 0 {
		p.resolvedM = 1
	}
	p.resolvedBatch = p.BatchSize
	if p.resolvedBatch == 0 {
		p.resolvedBatch = 16
	}
	side := p.rngSpaceHi - p.rngSpaceLo
	p.resolvedHotX, p.resolvedHotY, p.resolvedHotSigma = p.HotX, p.HotY, p.HotSigma
	if p.resolvedHotX == 0 && p.resolvedHotY == 0 {
		p.resolvedHotX = p.rngSpaceLo + side/2
		p.resolvedHotY = p.rngSpaceLo + side/2
	}
	if p.resolvedHotSigma == 0 {
		p.resolvedHotSigma = side / 40
	}
	return p
}

// Gen draws ops from a profile. One Gen per worker goroutine — it is
// not safe for concurrent use; only the insert-ID sequence is shared.
type Gen struct {
	p   Profile
	rng *rand.Rand
	ids *atomic.Uint64 // shared: unique IDs across all workers
	// pending is the last inserted-but-not-deleted point, so mutations
	// alternate insert/delete and the dataset size stays put under load.
	pendingID uint64
	pendingX  float64
	pendingY  float64
	schemeIdx int
}

// NewGen builds a generator seeded for one worker. ids must be shared
// by every generator of a run so inserted IDs never collide.
func (p Profile) NewGen(seed int64, ids *atomic.Uint64) *Gen {
	return &Gen{p: p.normalized(), rng: rand.New(rand.NewSource(seed)), ids: ids}
}

// center draws a query center: hot-spot Gaussian with probability
// HotShare, uniform otherwise, clamped to the space.
func (g *Gen) center() (x, y float64) {
	p := g.p
	if p.HotShare > 0 && g.rng.Float64() < p.HotShare {
		x = p.resolvedHotX + g.rng.NormFloat64()*p.resolvedHotSigma
		y = p.resolvedHotY + g.rng.NormFloat64()*p.resolvedHotSigma
	} else {
		x = p.rngSpaceLo + g.rng.Float64()*(p.rngSpaceHi-p.rngSpaceLo)
		y = p.rngSpaceLo + g.rng.Float64()*(p.rngSpaceHi-p.rngSpaceLo)
	}
	x = min(max(x, p.rngSpaceLo), p.rngSpaceHi)
	y = min(max(y, p.rngSpaceLo), p.rngSpaceHi)
	return x, y
}

func (g *Gen) scheme() string {
	if len(g.p.Schemes) == 0 {
		return ""
	}
	s := g.p.Schemes[g.schemeIdx%len(g.p.Schemes)]
	g.schemeIdx++
	return s
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// queryValues renders the shared window-query parameters.
func (g *Gen) queryValues() url.Values {
	x, y := g.center()
	v := url.Values{}
	v.Set("x", fmtF(x))
	v.Set("y", fmtF(y))
	v.Set("l", fmtF(g.p.resolvedWindow))
	v.Set("w", fmtF(g.p.resolvedWindow))
	v.Set("n", strconv.Itoa(g.p.resolvedN))
	if s := g.scheme(); s != "" {
		v.Set("scheme", s)
	}
	return v
}

// Next draws the next op.
func (g *Gen) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.p.MutateShare:
		return g.mutateOp()
	case r < g.p.MutateShare+g.p.BatchShare:
		return g.batchOp()
	case r < g.p.MutateShare+g.p.BatchShare+g.p.KNWCShare:
		v := g.queryValues()
		v.Set("k", strconv.Itoa(g.p.resolvedK))
		v.Set("m", strconv.Itoa(g.p.resolvedM))
		return Op{Class: ClassKNWC, Method: "GET", Path: "/knwc?" + v.Encode()}
	default:
		return Op{Class: ClassNWC, Method: "GET", Path: "/nwc?" + g.queryValues().Encode()}
	}
}

// mutateOp alternates insert and delete of the same point, so a long
// run mutates constantly without growing the dataset.
func (g *Gen) mutateOp() Op {
	if g.pendingID != 0 {
		op := Op{
			Class:  ClassMutate,
			Method: "POST",
			Path:   "/delete",
			Body: fmt.Sprintf(`{"x": %s, "y": %s, "id": %d}`,
				fmtF(g.pendingX), fmtF(g.pendingY), g.pendingID),
		}
		g.pendingID = 0
		return op
	}
	x, y := g.center()
	// IDs from a high base so generated points never collide with the
	// dataset under test.
	id := 1<<40 + g.ids.Add(1)
	g.pendingID, g.pendingX, g.pendingY = id, x, y
	return Op{
		Class:  ClassMutate,
		Method: "POST",
		Path:   "/insert",
		Body:   fmt.Sprintf(`{"x": %s, "y": %s, "id": %d}`, fmtF(x), fmtF(y), id),
	}
}

// batchOp bundles BatchSize NWC queries into one POST /batch/nwc.
func (g *Gen) batchOp() Op {
	var sb strings.Builder
	sb.WriteString(`{"queries": [`)
	for i := 0; i < g.p.resolvedBatch; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		x, y := g.center()
		fmt.Fprintf(&sb, `{"x": %s, "y": %s, "l": %s, "w": %s, "n": %d`,
			fmtF(x), fmtF(y), fmtF(g.p.resolvedWindow), fmtF(g.p.resolvedWindow), g.p.resolvedN)
		if s := g.scheme(); s != "" {
			fmt.Fprintf(&sb, `, "scheme": %q`, s)
		}
		sb.WriteString("}")
	}
	sb.WriteString(`]}`)
	return Op{Class: ClassBatch, Method: "POST", Path: "/batch/nwc", Body: sb.String()}
}
