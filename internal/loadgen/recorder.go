package loadgen

import (
	"sync/atomic"
	"time"

	"nwcq/internal/histo"
)

// Recorder accumulates latencies per op class plus an aggregate, into
// the same log-bucketed histogram the server's metrics use — identical
// quantile semantics on both sides of the wire. Record is wait-free, so
// hundreds of workers share one recorder without contention. The run
// driver keeps two recorders and atomically swaps from the warmup one
// to the measured one, so warmup samples never pollute the report.
type Recorder struct {
	classes map[string]*classRec
	all     *classRec
}

type classRec struct {
	hist *histo.Histogram
	errs atomic.Uint64
}

// NewRecorder builds a recorder covering every op class.
func NewRecorder() *Recorder {
	r := &Recorder{classes: make(map[string]*classRec, len(Classes))}
	for _, c := range Classes {
		r.classes[c] = &classRec{hist: histo.Must(histo.LatencyBuckets())}
	}
	r.all = &classRec{hist: histo.Must(histo.LatencyBuckets())}
	return r
}

// Record adds one sample. For open-loop runs d is measured from the
// intended arrival time, not the actual send — the coordinated-omission
// correction: a stalled server inflates every queued sample's latency
// instead of silently thinning the sample stream.
func (r *Recorder) Record(class string, d time.Duration, failed bool) {
	c, ok := r.classes[class]
	if !ok {
		return
	}
	s := d.Seconds()
	c.hist.Observe(s)
	r.all.hist.Observe(s)
	if failed {
		c.errs.Add(1)
		r.all.errs.Add(1)
	}
}

// ClassReport is the measured outcome for one op class.
type ClassReport struct {
	Count         uint64  `json:"count"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyP999Ms float64 `json:"latency_p999_ms"`
}

// Report is the harness's archived result (BENCH_load.json).
type Report struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"`
	Arrival     string  `json:"arrival,omitempty"` // open loop: fixed or poisson
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Workers     int     `json:"workers"`
	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec"`
	StartedAt   string  `json:"started_at,omitempty"`
	// Dropped counts open-loop arrivals that were scheduled but never
	// issued: the intent buffer overflowed, or the run ended with a
	// backlog. A non-zero value means the server fell behind the target
	// rate by more than the harness would queue — report it rather than
	// silently thinning the load.
	Dropped uint64                 `json:"dropped,omitempty"`
	Total   ClassReport            `json:"total"`
	Classes map[string]ClassReport `json:"classes"`
	SLOs    []SLOResult            `json:"slos,omitempty"`
	Passed  bool                   `json:"passed"`
}

func (c *classRec) report(elapsed time.Duration) ClassReport {
	s := c.hist.Snapshot()
	rep := ClassReport{
		Count:         s.Count,
		Errors:        c.errs.Load(),
		LatencyMeanMs: s.Mean() * 1e3,
		LatencyP50Ms:  s.QuantileOr(0.50, 0) * 1e3,
		LatencyP95Ms:  s.QuantileOr(0.95, 0) * 1e3,
		LatencyP99Ms:  s.QuantileOr(0.99, 0) * 1e3,
		LatencyP999Ms: s.QuantileOr(0.999, 0) * 1e3,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(s.Count) / elapsed.Seconds()
	}
	return rep
}

// Snapshot renders the recorder into per-class reports over the
// measured window.
func (r *Recorder) Snapshot(elapsed time.Duration) (total ClassReport, classes map[string]ClassReport) {
	classes = make(map[string]ClassReport, len(r.classes))
	for name, c := range r.classes {
		if rep := c.report(elapsed); rep.Count > 0 {
			classes[name] = rep
		}
	}
	return r.all.report(elapsed), classes
}
