package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Standing-query subscribers: each holds one GET /subscribe SSE stream
// open for the run and records a "sub"-class sample per delivered
// frame. The sample is publish→notify latency — the server stamps each
// frame with the publishing mutation's wall-clock instant
// (published_unix_ns) and the subscriber measures receipt against it —
// so the class answers "how stale is a continuous query's answer when
// it reaches the client", which no request/response latency captures.
// Frames without the stamp (init frames, and resyncs whose trigger
// instant was coalesced away) carry no latency and are not recorded.

// subReconnectDelay paces reconnect attempts after a dropped stream so
// a down server is probed, not hammered.
const subReconnectDelay = 100 * time.Millisecond

// subscribeLoop keeps one standing query subscribed for the context's
// lifetime, reconnecting (from scratch — at-least-once delivery makes
// that safe) whenever the stream drops.
func subscribeLoop(ctx context.Context, client *http.Client, base string, gen *Gen, rec *atomic.Pointer[Recorder]) {
	// One standing query per subscriber for its whole lifetime: the
	// point of the class is delivery latency of a stable subscription,
	// not subscribe-call throughput.
	url := base + "/subscribe?" + gen.queryValues().Encode()
	for ctx.Err() == nil {
		readSubscription(ctx, client, url, rec)
		select {
		case <-ctx.Done():
		case <-time.After(subReconnectDelay):
		}
	}
}

// readSubscription consumes one SSE stream until it ends (server
// shutdown, network error or context cancellation), recording every
// stamped frame.
func readSubscription(ctx context.Context, client *http.Client, url string, rec *atomic.Pointer[Recorder]) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if ctx.Err() == nil {
			rec.Load().Record(ClassSub, 0, true)
		}
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				recordFrame(rec, data.String())
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			// Multi-line data fields concatenate per the SSE spec; the
			// server emits single-line JSON but the parser stays general.
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event: lines and ": hb" heartbeat comments carry nothing
			// the latency accounting needs.
		}
	}
}

// recordFrame parses one SSE data payload and records its
// publish→notify latency when the frame carries a publish stamp.
func recordFrame(rec *atomic.Pointer[Recorder], data string) {
	var f struct {
		PublishedUnixNS int64 `json:"published_unix_ns"`
	}
	if json.Unmarshal([]byte(data), &f) != nil || f.PublishedUnixNS == 0 {
		return
	}
	lat := time.Since(time.Unix(0, f.PublishedUnixNS))
	if lat < 0 {
		lat = 0 // clock skew between harness and server hosts
	}
	rec.Load().Record(ClassSub, lat, false)
}
