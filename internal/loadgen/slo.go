package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

// SLO is one parsed objective. The textual grammar is
//
//	<class>_p<quantile> < <latency> [@ <rate>rps|krps]
//
// e.g. "nwc_p99<5ms", "all_p999<50ms", "knwc_p95<2ms@1krps". The class
// is an op class or "all"; the quantile digits read as decimals after
// the point (p50 → 0.50, p999 → 0.999); the optional @-clause demands
// the class also sustained at least that throughput — a latency bound
// is trivial to meet at one request per second, so rate floors keep the
// verdict honest.
type SLO struct {
	Spec      string        // original text
	Class     string        // op class or "all"
	Quantile  float64       // (0, 1)
	Threshold time.Duration // latency bound, exclusive
	MinRPS    float64       // 0 = no throughput floor
}

// ParseSLO parses one objective.
func ParseSLO(spec string) (SLO, error) {
	s := SLO{Spec: spec}
	text := strings.ReplaceAll(spec, " ", "")
	lt := strings.IndexByte(text, '<')
	if lt < 0 {
		return s, fmt.Errorf("loadgen: SLO %q has no '<' (want e.g. nwc_p99<5ms)", spec)
	}
	left, right := text[:lt], text[lt+1:]

	p := strings.LastIndex(left, "_p")
	if p < 1 {
		return s, fmt.Errorf("loadgen: SLO %q lacks a <class>_p<quantile> left side", spec)
	}
	s.Class = left[:p]
	switch s.Class {
	case ClassNWC, ClassKNWC, ClassBatch, ClassMutate, ClassSub, ClassAll:
	default:
		return s, fmt.Errorf("loadgen: SLO %q names unknown class %q", spec, s.Class)
	}
	digits := left[p+2:]
	if digits == "" {
		return s, fmt.Errorf("loadgen: SLO %q has an empty quantile", spec)
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n <= 0 {
		return s, fmt.Errorf("loadgen: SLO %q has quantile %q, want digits like 50, 95, 99, 999", spec, digits)
	}
	s.Quantile = float64(n) / math.Pow(10, float64(len(digits)))
	if s.Quantile >= 1 {
		return s, fmt.Errorf("loadgen: SLO %q quantile %g not below 1", spec, s.Quantile)
	}

	if at := strings.IndexByte(right, '@'); at >= 0 {
		rate := right[at+1:]
		right = right[:at]
		mult := 1.0
		switch {
		case strings.HasSuffix(rate, "krps"):
			mult, rate = 1000, strings.TrimSuffix(rate, "krps")
		case strings.HasSuffix(rate, "rps"):
			rate = strings.TrimSuffix(rate, "rps")
		default:
			return s, fmt.Errorf("loadgen: SLO %q rate floor %q lacks an rps/krps suffix", spec, rate)
		}
		v, err := strconv.ParseFloat(rate, 64)
		if err != nil || v <= 0 {
			return s, fmt.Errorf("loadgen: SLO %q has unparseable rate floor", spec)
		}
		s.MinRPS = v * mult
	}
	s.Threshold, err = time.ParseDuration(right)
	if err != nil || s.Threshold <= 0 {
		return s, fmt.Errorf("loadgen: SLO %q has unparseable latency bound %q", spec, right)
	}
	return s, nil
}

// ParseSLOs parses a comma-separated list; empty input is no SLOs.
func ParseSLOs(list string) ([]SLO, error) {
	var out []SLO
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		s, err := ParseSLO(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// LoadSLOFile reads objectives from a JSON file: either a bare array of
// spec strings or an object with a "slos" array.
func LoadSLOFile(path string) ([]SLO, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []string
	if err := json.Unmarshal(raw, &specs); err != nil {
		var wrapped struct {
			SLOs []string `json:"slos"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil || wrapped.SLOs == nil {
			return nil, fmt.Errorf("loadgen: %s: want a JSON array of SLO specs or {\"slos\": [...]}", path)
		}
		specs = wrapped.SLOs
	}
	var out []SLO
	for _, spec := range specs {
		s, err := ParseSLO(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// SLOResult is one objective's verdict against a report.
type SLOResult struct {
	Spec        string  `json:"spec"`
	Passed      bool    `json:"passed"`
	ObservedMs  float64 `json:"observed_ms"`
	ThresholdMs float64 `json:"threshold_ms"`
	ObservedRPS float64 `json:"observed_rps,omitempty"`
	MinRPS      float64 `json:"min_rps,omitempty"`
	Detail      string  `json:"detail,omitempty"`
}

// classReport resolves an SLO's class in a report; "all" reads the
// aggregate.
func classReport(rep *Report, class string) (ClassReport, bool) {
	if class == ClassAll {
		return rep.Total, true
	}
	c, ok := rep.Classes[class]
	return c, ok
}

// quantileMs reads the requested quantile off a class report. Only the
// archived quantiles are addressable; the grammar admits any digits, so
// unknown ones fail the objective loudly instead of guessing.
func quantileMs(c ClassReport, q float64) (float64, bool) {
	switch q {
	case 0.50:
		return c.LatencyP50Ms, true
	case 0.95:
		return c.LatencyP95Ms, true
	case 0.99:
		return c.LatencyP99Ms, true
	case 0.999:
		return c.LatencyP999Ms, true
	}
	return 0, false
}

// Evaluate scores every objective against the report and stores the
// verdicts on it. It returns true only when every objective passed; an
// empty slice passes vacuously.
func Evaluate(slos []SLO, rep *Report) bool {
	rep.SLOs = rep.SLOs[:0]
	passed := true
	for _, s := range slos {
		res := SLOResult{Spec: s.Spec, ThresholdMs: float64(s.Threshold) / 1e6, MinRPS: s.MinRPS}
		if c, ok := classReport(rep, s.Class); !ok || c.Count == 0 {
			res.Detail = fmt.Sprintf("no %s samples in the measured window", s.Class)
		} else if obs, known := quantileMs(c, s.Quantile); !known {
			res.Detail = fmt.Sprintf("quantile p%g not archived (have p50/p95/p99/p999)", s.Quantile*100)
		} else if math.IsNaN(obs) {
			// A NaN quantile is an empty distribution that slipped past the
			// count check (e.g. a hand-edited report): fail as loudly as a
			// missing class, and keep ObservedMs at 0 so the report still
			// encodes (JSON rejects NaN).
			res.Detail = fmt.Sprintf("p%g of %s is undefined: empty latency distribution", s.Quantile*100, s.Class)
		} else {
			res.ObservedMs = obs
			res.ObservedRPS = c.ThroughputRPS
			res.Passed = obs < res.ThresholdMs
			if s.MinRPS > 0 && c.ThroughputRPS < s.MinRPS {
				res.Passed = false
				res.Detail = fmt.Sprintf("throughput %.1f rps below the %.1f rps floor", c.ThroughputRPS, s.MinRPS)
			}
		}
		if !res.Passed {
			passed = false
		}
		rep.SLOs = append(rep.SLOs, res)
	}
	rep.Passed = passed
	return passed
}
