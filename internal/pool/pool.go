// Package pool provides the bounded worker pool every fan-out path
// shares: batch execution on all backends, the sharded router's scatter
// phase, and its border/certify fetch passes. One implementation keeps
// the claim/fail semantics identical everywhere.
package pool

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob: n itself when positive,
// GOMAXPROCS otherwise.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(0..n-1) over a bounded worker pool, returning the first
// error (remaining work is skipped, in-flight calls finish). With one
// worker (or one item) it degenerates to a plain loop on the calling
// goroutine — no goroutines, no locks, no allocations.
func Each(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
