// Package datagen generates the datasets of the paper's evaluation
// (Section 5, Table 2) and loads/saves point sets as CSV.
//
// The two real datasets — CA (62,556 California places) and NY (255,259
// New York places) — cannot be redistributed, so the package provides
// deterministic synthetic emulations, CALike and NYLike, that preserve
// the property every experiment exercises: the degree of spatial
// clustering, at identical cardinality, in the same normalised
// 10,000 × 10,000 space. The Gaussian dataset is generated exactly as
// the paper specifies (mean 5,000, standard deviation 2,000, 250,000
// points). Real data in x,y CSV form can be dropped in via LoadCSV.
package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"nwcq/internal/geom"
)

// SpaceWidth is the side of the normalised object space used throughout
// the paper's evaluation.
const SpaceWidth = 10000

// Space returns the normalised object space rectangle.
func Space() geom.Rect { return geom.NewRect(0, 0, SpaceWidth, SpaceWidth) }

// Cardinalities of the paper's datasets (Table 2).
const (
	CACardinality       = 62556
	NYCardinality       = 255259
	GaussianCardinality = 250000
)

// clampPoint forces a point into the space (boundary inclusive).
func clampPoint(p geom.Point) geom.Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X > SpaceWidth {
		p.X = SpaceWidth
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > SpaceWidth {
		p.Y = SpaceWidth
	}
	return p
}

// Gaussian generates n points whose coordinates are independently
// normal with the given mean and standard deviation, clipped to the
// space — the paper's synthetic dataset uses mean 5,000 and σ 2,000.
func Gaussian(n int, mean, stddev float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = clampPoint(geom.Point{
			X:  mean + rng.NormFloat64()*stddev,
			Y:  mean + rng.NormFloat64()*stddev,
			ID: uint64(i),
		})
	}
	return pts
}

// PaperGaussian is the paper's default synthetic dataset: 250,000 points,
// mean 5,000, σ 2,000.
func PaperGaussian(seed int64) []geom.Point {
	return Gaussian(GaussianCardinality, 5000, 2000, seed)
}

// Uniform generates n points uniformly over the space.
func Uniform(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X:  rng.Float64() * SpaceWidth,
			Y:  rng.Float64() * SpaceWidth,
			ID: uint64(i),
		}
	}
	return pts
}

// ClusterSpec parameterises a cluster-mixture dataset.
type ClusterSpec struct {
	// N is the total number of points.
	N int
	// Clusters is the number of cluster centers.
	Clusters int
	// Spread is the per-cluster Gaussian standard deviation.
	Spread float64
	// BackgroundFrac is the fraction of points drawn uniformly over the
	// whole space instead of from a cluster.
	BackgroundFrac float64
	// PowerLaw skews cluster sizes: cluster c receives weight
	// (c+1)^-PowerLaw. Zero gives equal sizes.
	PowerLaw float64
	// Corridor, when true, places cluster centers along a few linear
	// corridors instead of uniformly — emulating places strung along
	// coastlines and valleys.
	Corridor bool
}

// Clustered generates a deterministic cluster-mixture dataset.
func Clustered(spec ClusterSpec, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	if spec.Clusters < 1 {
		spec.Clusters = 1
	}
	centers := make([]geom.Point, spec.Clusters)
	if spec.Corridor {
		// Three diagonal-ish corridors crossing the space.
		type corridor struct{ x0, y0, x1, y1 float64 }
		cs := []corridor{
			{500, 500, 3500, 9500},
			{2000, 300, 9700, 4000},
			{4500, 5000, 9500, 9700},
		}
		for i := range centers {
			c := cs[rng.Intn(len(cs))]
			t := rng.Float64()
			centers[i] = clampPoint(geom.Point{
				X: c.x0 + t*(c.x1-c.x0) + rng.NormFloat64()*300,
				Y: c.y0 + t*(c.y1-c.y0) + rng.NormFloat64()*300,
			})
		}
	} else {
		for i := range centers {
			centers[i] = geom.Point{X: rng.Float64() * SpaceWidth, Y: rng.Float64() * SpaceWidth}
		}
	}
	// Cumulative cluster weights.
	weights := make([]float64, spec.Clusters)
	total := 0.0
	for i := range weights {
		wt := 1.0
		if spec.PowerLaw > 0 {
			wt = math.Pow(float64(i+1), -spec.PowerLaw)
		}
		total += wt
		weights[i] = total
	}
	pick := func() geom.Point {
		r := rng.Float64() * total
		i := sort.SearchFloat64s(weights, r)
		if i >= len(centers) {
			i = len(centers) - 1
		}
		return centers[i]
	}
	pts := make([]geom.Point, spec.N)
	for i := range pts {
		if rng.Float64() < spec.BackgroundFrac {
			pts[i] = geom.Point{X: rng.Float64() * SpaceWidth, Y: rng.Float64() * SpaceWidth, ID: uint64(i)}
			continue
		}
		c := pick()
		pts[i] = clampPoint(geom.Point{
			X:  c.X + rng.NormFloat64()*spec.Spread,
			Y:  c.Y + rng.NormFloat64()*spec.Spread,
			ID: uint64(i),
		})
	}
	return pts
}

// CALike emulates the CA dataset: 62,556 points, moderately clustered —
// power-law-sized clusters strung along corridors plus a near-uniform
// rural background (cf. the scatter of Figure 8(a)).
func CALike(seed int64) []geom.Point { return CALikeN(CACardinality, seed) }

// CALikeN is CALike at an arbitrary cardinality, for scaled-down runs.
func CALikeN(n int, seed int64) []geom.Point {
	return Clustered(ClusterSpec{
		N:              n,
		Clusters:       120,
		Spread:         120,
		BackgroundFrac: 0.15,
		PowerLaw:       0.9,
		Corridor:       true,
	}, seed)
}

// NYLike emulates the NY dataset: 255,259 points, highly clustered —
// most of the mass in a few very tight metropolitan super-clusters with
// small towns and a sparse background ("the objects in the NY dataset
// are highly clustered in certain areas", Section 5.1).
func NYLike(seed int64) []geom.Point { return NYLikeN(NYCardinality, seed) }

// NYLikeN is NYLike at an arbitrary cardinality, for scaled-down runs.
func NYLikeN(n int, seed int64) []geom.Point {
	return Clustered(ClusterSpec{
		N:              n,
		Clusters:       40,
		Spread:         45,
		BackgroundFrac: 0.05,
		PowerLaw:       1.6,
		Corridor:       false,
	}, seed)
}

// SaveCSV writes points as "x,y[,id]" lines.
func SaveCSV(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g,%d\n", p.X, p.Y, p.ID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads points from "x,y" or "x,y,id" lines (blank lines and
// lines starting with '#' are skipped). Missing IDs are assigned
// sequentially.
func LoadCSV(r io.Reader) ([]geom.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pts []geom.Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("datagen: line %d: want x,y[,id], got %q", lineNo, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: line %d: bad y: %w", lineNo, err)
		}
		id := uint64(len(pts))
		if len(fields) >= 3 && strings.TrimSpace(fields[2]) != "" {
			id, err = strconv.ParseUint(strings.TrimSpace(fields[2]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: line %d: bad id: %w", lineNo, err)
			}
		}
		pts = append(pts, geom.Point{X: x, Y: y, ID: id})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// Normalize rescales arbitrary points into the standard space, the
// preprocessing the paper applies to its real datasets ("the data space
// for these two real datasets are normalized to a square of width
// 10,000").
func Normalize(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	bounds := geom.EmptyRect()
	for _, p := range pts {
		bounds = bounds.ExtendPoint(p)
	}
	span := math.Max(bounds.Width(), bounds.Height())
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		q := p
		if span > 0 {
			q.X = (p.X - bounds.MinX) / span * SpaceWidth
			q.Y = (p.Y - bounds.MinY) / span * SpaceWidth
		} else {
			q.X, q.Y = SpaceWidth/2, SpaceWidth/2
		}
		out[i] = clampPoint(q)
	}
	return out
}

// ClusteringIndex measures how clustered a point set is: the fraction of
// a regular 100 × 100 grid's occupied cells holding the top 20% densest
// mass... concretely it returns the Gini-like share of points residing
// in the densest 1% of cells. Uniform data scores near 0.01·density;
// the paper's NY-like data scores far higher. Used by tests to verify
// the emulations land in the intended clustering order.
func ClusteringIndex(pts []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	const g = 100
	counts := make([]int, g*g)
	for _, p := range pts {
		cx := int(p.X / SpaceWidth * g)
		cy := int(p.Y / SpaceWidth * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		counts[cy*g+cx]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := g * g / 100 // densest 1% of cells
	sum := 0
	for _, c := range counts[:top] {
		sum += c
	}
	return float64(sum) / float64(len(pts))
}
