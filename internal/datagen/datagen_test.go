package datagen

import (
	"bytes"
	"strings"
	"testing"

	"nwcq/internal/geom"
)

func inSpace(t *testing.T, pts []geom.Point, label string) {
	t.Helper()
	space := Space()
	for _, p := range pts {
		if !space.ContainsPoint(p) {
			t.Fatalf("%s: point %v outside space", label, p)
		}
	}
}

func TestGaussian(t *testing.T) {
	pts := Gaussian(20000, 5000, 2000, 1)
	if len(pts) != 20000 {
		t.Fatalf("cardinality %d", len(pts))
	}
	inSpace(t, pts, "gaussian")
	// Rough moment check.
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/float64(len(pts)), sy/float64(len(pts))
	if mx < 4800 || mx > 5200 || my < 4800 || my > 5200 {
		t.Errorf("mean (%g, %g), want near (5000, 5000)", mx, my)
	}
	// Determinism.
	again := Gaussian(20000, 5000, 2000, 1)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("Gaussian not deterministic for a fixed seed")
		}
	}
	other := Gaussian(20000, 5000, 2000, 2)
	same := 0
	for i := range pts {
		if pts[i] == other[i] {
			same++
		}
	}
	if same == len(pts) {
		t.Error("different seeds produced identical data")
	}
}

func TestUniform(t *testing.T) {
	pts := Uniform(5000, 3)
	if len(pts) != 5000 {
		t.Fatalf("cardinality %d", len(pts))
	}
	inSpace(t, pts, "uniform")
	// Quadrant balance.
	q1 := 0
	for _, p := range pts {
		if p.X > SpaceWidth/2 && p.Y > SpaceWidth/2 {
			q1++
		}
	}
	if q1 < 1000 || q1 > 1500 {
		t.Errorf("quadrant-1 count %d, want ~1250", q1)
	}
}

func TestPaperCardinalities(t *testing.T) {
	// Scale the emulations down via the spec to keep the test fast, but
	// check the published cardinalities of the full constructors once.
	if testing.Short() {
		t.Skip("full-cardinality generation in -short mode")
	}
	ca := CALike(1)
	ny := NYLike(1)
	ga := PaperGaussian(1)
	if len(ca) != CACardinality {
		t.Errorf("CA-like cardinality %d, want %d (Table 2)", len(ca), CACardinality)
	}
	if len(ny) != NYCardinality {
		t.Errorf("NY-like cardinality %d, want %d (Table 2)", len(ny), NYCardinality)
	}
	if len(ga) != GaussianCardinality {
		t.Errorf("Gaussian cardinality %d, want %d (Table 2)", len(ga), GaussianCardinality)
	}
	inSpace(t, ca, "CA-like")
	inSpace(t, ny, "NY-like")
	inSpace(t, ga, "gaussian")

	// Clustering order (Section 5's premise): NY ≫ CA > Gaussian, with
	// uniform as the floor.
	u := ClusteringIndex(Uniform(100000, 9))
	g := ClusteringIndex(ga)
	c := ClusteringIndex(ca)
	n := ClusteringIndex(ny)
	t.Logf("clustering index: uniform=%.4f gaussian=%.4f CA-like=%.4f NY-like=%.4f", u, g, c, n)
	if !(n > c && c > g && g > u) {
		t.Errorf("clustering order violated: NY=%.4f CA=%.4f Gaussian=%.4f Uniform=%.4f", n, c, g, u)
	}
	if n < 0.5 {
		t.Errorf("NY-like clustering index %.4f too low for 'highly clustered'", n)
	}
}

func TestClusteredSpec(t *testing.T) {
	pts := Clustered(ClusterSpec{N: 3000, Clusters: 5, Spread: 30, BackgroundFrac: 0.1}, 4)
	if len(pts) != 3000 {
		t.Fatalf("cardinality %d", len(pts))
	}
	inSpace(t, pts, "clustered")
	if ci := ClusteringIndex(pts); ci < 0.3 {
		t.Errorf("clustered spec yields index %.4f, want strongly clustered", ci)
	}
	// Degenerate spec is repaired.
	one := Clustered(ClusterSpec{N: 10}, 5)
	if len(one) != 10 {
		t.Fatalf("degenerate spec cardinality %d", len(one))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(500, 6)
	var buf bytes.Buffer
	if err := SaveCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("loaded %d of %d points", len(back), len(pts))
	}
	for i := range pts {
		if pts[i] != back[i] {
			t.Fatalf("point %d: %v != %v", i, pts[i], back[i])
		}
	}
}

func TestLoadCSVFormats(t *testing.T) {
	in := strings.Join([]string{
		"# a comment",
		"",
		"1.5,2.5",
		" 3 , 4 , 77 ",
		"5,6,",
	}, "\n")
	pts, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{X: 1.5, Y: 2.5, ID: 0}, {X: 3, Y: 4, ID: 77}, {X: 5, Y: 6, ID: 2}}
	if len(pts) != len(want) {
		t.Fatalf("loaded %d points: %v", len(pts), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d: %v, want %v", i, pts[i], want[i])
		}
	}
	bad := []string{"1", "x,2", "1,y", "1,2,zz"}
	for _, b := range bad {
		if _, err := LoadCSV(strings.NewReader(b)); err == nil {
			t.Errorf("line %q accepted", b)
		}
	}
}

func TestNormalize(t *testing.T) {
	pts := []geom.Point{
		{X: -120.5, Y: 34.2, ID: 1},
		{X: -115.0, Y: 36.0, ID: 2},
		{X: -118.3, Y: 35.1, ID: 3},
	}
	norm := Normalize(pts)
	inSpace(t, norm, "normalized")
	// Aspect ratio preserved: x span maps to the full width (it is the
	// larger span), relative positions keep their order.
	if norm[0].X >= norm[2].X || norm[2].X >= norm[1].X {
		t.Errorf("x order broken: %v", norm)
	}
	if norm[0].X != 0 || norm[1].X != SpaceWidth {
		t.Errorf("x extremes not mapped to space edges: %v", norm)
	}
	if Normalize(nil) != nil {
		t.Error("nil input should stay nil")
	}
	same := Normalize([]geom.Point{{X: 7, Y: 7}})
	if same[0].X != SpaceWidth/2 || same[0].Y != SpaceWidth/2 {
		t.Errorf("degenerate normalize: %v", same[0])
	}
}

func TestClusteringIndexBounds(t *testing.T) {
	if ci := ClusteringIndex(nil); ci != 0 {
		t.Errorf("empty index %g", ci)
	}
	// All points in one cell: index 1.
	var pts []geom.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: 1, Y: 1, ID: uint64(i)})
	}
	if ci := ClusteringIndex(pts); ci != 1 {
		t.Errorf("degenerate cluster index %g, want 1", ci)
	}
}
