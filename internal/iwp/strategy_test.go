package iwp

import (
	"math/rand"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/rstar"
)

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		Exponential: "exponential",
		Full:        "full",
		Minimal:     "minimal",
		Strategy(7): "Strategy(7)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestBuildWithStrategyValidation(t *testing.T) {
	tr := buildTree(t, genPoints(rand.New(rand.NewSource(1)), 100, false), 8)
	if _, err := BuildWithStrategy(tr, Strategy(42)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyPointerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 3000, false)
	tr := buildTree(t, pts, 4) // deep tree
	if tr.Height() < 4 {
		t.Fatalf("tree too shallow: %d", tr.Height())
	}
	exp, err := BuildWithStrategy(tr, Exponential)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildWithStrategy(tr, Full)
	if err != nil {
		t.Fatal(err)
	}
	min, err := BuildWithStrategy(tr, Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if !(min.NumBackward() < exp.NumBackward() && exp.NumBackward() < full.NumBackward()) {
		t.Errorf("pointer count order violated: minimal %d, exponential %d, full %d",
			min.NumBackward(), exp.NumBackward(), full.NumBackward())
	}
	if exp.Strategy() != Exponential || full.Strategy() != Full {
		t.Error("strategy not recorded")
	}
	// Each leaf under Full has exactly height pointers; under Minimal 2.
	h := tr.Height()
	err = tr.Walk(func(n *rstar.Node) bool {
		if !n.Leaf {
			return true
		}
		if got := len(full.BackwardPointers(n.ID)); got != h {
			t.Errorf("full: leaf %d has %d pointers, want %d", n.ID, got, h)
		}
		if got := len(min.BackwardPointers(n.ID)); got != 2 {
			t.Errorf("minimal: leaf %d has %d pointers, want 2", n.ID, got)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrategiesAnswerIdentically: every spacing strategy returns the
// same window-query results; they differ only in I/O.
func TestStrategiesAnswerIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := genPoints(rng, 4000, true)
	tr := buildTree(t, pts, 6)
	indexes := map[Strategy]*Index{}
	for _, s := range []Strategy{Exponential, Full, Minimal} {
		ix, err := BuildWithStrategy(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		indexes[s] = ix
	}
	q := geom.Point{X: 500, Y: 500}
	it := tr.NewNNIterator(q)
	visits := map[Strategy]uint64{}
	for i := 0; i < 300; i++ {
		p, leaf, _, ok := it.Next()
		if !ok {
			break
		}
		sr := geom.SearchRegion(q, p, 25, 25)
		want, err := tr.SearchCollect(sr)
		if err != nil {
			t.Fatal(err)
		}
		for s, ix := range indexes {
			tr.ResetVisits()
			got, err := ix.WindowCollect(leaf, sr)
			if err != nil {
				t.Fatal(err)
			}
			visits[s] += tr.Visits()
			samePointSet(t, got, want, s.String())
		}
	}
	// Denser pointers must not cost more I/O than sparser ones.
	if visits[Full] > visits[Exponential] || visits[Exponential] > visits[Minimal] {
		t.Errorf("I/O order violated: full %d, exponential %d, minimal %d",
			visits[Full], visits[Exponential], visits[Minimal])
	}
}
