// Package iwp implements the paper's incremental window query processing
// (IWP, Section 3.3.4): an R*-tree augmentation that lets the window
// queries issued by the NWC algorithm start from intermediate nodes
// instead of the root, cutting the I/O of repeatedly descending from the
// top of the tree.
//
// Two pointer families are attached to the (static) tree:
//
//   - Backward pointers: each leaf s holds r pointers following the
//     Exponential-Index spacing — bp₁ points to s itself, bpᵢ (1<i<r)
//     points to the ancestor of s at depth h−2^(i−2), and bp_r points to
//     the root, where h is the leaf depth and r = ⌈log₂ h⌉ + 2. Each
//     pointer carries the MBR of its target.
//
//   - Overlapping pointers: every node targeted by some backward pointer
//     (except the root) holds pointers to the other nodes at its depth
//     whose MBRs overlap it. Same-depth subtrees partition the data, so
//     consulting the overlapping nodes restores completeness when a
//     window query starts below the root.
//
// A window query for rectangle rect issued while processing an object
// stored in leaf s then proceeds (Algorithm 3): pick the smallest i with
// rect ⊆ mbrᵢᵇ, and run traditional window queries from bpᵢ's target and
// from every overlapping node of that target whose MBR intersects rect.
package iwp

import (
	"fmt"
	"sort"

	"nwcq/internal/geom"
	"nwcq/internal/rstar"
	"nwcq/internal/trace"
)

// Pointer references a tree node together with a copy of its MBR, so
// that consulting the pointer costs no node access.
type Pointer struct {
	Node rstar.NodeID
	MBR  geom.Rect
}

// Strategy selects how backward pointers are spaced along the
// root-to-leaf path. The paper uses the exponential spacing; the other
// strategies exist for ablation: denser pointers find lower starting
// nodes but cost more storage, sparser ones the reverse.
type Strategy int

const (
	// Exponential is the paper's spacing (depths h, h−1, h−2, h−4, …,
	// 0): r = ⌈log₂ h⌉ + 2 pointers per leaf.
	Exponential Strategy = iota
	// Full keeps a pointer to every ancestor: h + 1 pointers per leaf,
	// the lowest possible starting nodes, the highest storage.
	Full
	// Minimal keeps only the leaf itself and the root: window queries
	// start at the leaf when the rectangle fits inside it and at the
	// root otherwise.
	Minimal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Exponential:
		return "exponential"
	case Full:
		return "full"
	case Minimal:
		return "minimal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Index holds the IWP augmentation of one R*-tree snapshot. The tree
// must not be mutated after Build; rebuild the index if it is.
type Index struct {
	tree     *rstar.Tree
	rootID   rstar.NodeID
	strategy Strategy
	backward map[rstar.NodeID][]Pointer
	overlap  map[rstar.NodeID][]Pointer

	numBackward int
	numOverlap  int
}

// Build constructs the augmentation with the paper's exponential
// backward-pointer spacing.
func Build(tree *rstar.Tree) (*Index, error) {
	return BuildWithStrategy(tree, Exponential)
}

// BuildWithStrategy walks the tree once and constructs the backward and
// overlapping pointer sets under the given spacing strategy. The walk's
// node accesses are build-time cost and are not part of query I/O;
// callers typically ResetVisits afterwards.
func BuildWithStrategy(tree *rstar.Tree, strategy Strategy) (*Index, error) {
	if strategy < Exponential || strategy > Minimal {
		return nil, fmt.Errorf("iwp: unknown strategy %d", int(strategy))
	}
	ix := &Index{
		tree:     tree,
		rootID:   tree.Root(),
		strategy: strategy,
		backward: make(map[rstar.NodeID][]Pointer),
		overlap:  make(map[rstar.NodeID][]Pointer),
	}

	// One pass: per-depth node lists and each leaf's ancestor path.
	byDepth := make([][]Pointer, tree.Height())
	targeted := make(map[rstar.NodeID]int) // node -> its depth
	var descend func(id rstar.NodeID, depth int, path []Pointer) error
	descend = func(id rstar.NodeID, depth int, path []Pointer) error {
		node, err := tree.Node(id)
		if err != nil {
			return err
		}
		self := Pointer{Node: id, MBR: node.MBR()}
		if depth >= len(byDepth) {
			return fmt.Errorf("iwp: node %d at depth %d exceeds height %d", id, depth, tree.Height())
		}
		byDepth[depth] = append(byDepth[depth], self)
		path = append(path, self)
		if node.Leaf {
			bps := backwardPointersFor(path, strategy)
			ix.backward[id] = bps
			ix.numBackward += len(bps)
			for _, bp := range bps {
				if bp.Node != ix.rootID {
					targeted[bp.Node] = depthOfPointer(path, bp.Node)
				}
			}
			return nil
		}
		for _, c := range node.Children {
			if err := descend(c, depth+1, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := descend(ix.rootID, 0, nil); err != nil {
		return nil, err
	}

	// Overlapping pointers for every targeted node, via a per-depth
	// plane sweep along x.
	for depth, nodes := range byDepth {
		hasTargets := false
		for _, n := range nodes {
			if d, ok := targeted[n.Node]; ok && d == depth {
				hasTargets = true
				break
			}
		}
		if !hasTargets {
			continue
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a].MBR.MinX < nodes[b].MBR.MinX })
		for i, n := range nodes {
			if d, ok := targeted[n.Node]; !ok || d != depth {
				continue
			}
			var ovs []Pointer
			// Sweep left: candidates whose span may reach n.
			for j := i - 1; j >= 0; j-- {
				if nodes[j].MBR.Intersects(n.MBR) {
					ovs = append(ovs, nodes[j])
				}
			}
			// Sweep right: once MinX passes n.MaxX nothing can overlap.
			for j := i + 1; j < len(nodes) && nodes[j].MBR.MinX <= n.MBR.MaxX; j++ {
				if nodes[j].MBR.Intersects(n.MBR) {
					ovs = append(ovs, nodes[j])
				}
			}
			if len(ovs) > 0 {
				ix.overlap[n.Node] = ovs
				ix.numOverlap += len(ovs)
			}
		}
	}
	return ix, nil
}

// depthOfPointer finds the depth of node id along the root-to-leaf path.
func depthOfPointer(path []Pointer, id rstar.NodeID) int {
	for d, p := range path {
		if p.Node == id {
			return d
		}
	}
	return -1
}

// backwardPointers selects the Exponential-Index subset of a
// root-to-leaf path: the leaf itself, ancestors at depths h−1, h−2,
// h−4, h−8, …, and the root, where h is the leaf's depth.
func backwardPointers(path []Pointer) []Pointer {
	h := len(path) - 1 // leaf depth; root is path[0]
	out := []Pointer{path[h]}
	for step := 1; h-step > 0; step *= 2 {
		out = append(out, path[h-step])
	}
	if h > 0 {
		out = append(out, path[0])
	}
	return out
}

// backwardPointersFor applies the chosen spacing strategy to a
// root-to-leaf path, ordered leaf-first like the paper's bp₁ … bp_r.
func backwardPointersFor(path []Pointer, strategy Strategy) []Pointer {
	h := len(path) - 1
	switch strategy {
	case Full:
		out := make([]Pointer, 0, h+1)
		for d := h; d >= 0; d-- {
			out = append(out, path[d])
		}
		return out
	case Minimal:
		out := []Pointer{path[h]}
		if h > 0 {
			out = append(out, path[0])
		}
		return out
	default:
		return backwardPointers(path)
	}
}

// Strategy returns the spacing strategy this index was built with.
func (ix *Index) Strategy() Strategy { return ix.strategy }

// BackwardPointers returns the backward pointers of a leaf, ordered from
// the leaf itself to the root (bp₁ … bp_r). The NWC algorithm attaches
// them to each object it enqueues, as Section 3.3.4 prescribes.
func (ix *Index) BackwardPointers(leaf rstar.NodeID) []Pointer {
	return ix.backward[leaf]
}

// OverlapPointers returns the same-depth overlapping nodes recorded for
// a backward-pointer target.
func (ix *Index) OverlapPointers(node rstar.NodeID) []Pointer {
	return ix.overlap[node]
}

// NumBackward returns the total number of backward pointers stored.
func (ix *Index) NumBackward() int { return ix.numBackward }

// NumOverlap returns the total number of overlapping pointers stored.
func (ix *Index) NumOverlap() int { return ix.numOverlap }

// StorageBytes reports the pointer storage overhead using the paper's
// 4-bytes-per-pointer accounting (Section 5.2).
func (ix *Index) StorageBytes() int { return (ix.numBackward + ix.numOverlap) * 4 }

// WindowQuery runs Algorithm 3 through a tree Reader: a window query
// for rect on behalf of an object stored in leaf, starting from the
// lowest backward-pointer target whose MBR covers rect (plus that
// target's overlapping nodes intersecting rect). fn is invoked once per
// matching point; returning false stops the query. Node accesses are
// counted on the reader's per-query counter and the tree's cumulative
// counter, and the reader's context cancels the query at node-visit
// granularity.
func (ix *Index) WindowQuery(r rstar.Reader, leaf rstar.NodeID, rect geom.Rect, fn func(geom.Point) bool) error {
	if rect.IsEmpty() {
		return nil
	}
	rec := r.Recorder() // nil when tracing is off; every use is nil-safe
	bps := ix.backward[leaf]
	if len(bps) == 0 {
		return fmt.Errorf("iwp: leaf %d has no backward pointers (stale index?)", leaf)
	}
	start := Pointer{Node: ix.rootID}
	covered := false
	for _, bp := range bps {
		if bp.MBR.ContainsRect(rect) {
			start = bp
			covered = true
			break
		}
	}
	if !covered {
		// Not even the root MBR covers rect (search regions may stick out
		// of the data space); searching from the root alone is complete.
		rec.Count(trace.CtrIWPRootStarts, 1)
		_, err := r.SearchFrom(ix.rootID, rect, fn)
		return err
	}
	if start.Node == ix.rootID {
		rec.Count(trace.CtrIWPRootStarts, 1)
	} else {
		rec.Count(trace.CtrIWPJumpStarts, 1)
	}
	stop := false
	wrapped := func(p geom.Point) bool {
		if !fn(p) {
			stop = true
			return false
		}
		return true
	}
	if _, err := r.SearchFrom(start.Node, rect, wrapped); err != nil {
		return err
	}
	if stop || start.Node == ix.rootID {
		return nil
	}
	for _, ov := range ix.overlap[start.Node] {
		if !ov.MBR.Intersects(rect) {
			continue
		}
		rec.Count(trace.CtrIWPOverlapScans, 1)
		if _, err := r.SearchFrom(ov.Node, rect, wrapped); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// WindowCollect runs WindowQuery with a plain (uncounted, uncancelled)
// reader and returns the matching points.
func (ix *Index) WindowCollect(leaf rstar.NodeID, rect geom.Rect) ([]geom.Point, error) {
	var out []geom.Point
	err := ix.WindowQuery(ix.tree.Reader(nil, nil), leaf, rect, func(p geom.Point) bool {
		out = append(out, p)
		return true
	})
	return out, err
}
