package iwp

import (
	"math/rand"
	"sort"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/rstar"
)

func genPoints(rng *rand.Rand, n int, clustered bool) []geom.Point {
	pts := make([]geom.Point, n)
	var centers []geom.Point
	if clustered {
		for i := 0; i < 6; i++ {
			centers = append(centers, geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		}
	}
	for i := range pts {
		if clustered && rng.Intn(5) > 0 {
			c := centers[rng.Intn(len(centers))]
			pts[i] = geom.Point{X: c.X + rng.NormFloat64()*15, Y: c.Y + rng.NormFloat64()*15, ID: uint64(i)}
		} else {
			pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
		}
	}
	return pts
}

func buildTree(t *testing.T, pts []geom.Point, maxEntries int) *rstar.Tree {
	t.Helper()
	tr, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// depthsAndMBRs gathers every node's depth and MBR by direct traversal.
func depthsAndMBRs(t *testing.T, tr *rstar.Tree) (map[rstar.NodeID]int, map[rstar.NodeID]geom.Rect, map[rstar.NodeID][]rstar.NodeID) {
	t.Helper()
	depths := map[rstar.NodeID]int{}
	mbrs := map[rstar.NodeID]geom.Rect{}
	parentsOf := map[rstar.NodeID][]rstar.NodeID{} // leaf -> root..leaf path
	var rec func(id rstar.NodeID, depth int, path []rstar.NodeID)
	rec = func(id rstar.NodeID, depth int, path []rstar.NodeID) {
		node, err := tr.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		depths[id] = depth
		mbrs[id] = node.MBR()
		path = append(path, id)
		if node.Leaf {
			cp := make([]rstar.NodeID, len(path))
			copy(cp, path)
			parentsOf[id] = cp
			return
		}
		for _, c := range node.Children {
			rec(c, depth+1, path)
		}
	}
	rec(tr.Root(), 0, nil)
	return depths, mbrs, parentsOf
}

func TestBackwardPointerStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// MaxEntries 4 yields a deep tree so the exponential spacing shows.
	pts := genPoints(rng, 3000, false)
	tr := buildTree(t, pts, 4)
	if tr.Height() < 5 {
		t.Fatalf("tree too shallow for the test: height %d", tr.Height())
	}
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	depths, mbrs, paths := depthsAndMBRs(t, tr)

	leaves := 0
	for leaf, path := range paths {
		leaves++
		bps := ix.BackwardPointers(leaf)
		h := len(path) - 1
		// Expected depth sequence: h, h-1, h-2, h-4, ..., 0.
		wantDepths := []int{h}
		for step := 1; h-step > 0; step *= 2 {
			wantDepths = append(wantDepths, h-step)
		}
		if h > 0 {
			wantDepths = append(wantDepths, 0)
		}
		if len(bps) != len(wantDepths) {
			t.Fatalf("leaf %d: %d pointers, want %d", leaf, len(bps), len(wantDepths))
		}
		if bps[0].Node != leaf {
			t.Fatalf("leaf %d: bp1 points to %d", leaf, bps[0].Node)
		}
		if bps[len(bps)-1].Node != tr.Root() {
			t.Fatalf("leaf %d: bp_r points to %d, not root", leaf, bps[len(bps)-1].Node)
		}
		for i, bp := range bps {
			if depths[bp.Node] != wantDepths[i] {
				t.Fatalf("leaf %d: bp%d at depth %d, want %d", leaf, i+1, depths[bp.Node], wantDepths[i])
			}
			if bp.MBR != mbrs[bp.Node] {
				t.Fatalf("leaf %d: bp%d MBR %v, node MBR %v", leaf, i+1, bp.MBR, mbrs[bp.Node])
			}
			// Each target must be an ancestor of (or equal to) the leaf.
			found := false
			for _, a := range path {
				if a == bp.Node {
					found = true
				}
			}
			if !found {
				t.Fatalf("leaf %d: bp%d target %d is not an ancestor", leaf, i+1, bp.Node)
			}
		}
	}
	if leaves == 0 {
		t.Fatal("no leaves seen")
	}
	if ix.NumBackward() == 0 {
		t.Fatal("no backward pointers accounted")
	}
}

func TestBackwardPointerCountFormula(t *testing.T) {
	// r = ⌈log₂ h⌉ + 2 for leaf depth h ≥ 1 (paper Section 3.3.4, via
	// its height-8 example having r = 5).
	cases := map[int]int{1: 2, 2: 3, 3: 4, 4: 4, 5: 5, 8: 5, 9: 6}
	for h, wantR := range cases {
		path := make([]Pointer, h+1)
		for i := range path {
			path[i] = Pointer{Node: rstar.NodeID(i + 1)}
		}
		got := backwardPointers(path)
		if len(got) != wantR {
			t.Errorf("h=%d: r=%d, want %d", h, len(got), wantR)
		}
	}
	// Root-is-leaf degenerate case: a single self pointer.
	got := backwardPointers([]Pointer{{Node: 1}})
	if len(got) != 1 || got[0].Node != 1 {
		t.Errorf("h=0: pointers %v", got)
	}
}

func TestOverlapPointersMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 4000, true) // clustered data overlaps more
	tr := buildTree(t, pts, 6)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	depths, mbrs, paths := depthsAndMBRs(t, tr)

	// Brute force: same-depth nodes with intersecting MBRs.
	byDepth := map[int][]rstar.NodeID{}
	for id, d := range depths {
		byDepth[d] = append(byDepth[d], id)
	}
	targeted := map[rstar.NodeID]bool{}
	for leaf := range paths {
		for _, bp := range ix.BackwardPointers(leaf) {
			if bp.Node != tr.Root() {
				targeted[bp.Node] = true
			}
		}
	}
	if len(targeted) == 0 {
		t.Fatal("nothing targeted")
	}
	checked := 0
	for id := range targeted {
		var want []rstar.NodeID
		for _, other := range byDepth[depths[id]] {
			if other != id && mbrs[other].Intersects(mbrs[id]) {
				want = append(want, other)
			}
		}
		var got []rstar.NodeID
		for _, ov := range ix.OverlapPointers(id) {
			got = append(got, ov.Node)
			if ov.MBR != mbrs[ov.Node] {
				t.Fatalf("overlap pointer MBR stale for node %d", ov.Node)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Fatalf("node %d: %d overlap pointers, want %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d overlap set mismatch", id)
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d targeted nodes checked", checked)
	}
	if ix.StorageBytes() != (ix.NumBackward()+ix.NumOverlap())*4 {
		t.Error("storage accounting formula drifted")
	}
}

func samePointSet(t *testing.T, got, want []geom.Point, label string) {
	t.Helper()
	key := func(p geom.Point) [3]float64 {
		return [3]float64{p.X, p.Y, float64(p.ID)}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	a := make([][3]float64, len(got))
	b := make([][3]float64, len(want))
	for i := range got {
		a[i], b[i] = key(got[i]), key(want[i])
	}
	less := func(s [][3]float64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs", label, i)
		}
	}
}

// TestWindowQueryEquivalence is the core IWP property: for every object
// and search-region-shaped rectangle, the incremental query returns
// exactly what a traditional root-down window query returns, with no
// more node visits.
func TestWindowQueryEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := genPoints(rng, 3000, seed%2 == 0)
		tr := buildTree(t, pts, 8)
		ix, err := Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		it := tr.NewNNIterator(q)
		for n := 0; n < 400; n++ {
			p, leaf, _, ok := it.Next()
			if !ok {
				break
			}
			l := rng.Float64()*60 + 0.5
			w := rng.Float64()*60 + 0.5
			rect := geom.SearchRegion(q, p, l, w)
			tr.ResetVisits()
			want, err := tr.SearchCollect(rect)
			if err != nil {
				t.Fatal(err)
			}
			traditional := tr.Visits()
			tr.ResetVisits()
			got, err := ix.WindowCollect(leaf, rect)
			if err != nil {
				t.Fatal(err)
			}
			incremental := tr.Visits()
			samePointSet(t, got, want, "IWP window")
			if incremental > traditional {
				t.Errorf("IWP visited %d nodes, traditional %d (rect %v)",
					incremental, traditional, rect)
			}
		}
	}
}

func TestWindowQuerySavesIO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := genPoints(rng, 5000, false)
	tr := buildTree(t, pts, 6)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 500, Y: 500}
	it := tr.NewNNIterator(q)
	var tradTotal, iwpTotal uint64
	for n := 0; n < 300; n++ {
		p, leaf, _, ok := it.Next()
		if !ok {
			break
		}
		rect := geom.SearchRegion(q, p, 12, 12)
		tr.ResetVisits()
		if _, err := tr.SearchCollect(rect); err != nil {
			t.Fatal(err)
		}
		tradTotal += tr.Visits()
		tr.ResetVisits()
		if _, err := ix.WindowCollect(leaf, rect); err != nil {
			t.Fatal(err)
		}
		iwpTotal += tr.Visits()
	}
	if iwpTotal >= tradTotal {
		t.Errorf("IWP total %d visits not below traditional %d", iwpTotal, tradTotal)
	}
}

func TestWindowQueryOutsideRootMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := genPoints(rng, 500, false)
	tr := buildTree(t, pts, 8)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, leaf, _, ok := tr.NewNNIterator(geom.Point{}).Next()
	if !ok {
		t.Fatal("no points")
	}
	// A rect sticking far out of the data space: must still be correct.
	rect := geom.NewRect(900, 900, 5000, 5000)
	got, err := ix.WindowCollect(leaf, rect)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.SearchCollect(rect)
	if err != nil {
		t.Fatal(err)
	}
	samePointSet(t, got, want, "out-of-space window")
	// Entirely outside: empty.
	got, err = ix.WindowCollect(leaf, geom.NewRect(2000, 2000, 3000, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("window outside space returned %d points", len(got))
	}
}

func TestWindowQueryEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := genPoints(rng, 1000, true)
	tr := buildTree(t, pts, 8)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, leaf, _, _ := tr.NewNNIterator(geom.Point{X: 500, Y: 500}).Next()
	n := 0
	err = ix.WindowQuery(tr.Reader(nil, nil), leaf, geom.NewRect(0, 0, 1000, 1000), func(geom.Point) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("early stop after %d points, want 5", n)
	}
}

func TestEmptyRectNoOp(t *testing.T) {
	tr := buildTree(t, genPoints(rand.New(rand.NewSource(10)), 100, false), 8)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, leaf, _, _ := tr.NewNNIterator(geom.Point{}).Next()
	tr.ResetVisits()
	if err := ix.WindowQuery(tr.Reader(nil, nil), leaf, geom.EmptyRect(), func(geom.Point) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if tr.Visits() != 0 {
		t.Errorf("empty rect visited %d nodes", tr.Visits())
	}
}

func TestStaleLeafRejected(t *testing.T) {
	tr := buildTree(t, genPoints(rand.New(rand.NewSource(11)), 100, false), 8)
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	err = ix.WindowQuery(tr.Reader(nil, nil), rstar.NodeID(9999), geom.NewRect(0, 0, 1, 1), func(geom.Point) bool { return true })
	if err == nil {
		t.Error("unknown leaf accepted")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := buildTree(t, genPoints(rand.New(rand.NewSource(12)), 5, false), 8)
	if tr.Height() != 1 {
		t.Skip("tree grew beyond one level")
	}
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	bps := ix.BackwardPointers(tr.Root())
	if len(bps) != 1 || bps[0].Node != tr.Root() {
		t.Fatalf("single-leaf pointers %v", bps)
	}
	got, err := ix.WindowCollect(tr.Root(), geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("collected %d of 5 points", len(got))
	}
}
