package harness

import (
	"fmt"

	"nwcq/internal/core"
	"nwcq/internal/iwp"
)

// Ablation runs the design-choice studies DESIGN.md calls out, beyond
// the paper's own figures:
//
//  1. index build method — STR bulk loading vs one-by-one R* insertion
//     (node counts and NWC* query I/O);
//  2. R*-tree fan-out — 25 / 50 (paper) / 100 entries per node;
//  3. IWP backward-pointer spacing — minimal / exponential (paper) /
//     full (pointer storage vs IWP-scheme query I/O).
func Ablation(o Options) ([]*Table, error) {
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+800)
	datasets := o.Datasets()

	// 1. Build method, all three datasets.
	buildTab := &Table{
		Title:  "Ablation: STR bulk load vs R* insertion (scheme NWC*)",
		Header: []string{"Dataset", "Build", "TreeNodes", "AvgIO"},
	}
	for _, d := range datasets {
		for _, bulk := range []bool{true, false} {
			cfg := o.Config
			cfg.BulkLoad = bulk
			o.logf("ablation build %s bulk=%v", d.Name, bulk)
			env, err := Build(d.Name, d.Points, cfg)
			if err != nil {
				return nil, err
			}
			nodes, err := env.Tree.NumNodes()
			if err != nil {
				return nil, err
			}
			env.Tree.ResetVisits()
			m, err := RunNWC(env, queries, l, w, defaultN, core.SchemeNWCStar, o.Measure)
			if err != nil {
				return nil, err
			}
			name := "insert"
			if bulk {
				name = "STR"
			}
			buildTab.AddRow(d.Name, name, fmt.Sprintf("%d", nodes), fmtIO(m.AvgIO))
		}
	}

	// 2. Fan-out sweep on the Gaussian dataset.
	fanTab := &Table{
		Title:  "Ablation: R*-tree fan-out (Gaussian dataset)",
		Header: []string{"FanOut", "TreeNodes", "NWC+ AvgIO", "NWC* AvgIO"},
	}
	gauss := datasets[2]
	for _, fan := range []int{25, 50, 100} {
		cfg := o.Config
		cfg.MaxEntries = fan
		o.logf("ablation fan-out %d", fan)
		env, err := Build(gauss.Name, gauss.Points, cfg)
		if err != nil {
			return nil, err
		}
		nodes, err := env.Tree.NumNodes()
		if err != nil {
			return nil, err
		}
		env.Tree.ResetVisits()
		plus, err := RunNWC(env, queries, l, w, defaultN, core.SchemeNWCPlus, o.Measure)
		if err != nil {
			return nil, err
		}
		star, err := RunNWC(env, queries, l, w, defaultN, core.SchemeNWCStar, o.Measure)
		if err != nil {
			return nil, err
		}
		fanTab.AddRow(fmt.Sprintf("%d", fan), fmt.Sprintf("%d", nodes),
			fmtIO(plus.AvgIO), fmtIO(star.AvgIO))
	}

	// 3. IWP pointer spacing on the CA-like dataset, scheme IWP alone so
	// the effect is undiluted.
	iwpTab := &Table{
		Title:  "Ablation: IWP backward-pointer spacing (CA dataset, scheme IWP)",
		Header: []string{"Spacing", "BackwardPtrs", "OverlapPtrs", "AvgIO"},
	}
	ca := datasets[0]
	for _, strat := range []iwp.Strategy{iwp.Minimal, iwp.Exponential, iwp.Full} {
		cfg := o.Config
		cfg.IWPStrategy = strat
		o.logf("ablation IWP %v", strat)
		env, err := Build(ca.Name, ca.Points, cfg)
		if err != nil {
			return nil, err
		}
		m, err := RunNWC(env, queries, l, w, defaultN, core.SchemeIWP, o.Measure)
		if err != nil {
			return nil, err
		}
		iwpTab.AddRow(strat.String(),
			fmt.Sprintf("%d", env.IWP.NumBackward()),
			fmt.Sprintf("%d", env.IWP.NumOverlap()),
			fmtIO(m.AvgIO))
	}
	return []*Table{buildTab, fanTab, iwpTab}, nil
}
