package harness

import (
	"fmt"
	"math"

	"nwcq/internal/core"
	"nwcq/internal/costmodel"
	"nwcq/internal/datagen"
	"nwcq/internal/geom"
)

// Options scopes an experiment run. The zero value is unusable; start
// from DefaultOptions (the paper's full-scale settings) or QuickOptions
// (scaled down for fast regeneration).
type Options struct {
	// Scale multiplies every dataset cardinality. 1.0 reproduces the
	// paper's Table 2 sizes. Window extents are scaled by 1/√Scale so
	// the expected object count per window — the quantity that drives
	// every trend — is preserved.
	Scale float64
	// Queries is the number of query points per configuration; the
	// paper averages 25.
	Queries int
	// Seed drives all dataset and query randomness.
	Seed int64
	// Config is the index-build configuration.
	Config Config
	// Measure is the group distance measure; the paper does not name
	// one, so MeasureMax is the default.
	Measure core.Measure
	// Progress, when non-nil, receives human-readable status lines.
	Progress func(format string, args ...any)
}

// DefaultOptions reproduces the paper's experimental scale. Index
// construction uses STR bulk loading by default; set
// Config.BulkLoad = false for one-by-one R* insertion.
func DefaultOptions() Options {
	cfg := DefaultConfig()
	cfg.BulkLoad = true
	return Options{Scale: 1, Queries: 25, Seed: 2016, Config: cfg}
}

// QuickOptions scales the suite down (~4% of the paper's cardinality,
// 5 query points) so every experiment finishes in seconds. Trends and
// crossovers are preserved; absolute I/O values shrink accordingly.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.04
	o.Queries = 5
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

func (o Options) scaledN(full int) int {
	n := int(float64(full)*o.Scale + 0.5)
	if n < 200 {
		n = 200
	}
	return n
}

// windowScale converts a paper window extent into the equivalent extent
// at the current scale, preserving expected objects per window.
func (o Options) windowScale() float64 {
	if o.Scale == 1 {
		return 1
	}
	return 1 / math.Sqrt(o.Scale)
}

// Defaults from Section 5: n = 8, window length and width 8.
const (
	defaultN      = 8
	defaultWindow = 8.0
	// Figure 13/14 defaults; the paper does not state them, so these
	// assumptions are recorded in EXPERIMENTS.md: k = 8 when sweeping
	// m, m = 2 when sweeping k.
	defaultK = 8
	defaultM = 2
)

// schemes is Table 3's scheme list, in its display order.
var schemes = []core.Scheme{
	core.SchemeNWC, core.SchemeSRR, core.SchemeDIP, core.SchemeDEP,
	core.SchemeIWP, core.SchemeNWCPlus, core.SchemeNWCStar,
}

// Dataset is a named generated point set.
type Dataset struct {
	Name   string
	Points []geom.Point
}

// Datasets generates the paper's three datasets at the configured scale.
func (o Options) Datasets() []Dataset {
	return []Dataset{
		{"CA", datagen.CALikeN(o.scaledN(datagen.CACardinality), o.Seed)},
		{"NY", datagen.NYLikeN(o.scaledN(datagen.NYCardinality), o.Seed+1)},
		{"Gaussian", datagen.Gaussian(o.scaledN(datagen.GaussianCardinality), 5000, 2000, o.Seed+2)},
	}
}

func (o Options) build(d Dataset) (*Env, error) {
	o.logf("building %s (%d points, fan-out %d, bulk=%v)",
		d.Name, len(d.Points), o.Config.MaxEntries, o.Config.BulkLoad)
	return Build(d.Name, d.Points, o.Config)
}

// Table2 regenerates the dataset summary (paper Table 2), adding the
// measured clustering index of each (emulated) dataset.
func Table2(o Options) (*Table, error) {
	t := &Table{
		Title:  "Table 2: datasets",
		Header: []string{"Dataset", "Cardinality", "ClusterIdx", "Description"},
	}
	desc := map[string]string{
		"CA":       "synthetic emulation of real places in California",
		"NY":       "synthetic emulation of real places in New York",
		"Gaussian": "Gaussian distribution (mean 5000, stddev 2000)",
	}
	for _, d := range o.Datasets() {
		t.AddRow(d.Name, fmt.Sprintf("%d", len(d.Points)),
			fmt.Sprintf("%.3f", datagen.ClusteringIndex(d.Points)), desc[d.Name])
	}
	if o.Scale != 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("cardinalities scaled by %g from Table 2", o.Scale))
	}
	return t, nil
}

// Table3 prints the scheme matrix (paper Table 3).
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: schemes",
		Header: []string{"Scheme", "SRR", "DIP", "DEP", "IWP"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, s := range schemes {
		t.AddRow(s.String(), mark(s.SRR), mark(s.DIP), mark(s.DEP), mark(s.IWP))
	}
	return t
}

// Fig9 regenerates Figure 9 (effect of grid size on scheme DEP): grid
// cell sizes 25–400 across the three datasets.
func Fig9(o Options) (*Table, error) {
	cells := []float64{25, 50, 100, 200, 400}
	t := &Table{
		Title:  "Figure 9: effect of grid size (scheme DEP, avg node visits)",
		Header: []string{"GridSize", "CA", "NY", "Gaussian"},
	}
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+100)
	cols := map[float64][]string{}
	for _, d := range o.Datasets() {
		base, err := o.build(d)
		if err != nil {
			return nil, err
		}
		for _, cell := range cells {
			env, err := base.WithGrid(cell)
			if err != nil {
				return nil, err
			}
			m, err := RunNWC(env, queries, l, w, defaultN, core.SchemeDEP, o.Measure)
			if err != nil {
				return nil, err
			}
			o.logf("fig9 %s cell=%g -> %.0f", d.Name, cell, m.AvgIO)
			cols[cell] = append(cols[cell], fmtIO(m.AvgIO))
		}
	}
	for _, cell := range cells {
		t.AddRow(append([]string{fmt.Sprintf("%g", cell)}, cols[cell]...)...)
	}
	return t, nil
}

// Fig10 regenerates Figure 10 (effect of object distribution): Gaussian
// datasets with standard deviations 2000 down to 1000, all schemes.
func Fig10(o Options) (*Table, error) {
	stds := []float64{2000, 1750, 1500, 1250, 1000}
	t := &Table{
		Title:  "Figure 10: effect of object distribution (avg node visits)",
		Header: append([]string{"StdDev"}, schemeNames()...),
	}
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+200)
	n := o.scaledN(datagen.GaussianCardinality)
	var firstRow, lastRow []float64
	for _, sd := range stds {
		pts := datagen.Gaussian(n, 5000, sd, o.Seed+3)
		env, err := o.build(Dataset{Name: fmt.Sprintf("Gaussian(σ=%g)", sd), Points: pts})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%g", sd)}
		var vals []float64
		for _, s := range schemes {
			m, err := RunNWC(env, queries, l, w, defaultN, s, o.Measure)
			if err != nil {
				return nil, err
			}
			o.logf("fig10 σ=%g %s -> %.0f", sd, s, m.AvgIO)
			row = append(row, fmtIO(m.AvgIO))
			vals = append(vals, m.AvgIO)
		}
		t.AddRow(row...)
		if firstRow == nil {
			firstRow = vals
		}
		lastRow = vals
	}
	// Reduction rates quoted in Section 5.2.
	reduction := func(vals []float64, idx int) float64 {
		if vals[0] == 0 {
			return 0
		}
		return 100 * (1 - vals[idx]/vals[0])
	}
	for i, name := range schemeNames() {
		if i == 0 {
			continue
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s reduction over NWC: %.1f%% (σ=2000) -> %.1f%% (σ=1000)",
			name, reduction(firstRow, i), reduction(lastRow, i)))
	}
	return t, nil
}

// Fig11 regenerates Figure 11 (effect of the number of searched
// objects): n from 8 to 128, all schemes, one table per dataset.
func Fig11(o Options) ([]*Table, error) {
	ns := []int{8, 16, 32, 64, 128}
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+300)
	var tables []*Table
	for _, d := range o.Datasets() {
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 11 (%s): effect of n (avg node visits)", d.Name),
			Header: append([]string{"n"}, schemeNames()...),
		}
		for _, n := range ns {
			row := []string{fmt.Sprintf("%d", n)}
			for _, s := range schemes {
				m, err := RunNWC(env, queries, l, w, n, s, o.Measure)
				if err != nil {
					return nil, err
				}
				o.logf("fig11 %s n=%d %s -> %.0f", d.Name, n, s, m.AvgIO)
				row = append(row, fmtIO(m.AvgIO))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 regenerates Figure 12 (effect of window size): l = w from 8 to
// 128, all schemes, one table per dataset.
func Fig12(o Options) ([]*Table, error) {
	sizes := []float64{8, 16, 32, 64, 128}
	ws := o.windowScale()
	queries := QueryPoints(o.Queries, o.Seed+400)
	var tables []*Table
	for _, d := range o.Datasets() {
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 12 (%s): effect of window size (avg node visits)", d.Name),
			Header: append([]string{"WinSize"}, schemeNames()...),
		}
		for _, sz := range sizes {
			row := []string{fmt.Sprintf("%g", sz)}
			for _, s := range schemes {
				m, err := RunNWC(env, queries, sz*ws, sz*ws, defaultN, s, o.Measure)
				if err != nil {
					return nil, err
				}
				o.logf("fig12 %s size=%g %s -> %.0f", d.Name, sz, s, m.AvgIO)
				row = append(row, fmtIO(m.AvgIO))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13 regenerates Figure 13 (effect of k for kNWC queries): k from 2
// to 32, schemes kNWC+ and kNWC*, CA and NY datasets.
func Fig13(o Options) (*Table, error) {
	ks := []int{2, 4, 8, 16, 32}
	t := &Table{
		Title:  "Figure 13: effect of k (kNWC, avg node visits)",
		Header: []string{"k", "CA kNWC+", "CA kNWC*", "NY kNWC+", "NY kNWC*"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fixed m = %d (assumption; paper does not state it)", defaultM))
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+500)
	cols := map[int][]string{}
	for _, d := range o.Datasets()[:2] { // CA and NY
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			for _, s := range []core.Scheme{core.SchemeNWCPlus, core.SchemeNWCStar} {
				m, err := RunKNWC(env, queries, l, w, defaultN, k, defaultM, s, o.Measure)
				if err != nil {
					return nil, err
				}
				o.logf("fig13 %s k=%d %s -> %.0f", d.Name, k, s, m.AvgIO)
				cols[k] = append(cols[k], fmtIO(m.AvgIO))
			}
		}
	}
	for _, k := range ks {
		t.AddRow(append([]string{fmt.Sprintf("%d", k)}, cols[k]...)...)
	}
	return t, nil
}

// Fig14 regenerates Figure 14 (effect of m for kNWC queries): m from 0
// to 6, schemes kNWC+ and kNWC*, CA and NY datasets.
func Fig14(o Options) (*Table, error) {
	ms := []int{0, 1, 2, 4, 6}
	t := &Table{
		Title:  "Figure 14: effect of m (kNWC, avg node visits)",
		Header: []string{"m", "CA kNWC+", "CA kNWC*", "NY kNWC+", "NY kNWC*"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fixed k = %d (assumption; paper does not state it)", defaultK))
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+600)
	cols := map[int][]string{}
	for _, d := range o.Datasets()[:2] {
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			for _, s := range []core.Scheme{core.SchemeNWCPlus, core.SchemeNWCStar} {
				meas, err := RunKNWC(env, queries, l, w, defaultN, defaultK, m, s, o.Measure)
				if err != nil {
					return nil, err
				}
				o.logf("fig14 %s m=%d %s -> %.0f", d.Name, m, s, meas.AvgIO)
				cols[m] = append(cols[m], fmtIO(meas.AvgIO))
			}
		}
	}
	for _, m := range ms {
		t.AddRow(append([]string{fmt.Sprintf("%d", m)}, cols[m]...)...)
	}
	return t, nil
}

// StorageOverheads regenerates the Section 5.2 storage accounting: the
// density-grid size and the backward/overlapping pointer counts per
// dataset.
func StorageOverheads(o Options) (*Table, error) {
	t := &Table{
		Title:  "Section 5.2: storage overheads of DEP and IWP",
		Header: []string{"Dataset", "GridCells", "GridKB", "BackwardPtrs", "OverlapPtrs", "IWP KB"},
	}
	for _, d := range o.Datasets() {
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		nx, ny := env.Grid.Dims()
		t.AddRow(d.Name,
			fmt.Sprintf("%d", nx*ny),
			fmt.Sprintf("%.0f", float64(env.Grid.StorageBytes())/1024),
			fmt.Sprintf("%d", env.IWP.NumBackward()),
			fmt.Sprintf("%d", env.IWP.NumOverlap()),
			fmt.Sprintf("%.0f", float64(env.IWP.StorageBytes())/1024),
		)
	}
	return t, nil
}

// ModelComparison runs the Section 4 analytical model against measured
// I/O of scheme NWC+ on a uniform dataset across n.
func ModelComparison(o Options) (*Table, error) {
	t := &Table{
		Title:  "Section 4: analytic model vs measured (uniform data, scheme NWC+)",
		Header: []string{"n", "Model", "Measured", "Ratio"},
	}
	nPts := o.scaledN(datagen.GaussianCardinality)
	pts := datagen.Uniform(nPts, o.Seed+4)
	env, err := o.build(Dataset{Name: "Uniform", Points: pts})
	if err != nil {
		return nil, err
	}
	model := costmodel.Model{
		Lambda:     float64(nPts) / (datagen.SpaceWidth * datagen.SpaceWidth),
		SpaceWidth: datagen.SpaceWidth,
		FanOut:     o.Config.MaxEntries,
		FillFactor: 0.7,
	}
	queries := QueryPoints(o.Queries, o.Seed+700)
	// A window holding ~10 objects in expectation keeps the model and
	// the search in the feasible regime across the n sweep. The side is
	// derived from the actual density, so it is scale-consistent.
	side := math.Sqrt(10 / model.Lambda)
	for _, n := range []int{2, 4, 8} {
		predicted, err := model.NWCCost(side, side, n)
		if err != nil {
			return nil, err
		}
		m, err := RunNWC(env, queries, side, side, n, core.SchemeNWCPlus, o.Measure)
		if err != nil {
			return nil, err
		}
		ratio := math.Inf(1)
		if m.AvgIO > 0 {
			ratio = predicted / m.AvgIO
		}
		o.logf("model n=%d predicted=%.0f measured=%.0f", n, predicted, m.AvgIO)
		t.AddRow(fmt.Sprintf("%d", n), fmtIO(predicted), fmtIO(m.AvgIO), fmt.Sprintf("%.2f", ratio))
	}
	return t, nil
}

// FigKNWCByN is an extension experiment beyond the paper's figures: the
// effect of the group size n on kNWC cost, for both kNWC schemes on the
// CA-like and NY-like datasets (k and m fixed at the Figure 13/14
// defaults). The paper sweeps n only for single-group NWC queries.
func FigKNWCByN(o Options) (*Table, error) {
	ns := []int{4, 8, 16, 32}
	t := &Table{
		Title:  "Extension: effect of n on kNWC (avg node visits)",
		Header: []string{"n", "CA kNWC+", "CA kNWC*", "NY kNWC+", "NY kNWC*"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("extension beyond the paper; fixed k = %d, m = %d", defaultK, defaultM))
	ws := o.windowScale()
	l, w := defaultWindow*ws, defaultWindow*ws
	queries := QueryPoints(o.Queries, o.Seed+900)
	cols := map[int][]string{}
	for _, d := range o.Datasets()[:2] {
		env, err := o.build(d)
		if err != nil {
			return nil, err
		}
		for _, n := range ns {
			for _, s := range []core.Scheme{core.SchemeNWCPlus, core.SchemeNWCStar} {
				m, err := RunKNWC(env, queries, l, w, n, defaultK, defaultM, s, o.Measure)
				if err != nil {
					return nil, err
				}
				o.logf("knwc-n %s n=%d %s -> %.0f", d.Name, n, s, m.AvgIO)
				cols[n] = append(cols[n], fmtIO(m.AvgIO))
			}
		}
	}
	for _, n := range ns {
		t.AddRow(append([]string{fmt.Sprintf("%d", n)}, cols[n]...)...)
	}
	return t, nil
}

func schemeNames() []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.String()
	}
	return out
}
