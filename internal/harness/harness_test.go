package harness

import (
	"strconv"
	"strings"
	"testing"

	"nwcq/internal/core"
	"nwcq/internal/datagen"
)

func tinyOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.01
	o.Queries = 3
	return o
}

func TestBuildEnv(t *testing.T) {
	pts := datagen.Uniform(2000, 1)
	for _, bulk := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.BulkLoad = bulk
		env, err := Build("uniform", pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if env.Tree.Len() != len(pts) {
			t.Fatalf("bulk=%v: indexed %d of %d", bulk, env.Tree.Len(), len(pts))
		}
		if env.Engine == nil || env.Grid == nil || env.IWP == nil {
			t.Fatal("missing substrate")
		}
		if env.Tree.Visits() != 0 {
			t.Error("visits not reset after build")
		}
		if err := env.Tree.CheckInvariants(bulk); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithGridSharesTree(t *testing.T) {
	pts := datagen.Uniform(1000, 2)
	env, err := Build("u", pts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env2, err := env.WithGrid(400)
	if err != nil {
		t.Fatal(err)
	}
	if env2.Tree != env.Tree || env2.IWP != env.IWP {
		t.Error("WithGrid rebuilt shared substrates")
	}
	if env2.Grid.CellSize() != 400 {
		t.Errorf("cell size %g", env2.Grid.CellSize())
	}
}

func TestQueryPointsDeterministicAndCentered(t *testing.T) {
	a := QueryPoints(25, 7)
	b := QueryPoints(25, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query points not deterministic")
		}
		if a[i].X < 1000 || a[i].X > 9000 || a[i].Y < 1000 || a[i].Y > 9000 {
			t.Fatalf("query point %v outside central 80%%", a[i])
		}
	}
	c := QueryPoints(25, 8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds give identical query points")
	}
}

func TestRunNWCAveragesOverQueries(t *testing.T) {
	pts := datagen.CALikeN(3000, 3)
	env, err := Build("ca", pts, Config{MaxEntries: 16, GridCellSize: 100, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := QueryPoints(4, 9)
	m, err := RunNWC(env, queries, 200, 200, 4, core.SchemeNWCStar, core.MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgIO <= 0 {
		t.Errorf("avg IO %g", m.AvgIO)
	}
	if m.AvgFound <= 0 {
		t.Errorf("nothing found: %+v", m)
	}
	// Averaging really averages: a single-query run differs from the
	// aggregate unless all queries cost the same.
	single, err := RunNWC(env, queries[:1], 200, 200, 4, core.SchemeNWCStar, core.MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if single.TotalStats.NodeVisits > m.TotalStats.NodeVisits {
		t.Error("aggregate stats smaller than single-run stats")
	}
}

func TestRunKNWC(t *testing.T) {
	pts := datagen.NYLikeN(3000, 4)
	env, err := Build("ny", pts, Config{MaxEntries: 16, GridCellSize: 100, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := QueryPoints(3, 10)
	m, err := RunKNWC(env, queries, 300, 300, 4, 3, 1, core.SchemeNWCStar, core.MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgIO <= 0 || m.AvgFound <= 0 {
		t.Errorf("kNWC measurement %+v", m)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"A", "LongColumn"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "22")
	out := tab.Render()
	for _, want := range []string{"demo", "A", "LongColumn", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestFmtIO(t *testing.T) {
	cases := map[float64]string{
		3.14159:  "3.1",
		250:      "250",
		2500000:  "2.5M",
		99.94:    "99.9",
		123456.7: "0.123M",
	}
	for v, want := range cases {
		if got := fmtIO(v); got != want {
			t.Errorf("fmtIO(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestTable2AndTable3(t *testing.T) {
	tab, err := Table2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table2 rows: %d", len(tab.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 7 {
		t.Fatalf("Table3 rows: %d", len(t3.Rows))
	}
	// NWC row all off, NWC* row all on.
	if t3.Rows[0][1] != "-" || t3.Rows[6][4] != "yes" {
		t.Errorf("Table3 content: %v", t3.Rows)
	}
}

// TestExperimentsSmoke runs every experiment at a tiny scale and checks
// the headline trends of Section 5 hold. It takes a couple of minutes —
// the figure-12 sweep reaches very large windows — so it is skipped
// under -short.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke suite skipped in -short mode")
	}
	o := tinyOptions()
	parse := func(s string) float64 {
		mult := 1.0
		if strings.HasSuffix(s, "M") {
			mult = 1e6
			s = strings.TrimSuffix(s, "M")
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable cell %q", s)
		}
		return v * mult
	}

	fig9, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Rows) != 5 {
		t.Fatalf("fig9 rows %d", len(fig9.Rows))
	}

	fig10, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig10.Rows) != 5 || len(fig10.Rows[0]) != 8 {
		t.Fatalf("fig10 shape %dx%d", len(fig10.Rows), len(fig10.Rows[0]))
	}
	// NWC* beats plain NWC on the most clustered Gaussian (σ=1000).
	last := fig10.Rows[len(fig10.Rows)-1]
	if parse(last[7]) >= parse(last[1]) {
		t.Errorf("fig10 σ=1000: NWC* %s not below NWC %s", last[7], last[1])
	}

	fig11, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig11) != 3 {
		t.Fatalf("fig11 tables %d", len(fig11))
	}
	// Plain NWC is roughly constant in n (Section 5.3): spread < 10%.
	for _, tab := range fig11 {
		lo, hi := 1e18, 0.0
		for _, row := range tab.Rows {
			v := parse(row[1])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo*1.1 {
			t.Errorf("%s: plain NWC varies %g..%g with n", tab.Title, lo, hi)
		}
	}

	fig12, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	// Plain NWC cost grows with window size (Section 5.4).
	for _, tab := range fig12 {
		first := parse(tab.Rows[0][1])
		lastV := parse(tab.Rows[len(tab.Rows)-1][1])
		if lastV <= first {
			t.Errorf("%s: plain NWC did not grow with window size (%g -> %g)", tab.Title, first, lastV)
		}
	}

	fig13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig13.Rows) != 5 || len(fig13.Rows[0]) != 5 {
		t.Fatalf("fig13 shape")
	}

	fig14, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig14.Rows) != 5 {
		t.Fatalf("fig14 shape")
	}

	sto, err := StorageOverheads(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sto.Rows) != 3 {
		t.Fatalf("storage rows %d", len(sto.Rows))
	}

	model, err := ModelComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Rows) != 3 {
		t.Fatalf("model rows %d", len(model.Rows))
	}
}

// TestAblationSmoke runs the design-choice ablations at a tiny scale.
func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke skipped in -short mode")
	}
	tables, err := Ablation(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d ablation tables", len(tables))
	}
	// Build-method table: 3 datasets x 2 methods.
	if len(tables[0].Rows) != 6 {
		t.Errorf("build ablation rows: %d", len(tables[0].Rows))
	}
	// Fan-out table: 3 rows; node counts must decrease with fan-out.
	if len(tables[1].Rows) != 3 {
		t.Fatalf("fan-out ablation rows: %d", len(tables[1].Rows))
	}
	n25, _ := strconv.Atoi(tables[1].Rows[0][1])
	n100, _ := strconv.Atoi(tables[1].Rows[2][1])
	if n100 >= n25 {
		t.Errorf("fan-out 100 has %d nodes, fan-out 25 has %d", n100, n25)
	}
	// IWP table: pointer counts must not decrease minimal -> full. (At
	// tiny scale the tree can be only two levels deep, in which case the
	// spacings coincide; the strict ordering is asserted on deep trees
	// by the iwp package's own tests.)
	if len(tables[2].Rows) != 3 {
		t.Fatalf("IWP ablation rows: %d", len(tables[2].Rows))
	}
	bMin, _ := strconv.Atoi(tables[2].Rows[0][1])
	bFull, _ := strconv.Atoi(tables[2].Rows[2][1])
	if bFull < bMin {
		t.Errorf("full spacing has %d pointers, minimal %d", bFull, bMin)
	}
}
