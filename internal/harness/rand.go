package harness

import "math/rand"

// newRand isolates the harness's deterministic randomness in one place.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
