// Package harness assembles dataset environments and runs the paper's
// experiments (Section 5): scheme × dataset × parameter sweeps, 25
// seeded query points per configuration, averaging the number of
// R*-tree nodes visited — the paper's I/O metric.
package harness

import (
	"fmt"

	"nwcq/internal/core"
	"nwcq/internal/datagen"
	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/rstar"
)

// Config controls how a dataset environment is built.
type Config struct {
	// MaxEntries is the R*-tree fan-out; the paper uses 50.
	MaxEntries int
	// GridCellSize is the density-grid cell side; the paper's default
	// is 25.
	GridCellSize float64
	// BulkLoad selects STR packing instead of one-by-one R* insertion.
	// Insertion is the faithful setting; bulk loading is much faster
	// for repeated large-scale experiments.
	BulkLoad bool
	// IWPStrategy selects the backward-pointer spacing; the zero value
	// is the paper's exponential spacing.
	IWPStrategy iwp.Strategy
}

// DefaultConfig returns the paper's experimental settings.
func DefaultConfig() Config {
	return Config{MaxEntries: 50, GridCellSize: 25}
}

// Env is a built dataset environment: the R*-tree with its DEP and IWP
// substrates, ready to answer queries under any scheme.
type Env struct {
	Name   string
	Points []geom.Point
	Tree   *rstar.Tree
	Grid   *grid.Density
	IWP    *iwp.Index
	Engine *core.Engine
}

// Build indexes pts and constructs every substrate.
func Build(name string, pts []geom.Point, cfg Config) (*Env, error) {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = 50
	}
	if cfg.GridCellSize == 0 {
		cfg.GridCellSize = 25
	}
	tree, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: cfg.MaxEntries})
	if err != nil {
		return nil, err
	}
	if cfg.BulkLoad {
		if err := tree.BulkLoad(pts); err != nil {
			return nil, err
		}
	} else {
		for _, p := range pts {
			if err := tree.Insert(p); err != nil {
				return nil, err
			}
		}
	}
	den, err := grid.New(datagen.Space(), cfg.GridCellSize, pts)
	if err != nil {
		return nil, err
	}
	ix, err := iwp.BuildWithStrategy(tree, cfg.IWPStrategy)
	if err != nil {
		return nil, err
	}
	tree.ResetVisits()
	eng, err := core.NewEngine(tree, den, ix)
	if err != nil {
		return nil, err
	}
	return &Env{Name: name, Points: pts, Tree: tree, Grid: den, IWP: ix, Engine: eng}, nil
}

// WithGrid returns a sibling environment sharing the tree and IWP index
// but using a density grid with a different cell size (used by the
// grid-size experiment, Figure 9).
func (e *Env) WithGrid(cellSize float64) (*Env, error) {
	den, err := grid.New(datagen.Space(), cellSize, e.Points)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(e.Tree, den, e.IWP)
	if err != nil {
		return nil, err
	}
	out := *e
	out.Grid = den
	out.Engine = eng
	return &out, nil
}

// QueryPoints returns n deterministic query locations drawn uniformly
// over the central 80% of the object space. The paper does not specify
// its query workload; this choice is recorded in EXPERIMENTS.md.
func QueryPoints(n int, seed int64) []geom.Point {
	rng := newRand(seed)
	pts := make([]geom.Point, n)
	const margin = 0.1 * datagen.SpaceWidth
	for i := range pts {
		pts[i] = geom.Point{
			X: margin + rng.Float64()*(datagen.SpaceWidth-2*margin),
			Y: margin + rng.Float64()*(datagen.SpaceWidth-2*margin),
		}
	}
	return pts
}

// Measurement aggregates one configuration's runs.
type Measurement struct {
	AvgIO      float64 // mean node visits per query — the paper's metric
	AvgFound   float64 // fraction of queries with a result (NWC) or mean group count / k (kNWC)
	TotalStats core.Stats
}

// RunNWC answers the NWC query at every query point and averages the
// I/O cost.
func RunNWC(env *Env, queries []geom.Point, l, w float64, n int, scheme core.Scheme, measure core.Measure) (Measurement, error) {
	var m Measurement
	for _, q := range queries {
		res, st, err := env.Engine.NWC(core.Query{Q: q, L: l, W: w, N: n}, scheme, measure)
		if err != nil {
			return m, fmt.Errorf("harness: %s/%v: %w", env.Name, scheme, err)
		}
		m.AvgIO += float64(st.NodeVisits)
		if res.Found {
			m.AvgFound++
		}
		accumulate(&m.TotalStats, st)
	}
	if len(queries) > 0 {
		m.AvgIO /= float64(len(queries))
		m.AvgFound /= float64(len(queries))
	}
	return m, nil
}

// RunKNWC answers the kNWC query at every query point and averages the
// I/O cost.
func RunKNWC(env *Env, queries []geom.Point, l, w float64, n, k, mm int, scheme core.Scheme, measure core.Measure) (Measurement, error) {
	var m Measurement
	for _, q := range queries {
		groups, st, err := env.Engine.KNWC(core.KNWCQuery{
			Query: core.Query{Q: q, L: l, W: w, N: n}, K: k, M: mm,
		}, scheme, measure)
		if err != nil {
			return m, fmt.Errorf("harness: %s/%v: %w", env.Name, scheme, err)
		}
		m.AvgIO += float64(st.NodeVisits)
		m.AvgFound += float64(len(groups)) / float64(k)
		accumulate(&m.TotalStats, st)
	}
	if len(queries) > 0 {
		m.AvgIO /= float64(len(queries))
		m.AvgFound /= float64(len(queries))
	}
	return m, nil
}

func accumulate(dst *core.Stats, s core.Stats) {
	dst.NodeVisits += s.NodeVisits
	dst.ObjectsProcessed += s.ObjectsProcessed
	dst.ObjectsSkipped += s.ObjectsSkipped
	dst.NodesPruned += s.NodesPruned
	dst.WindowQueries += s.WindowQueries
	dst.CandidateWindows += s.CandidateWindows
	dst.QualifiedWindows += s.QualifiedWindows
}
