package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one row per sweep value, one
// column per scheme/series — the rows behind one of the paper's figures
// or tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries free-form remarks (e.g. reduction rates quoted in
	// the paper's prose).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtIO formats an average I/O figure compactly.
func fmtIO(v float64) string {
	switch {
	case v >= 100000:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
