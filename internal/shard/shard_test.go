package shard

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"nwcq"
	"nwcq/internal/core"
	"nwcq/internal/geom"
)

const distEps = 1e-9

// space is the test data space; with 4 shards the grid splits 2×2 so
// the internal boundaries sit at x=50 and y=50.
var space = nwcq.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

var allMeasures = []nwcq.Measure{
	nwcq.MaxDistance, nwcq.MinDistance, nwcq.AvgDistance, nwcq.WindowDistance,
}

// allSchemes enumerates all 16 explicit optimisation combinations.
func allSchemes() []nwcq.Scheme {
	var out []nwcq.Scheme
	for b := 0; b < 16; b++ {
		out = append(out, nwcq.NewScheme(b&1 != 0, b&2 != 0, b&4 != 0, b&8 != 0))
	}
	return out
}

// straddlePoints generates a dataset deliberately clustered around the
// 2×2 shard boundaries (x=50 and y=50) so that optimal windows straddle
// shards, plus uniform background points.
func straddlePoints(rng *rand.Rand, n int) []nwcq.Point {
	pts := make([]nwcq.Point, 0, n)
	id := uint64(1)
	for len(pts) < n {
		var x, y float64
		switch len(pts) % 3 {
		case 0: // hug the vertical boundary
			x = 50 + rng.Float64()*8 - 4
			y = rng.Float64() * 100
		case 1: // hug the horizontal boundary
			x = rng.Float64() * 100
			y = 50 + rng.Float64()*8 - 4
		default: // background
			x = rng.Float64() * 100
			y = rng.Float64() * 100
		}
		pts = append(pts, nwcq.Point{X: x, Y: y, ID: id})
		id++
	}
	return pts
}

func corePoints(pts []nwcq.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return out
}

func coreMeasure(t *testing.T, m nwcq.Measure) core.Measure {
	t.Helper()
	cm, err := measureOf(m)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// buildBoth builds a single in-memory index and a Sharded router over
// the same points.
func buildBoth(t *testing.T, pts []nwcq.Point, shards int) (*nwcq.Index, *Sharded) {
	t.Helper()
	single, err := nwcq.Build(pts, nwcq.WithSpace(space.MinX, space.MinY, space.MaxX, space.MaxY))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(pts, Options{Shards: shards, Space: space})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	return single, sh
}

func nwcAgree(t *testing.T, label string, got, want nwcq.Result) {
	t.Helper()
	if got.Found != want.Found {
		t.Fatalf("%s: Found=%v, want %v", label, got.Found, want.Found)
	}
	if got.Found && math.Abs(got.Dist-want.Dist) > distEps {
		t.Fatalf("%s: Dist=%g, want %g", label, got.Dist, want.Dist)
	}
	if got.Found && len(got.Objects) != len(want.Objects) {
		t.Fatalf("%s: %d objects, want %d", label, len(got.Objects), len(want.Objects))
	}
}

func knwcAgree(t *testing.T, label string, got nwcq.KResult, want []core.Group) {
	t.Helper()
	if len(got.Groups) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want))
	}
	for i := range want {
		if math.Abs(got.Groups[i].Dist-want[i].Dist) > distEps {
			t.Fatalf("%s: group %d Dist=%g, want %g", label, i, got.Groups[i].Dist, want[i].Dist)
		}
	}
}

// TestShardedMatchesOracleAllSchemes is the acceptance test: on a
// boundary-straddling dataset, the sharded NWC and kNWC answers must
// equal the single-index answers and the brute-force oracle for every
// one of the 16 scheme combinations and all four measures.
func TestShardedMatchesOracleAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := straddlePoints(rng, 90)
	single, sh := buildBoth(t, pts, 4)
	cpts := corePoints(pts)

	queries := []struct {
		x, y, l, w float64
		n          int
	}{
		{50, 50, 6, 6, 4},   // centred on the 4-corner
		{48, 20, 5, 4, 3},   // near the vertical boundary
		{20, 51, 4, 5, 3},   // near the horizontal boundary
		{10, 10, 8, 8, 5},   // interior of shard 0
		{90, 90, 12, 12, 6}, // interior of the far shard
	}
	for _, m := range allMeasures {
		cm := coreMeasure(t, m)
		for qi, qq := range queries {
			oracle := core.BruteForceNWC(cpts,
				core.Query{Q: geom.Point{X: qq.x, Y: qq.y}, L: qq.l, W: qq.w, N: qq.n}, cm)
			kOracle := core.BruteForceKNWC(cpts, core.KNWCQuery{
				Query: core.Query{Q: geom.Point{X: qq.x, Y: qq.y}, L: qq.l, W: qq.w, N: qq.n},
				K:     3, M: 1,
			}, cm)
			for _, sc := range allSchemes() {
				q := nwcq.Query{X: qq.x, Y: qq.y, Length: qq.l, Width: qq.w, N: qq.n, Scheme: sc, Measure: m}
				label := sc.String() + "/" + m.String()

				sres, err := single.NWC(q)
				if err != nil {
					t.Fatalf("q%d %s single: %v", qi, label, err)
				}
				rres, err := sh.NWC(q)
				if err != nil {
					t.Fatalf("q%d %s sharded: %v", qi, label, err)
				}
				nwcAgree(t, label, rres, sres)
				if rres.Found != oracle.Found ||
					(rres.Found && math.Abs(rres.Dist-oracle.Group.Dist) > distEps) {
					t.Fatalf("q%d %s: sharded dist %v/%g, oracle %v/%g",
						qi, label, rres.Found, rres.Dist, oracle.Found, oracle.Group.Dist)
				}

				kq := nwcq.KQuery{Query: q, K: 3, M: 1}
				kres, err := sh.KNWC(kq)
				if err != nil {
					t.Fatalf("q%d %s sharded kNWC: %v", qi, label, err)
				}
				knwcAgree(t, "k/"+label, kres, kOracle)
			}
		}
	}
}

// TestCrossShardOnlyGroup exercises the no-local-answer path: every
// shard individually holds fewer than n points, so only a group mixing
// points from several shards can exist.
func TestCrossShardOnlyGroup(t *testing.T) {
	// Two points per shard, all hugging the centre so a single window
	// covers points from all four shards.
	pts := []nwcq.Point{
		{X: 49, Y: 49, ID: 1}, {X: 48, Y: 48, ID: 2}, // shard (0,0)
		{X: 51, Y: 49, ID: 3}, {X: 52, Y: 48, ID: 4}, // shard (1,0)
		{X: 49, Y: 51, ID: 5}, {X: 48, Y: 52, ID: 6}, // shard (0,1)
		{X: 51, Y: 51, ID: 7}, {X: 52, Y: 52, ID: 8}, // shard (1,1)
	}
	single, sh := buildBoth(t, pts, 4)
	for _, m := range allMeasures {
		q := nwcq.Query{X: 50, Y: 50, Length: 10, Width: 10, N: 5, Measure: m}
		want, err := single.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Found {
			t.Fatalf("%s: oracle found no group", m)
		}
		nwcAgree(t, m.String(), got, want)

		kq := nwcq.KQuery{Query: q, K: 2, M: 2}
		kwant, err := single.KNWC(kq)
		if err != nil {
			t.Fatal(err)
		}
		kgot, err := sh.KNWC(kq)
		if err != nil {
			t.Fatal(err)
		}
		if len(kgot.Groups) != len(kwant.Groups) {
			t.Fatalf("%s: kNWC %d groups, want %d", m, len(kgot.Groups), len(kwant.Groups))
		}
		for i := range kwant.Groups {
			if math.Abs(kgot.Groups[i].Dist-kwant.Groups[i].Dist) > distEps {
				t.Fatalf("%s: kNWC group %d dist %g, want %g", m, i, kgot.Groups[i].Dist, kwant.Groups[i].Dist)
			}
		}
	}
}

// TestMINDISTPruningSkipsShards proves the router's MINDIST bound
// actually prunes: on a dataset clustered in one corner, a query in
// that corner must answer without visiting every shard.
func TestMINDISTPruningSkipsShards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []nwcq.Point
	for i := 0; i < 60; i++ {
		// Dense cluster in shard (0,0)'s corner...
		pts = append(pts, nwcq.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10, ID: uint64(i + 1)})
	}
	// ...and a token point in the far shard so it is non-empty.
	pts = append(pts, nwcq.Point{X: 95, Y: 95, ID: 1000})

	single, sh := buildBoth(t, pts, 4)
	q := nwcq.Query{X: 5, Y: 5, Length: 4, Width: 4, N: 4}
	want, err := single.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	nwcAgree(t, "clustered", got, want)
	st := sh.RouterStats()
	if st.ShardsPruned == 0 {
		t.Fatalf("expected MINDIST pruning to skip at least one shard; stats %+v", st)
	}
	if st.ShardQueries+st.ShardsPruned < 4 {
		t.Fatalf("pruned+queried=%d, want >= shards", st.ShardQueries+st.ShardsPruned)
	}
}

// TestShardedWindowNearest checks the fan-out forms of the secondary
// queries against the single index.
func TestShardedWindowNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := straddlePoints(rng, 80)
	single, sh := buildBoth(t, pts, 4)

	wantW, err := single.Window(40, 40, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := sh.Window(40, 40, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotW) != len(wantW) {
		t.Fatalf("Window: %d points, want %d", len(gotW), len(wantW))
	}
	seen := map[uint64]bool{}
	for _, p := range wantW {
		seen[p.ID] = true
	}
	for _, p := range gotW {
		if !seen[p.ID] {
			t.Fatalf("Window: unexpected point %d", p.ID)
		}
	}

	wantN, err := single.Nearest(50, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := sh.Nearest(50, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotN) != len(wantN) {
		t.Fatalf("Nearest: %d points, want %d", len(gotN), len(wantN))
	}
	for i := range wantN {
		dw := math.Hypot(wantN[i].X-50, wantN[i].Y-50)
		dg := math.Hypot(gotN[i].X-50, gotN[i].Y-50)
		if math.Abs(dw-dg) > distEps {
			t.Fatalf("Nearest rank %d: dist %g, want %g", i, dg, dw)
		}
	}

	if sh.Len() != single.Len() {
		t.Fatalf("Len=%d, want %d", sh.Len(), single.Len())
	}
}

// TestShardedBatch checks the batch forms agree with sequential routed
// calls.
func TestShardedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := straddlePoints(rng, 60)
	_, sh := buildBoth(t, pts, 4)

	var qs []nwcq.Query
	var kqs []nwcq.KQuery
	for i := 0; i < 12; i++ {
		q := nwcq.Query{
			X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Length: 5 + rng.Float64()*5, Width: 5 + rng.Float64()*5, N: 3,
		}
		qs = append(qs, q)
		kqs = append(kqs, nwcq.KQuery{Query: q, K: 2, M: 1})
	}
	bres, err := sh.NWCBatch(qs, nwcq.BatchOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := sh.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		nwcAgree(t, "batch", bres[i], want)
	}
	kbres, err := sh.KNWCBatch(kqs, nwcq.BatchOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, kq := range kqs {
		want, err := sh.KNWC(kq)
		if err != nil {
			t.Fatal(err)
		}
		if len(kbres[i].Groups) != len(want.Groups) {
			t.Fatalf("kbatch %d: %d groups, want %d", i, len(kbres[i].Groups), len(want.Groups))
		}
	}
}

// TestShardedDirBuildReopen round-trips a paged sharded deployment:
// build under a directory, query, close, reopen, and query again.
func TestShardedDirBuildReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := straddlePoints(rng, 70)
	dir := filepath.Join(t.TempDir(), "cluster")

	sh, err := NewSharded(pts, Options{Shards: 4, Space: space, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q := nwcq.Query{X: 50, Y: 50, Length: 6, Width: 6, N: 4}
	want, err := sh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSharded(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("reopened Shards=%d, want 4", re.Shards())
	}
	if re.Len() != len(pts) {
		t.Fatalf("reopened Len=%d, want %d", re.Len(), len(pts))
	}
	got, err := re.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	nwcAgree(t, "reopen", got, want)

	// Mutations must keep routing and answering correctly after reopen.
	if err := re.Insert(nwcq.Point{X: 50.5, Y: 50.5, ID: 9001}); err != nil {
		t.Fatal(err)
	}
	if found, err := re.Delete(nwcq.Point{X: 50.5, Y: 50.5, ID: 9001}); err != nil || !found {
		t.Fatalf("delete after reopen: found=%v err=%v", found, err)
	}
}

// TestShardedValidation checks routed queries reject invalid input the
// same way the single index does.
func TestShardedValidation(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(3)), 20), 2)
	if _, err := sh.NWC(nwcq.Query{X: 1, Y: 1, Length: -1, Width: 2, N: 2}); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := sh.KNWC(nwcq.KQuery{Query: nwcq.Query{X: 1, Y: 1, Length: 2, Width: 2, N: 2}, K: 0, M: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := sh.Window(math.NaN(), 0, 1, 1); err == nil {
		t.Fatal("NaN window accepted")
	}
}

// TestSplitGrid checks the partitioner's grid factorisation.
func TestSplitGrid(t *testing.T) {
	cases := []struct{ n, gx, gy int }{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4},
	}
	for _, c := range cases {
		gx, gy := splitGrid(c.n)
		if gx != c.gx || gy != c.gy {
			t.Errorf("splitGrid(%d) = %d×%d, want %d×%d", c.n, gx, gy, c.gx, c.gy)
		}
	}
}

// TestOutlierRouting checks points outside the declared space are
// clamped to an edge shard, tracked by the effective bounds, and found
// by routed queries.
func TestOutlierRouting(t *testing.T) {
	pts := []nwcq.Point{
		{X: 10, Y: 10, ID: 1}, {X: 12, Y: 12, ID: 2},
		{X: 90, Y: 90, ID: 3}, {X: 92, Y: 92, ID: 4},
	}
	_, sh := buildBoth(t, pts, 4)

	// Insert points beyond every edge of the declared space.
	outliers := []nwcq.Point{
		{X: -20, Y: 50, ID: 100}, {X: 130, Y: 50, ID: 101},
		{X: -25, Y: 48, ID: 102}, {X: 128, Y: 52, ID: 103},
	}
	for _, p := range outliers {
		if err := sh.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// A query out at the west outlier cluster must find the group there
	// even though it is far outside every nominal shard region.
	res, err := sh.NWC(nwcq.Query{X: -22, Y: 49, Length: 10, Width: 10, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("outlier group not found")
	}
	for _, o := range res.Objects {
		if o.ID != 100 && o.ID != 102 {
			t.Fatalf("unexpected object %d in outlier group", o.ID)
		}
	}
	// And deleting them must route to wherever they were stored.
	for _, p := range outliers {
		found, err := sh.Delete(p)
		if err != nil || !found {
			t.Fatalf("delete outlier %d: found=%v err=%v", p.ID, found, err)
		}
	}
}
