package shard

import (
	"errors"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"nwcq"
	"nwcq/internal/metrics"
)

// Router-level observability. Latency and error aggregates are recorded
// once per routed query at the router (so a query fanned out to three
// shards still counts once), while storage-level state — page caches,
// WALs, IWP rebuilds, node visits — is summed across the shards'
// snapshots. Metrics() folds both into one nwcq.MetricsSnapshot, and
// WritePrometheus renders the same families a single index exposes plus
// the nwcq_shard_* routing extras.

type rKind int

const (
	rNWC rKind = iota
	rKNWC
	rNearest
	rWindow
	rInsert
	rDelete
	rKindCount
)

var rKindNames = [rKindCount]string{"nwc", "knwc", "nearest", "window", "insert", "delete"}

// Routed-query phases for latency attribution: scatter (per-shard local
// queries), border (cross-shard candidate fetches) and merge (candidate
// enumeration plus greedy merging). Every routed NWC/kNWC execution
// records its wall-clock split across the three, so a router tail spike
// is attributable to the phase that caused it.
const (
	phaseScatter = iota
	phaseBorder
	phaseMerge
	phaseCount
)

var phaseNames = [phaseCount]string{"scatter", "border", "merge"}

// routerMetrics mirrors the single-index queryMetrics shape, plus the
// routing counters. All atomics; no lock touches the query path.
type routerMetrics struct {
	queries  [rKindCount]metrics.Counter
	errors   [rKindCount]metrics.Counter
	latency  [rKindCount]*metrics.Histogram // seconds
	visits   [rKindCount]*metrics.Histogram // summed node visits per routed query
	byScheme [16]metrics.Counter

	// Routing activity: local scatter queries issued, shards skipped by
	// the MINDIST bound, border fetches run, border points collected,
	// and kNWC certification reruns (fetch-bound doublings).
	shardQueries  metrics.Counter
	shardsPruned  metrics.Counter
	borderFetches metrics.Counter
	borderPoints  metrics.Counter
	fetchReruns   metrics.Counter
	// boundTightenings counts improvements published to the shared
	// scatter bound cell — evidence the parallel workers cooperated.
	boundTightenings metrics.Counter
	// inflight gauges shard queries currently running in scatter
	// workers (zero on the sequential path).
	inflight atomic.Int64

	// phase holds the scatter/border/merge latency histograms, recorded
	// once per routed NWC/kNWC execution (cache hits route nothing and
	// record nothing).
	phase [phaseCount]*metrics.Histogram // seconds

	// slow is the router-level slow-query ring: whole routed queries
	// (end-to-end, including scatter, border fetches and merging) that
	// exceeded the shared threshold, alongside the per-shard rings that
	// record each shard's local share.
	slow *metrics.Ring[nwcq.SlowQueryEntry]
}

func newRouterMetrics() *routerMetrics {
	m := &routerMetrics{slow: metrics.NewRing[nwcq.SlowQueryEntry](slowLogSize)}
	for k := range m.latency {
		m.latency[k] = metrics.MustHistogram(metrics.ExponentialBounds(1e-6, 2, 24))
		m.visits[k] = metrics.MustHistogram(metrics.ExponentialBounds(1, 2, 24))
	}
	for p := range m.phase {
		m.phase[p] = metrics.MustHistogram(metrics.ExponentialBounds(1e-6, 2, 24))
	}
	return m
}

// slowLogSize matches the single-index ring size (nwcq.slowLogSize).
const slowLogSize = 128

func schemeBits(s nwcq.Scheme) int {
	srr, dip, dep, iwp := s.Flags()
	i := 0
	if srr {
		i |= 1
	}
	if dip {
		i |= 2
	}
	if dep {
		i |= 4
	}
	if iwp {
		i |= 8
	}
	return i
}

func (m *routerMetrics) observe(kind rKind, scheme nwcq.Scheme, elapsed time.Duration, visits uint64, err error) {
	m.queries[kind].Inc()
	if err != nil {
		m.errors[kind].Inc()
	}
	m.latency[kind].Observe(elapsed.Seconds())
	if kind == rNWC || kind == rKNWC {
		m.visits[kind].Observe(float64(visits))
		m.byScheme[schemeBits(scheme)].Inc()
	}
}

// RouterStats is a point-in-time copy of the routing counters.
type RouterStats struct {
	// ShardQueries counts local NWC/kNWC queries issued to shards by the
	// scatter phase; ShardsPruned counts shards the MINDIST bound let the
	// router skip entirely.
	ShardQueries uint64
	ShardsPruned uint64
	// BorderFetches counts border-fetch passes (windows straddling shard
	// boundaries), BorderPoints the candidate points they collected.
	BorderFetches uint64
	BorderPoints  uint64
	// FetchReruns counts kNWC certification retries: fetch-bound
	// doublings needed before the merged answer was provably exact.
	FetchReruns uint64
	// BoundTightenings counts improvements published to the shared
	// scatter bound cell by in-flight shard traversals (parallel
	// execution only).
	BoundTightenings uint64
}

// RouterStats returns the scatter-gather routing counters.
func (s *Sharded) RouterStats() RouterStats {
	return RouterStats{
		ShardQueries:     s.obs.shardQueries.Value(),
		ShardsPruned:     s.obs.shardsPruned.Value(),
		BorderFetches:    s.obs.borderFetches.Value(),
		BorderPoints:     s.obs.borderPoints.Value(),
		FetchReruns:      s.obs.fetchReruns.Value(),
		BoundTightenings: s.obs.boundTightenings.Value(),
	}
}

// Metrics returns one aggregated snapshot for the whole sharded
// backend: router-level query aggregates (each routed query counted
// once, with its summed node visits), plus the shards' storage state
// (page caches, WALs, IWP rebuilds) summed, plus the routing counters.
func (s *Sharded) Metrics() nwcq.MetricsSnapshot {
	m := s.obs
	now := time.Now()
	out := nwcq.MetricsSnapshot{
		CollectedAt:          now,
		UptimeSeconds:        now.Sub(s.created).Seconds(),
		Build:                metrics.Build(),
		Queries:              make(map[string]nwcq.QueryKindMetrics, int(rKindCount)),
		SchemeCounts:         make(map[string]uint64),
		CumulativeNodeVisits: s.IOStats(),
	}
	for k := rKind(0); k < rKindCount; k++ {
		lat := m.latency[k].Snapshot()
		vis := m.visits[k].Snapshot()
		km := nwcq.QueryKindMetrics{
			Count:         m.queries[k].Value(),
			Errors:        m.errors[k].Value(),
			LatencyMeanMs: lat.Mean() * 1e3,
			LatencyP50Ms:  lat.QuantileOr(0.50, 0) * 1e3,
			LatencyP95Ms:  lat.QuantileOr(0.95, 0) * 1e3,
			LatencyP99Ms:  lat.QuantileOr(0.99, 0) * 1e3,
		}
		if k == rNWC || k == rKNWC {
			km.NodeVisitsMean = vis.Mean()
			km.NodeVisitsP50 = vis.QuantileOr(0.50, 0)
			km.NodeVisitsP95 = vis.QuantileOr(0.95, 0)
			km.NodeVisitsP99 = vis.QuantileOr(0.99, 0)
		}
		out.Queries[rKindNames[k]] = km
	}
	for i := range m.byScheme {
		if n := m.byScheme[i].Value(); n > 0 {
			out.SchemeCounts[nwcq.NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0).String()] += n
		}
	}
	var pc *nwcq.PageCacheMetrics
	var wal *nwcq.WALMetrics
	for _, ix := range s.shards {
		snap := ix.Metrics()
		out.IWPRebuilds += snap.IWPRebuilds
		if p := snap.PageCache; p != nil {
			if pc == nil {
				pc = &nwcq.PageCacheMetrics{}
			}
			pc.Reads += p.Reads
			pc.Writes += p.Writes
			pc.Hits += p.Hits
			pc.Misses += p.Misses
			pc.Evictions += p.Evictions
			pc.Coalesced += p.Coalesced
			pc.Syncs += p.Syncs
		}
		if w := snap.WAL; w != nil {
			if wal == nil {
				wal = &nwcq.WALMetrics{SyncPolicy: w.SyncPolicy}
			}
			wal.Appends += w.Appends
			wal.AppendBytes += w.AppendBytes
			wal.Fsyncs += w.Fsyncs
			wal.Rotations += w.Rotations
			wal.SegmentsRecycled += w.SegmentsRecycled
			wal.Checkpoints += w.Checkpoints
			wal.RecordsReplayed += w.RecordsReplayed
			// Per-shard LSN streams are independent; report the largest so
			// the gauge still moves with write activity.
			if w.AppendedLSN > wal.AppendedLSN {
				wal.AppendedLSN = w.AppendedLSN
			}
			if w.DurableLSN > wal.DurableLSN {
				wal.DurableLSN = w.DurableLSN
			}
			if w.CommittedLSN > wal.CommittedLSN {
				wal.CommittedLSN = w.CommittedLSN
			}
			if w.ReplicaLSN > wal.ReplicaLSN {
				wal.ReplicaLSN = w.ReplicaLSN
			}
		}
	}
	if pc != nil {
		if total := pc.Hits + pc.Misses; total > 0 {
			pc.HitRate = float64(pc.Hits) / float64(total)
		}
		out.PageCache = pc
	}
	out.WAL = wal
	rs := s.RouterStats()
	out.Router = &nwcq.RouterMetrics{
		Shards:           len(s.shards),
		ShardQueries:     rs.ShardQueries,
		ShardsPruned:     rs.ShardsPruned,
		BorderFetches:    rs.BorderFetches,
		BorderPoints:     rs.BorderPoints,
		FetchReruns:      rs.FetchReruns,
		Parallelism:      s.parallelism(),
		InflightWorkers:  m.inflight.Load(),
		BoundTightenings: rs.BoundTightenings,
		Phases:           make(map[string]nwcq.RouterPhaseMetrics, phaseCount),
	}
	for p := 0; p < phaseCount; p++ {
		ph := m.phase[p].Snapshot()
		out.Router.Phases[phaseNames[p]] = nwcq.RouterPhaseMetrics{
			Count:         ph.Count,
			LatencyMeanMs: ph.Mean() * 1e3,
			LatencyP50Ms:  ph.QuantileOr(0.50, 0) * 1e3,
			LatencyP95Ms:  ph.QuantileOr(0.95, 0) * 1e3,
			LatencyP99Ms:  ph.QuantileOr(0.99, 0) * 1e3,
		}
	}
	if c := s.rcache; c != nil {
		st := c.stats()
		rc := &nwcq.ResultCacheMetrics{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Coalesced:     st.Coalesced,
			Invalidations: st.Invalidations,
			Entries:       st.Entries,
		}
		if total := rc.Hits + rc.Misses; total > 0 {
			rc.HitRate = float64(rc.Hits) / float64(total)
		}
		out.ResultCache = rc
	}
	ss := s.SubscriptionStats()
	out.Subscriptions = &ss
	return out
}

// WritePrometheus renders the sharded backend's metrics in the
// Prometheus text format: the same families a single index exposes
// (from the router-level aggregates and the summed shard storage
// counters) plus nwcq_shard_* routing families.
func (s *Sharded) WritePrometheus(w io.Writer) error {
	m := s.obs
	pw := &metrics.PromWriter{W: w}
	pw.BuildInfoProm()
	pw.Header("nwcq_queries_total", "counter", "Queries served, by operation kind.")
	for k := rKind(0); k < rKindCount; k++ {
		pw.Value("nwcq_queries_total", metrics.Labels{"kind", rKindNames[k]}, float64(m.queries[k].Value()))
	}
	pw.Header("nwcq_query_errors_total", "counter", "Failed queries, by operation kind.")
	for k := rKind(0); k < rKindCount; k++ {
		pw.Value("nwcq_query_errors_total", metrics.Labels{"kind", rKindNames[k]}, float64(m.errors[k].Value()))
	}
	pw.Header("nwcq_query_latency_seconds", "histogram", "Query latency, by operation kind.")
	for k := rKind(0); k < rKindCount; k++ {
		pw.Histogram("nwcq_query_latency_seconds", metrics.Labels{"kind", rKindNames[k]}, m.latency[k].Snapshot())
	}
	pw.Header("nwcq_query_node_visits", "histogram", "Per-query node visits summed across shards (nwc and knwc only).")
	for _, k := range []rKind{rNWC, rKNWC} {
		pw.Histogram("nwcq_query_node_visits", metrics.Labels{"kind", rKindNames[k]}, m.visits[k].Snapshot())
	}
	pw.Header("nwcq_scheme_queries_total", "counter", "NWC/kNWC queries, by resolved optimisation scheme.")
	schemes := make(map[string]uint64)
	for i := range m.byScheme {
		if n := m.byScheme[i].Value(); n > 0 {
			schemes[nwcq.NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0).String()] += n
		}
	}
	for _, name := range metrics.SortedKeys(schemes) {
		pw.Value("nwcq_scheme_queries_total", metrics.Labels{"scheme", name}, float64(schemes[name]))
	}
	pw.Header("nwcq_node_visits_total", "counter", "Cumulative node visits summed over all shards.")
	pw.Value("nwcq_node_visits_total", nil, float64(s.IOStats()))
	pw.Header("nwcq_index_points", "gauge", "Points currently indexed, summed over all shards.")
	pw.Value("nwcq_index_points", nil, float64(s.Len()))
	pw.Header("nwcq_uptime_seconds", "gauge", "Seconds since the sharded frontend was built or opened.")
	pw.Value("nwcq_uptime_seconds", nil, time.Since(s.created).Seconds())

	pw.Header("nwcq_shards", "gauge", "Number of index shards behind the router.")
	pw.Value("nwcq_shards", nil, float64(len(s.shards)))
	pw.Header("nwcq_shard_points", "gauge", "Points indexed per shard.")
	for i, ix := range s.shards {
		pw.Value("nwcq_shard_points", metrics.Labels{"shard", strconv.Itoa(i)}, float64(ix.Len()))
	}
	rs := s.RouterStats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"nwcq_shard_queries_total", "Local scatter queries issued to shards.", rs.ShardQueries},
		{"nwcq_shards_pruned_total", "Shards skipped by the MINDIST bound.", rs.ShardsPruned},
		{"nwcq_border_fetches_total", "Border-fetch passes for boundary-straddling windows.", rs.BorderFetches},
		{"nwcq_border_points_total", "Candidate points collected by border fetches.", rs.BorderPoints},
		{"nwcq_fetch_reruns_total", "kNWC certification reruns (fetch-bound doublings).", rs.FetchReruns},
		{"nwcq_bound_tightenings_total", "Shared-bound improvements published by in-flight shard traversals.", rs.BoundTightenings},
	} {
		pw.Header(c.name, "counter", c.help)
		pw.Value(c.name, nil, float64(c.v))
	}
	pw.Header("nwcq_router_phase_seconds", "histogram", "Routed-query wall time split by phase (scatter, border, merge).")
	for p := 0; p < phaseCount; p++ {
		pw.Histogram("nwcq_router_phase_seconds", metrics.Labels{"phase", phaseNames[p]}, m.phase[p].Snapshot())
	}
	pw.Header("nwcq_slow_queries_total", "counter", "Routed queries that exceeded the slow-query threshold.")
	pw.Value("nwcq_slow_queries_total", nil, float64(m.slow.Recorded()))
	pw.Header("nwcq_parallel_workers", "gauge", "Configured scatter worker width (resolved; GOMAXPROCS when unset).")
	pw.Value("nwcq_parallel_workers", nil, float64(s.parallelism()))
	pw.Header("nwcq_parallel_inflight", "gauge", "Shard queries currently running in scatter workers.")
	pw.Value("nwcq_parallel_inflight", nil, float64(m.inflight.Load()))
	if c := s.rcache; c != nil {
		st := c.stats()
		for _, cc := range []struct {
			name, help string
			v          uint64
		}{
			{"nwcq_result_cache_hits_total", "Query result cache hits.", st.Hits},
			{"nwcq_result_cache_misses_total", "Query result cache misses (including stale-generation bypasses).", st.Misses},
			{"nwcq_result_cache_coalesced_total", "Lookups that shared another caller's in-flight computation.", st.Coalesced},
			{"nwcq_result_cache_invalidations_total", "Generation advances that dropped the cached entries.", st.Invalidations},
		} {
			pw.Header(cc.name, "counter", cc.help)
			pw.Value(cc.name, nil, float64(cc.v))
		}
		pw.Header("nwcq_result_cache_entries", "gauge", "Entries currently cached (including in-flight computations).")
		pw.Value("nwcq_result_cache_entries", nil, float64(st.Entries))
	}
	ss := s.SubscriptionStats()
	pw.Header("nwcq_sub_active", "gauge", "Open standing-query subscriptions on the router.")
	pw.Value("nwcq_sub_active", nil, float64(ss.Active))
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"nwcq_sub_published_total", "Shard publishes that reached a notifier while triggers were open.", ss.Published},
		{"nwcq_sub_notified_total", "Trigger notifications enqueued by shard notifiers.", ss.Notified},
		{"nwcq_sub_coalesced_total", "Trigger notifications dropped by queue overflow.", ss.Coalesced},
		{"nwcq_sub_resync_total", "Router frames delivered flagged resync.", ss.Resyncs},
		{"nwcq_sub_delivered_total", "Router standing-query frames delivered.", ss.Delivered},
		{"nwcq_sub_eval_errors_total", "Router standing-query re-evaluations that failed.", ss.EvalErrors},
	} {
		pw.Header(c.name, "counter", c.help)
		pw.Value(c.name, nil, float64(c.v))
	}

	// Summed storage families, same names as the single-index export so
	// dashboards keep working when a deployment switches backends.
	snap := s.Metrics()
	if pc := snap.PageCache; pc != nil {
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"nwcq_page_cache_reads_total", "Physical page reads, summed over shards.", pc.Reads},
			{"nwcq_page_cache_writes_total", "Physical page writes, summed over shards.", pc.Writes},
			{"nwcq_page_cache_hits_total", "Buffer-pool hits, summed over shards.", pc.Hits},
			{"nwcq_page_cache_misses_total", "Buffer-pool misses, summed over shards.", pc.Misses},
			{"nwcq_page_cache_evictions_total", "Frames evicted for room, summed over shards.", pc.Evictions},
			{"nwcq_page_cache_coalesced_total", "Cold reads coalesced by single-flight, summed over shards.", pc.Coalesced},
			{"nwcq_page_syncs_total", "Fsyncs of the page files, summed over shards.", pc.Syncs},
		} {
			pw.Header(c.name, "counter", c.help)
			pw.Value(c.name, nil, float64(c.v))
		}
	}
	if ws := snap.WAL; ws != nil {
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"nwcq_wal_appends_total", "WAL records appended, summed over shards.", ws.Appends},
			{"nwcq_wal_append_bytes_total", "WAL bytes appended, summed over shards.", ws.AppendBytes},
			{"nwcq_wal_fsyncs_total", "WAL segment fsyncs, summed over shards.", ws.Fsyncs},
			{"nwcq_wal_rotations_total", "WAL segment rotations, summed over shards.", ws.Rotations},
			{"nwcq_wal_segments_recycled_total", "WAL segments recycled, summed over shards.", ws.SegmentsRecycled},
			{"nwcq_wal_checkpoints_total", "Checkpoints, summed over shards.", ws.Checkpoints},
			{"nwcq_wal_records_replayed_total", "Records replayed during crash recovery, summed over shards.", ws.RecordsReplayed},
		} {
			pw.Header(c.name, "counter", c.help)
			pw.Value(c.name, nil, float64(c.v))
		}
	}
	return pw.Err
}

// SlowQueryThreshold returns the shared slow-query threshold (every
// shard carries the same one; shard 0 is the source of truth).
func (s *Sharded) SlowQueryThreshold() time.Duration {
	return s.shards[0].SlowQueryThreshold()
}

// SetSlowQueryThreshold adjusts the slow-query threshold on every
// shard at runtime. The router-level log shares the shards' threshold.
func (s *Sharded) SetSlowQueryThreshold(threshold time.Duration) {
	for _, ix := range s.shards {
		ix.SetSlowQueryThreshold(threshold)
	}
}

// noteSlowRouted records one routed query in the router-level slow ring
// when it exceeded the threshold. Unlike the shard entries (one shard's
// local share each), a router entry covers the whole routed execution:
// scatter, border fetches and merging. Validation failures never
// executed and are not recorded, matching the single-index rule.
func (s *Sharded) noteSlowRouted(kind string, q nwcq.Query, k, m int, start time.Time, elapsed time.Duration, visits uint64, err error) {
	th := s.SlowQueryThreshold()
	if th <= 0 || elapsed < th || errors.Is(err, nwcq.ErrInvalidQuery) {
		return
	}
	e := &nwcq.SlowQueryEntry{
		Kind:    kind,
		Scheme:  q.Scheme.String(),
		Measure: q.Measure.String(),
		X:       q.X, Y: q.Y, Length: q.Length, Width: q.Width, N: q.N,
		K: k, M: m,
		StartedAt: start, Duration: elapsed, NodeVisits: visits,
		Source: "router",
	}
	if err != nil {
		e.Error = err.Error()
	}
	s.obs.slow.Put(e)
}

// SlowQueries merges the router-level ring with the shards' local
// rings, newest first. Router entries carry Source "router" (whole
// routed queries); shard entries are stamped "shard<i>" so one slow
// routed query is attributable to the shard that dominated it.
func (s *Sharded) SlowQueries() []nwcq.SlowQueryEntry {
	var out []nwcq.SlowQueryEntry
	for _, p := range s.obs.slow.Snapshot() {
		out = append(out, *p)
	}
	for i, ix := range s.shards {
		src := "shard" + strconv.Itoa(i)
		for _, e := range ix.SlowQueries() {
			e.Source = src
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartedAt.After(out[j].StartedAt) })
	return out
}
