package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"nwcq"
)

// BenchmarkShardedScatterGather measures routed NWC latency across
// shard counts under two query mixes: hot-spot (all queries land in one
// shard's dense cluster, where MINDIST pruning should skip most
// siblings) and uniform (queries spread over the whole space, paying
// the scatter and border-fetch overhead). shardspruned/op reports how
// many shards the MINDIST bound skipped per query — the routing win the
// paper's node-level pruning predicts at shard granularity.
func BenchmarkShardedScatterGather(b *testing.B) {
	const nPoints = 20_000
	rng := rand.New(rand.NewSource(101))
	pts := make([]nwcq.Point, nPoints)
	for i := range pts {
		// Clustered dataset: 70% in a dense corner hot-spot, the rest
		// uniform, so pruning has something to skip.
		var x, y float64
		if i%10 < 7 {
			x, y = rng.Float64()*150, rng.Float64()*150
		} else {
			x, y = rng.Float64()*1000, rng.Float64()*1000
		}
		pts[i] = nwcq.Point{X: x, Y: y, ID: uint64(i + 1)}
	}
	spaceRect := nwcq.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

	mixes := []struct {
		name string
		next func(rng *rand.Rand) (x, y float64)
	}{
		{"hotspot", func(rng *rand.Rand) (float64, float64) {
			return rng.Float64() * 140, rng.Float64() * 140
		}},
		{"uniform", func(rng *rand.Rand) (float64, float64) {
			return rng.Float64() * 1000, rng.Float64() * 1000
		}},
	}

	for _, shards := range []int{1, 2, 4} {
		sh, err := NewSharded(pts, Options{Shards: shards, Space: spaceRect, Build: []nwcq.BuildOption{nwcq.WithBulkLoad()}})
		if err != nil {
			b.Fatal(err)
		}
		for _, mix := range mixes {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mix.name), func(b *testing.B) {
				qrng := rand.New(rand.NewSource(7))
				before := sh.RouterStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x, y := mix.next(qrng)
					if _, err := sh.NWC(nwcq.Query{X: x, Y: y, Length: 20, Width: 20, N: 6}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := sh.RouterStats()
				b.ReportMetric(float64(after.ShardsPruned-before.ShardsPruned)/float64(b.N), "shardspruned/op")
				b.ReportMetric(float64(after.BorderFetches-before.BorderFetches)/float64(b.N), "borderfetches/op")
			})
		}
		sh.Close()
	}
}

// BenchmarkShardedParallel measures routed NWC latency across shard
// counts × scatter widths × cache temperature. par=1 is the sequential
// path (the no-regression baseline against the pre-parallel router);
// wider settings exercise the cooperative shared bound (boundtighten/op
// reports how often in-flight traversals improved it — the cooperation
// the clustered dataset is built to provoke). cache=hot replays one
// query so every iteration after the first is a result-cache hit;
// cache=cold disables the cache. Note: on a single-CPU runner
// (GOMAXPROCS=1) parallel widths measure coordination overhead, not
// speedup.
func BenchmarkShardedParallel(b *testing.B) {
	const nPoints = 20_000
	rng := rand.New(rand.NewSource(103))
	pts := make([]nwcq.Point, nPoints)
	for i := range pts {
		var x, y float64
		if i%10 < 7 {
			x, y = rng.Float64()*150, rng.Float64()*150
		} else {
			x, y = rng.Float64()*1000, rng.Float64()*1000
		}
		pts[i] = nwcq.Point{X: x, Y: y, ID: uint64(i + 1)}
	}
	spaceRect := nwcq.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

	for _, shards := range []int{2, 4} {
		for _, par := range []int{1, 2, 4} {
			for _, cache := range []struct {
				name    string
				entries int
			}{{"cold", 0}, {"hot", 4096}} {
				sh, err := NewSharded(pts, Options{
					Shards: shards, Space: spaceRect,
					Parallelism: par, ResultCache: cache.entries,
					Build: []nwcq.BuildOption{nwcq.WithBulkLoad()},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("shards=%d/par=%d/cache=%s", shards, par, cache.name), func(b *testing.B) {
					qrng := rand.New(rand.NewSource(7))
					before := sh.RouterStats()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var x, y float64
						if cache.entries > 0 {
							// Hot: one repeated query; every iteration past
							// the first is a hit.
							x, y = 80, 80
						} else {
							x, y = qrng.Float64()*140, qrng.Float64()*140
						}
						if _, err := sh.NWC(nwcq.Query{X: x, Y: y, Length: 20, Width: 20, N: 6}); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					after := sh.RouterStats()
					b.ReportMetric(float64(after.BoundTightenings-before.BoundTightenings)/float64(b.N), "boundtighten/op")
					b.ReportMetric(float64(after.ShardsPruned-before.ShardsPruned)/float64(b.N), "shardspruned/op")
				})
				sh.Close()
			}
		}
	}
}
