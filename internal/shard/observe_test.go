package shard

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"nwcq"
)

// TestShardedMetrics checks the aggregated snapshot: router-level query
// counts, per-shard storage state summed, and the Router section.
func TestShardedMetrics(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(13)), 50), 4)

	q := nwcq.Query{X: 50, Y: 50, Length: 6, Width: 6, N: 3}
	for i := 0; i < 5; i++ {
		if _, err := sh.NWC(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sh.KNWC(nwcq.KQuery{Query: q, K: 2, M: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.NWC(nwcq.Query{X: 1, Y: 1, Length: -1, Width: 1, N: 1}); err == nil {
		t.Fatal("expected validation error")
	}

	snap := sh.Metrics()
	if got := snap.Queries["nwc"].Count; got != 6 {
		t.Fatalf("nwc count=%d, want 6 (5 ok + 1 error)", got)
	}
	if got := snap.Queries["nwc"].Errors; got != 1 {
		t.Fatalf("nwc errors=%d, want 1", got)
	}
	if got := snap.Queries["knwc"].Count; got != 1 {
		t.Fatalf("knwc count=%d, want 1", got)
	}
	if snap.Router == nil {
		t.Fatal("Router section missing")
	}
	if snap.Router.Shards != 4 {
		t.Fatalf("Router.Shards=%d, want 4", snap.Router.Shards)
	}
	if snap.Router.ShardQueries == 0 {
		t.Fatal("Router.ShardQueries=0")
	}
	rs := sh.RouterStats()
	if rs.ShardQueries != snap.Router.ShardQueries {
		t.Fatalf("RouterStats/Metrics disagree: %d vs %d", rs.ShardQueries, snap.Router.ShardQueries)
	}
}

// TestShardedPrometheus checks the text exposition carries both the
// single-index-compatible families and the router-specific ones.
func TestShardedPrometheus(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(17)), 40), 4)
	if _, err := sh.NWC(nwcq.Query{X: 50, Y: 50, Length: 6, Width: 6, N: 3}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := sh.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"nwcq_queries_total{kind=\"nwc\"}",
		"nwcq_query_latency_seconds_bucket",
		"nwcq_index_points",
		"nwcq_shards 4",
		"nwcq_shard_points{shard=\"0\"}",
		"nwcq_shard_queries_total",
		"nwcq_shards_pruned_total",
		"nwcq_border_fetches_total",
		"nwcq_fetch_reruns_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestShardedExplain checks trace merging: shard-prefixed phases,
// summed counters, and the synthetic border-fetch phase.
func TestShardedExplain(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(29)), 50), 4)

	q := nwcq.Query{X: 50, Y: 50, Length: 6, Width: 6, N: 3}
	res, tr, err := sh.ExplainNWC(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected a group")
	}
	if tr == nil || len(tr.Phases) == 0 {
		t.Fatal("empty trace")
	}
	sawShard, sawBorder := false, false
	for _, p := range tr.Phases {
		if strings.HasPrefix(p.Phase, "shard") {
			sawShard = true
		}
		if p.Phase == "border-fetch" {
			sawBorder = true
		}
	}
	if !sawShard {
		t.Fatal("no shard-prefixed phase in merged trace")
	}
	if !sawBorder {
		t.Fatal("no border-fetch phase for a straddling query")
	}
	if tr.Render() == "" {
		t.Fatal("trace failed to render")
	}

	kres, ktr, err := sh.ExplainKNWC(context.Background(), nwcq.KQuery{Query: q, K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !kres.Found || ktr == nil || len(ktr.Phases) == 0 {
		t.Fatal("kNWC explain produced no trace")
	}
}

// TestShardedSlowLog checks the threshold fans out and entries merge.
func TestShardedSlowLog(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(31)), 40), 2)
	sh.SetSlowQueryThreshold(time.Nanosecond)
	if got := sh.SlowQueryThreshold(); got != time.Nanosecond {
		t.Fatalf("threshold=%v, want 1ns", got)
	}
	if _, err := sh.NWC(nwcq.Query{X: 50, Y: 50, Length: 8, Width: 8, N: 3}); err != nil {
		t.Fatal(err)
	}
	if entries := sh.SlowQueries(); len(entries) == 0 {
		t.Fatal("no slow-query entries despite 1ns threshold")
	}
}
