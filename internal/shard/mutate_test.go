package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"nwcq"
	"nwcq/internal/core"
	"nwcq/internal/geom"
)

// TestShardedMutationOracle applies a randomised mutation script
// through the router while mirroring it on a plain slice, checking the
// routed boundary-straddling answers against the brute-force oracle
// after every step.
func TestShardedMutationOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := straddlePoints(rng, 40)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	mirror := append([]nwcq.Point(nil), pts...)

	nextID := uint64(10_000)
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 || len(mirror) < 10 {
			p := nwcq.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, ID: nextID}
			nextID++
			if err := sh.Insert(p); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			mirror = append(mirror, p)
		} else {
			i := rng.Intn(len(mirror))
			p := mirror[i]
			found, err := sh.Delete(p)
			if err != nil || !found {
				t.Fatalf("step %d delete %d: found=%v err=%v", step, p.ID, found, err)
			}
			mirror = append(mirror[:i], mirror[i+1:]...)
		}
		if sh.Len() != len(mirror) {
			t.Fatalf("step %d: Len=%d, want %d", step, sh.Len(), len(mirror))
		}
		if step%5 != 0 {
			continue
		}
		q := nwcq.Query{X: 50, Y: 50, Length: 7, Width: 7, N: 3}
		oracle := core.BruteForceNWC(corePoints(mirror),
			core.Query{Q: geom.Point{X: 50, Y: 50}, L: 7, W: 7, N: 3}, core.MeasureMax)
		got, err := sh.NWC(q)
		if err != nil {
			t.Fatalf("step %d query: %v", step, err)
		}
		if got.Found != oracle.Found ||
			(got.Found && math.Abs(got.Dist-oracle.Group.Dist) > distEps) {
			t.Fatalf("step %d: dist %v/%g, oracle %v/%g",
				step, got.Found, got.Dist, oracle.Found, oracle.Group.Dist)
		}
	}
}

// TestShardedBatchMutations checks InsertBatch/DeleteBatch route per
// shard and report found flags in input order.
func TestShardedBatchMutations(t *testing.T) {
	_, sh := buildBoth(t, straddlePoints(rand.New(rand.NewSource(5)), 30), 4)

	batch := []nwcq.Point{
		{X: 10, Y: 10, ID: 501}, {X: 90, Y: 10, ID: 502},
		{X: 10, Y: 90, ID: 503}, {X: 90, Y: 90, ID: 504},
		{X: 50, Y: 50, ID: 505},
	}
	if err := sh.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 35 {
		t.Fatalf("Len=%d, want 35", sh.Len())
	}
	dels := append([]nwcq.Point{{X: 1, Y: 1, ID: 999}}, batch...)
	founds, err := sh.DeleteBatch(dels)
	if err != nil {
		t.Fatal(err)
	}
	if founds[0] {
		t.Fatal("phantom point reported found")
	}
	for i := 1; i < len(founds); i++ {
		if !founds[i] {
			t.Fatalf("batch point %d not found", dels[i].ID)
		}
	}
	if sh.Len() != 30 {
		t.Fatalf("Len=%d after delete, want 30", sh.Len())
	}
}

// TestConcurrentMutationStraddling runs boundary-straddling queries
// while a writer mutates points confined to shard 0's interior. Every
// query must observe some consistent version: its answer is checked
// for feasibility, and since all mutations are monotone inserts of a
// tight cluster, the straddling answer must equal the static oracle
// (the mutations can never join a boundary group). Run under -race in
// CI to exercise the published-view coordination across shards.
func TestConcurrentMutationStraddling(t *testing.T) {
	// A fixed boundary cluster far from the mutation site.
	var pts []nwcq.Point
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 30; i++ {
		pts = append(pts, nwcq.Point{
			X: 48 + rng.Float64()*4, Y: 70 + rng.Float64()*6, ID: uint64(i + 1),
		})
	}
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	oracle := core.BruteForceNWC(corePoints(pts),
		core.Query{Q: geom.Point{X: 50, Y: 73}, L: 5, W: 5, N: 4}, core.MeasureMax)
	if !oracle.Found {
		t.Fatal("bad fixture: oracle found nothing")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Writer: churn points deep inside shard 0 (far from x=50,y=50
		// and from the query cluster).
		id := uint64(100_000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := nwcq.Point{X: 5 + rng.Float64()*10, Y: 5 + rng.Float64()*10, ID: id}
			id++
			if err := sh.Insert(p); err != nil {
				t.Error(err)
				return
			}
			if _, err := sh.Delete(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	q := nwcq.Query{X: 50, Y: 73, Length: 5, Width: 5, N: 4}
	kq := nwcq.KQuery{Query: q, K: 2, M: 1}
	for i := 0; i < 200; i++ {
		res, err := sh.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || math.Abs(res.Dist-oracle.Group.Dist) > distEps {
			t.Fatalf("iter %d: dist %v/%g, oracle %g", i, res.Found, res.Dist, oracle.Group.Dist)
		}
		if i%10 == 0 {
			kres, err := sh.KNWC(kq)
			if err != nil {
				t.Fatal(err)
			}
			if !kres.Found || math.Abs(kres.Groups[0].Dist-oracle.Group.Dist) > distEps {
				t.Fatalf("iter %d: kNWC best %g, oracle %g", i, kres.Groups[0].Dist, oracle.Group.Dist)
			}
		}
	}
	close(stop)
	wg.Wait()
}
