package shard

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"nwcq"
	"nwcq/internal/core"
	"nwcq/internal/geom"
	wpool "nwcq/internal/pool"
)

// TestParallelMatchesSequentialAllSchemes is the parallel-execution
// acceptance test: on a boundary-straddling dataset, the parallel
// scatter (cooperative shared bound, claim-time pruning) must produce
// exactly the sequential router's answer — which in turn must equal the
// brute-force oracle — for all 16 scheme combinations, all four
// measures, NWC and kNWC.
func TestParallelMatchesSequentialAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := straddlePoints(rng, 90)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	cpts := corePoints(pts)

	queries := []struct {
		x, y, l, w float64
		n          int
	}{
		{50, 50, 6, 6, 4},   // centred on the 4-corner
		{48, 20, 5, 4, 3},   // near the vertical boundary
		{20, 51, 4, 5, 3},   // near the horizontal boundary
		{10, 10, 8, 8, 5},   // interior of shard 0
		{90, 90, 12, 12, 6}, // interior of the far shard
	}
	for _, m := range allMeasures {
		cm := coreMeasure(t, m)
		for qi, qq := range queries {
			oracle := core.BruteForceNWC(cpts,
				core.Query{Q: geom.Point{X: qq.x, Y: qq.y}, L: qq.l, W: qq.w, N: qq.n}, cm)
			kOracle := core.BruteForceKNWC(cpts, core.KNWCQuery{
				Query: core.Query{Q: geom.Point{X: qq.x, Y: qq.y}, L: qq.l, W: qq.w, N: qq.n},
				K:     3, M: 1,
			}, cm)
			for _, sc := range allSchemes() {
				q := nwcq.Query{X: qq.x, Y: qq.y, Length: qq.l, Width: qq.w, N: qq.n, Scheme: sc, Measure: m}
				label := sc.String() + "/" + m.String()

				sh.SetParallelism(1)
				seq, err := sh.NWC(q)
				if err != nil {
					t.Fatalf("q%d %s sequential: %v", qi, label, err)
				}
				sh.SetParallelism(4)
				par, err := sh.NWC(q)
				if err != nil {
					t.Fatalf("q%d %s parallel: %v", qi, label, err)
				}
				nwcAgree(t, "par/"+label, par, seq)
				if par.Found != oracle.Found ||
					(par.Found && math.Abs(par.Dist-oracle.Group.Dist) > distEps) {
					t.Fatalf("q%d %s: parallel dist %v/%g, oracle %v/%g",
						qi, label, par.Found, par.Dist, oracle.Found, oracle.Group.Dist)
				}

				kq := nwcq.KQuery{Query: q, K: 3, M: 1}
				kpar, err := sh.KNWC(kq)
				if err != nil {
					t.Fatalf("q%d %s parallel kNWC: %v", qi, label, err)
				}
				knwcAgree(t, "kpar/"+label, kpar, kOracle)
			}
		}
	}
}

// TestParallelBoundTightenings verifies the cooperative-bound plumbing
// actually fires: on clustered data with parallel workers, in-flight
// shard traversals must publish improvements to the shared cell.
func TestParallelBoundTightenings(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := straddlePoints(rng, 200)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for i := 0; i < 10; i++ {
		q := nwcq.Query{X: 40 + rng.Float64()*20, Y: 40 + rng.Float64()*20, Length: 8, Width: 8, N: 3}
		if _, err := sh.NWC(q); err != nil {
			t.Fatal(err)
		}
	}
	if rs := sh.RouterStats(); rs.BoundTightenings == 0 {
		t.Fatalf("parallel scatter never tightened the shared bound: %+v", rs)
	}
}

// TestSingleShardAutomaticFallback verifies that a single-shard router
// takes the sequential path no matter how wide the configured pool is:
// the parallel machinery (shared cell, workers) must not engage, so its
// tightenings counter stays zero.
func TestSingleShardAutomaticFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := straddlePoints(rng, 80)
	sh, err := NewSharded(pts, Options{Shards: 1, Space: space, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for i := 0; i < 5; i++ {
		if _, err := sh.NWC(nwcq.Query{X: 50, Y: 50, Length: 10, Width: 10, N: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if rs := sh.RouterStats(); rs.BoundTightenings != 0 {
		t.Fatalf("single-shard router engaged the parallel path: %+v", rs)
	}
}

// TestPoolSequentialPathZeroAllocs pins the fallback's cost: with one
// worker the shared pool is a plain loop — no goroutines, no locks, no
// allocations.
func TestPoolSequentialPathZeroAllocs(t *testing.T) {
	n := 0
	fn := func(int) error { n++; return nil }
	allocs := testing.AllocsPerRun(100, func() {
		if err := wpool.Each(64, 1, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sequential pool path allocated %.1f per call, want 0", allocs)
	}
}

// TestParallelExplainTrace exercises the explain collector under
// concurrent scatter workers (-race) and checks the merged trace still
// carries every shard's phases.
func TestParallelExplainTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pts := straddlePoints(rng, 120)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	res, tr, err := sh.ExplainNWC(context.Background(), nwcq.Query{X: 50, Y: 50, Length: 8, Width: 8, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no group found on straddle data")
	}
	if tr == nil || len(tr.Phases) == 0 {
		t.Fatalf("empty merged trace: %+v", tr)
	}
	// Phases must be shard-ordered and stable under parallel scatter.
	last := ""
	for _, p := range tr.Phases {
		if p.Phase < last && p.Phase != "border-fetch" {
			t.Fatalf("phases out of shard order: %q after %q", p.Phase, last)
		}
		if p.Phase != "border-fetch" {
			last = p.Phase[:7] // "shardN:" prefix
		}
	}
}

// TestRouterCacheCoalescingUnderMutations is the router-level -race
// stress: concurrent identical queries coalescing on the result cache,
// interleaved with inserts that publish new shard views. After the last
// publish, a fresh query must observe the inserted group — a stale hit
// across the generation sum would make it invisible.
func TestRouterCacheCoalescingUnderMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pts := straddlePoints(rng, 150)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space, Parallelism: 4, ResultCache: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	ctx := context.Background()

	// A tight query on an (initially empty) corner of shard 3.
	q := nwcq.Query{X: 97, Y: 97, Length: 2, Width: 2, N: 2}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sh.NWCCtx(ctx, q); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		if err := sh.Insert(nwcq.Point{X: 97, Y: 97, ID: 500001}); err != nil {
			t.Error(err)
			return
		}
		if err := sh.Insert(nwcq.Point{X: 97.5, Y: 97.5, ID: 500002}); err != nil {
			t.Error(err)
			return
		}
		// Churn more generations while readers hammer the cache.
		for i := 0; i < 100; i++ {
			p := nwcq.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, ID: uint64(510000 + i)}
			if err := sh.Insert(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	res, err := sh.NWCCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("inserted group invisible after publishes (stale router cache?)")
	}
	if sh.rcache == nil {
		t.Fatal("router cache not constructed")
	}
	if st := sh.rcache.stats(); st.Hits+st.Misses == 0 {
		t.Fatalf("cache never consulted: %+v", st)
	}
}

// TestRouterCacheHitIsExact verifies a router cache hit returns the
// identical answer and shows up in the metrics snapshot.
func TestRouterCacheHitIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	pts := straddlePoints(rng, 100)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space, ResultCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	q := nwcq.Query{X: 50, Y: 50, Length: 8, Width: 8, N: 3}
	first, err := sh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	nwcAgree(t, "cache-hit", second, first)

	kq := nwcq.KQuery{Query: q, K: 2, M: 1}
	kfirst, err := sh.KNWC(kq)
	if err != nil {
		t.Fatal(err)
	}
	ksecond, err := sh.KNWC(kq)
	if err != nil {
		t.Fatal(err)
	}
	if len(ksecond.Groups) != len(kfirst.Groups) {
		t.Fatalf("kNWC hit diverged: %d vs %d groups", len(ksecond.Groups), len(kfirst.Groups))
	}

	snap := sh.Metrics()
	if snap.ResultCache == nil || snap.ResultCache.Hits == 0 {
		t.Fatalf("metrics missing cache hits: %+v", snap.ResultCache)
	}
	if snap.Router == nil || snap.Router.Parallelism < 1 {
		t.Fatalf("metrics missing parallelism: %+v", snap.Router)
	}
}

// TestParallelBatchMatchesSequentialBatch runs the routed batch forms
// at both widths and cross-checks them.
func TestParallelBatchMatchesSequentialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := straddlePoints(rng, 120)
	sh, err := NewSharded(pts, Options{Shards: 4, Space: space})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	queries := make([]nwcq.Query, 24)
	for i := range queries {
		queries[i] = nwcq.Query{
			X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Length: 5 + rng.Float64()*8, Width: 5 + rng.Float64()*8,
			N: 2 + rng.Intn(3),
		}
	}
	seq, err := sh.NWCBatch(queries, nwcq.BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sh.NWCBatch(queries, nwcq.BatchOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if par[i].Found != seq[i].Found ||
			(seq[i].Found && math.Abs(par[i].Dist-seq[i].Dist) > distEps) {
			t.Fatalf("batch query %d: parallel %+v, sequential %+v", i, par[i], seq[i])
		}
	}
}
