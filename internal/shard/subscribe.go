package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"nwcq"
	"nwcq/internal/sub"
)

// Router subscriptions: the sharded twin of nwcq.Index.Subscribe.
//
// A router subscription attaches one lightweight trigger to every
// shard's notifier (sub.Registry). The triggers are deliberately left
// maximally conservative — the router never reports an evaluation back
// to them, so every published mutation on any shard fires — because the
// per-shard affect box would be unsound here: a qualifying window can
// straddle shard boundaries, and the happens-before the single-index
// protocol gets from evaluating on the exact pinned view does not exist
// once evaluation scatters across independently-published shards. The
// triggers therefore degrade to a wakeup edge, and each delivered frame
// is a fresh full routed evaluation at the current dataset state.
//
// Versioning: frames are stamped with the router generation (the sum of
// the shards' view generations — strictly monotone across any published
// mutation), carried in both the Gen and LSN fields since the router
// has no single WAL axis. Duplicate wakeups for an already-delivered
// generation are suppressed; a generation that advances during an
// evaluation re-arms the wakeup so the final state is never missed.
var _ nwcq.Subscriber = (*Sharded)(nil)

// Subscribe registers q as a standing query over the whole sharded
// dataset. The first frame (SubInit) is the routed answer at
// registration; afterwards a frame follows every published mutation on
// any shard (at-least-once, monotone generation stamps).
func (s *Sharded) Subscribe(q nwcq.Query) (nwcq.Subscription, error) {
	r := &routerSub{
		s:     s,
		q:     q,
		dirty: make(chan struct{}, 1),
		done:  make(chan struct{}),
		id:    s.subSeq.Add(1),
	}
	spec := sub.Spec{X: q.X, Y: q.Y, L: q.Length, W: q.Width}
	r.trigs = make([]*sub.Subscription, len(s.shards))
	for i, ix := range s.shards {
		r.trigs[i] = ix.SubRegistry().Subscribe(spec)
	}
	s.subActive.Add(1)
	for _, t := range r.trigs {
		go r.pump(t)
	}
	// Evaluate the initial answer at current state. The triggers are
	// already live, so a mutation racing with this evaluation sets the
	// dirty edge and the next frame re-evaluates — the stream may repeat
	// a state but can never end on a missed one. (NWCCtx also performs
	// the query validation.)
	gen := s.generation()
	res, err := s.NWCCtx(context.Background(), q)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.lastGen = gen
	r.init = &nwcq.SubUpdate{Kind: nwcq.SubInit, LSN: gen, Gen: gen, Result: res}
	return r, nil
}

// routerSub is the sharded Subscription: per-shard triggers collapse
// into a one-slot dirty edge; Next turns edges into full routed
// re-evaluations.
type routerSub struct {
	s  *Sharded
	q  nwcq.Query
	id uint64

	trigs []*sub.Subscription
	// dirty is the one-slot wakeup edge the pumps top up.
	dirty chan struct{}
	done  chan struct{}
	once  sync.Once

	// resync latches a coalescing overflow on any trigger; the next
	// frame carries it out as Kind SubResync.
	resync atomic.Bool
	// pubNS holds the earliest not-yet-delivered publish instant
	// (UnixNano), for publish→notify latency accounting.
	pubNS atomic.Int64

	// Consumer-side state (Next is single-consumer; no lock needed).
	init    *nwcq.SubUpdate
	lastGen uint64
}

// pump drains one shard trigger: release the pinned shard view
// immediately (the router re-reads current state at evaluation time)
// and raise the dirty edge.
func (r *routerSub) pump(t *sub.Subscription) {
	for {
		n, err := t.Next(context.Background(), r.done)
		if err != nil {
			return // ErrClosed: the trigger or the router sub shut down
		}
		n.Release()
		if n.Resync {
			r.resync.Store(true)
		}
		r.pubNS.CompareAndSwap(0, n.At.UnixNano())
		select {
		case r.dirty <- struct{}{}:
		default:
		}
	}
}

// ID returns the router-unique subscription identifier.
func (r *routerSub) ID() uint64 { return r.id }

// Next blocks until the standing query's answer may have changed and
// returns a frame with the routed answer at the current generation.
func (r *routerSub) Next(ctx context.Context, cancel <-chan struct{}) (nwcq.SubUpdate, error) {
	if u := r.init; u != nil {
		r.init = nil
		return *u, nil
	}
	for {
		select {
		case <-ctx.Done():
			return nwcq.SubUpdate{}, ctx.Err()
		case <-r.done:
			return nwcq.SubUpdate{}, nwcq.ErrSubscriptionClosed
		case <-cancel:
			return nwcq.SubUpdate{}, nwcq.ErrSubscriptionClosed
		case <-r.dirty:
		}
		gen := r.s.generation()
		resync := r.resync.Swap(false)
		res, err := r.s.NWCCtx(ctx, r.q)
		if err != nil {
			// Put the edge (and the resync latch) back so a retrying
			// consumer still converges on the current state.
			if resync {
				r.resync.Store(true)
			}
			select {
			case r.dirty <- struct{}{}:
			default:
			}
			r.s.subEvalErrors.Add(1)
			return nwcq.SubUpdate{}, err
		}
		if after := r.s.generation(); after != gen {
			// The dataset moved mid-evaluation: re-arm so another frame
			// follows at the newer generation.
			select {
			case r.dirty <- struct{}{}:
			default:
			}
		}
		if gen == r.lastGen && !resync {
			continue // duplicate wakeup for an already-delivered state
		}
		r.lastGen = gen
		r.s.subDelivered.Add(1)
		u := nwcq.SubUpdate{Kind: nwcq.SubUpdateKind, LSN: gen, Gen: gen, Result: res}
		if resync {
			u.Kind = nwcq.SubResync
			r.s.subResyncs.Add(1)
		}
		if ns := r.pubNS.Swap(0); ns != 0 {
			u.PublishedAt = time.Unix(0, ns)
		}
		return u, nil
	}
}

// Close detaches the router subscription, closing every shard trigger
// (which releases any still-queued view pins) and unblocking a pending
// Next. Idempotent.
func (r *routerSub) Close() error {
	r.once.Do(func() {
		close(r.done)
		for _, t := range r.trigs {
			t.Close()
		}
		r.s.subActive.Add(-1)
	})
	return nil
}

// SubscriptionStats aggregates the standing-query counters: Active,
// Delivered, EvalErrors and Resyncs are router-level (one per router
// subscription / frame); Published, Notified and Coalesced are summed
// over the shards' notifiers (trigger traffic).
func (s *Sharded) SubscriptionStats() nwcq.SubscriptionStats {
	var out nwcq.SubscriptionStats
	for _, ix := range s.shards {
		st := ix.SubscriptionStats()
		out.Published += st.Published
		out.Notified += st.Notified
		out.Coalesced += st.Coalesced
	}
	out.Active = s.subActive.Load()
	out.Delivered = s.subDelivered.Load()
	out.EvalErrors = s.subEvalErrors.Load()
	out.Resyncs = s.subResyncs.Load()
	return out
}
