// Package shard partitions the object space across N nwcq indexes and
// routes queries scatter-gather, lifting the paper's best-first MINDIST
// bound one level up: from R*-tree nodes to shard regions. The Sharded
// frontend satisfies the same Querier/Mutator interfaces as a single
// *nwcq.Index, so servers, CLIs and batch drivers switch backends
// without code changes.
//
// Partitioning is a gx × gy grid over the configured space (gx the
// largest divisor of Shards not above √Shards), each cell one shard.
// Points route to the cell containing them; points outside the space
// clamp to the nearest edge cell, and each shard's effective bounds
// grow (monotonically) to cover such outliers so MINDIST pruning stays
// sound. Queries hit the home shard (the cell containing q) first to
// seed a distance bound, visit the remaining shards in ascending
// MINDIST order pruning those the bound excludes, and finish with a
// border-fetch step that makes windows straddling shard boundaries
// exact (route.go). See DESIGN.md §11.
package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nwcq"
	"nwcq/internal/geom"
	wpool "nwcq/internal/pool"
	"nwcq/internal/qcache"
)

// Options configures NewSharded and OpenSharded.
type Options struct {
	// Shards is the number of index shards (at least 1).
	Shards int
	// Space is the partitioned rectangle. The zero value derives it from
	// the build points' bounding box (padded), like nwcq.Build does.
	Space nwcq.Rect
	// Dir, when non-empty, makes each shard a paged, WAL-backed index
	// under Dir (shard-NNN.nwcq plus a manifest.json); empty keeps every
	// shard in memory. OpenSharded requires it.
	Dir string
	// Build options are forwarded verbatim to every shard's constructor,
	// so the page-cache, node-cache, WAL and slow-query knobs are
	// declared once and apply per shard. Do not pass nwcq.WithSpace here:
	// each shard derives its own (sub-)space from its points.
	Build []nwcq.BuildOption
	// Parallelism is the router's worker-pool width: how many shards the
	// scatter phase (and the border fetch) queries concurrently, and the
	// default batch width. 0 means GOMAXPROCS; 1 forces the sequential
	// path. Adjustable at runtime with SetParallelism.
	Parallelism int
	// ResultCache, when positive, gives the router a single-flight query
	// result cache holding up to that many entries per query kind,
	// keyed by the full query plus the dataset generation (the sum of
	// the shards' view generations), so any published mutation on any
	// shard invalidates it with one integer compare. Do not also pass
	// nwcq.WithResultCache in Build: the router cache sits above the
	// shards, and per-shard caches under it would only duplicate
	// storage.
	ResultCache int
}

// Sharded owns N index shards and a scatter-gather router over them.
// It satisfies nwcq.Querier, nwcq.Mutator, nwcq.Introspector and
// nwcq.SlowLogger; all methods are safe for unrestricted concurrent
// use, with the same per-shard consistency the underlying indexes give
// (queries see atomically published views; cross-shard batches are
// atomic per shard, not across shards).
type Sharded struct {
	shards []*nwcq.Index
	// pageds holds the paged form of each shard in Dir mode (nil
	// entries in memory mode); Close and page-cache metrics use it.
	pageds []*nwcq.PagedIndex

	space   geom.Rect
	gx, gy  int
	regions []geom.Rect // nominal grid cells, fixed at construction

	// bounds is the effective per-shard bounds: the nominal region
	// unioned with every out-of-region point routed to the shard. It
	// only ever grows, is read with one atomic load on the query path,
	// and is swapped copy-on-write under bmu by mutations.
	bounds atomic.Pointer[[]geom.Rect]
	bmu    sync.Mutex

	// par is the configured worker width for scatter, border fetch and
	// batches (0 = GOMAXPROCS). Runtime adjustable via SetParallelism;
	// read with one atomic load per routed query.
	par atomic.Int32
	// rcache is the router-level result cache; nil when Options left it
	// off.
	rcache *routerCache

	// Standing-query state (subscribe.go): open router subscriptions,
	// their ID source, and the router-level delivery counters.
	subActive     atomic.Int64
	subSeq        atomic.Uint64
	subDelivered  atomic.Uint64
	subEvalErrors atomic.Uint64
	subResyncs    atomic.Uint64

	created time.Time
	obs     *routerMetrics
}

// routerCache pairs the router's NWC and kNWC result caches — the
// sharded twin of the single-index resultCache in nwcq.
type routerCache struct {
	nwc  *qcache.Cache[nwcq.Query, nwcq.Result]
	knwc *qcache.Cache[nwcq.KQuery, nwcq.KResult]
}

func newRouterCache(entries int) *routerCache {
	if entries <= 0 {
		return nil
	}
	return &routerCache{
		nwc:  qcache.New[nwcq.Query, nwcq.Result](entries),
		knwc: qcache.New[nwcq.KQuery, nwcq.KResult](entries),
	}
}

func (c *routerCache) stats() qcache.Stats {
	return c.nwc.Stats().Add(c.knwc.Stats())
}

// SetParallelism adjusts the router's worker width at runtime (0
// restores the GOMAXPROCS default). In-flight queries keep the width
// they started with.
func (s *Sharded) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.par.Store(int32(n))
}

// Parallelism returns the resolved worker width (the configured value,
// or GOMAXPROCS when unset).
func (s *Sharded) Parallelism() int { return s.parallelism() }

func (s *Sharded) parallelism() int { return wpool.Workers(int(s.par.Load())) }

// scatterWorkers caps the worker width at the number of work items, so
// a single-shard deployment (or a one-shard fetch) automatically takes
// the sequential path with zero goroutine or locking overhead.
func (s *Sharded) scatterWorkers(n int) int {
	p := s.parallelism()
	if p > n {
		p = n
	}
	return p
}

// generation is the router's dataset version: the sum of the shards'
// view generations. Per-shard generations are monotone, so the sum is
// monotone and strictly increases on every published mutation anywhere
// — the result cache's invalidation signal. (A query concurrent with a
// publish may cache a result computed partly on the newer views under
// the older sum; that only ever serves *newer* data to callers of the
// older generation, never stale data to a query that began after the
// publish, which necessarily reads a larger sum.)
func (s *Sharded) generation() uint64 {
	var g uint64
	for _, ix := range s.shards {
		g += ix.ViewGeneration()
	}
	return g
}

// Interface conformance mirrors the single-index checks in nwcq.
var (
	_ nwcq.Querier      = (*Sharded)(nil)
	_ nwcq.Mutator      = (*Sharded)(nil)
	_ nwcq.Introspector = (*Sharded)(nil)
	_ nwcq.SlowLogger   = (*Sharded)(nil)
)

// splitGrid picks the gx × gy grid for n shards: gx is the largest
// divisor of n not above √n, so the cells stay as square as possible.
func splitGrid(n int) (gx, gy int) {
	gx = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			gx = d
		}
	}
	return gx, n / gx
}

// rectFrom converts the public rectangle, deriving a padded bounding
// box from points when the zero value was given.
func rectFrom(r nwcq.Rect, points []nwcq.Point) geom.Rect {
	if r != (nwcq.Rect{}) {
		return geom.NewRect(r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	space := geom.EmptyRect()
	for _, p := range points {
		space = space.ExtendPoint(geom.Point{X: p.X, Y: p.Y, ID: p.ID})
	}
	if space.IsEmpty() {
		space = geom.NewRect(0, 0, 1, 1)
	}
	if space.Width() <= 0 || space.Height() <= 0 {
		space = space.Buffer(1, 1)
	}
	return space
}

// newRouter builds the Sharded shell: partitioning, regions, initial
// bounds and router metrics. Shards are attached by the constructors.
func newRouter(space geom.Rect, n int) *Sharded {
	gx, gy := splitGrid(n)
	s := &Sharded{
		space: space, gx: gx, gy: gy,
		regions: make([]geom.Rect, n),
		created: time.Now(),
		obs:     newRouterMetrics(),
	}
	cw, ch := space.Width()/float64(gx), space.Height()/float64(gy)
	for i := 0; i < n; i++ {
		col, row := i%gx, i/gx
		minX := space.MinX + float64(col)*cw
		minY := space.MinY + float64(row)*ch
		maxX, maxY := minX+cw, minY+ch
		// Snap the outer edges exactly onto the space so floating-point
		// division never leaves a sliver uncovered.
		if col == gx-1 {
			maxX = space.MaxX
		}
		if row == gy-1 {
			maxY = space.MaxY
		}
		s.regions[i] = geom.NewRect(minX, minY, maxX, maxY)
	}
	b := make([]geom.Rect, n)
	copy(b, s.regions)
	s.bounds.Store(&b)
	return s
}

// shardFor routes a location to its shard: the grid cell containing it,
// with out-of-space locations clamped to the nearest edge cell.
func (s *Sharded) shardFor(x, y float64) int {
	cw, ch := s.space.Width()/float64(s.gx), s.space.Height()/float64(s.gy)
	col := int(math.Floor((x - s.space.MinX) / cw))
	row := int(math.Floor((y - s.space.MinY) / ch))
	if col < 0 {
		col = 0
	}
	if col >= s.gx {
		col = s.gx - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= s.gy {
		row = s.gy - 1
	}
	return row*s.gx + col
}

// shardBounds returns the current effective bounds slice (immutable;
// do not modify).
func (s *Sharded) shardBounds() []geom.Rect { return *s.bounds.Load() }

// extendBounds grows shard i's effective bounds to cover p, if needed.
// Extension is monotonic, so pruning against stale (smaller) bounds can
// only happen for points not yet visible to any query.
func (s *Sharded) extendBounds(i int, pts []nwcq.Point) {
	cur := s.shardBounds()
	needs := false
	for _, p := range pts {
		if !cur[i].ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
			needs = true
			break
		}
	}
	if !needs {
		return
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	cur = s.shardBounds()
	next := make([]geom.Rect, len(cur))
	copy(next, cur)
	for _, p := range pts {
		next[i] = next[i].ExtendPoint(geom.Point{X: p.X, Y: p.Y})
	}
	s.bounds.Store(&next)
}

// partition splits points by destination shard, preserving input order
// within each shard.
func (s *Sharded) partition(points []nwcq.Point) [][]nwcq.Point {
	parts := make([][]nwcq.Point, len(s.regions))
	for _, p := range points {
		i := s.shardFor(p.X, p.Y)
		parts[i] = append(parts[i], p)
	}
	return parts
}

// NewSharded partitions points across opt.Shards indexes and returns
// the scatter-gather frontend over them. With opt.Dir set the shards
// are paged, WAL-backed indexes under that directory (created if
// needed) with a manifest so OpenSharded can reopen them; otherwise
// everything lives in memory.
func NewSharded(points []nwcq.Point, opt Options) (*Sharded, error) {
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be at least 1, got %d", opt.Shards)
	}
	s := newRouter(rectFrom(opt.Space, points), opt.Shards)
	s.SetParallelism(opt.Parallelism)
	s.rcache = newRouterCache(opt.ResultCache)
	parts := s.partition(points)
	s.shards = make([]*nwcq.Index, opt.Shards)
	s.pageds = make([]*nwcq.PagedIndex, opt.Shards)
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := writeManifest(opt.Dir, s); err != nil {
			return nil, err
		}
	}
	for i := range s.shards {
		if opt.Dir == "" {
			ix, err := nwcq.Build(parts[i], opt.Build...)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.shards[i] = ix
			continue
		}
		px, err := nwcq.BuildPaged(parts[i], shardPath(opt.Dir, i), opt.Build...)
		if err != nil {
			s.closeShards()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.pageds[i] = px
		s.shards[i] = &px.Index
	}
	for i, part := range parts {
		s.extendBounds(i, part)
	}
	return s, nil
}

// OpenSharded reopens a sharded directory written by NewSharded,
// replaying each shard's write-ahead log (crash recovery happens per
// shard, independently). opt.Build is forwarded to every OpenPaged;
// opt.Shards and opt.Space are taken from the manifest.
func OpenSharded(dir string, opt Options) (*Sharded, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s := newRouter(geom.NewRect(m.Space.MinX, m.Space.MinY, m.Space.MaxX, m.Space.MaxY), m.Shards)
	s.SetParallelism(opt.Parallelism)
	s.rcache = newRouterCache(opt.ResultCache)
	s.shards = make([]*nwcq.Index, m.Shards)
	s.pageds = make([]*nwcq.PagedIndex, m.Shards)
	for i := range s.shards {
		px, err := nwcq.OpenPaged(shardPath(dir, i), opt.Build...)
		if err != nil {
			s.closeShards()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.pageds[i] = px
		s.shards[i] = &px.Index
	}
	// Recover the effective bounds: outliers routed to edge cells live
	// outside their nominal region, and pruning must keep covering them.
	for i, ix := range s.shards {
		all, err := ix.Window(-math.MaxFloat64, -math.MaxFloat64, math.MaxFloat64, math.MaxFloat64)
		if err != nil {
			s.closeShards()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.extendBounds(i, all)
	}
	return s, nil
}

// manifest is the sharded directory's layout record.
type manifest struct {
	Shards int       `json:"shards"`
	Space  nwcq.Rect `json:"space"`
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.nwcq", i))
}

func writeManifest(dir string, s *Sharded) error {
	data, err := json.Marshal(manifest{
		Shards: len(s.regions),
		Space:  nwcq.Rect{MinX: s.space.MinX, MinY: s.space.MinY, MaxX: s.space.MaxX, MaxY: s.space.MaxY},
	})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("shard: manifest: %w", err)
	}
	if m.Shards < 1 {
		return m, fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	return m, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardRegions returns the nominal partition rectangles, in shard
// order.
func (s *Sharded) ShardRegions() []nwcq.Rect {
	out := make([]nwcq.Rect, len(s.regions))
	for i, r := range s.regions {
		out[i] = nwcq.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	return out
}

// Len returns the total number of indexed points across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Len()
	}
	return n
}

// TreeHeight returns the tallest shard's R*-tree height.
func (s *Sharded) TreeHeight() int {
	h := 0
	for _, ix := range s.shards {
		if th := ix.TreeHeight(); th > h {
			h = th
		}
	}
	return h
}

// IOStats returns the cumulative node visits summed over all shards.
func (s *Sharded) IOStats() uint64 {
	var n uint64
	for _, ix := range s.shards {
		n += ix.IOStats()
	}
	return n
}

// ResetIOStats zeroes every shard's cumulative node-visit counter.
func (s *Sharded) ResetIOStats() {
	for _, ix := range s.shards {
		ix.ResetIOStats()
	}
}

// StorageOverheadBytes sums the shards' density-grid and IWP overheads.
func (s *Sharded) StorageOverheadBytes() (gridBytes, iwpBytes int) {
	for _, ix := range s.shards {
		g, w := ix.StorageOverheadBytes()
		gridBytes += g
		iwpBytes += w
	}
	return gridBytes, iwpBytes
}

// Close releases every shard (checkpointing WAL-backed ones); the
// first error wins but every shard is closed regardless.
func (s *Sharded) Close() error { return s.closeShards() }

func (s *Sharded) closeShards() error {
	var firstErr error
	for i := range s.shards {
		var err error
		if s.pageds[i] != nil {
			err = s.pageds[i].Close()
		} else if s.shards[i] != nil {
			err = s.shards[i].Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Insert routes the point to its shard by partition key. Safe under
// full concurrency; bounds extension (for points outside the shard's
// region) is published before the point becomes visible to queries.
func (s *Sharded) Insert(p nwcq.Point) error {
	start := time.Now()
	i := s.shardFor(p.X, p.Y)
	s.extendBounds(i, []nwcq.Point{p})
	err := s.shards[i].Insert(p)
	s.obs.observe(rInsert, nwcq.SchemeDefault, time.Since(start), 0, err)
	return err
}

// InsertBatch routes points to their shards and inserts per shard
// atomically. Atomicity is per shard: a failure leaves earlier shards'
// sub-batches applied (each sub-batch itself is all-or-nothing).
func (s *Sharded) InsertBatch(pts []nwcq.Point) error {
	for i, part := range s.partition(pts) {
		if len(part) == 0 {
			continue
		}
		s.extendBounds(i, part)
		if err := s.shards[i].InsertBatch(part); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Delete routes the deletion to the point's shard and reports whether
// the point was found there.
func (s *Sharded) Delete(p nwcq.Point) (bool, error) {
	start := time.Now()
	found, err := s.shards[s.shardFor(p.X, p.Y)].Delete(p)
	s.obs.observe(rDelete, nwcq.SchemeDefault, time.Since(start), 0, err)
	return found, err
}

// DeleteBatch routes deletions per shard (each shard's sub-batch is
// atomic) and returns one found flag per input point, in input order.
func (s *Sharded) DeleteBatch(pts []nwcq.Point) ([]bool, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	byShard := make(map[int][]int, len(s.shards))
	for i, p := range pts {
		si := s.shardFor(p.X, p.Y)
		byShard[si] = append(byShard[si], i)
	}
	founds := make([]bool, len(pts))
	for si, idxs := range byShard {
		part := make([]nwcq.Point, len(idxs))
		for j, i := range idxs {
			part[j] = pts[i]
		}
		fs, err := s.shards[si].DeleteBatch(part)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		for j, i := range idxs {
			founds[i] = fs[j]
		}
	}
	return founds, nil
}
