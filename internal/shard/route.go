package shard

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"nwcq"
	"nwcq/internal/core"
	"nwcq/internal/geom"
	wpool "nwcq/internal/pool"
	"nwcq/internal/qevent"
	"nwcq/internal/rstar"
)

// Query routing. The plan for both NWC and kNWC is:
//
//  1. Scatter: run the query locally on the home shard (the cell
//     containing q) to seed a distance bound, then on the remaining
//     shards in ascending MINDIST(q, shard bounds) order, skipping any
//     shard whose MINDIST exceeds the current bound — the paper's
//     best-first node pruning lifted to shard granularity. With
//     Options.Parallelism above one, workers claim shards off that
//     schedule concurrently and cooperate through a shared atomic bound
//     cell: for NWC, every in-flight shard traversal prunes against the
//     live global bound (threaded through rstar.Reader into SRR/DIP/DEP
//     at node-visit granularity) and publishes its improvements back;
//     still-queued shards whose MINDIST exceeds the cell are cancelled
//     at claim time. kNWC shares its merge estimate at claim
//     granularity only — see scatterKNWC for why engine-level sharing
//     would be unsound there.
//  2. Border: local answers are exact for groups drawn from one
//     shard's points, but a window straddling a shard boundary can
//     cluster points no single shard holds together. Every group with
//     distance at most B has all its objects — and every point of any
//     window that could generate a competing candidate — inside
//     box(q, B+l, B+w), so fetching that box's points from every shard
//     whose bounds intersect it and enumerating candidate groups over
//     the fetched set (core.CandidateGroups) provably covers all of
//     them. Candidates from partially-fetched windows are real feasible
//     groups (their objects genuinely co-fit), so they can never beat
//     the true optimum — taking the minimum stays exact.
//  3. kNWC needs the full candidate *sequence* below the answer's k-th
//     distance, not just the best group, so the border step becomes a
//     certification loop: fetch box(D+l, D+w), greedily merge the
//     candidate list truncated at D (below D it is provably identical
//     to the full dataset's list), and accept when k groups emerged
//     with the k-th at most D; otherwise double D and rerun. The local
//     chains only seed D — correctness never depends on them.
//
// The border and certify fetches fan their per-shard window queries out
// over the same worker pool, with per-shard results concatenated in
// shard order so the candidate enumeration stays deterministic.
//
// See DESIGN.md §11 for the containment proofs and §12 for the
// shared-bound safety argument.

// measureOf maps the public measure onto the core engine's.
func measureOf(m nwcq.Measure) (core.Measure, error) {
	switch m {
	case nwcq.MaxDistance:
		return core.MeasureMax, nil
	case nwcq.MinDistance:
		return core.MeasureMin, nil
	case nwcq.AvgDistance:
		return core.MeasureAvg, nil
	case nwcq.WindowDistance:
		return core.MeasureWindow, nil
	default:
		return 0, fmt.Errorf("nwcq: unknown measure %d", int(m))
	}
}

func coreQuery(q nwcq.Query) core.Query {
	return core.Query{Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N}
}

func groupOut(g core.Group) nwcq.Group {
	objs := make([]nwcq.Point, len(g.Objects))
	for i, p := range g.Objects {
		objs[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return nwcq.Group{
		Objects: objs,
		Dist:    g.Dist,
		Window:  nwcq.Rect{MinX: g.Window.MinX, MinY: g.Window.MinY, MaxX: g.Window.MaxX, MaxY: g.Window.MaxY},
	}
}

func groupIn(g nwcq.Group) core.Group {
	objs := make([]geom.Point, len(g.Objects))
	for i, p := range g.Objects {
		objs[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return core.Group{
		Objects: objs,
		Dist:    g.Dist,
		Window:  geom.NewRect(g.Window.MinX, g.Window.MinY, g.Window.MaxX, g.Window.MaxY),
	}
}

func addStats(a, b nwcq.Stats) nwcq.Stats {
	a.NodeVisits += b.NodeVisits
	a.ObjectsProcessed += b.ObjectsProcessed
	a.ObjectsSkipped += b.ObjectsSkipped
	a.NodesPruned += b.NodesPruned
	a.WindowQueries += b.WindowQueries
	a.CandidateWindows += b.CandidateWindows
	a.QualifiedWindows += b.QualifiedWindows
	a.GridProbes += b.GridProbes
	return a
}

// routeStats accumulates one routed query's attribution: the fan-out
// counts and the wall-clock split across the scatter, border and merge
// phases. It is owned by the routed query's goroutine; on the parallel
// scatter path workers update the count fields under the scatter mutex.
// finishRoute flushes it once — into the global aggregates, the phase
// histograms, and the request's wide event when one is attached.
type routeStats struct {
	shardsQueried int
	shardsPruned  int
	borderFetches int
	borderPoints  int
	fetchReruns   int
	scatter       time.Duration
	border        time.Duration
	merge         time.Duration
}

// finishRoute flushes one routed execution's attribution. Counters move
// to the global aggregates in one batch (same totals as the old inline
// increments, one visibility point). The phase histograms record every
// routed execution — a phase that never ran records zero, keeping the
// three counts equal so their quantiles are comparable.
func (s *Sharded) finishRoute(rt *routeStats, ev *qevent.Event) {
	m := s.obs
	m.shardQueries.Add(uint64(rt.shardsQueried))
	m.shardsPruned.Add(uint64(rt.shardsPruned))
	m.borderFetches.Add(uint64(rt.borderFetches))
	m.borderPoints.Add(uint64(rt.borderPoints))
	m.fetchReruns.Add(uint64(rt.fetchReruns))
	m.phase[phaseScatter].Observe(rt.scatter.Seconds())
	m.phase[phaseBorder].Observe(rt.border.Seconds())
	m.phase[phaseMerge].Observe(rt.merge.Seconds())
	if ev != nil {
		ev.Router = &qevent.Router{
			ShardsQueried: rt.shardsQueried,
			ShardsPruned:  rt.shardsPruned,
			BorderFetches: rt.borderFetches,
			BorderPoints:  rt.borderPoints,
			FetchReruns:   rt.fetchReruns,
			ScatterNs:     rt.scatter.Nanoseconds(),
			BorderNs:      rt.border.Nanoseconds(),
			MergeNs:       rt.merge.Nanoseconds(),
		}
	}
}

// visitOrder returns shard indexes with home first and the rest in
// ascending MINDIST(q, bounds) order — the scatter schedule.
func (s *Sharded) visitOrder(qp geom.Point, bounds []geom.Rect, home int) []int {
	order := make([]int, 0, len(bounds))
	for i := range bounds {
		if i != home {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return bounds[order[a]].MinDist2(qp) < bounds[order[b]].MinDist2(qp)
	})
	return append([]int{home}, order...)
}

// fetchBox is the rectangle that contains every object of every
// candidate group with distance at most d, and every point of every
// window that can generate such a candidate (closed bounds; see the
// routing comment).
func fetchBox(q nwcq.Query, d float64) geom.Rect {
	return geom.NewRect(q.X-(d+q.Length), q.Y-(d+q.Width), q.X+(d+q.Length), q.Y+(d+q.Width))
}

// fetchPoints collects every indexed point inside fetch from the shards
// whose bounds intersect it. Bounds cover all of a shard's points
// (including outliers), so skipped shards provably hold nothing inside
// fetch. With parallelism above one the per-shard window queries fan
// out over the worker pool; results are concatenated in shard order
// either way, so the fetched sequence is deterministic.
func (s *Sharded) fetchPoints(bounds []geom.Rect, fetch geom.Rect, rt *routeStats) ([]geom.Point, error) {
	start := time.Now()
	defer func() { rt.border += time.Since(start) }()
	idxs := make([]int, 0, len(s.shards))
	for i := range s.shards {
		if bounds[i].Intersects(fetch) {
			idxs = append(idxs, i)
		}
	}
	parts := make([][]geom.Point, len(idxs))
	err := wpool.Each(len(idxs), s.scatterWorkers(len(idxs)), func(j int) error {
		pts, err := s.shards[idxs[j]].Window(fetch.MinX, fetch.MinY, fetch.MaxX, fetch.MaxY)
		if err != nil {
			return err
		}
		part := make([]geom.Point, len(pts))
		for k, p := range pts {
			part[k] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
		}
		parts[j] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []geom.Point
	for _, part := range parts {
		out = append(out, part...)
	}
	rt.borderFetches++
	rt.borderPoints += len(out)
	return out, nil
}

// intersecting counts shards whose bounds intersect fetch.
func intersecting(bounds []geom.Rect, fetch geom.Rect) int {
	n := 0
	for _, b := range bounds {
		if b.Intersects(fetch) {
			n++
		}
	}
	return n
}

// allBounds returns the union of every shard's effective bounds — a
// rectangle covering the entire dataset.
func allBounds(bounds []geom.Rect) geom.Rect {
	u := geom.EmptyRect()
	for _, b := range bounds {
		u = u.Union(b)
	}
	return u
}

// NWC answers an NWC query without cancellation.
func (s *Sharded) NWC(q nwcq.Query) (nwcq.Result, error) {
	return s.NWCCtx(context.Background(), q)
}

// NWCCtx answers an NWC query by scatter-gather over the shards. The
// result equals the single-index answer on the same points for every
// scheme and measure; Stats sums the per-shard work. With a result
// cache configured (Options.ResultCache) the answer may be served from
// a previous identical query against the same dataset version.
func (s *Sharded) NWCCtx(ctx context.Context, q nwcq.Query) (nwcq.Result, error) {
	start := time.Now()
	res, hit, err := s.nwcCached(ctx, q)
	elapsed := time.Since(start)
	visits := res.Stats.NodeVisits
	if hit {
		visits = 0
	}
	s.obs.observe(rNWC, q.Scheme, elapsed, visits, err)
	s.noteSlowRouted("nwc", q, 0, 0, start, elapsed, visits, err)
	return res, err
}

func (s *Sharded) nwcCached(ctx context.Context, q nwcq.Query) (nwcq.Result, bool, error) {
	ev := qevent.From(ctx)
	c := s.rcache
	if c == nil {
		if ev != nil {
			ev.Cache = qevent.CacheOff
		}
		res, err := s.nwc(ctx, q, nil)
		return res, false, err
	}
	gen := s.generation()
	if res, ok := c.nwc.Get(gen, q); ok {
		if ev != nil {
			ev.Cache = qevent.CacheHit
		}
		return res, true, nil
	}
	if ev != nil {
		ev.Cache = qevent.CacheMiss
	}
	res, err := c.nwc.Do(ctx, gen, q, func() (nwcq.Result, error) {
		return s.nwc(ctx, q, nil)
	})
	return res, false, err
}

// ExplainNWC answers an NWC query with per-shard tracing, merging the
// shard traces into one router-level trace whose phases are prefixed
// with the shard that ran them, plus a synthetic border-fetch phase.
// Explained queries never touch the result cache.
func (s *Sharded) ExplainNWC(ctx context.Context, q nwcq.Query) (nwcq.Result, *nwcq.QueryTrace, error) {
	col := &explainCollector{}
	start := time.Now()
	res, err := s.nwc(ctx, q, col)
	elapsed := time.Since(start)
	s.obs.observe(rNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	return res, col.merged("nwc", q.Scheme, q.Measure, elapsed, res.Stats.NodeVisits), err
}

func (s *Sharded) nwc(ctx context.Context, q nwcq.Query, col *explainCollector) (nwcq.Result, error) {
	if err := q.Validate(); err != nil {
		return nwcq.Result{}, err
	}
	measure, err := measureOf(q.Measure)
	if err != nil {
		return nwcq.Result{}, err
	}
	// The router owns the request's wide event at routed-query
	// granularity: read it here, then run the fan-out detached so the
	// per-shard indexes (and their caches) never see — or race on — it.
	ev := qevent.From(ctx)
	ctx = qevent.Detach(ctx)
	rt := &routeStats{}
	defer func() { s.finishRoute(rt, ev) }()
	qp := geom.Point{X: q.X, Y: q.Y}
	bounds := s.shardBounds()
	home := s.shardFor(q.X, q.Y)

	scatterStart := time.Now()
	out, best, err := s.scatterNWC(ctx, q, qp, bounds, home, col, rt)
	rt.scatter = time.Since(scatterStart)
	if err != nil {
		return nwcq.Result{Stats: out.Stats}, err
	}

	if !math.IsInf(best, 1) {
		// Border step: candidates at or below the local best live inside
		// this box; if only one shard's bounds intersect it, that shard's
		// local answer is already globally exact.
		fetch := fetchBox(q, best)
		if intersecting(bounds, fetch) <= 1 {
			return out, nil
		}
		pts, err := s.fetchPoints(bounds, fetch, rt)
		if err != nil {
			return nwcq.Result{Stats: out.Stats}, err
		}
		col.borderDone(len(pts))
		mergeStart := time.Now()
		cands := core.CandidateGroups(pts, coreQuery(q), measure)
		if len(cands) > 0 && cands[0].Dist < best {
			out.Group = groupOut(cands[0])
		}
		rt.merge += time.Since(mergeStart)
		return out, nil
	}

	// No shard found a group on its own points. Any group that exists
	// must mix points from several shards, so enumerate candidates over
	// the full dataset (the no-local-answer case is the one place the
	// fetch cannot be bounded by a distance).
	pts, err := s.fetchPoints(bounds, allBounds(bounds), rt)
	if err != nil {
		return nwcq.Result{Stats: out.Stats}, err
	}
	col.borderDone(len(pts))
	mergeStart := time.Now()
	if cands := core.CandidateGroups(pts, coreQuery(q), measure); len(cands) > 0 {
		out.Found = true
		out.Group = groupOut(cands[0])
	}
	rt.merge += time.Since(mergeStart)
	return out, nil
}

// scatterNWC runs the scatter phase and returns the merged best local
// answer (best is +Inf when no shard found one). With one worker — or
// one shard, the automatic fallback — it is the original sequential
// loop, byte for byte of allocation. With more, workers claim shards
// off the MINDIST schedule and cooperate through a shared bound cell:
//
//   - Every shard traversal runs with the cell on its reader, so SRR,
//     DIP, DEP and the window MINDIST gate prune against
//     min(local best, global bound) and publish improvements back.
//   - A shard still queued when the cell drops below its region MINDIST
//     is cancelled at claim time (counted in ShardsPruned, like the
//     sequential prune).
//
// Safety: the cell is monotone non-increasing and always ≥ the final
// global best B, so claim-time pruning only skips shards whose every
// group is ≥ B, and in-traversal pruning only elides groups ≥ B —
// both invisible to the merge, whose minimum is exactly B either way.
func (s *Sharded) scatterNWC(ctx context.Context, q nwcq.Query, qp geom.Point, bounds []geom.Rect, home int, col *explainCollector, rt *routeStats) (nwcq.Result, float64, error) {
	order := s.visitOrder(qp, bounds, home)
	workers := s.scatterWorkers(len(order))
	out := nwcq.Result{}
	best := math.Inf(1)

	if workers <= 1 {
		for _, i := range order {
			if i != home && bounds[i].MinDist(qp) > best {
				rt.shardsPruned++
				continue
			}
			r, err := s.shardNWC(ctx, i, q, col)
			if err != nil {
				return out, best, err
			}
			rt.shardsQueried++
			out.Stats = addStats(out.Stats, r.Stats)
			if r.Found && r.Dist < best {
				best = r.Dist
				out.Group = r.Group
				out.Found = true
			}
		}
		return out, best, nil
	}

	sb := rstar.NewSharedBound()
	bctx := rstar.ContextWithBound(ctx, sb)
	var (
		mu       sync.Mutex
		next     int
		firstErr error
	)
	// claim hands a worker the next unpruned shard off the schedule.
	// Pruning tests the live cell, which is ≤ every completed shard's
	// best, so it is at least as sharp as the sequential bound.
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		for next < len(order) {
			if firstErr != nil {
				return 0, false
			}
			i := order[next]
			next++
			if i != home && bounds[i].MinDist(qp) > sb.Load() {
				rt.shardsPruned++
				continue
			}
			return i, true
		}
		return 0, false
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// The label shows up on CPU profiles, splitting scatter work
			// by worker under /debug/pprof.
			pprof.Do(bctx, pprof.Labels("nwcq_scatter_worker", strconv.Itoa(worker)), func(wctx context.Context) {
				for {
					i, ok := claim()
					if !ok {
						return
					}
					s.obs.inflight.Add(1)
					r, err := s.shardNWC(wctx, i, q, col)
					s.obs.inflight.Add(-1)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					rt.shardsQueried++
					out.Stats = addStats(out.Stats, r.Stats)
					if r.Found && r.Dist < best {
						best = r.Dist
						out.Group = r.Group
						out.Found = true
					}
					mu.Unlock()
				}
			})
		}(w)
	}
	wg.Wait()
	s.obs.boundTightenings.Add(sb.Tightenings())
	if firstErr != nil {
		return out, best, firstErr
	}
	return out, best, nil
}

func (s *Sharded) shardNWC(ctx context.Context, i int, q nwcq.Query, col *explainCollector) (nwcq.Result, error) {
	if col == nil {
		return s.shards[i].NWCCtx(ctx, q)
	}
	res, tr, err := s.shards[i].ExplainNWC(ctx, q)
	col.add(i, tr)
	return res, err
}

// KNWC answers a kNWC query without cancellation.
func (s *Sharded) KNWC(q nwcq.KQuery) (nwcq.KResult, error) {
	return s.KNWCCtx(context.Background(), q)
}

// KNWCCtx answers a kNWC query: per-shard KResult chains are merged
// through the same greedy dedup ordering the engine uses, then the
// merge is certified exact against a bounded candidate enumeration
// (rerunning with a doubled bound when certification fails). The
// result equals the single-index answer in group count and distances.
func (s *Sharded) KNWCCtx(ctx context.Context, q nwcq.KQuery) (nwcq.KResult, error) {
	start := time.Now()
	res, hit, err := s.knwcCached(ctx, q)
	elapsed := time.Since(start)
	visits := res.Stats.NodeVisits
	if hit {
		visits = 0
	}
	s.obs.observe(rKNWC, q.Scheme, elapsed, visits, err)
	s.noteSlowRouted("knwc", q.Query, q.K, q.M, start, elapsed, visits, err)
	return res, err
}

func (s *Sharded) knwcCached(ctx context.Context, q nwcq.KQuery) (nwcq.KResult, bool, error) {
	ev := qevent.From(ctx)
	c := s.rcache
	if c == nil {
		if ev != nil {
			ev.Cache = qevent.CacheOff
		}
		res, err := s.knwc(ctx, q, nil)
		return res, false, err
	}
	gen := s.generation()
	if res, ok := c.knwc.Get(gen, q); ok {
		if ev != nil {
			ev.Cache = qevent.CacheHit
		}
		return res, true, nil
	}
	if ev != nil {
		ev.Cache = qevent.CacheMiss
	}
	res, err := c.knwc.Do(ctx, gen, q, func() (nwcq.KResult, error) {
		return s.knwc(ctx, q, nil)
	})
	return res, false, err
}

// ExplainKNWC is KNWCCtx with per-shard tracing, merged like
// ExplainNWC. Explained queries never touch the result cache.
func (s *Sharded) ExplainKNWC(ctx context.Context, q nwcq.KQuery) (nwcq.KResult, *nwcq.QueryTrace, error) {
	col := &explainCollector{}
	start := time.Now()
	res, err := s.knwc(ctx, q, col)
	elapsed := time.Since(start)
	s.obs.observe(rKNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	return res, col.merged("knwc", q.Scheme, q.Measure, elapsed, res.Stats.NodeVisits), err
}

// compatible reports whether g can join groups under the overlap budget
// m: it must share at most m objects with every member and must not
// duplicate one — the engine's (and BruteForceKNWC's) acceptance rule.
func compatible(groups []core.Group, g core.Group, m int) bool {
	for _, h := range groups {
		ov := h.OverlapCount(g)
		if ov > m || ov == len(g.Objects) {
			return false
		}
	}
	return true
}

// mergeEstimate runs the greedy acceptance over the pooled per-shard
// chain groups (ascending by distance) and returns the k-th accepted
// distance, or +Inf when the pool cannot supply k groups. Ties are
// broken deterministically but the value is only used as a fetch
// bound, never returned.
func mergeEstimate(pool []core.Group, k, m int) float64 {
	sorted := make([]core.Group, len(pool))
	copy(sorted, pool)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dist < sorted[j].Dist })
	var accepted []core.Group
	for _, g := range sorted {
		if compatible(accepted, g, m) {
			accepted = append(accepted, g)
			if len(accepted) == k {
				return g.Dist
			}
		}
	}
	return math.Inf(1)
}

func (s *Sharded) knwc(ctx context.Context, q nwcq.KQuery, col *explainCollector) (nwcq.KResult, error) {
	if err := q.Validate(); err != nil {
		return nwcq.KResult{}, err
	}
	measure, err := measureOf(q.Measure)
	if err != nil {
		return nwcq.KResult{}, err
	}
	ev := qevent.From(ctx)
	ctx = qevent.Detach(ctx)
	rt := &routeStats{}
	defer func() { s.finishRoute(rt, ev) }()
	qp := geom.Point{X: q.X, Y: q.Y}
	bounds := s.shardBounds()
	home := s.shardFor(q.X, q.Y)
	cq := coreQuery(q.Query)

	scatterStart := time.Now()
	stats, pool, est, err := s.scatterKNWC(ctx, q, qp, bounds, home, col, rt)
	rt.scatter = time.Since(scatterStart)
	if err != nil {
		return nwcq.KResult{Stats: stats}, err
	}

	// Fast path: every candidate at or below the estimate lives in a
	// single shard, so that shard's own greedy chain is the global
	// answer — and it is exactly what the merge reproduces. (A shard
	// pruned against a transiently smaller estimate cannot hide here:
	// if its MINDIST ended up below the final estimate, its bounds
	// intersect the fetch box and the fast path is off.)
	if !math.IsInf(est, 1) && intersecting(bounds, fetchBox(q.Query, est)) <= 1 {
		mergeStart := time.Now()
		out := s.mergedKResult(pool, q, stats)
		rt.merge += time.Since(mergeStart)
		return out, nil
	}

	// Certification loop: fetch box(D), merge the candidate list
	// truncated at D (identical to the full dataset's list up to D),
	// and accept once k groups emerged or the fetch covered everything.
	d := est
	if math.IsInf(d, 1) || d <= 0 {
		d = math.Hypot(q.Length, q.Width)
	}
	whole := allBounds(bounds)
	for iter := 0; ; iter++ {
		if iter > 0 {
			rt.fetchReruns++
		}
		fetch := fetchBox(q.Query, d)
		complete := fetch.ContainsRect(whole)
		if complete {
			fetch = whole
		}
		pts, err := s.fetchPoints(bounds, fetch, rt)
		if err != nil {
			return nwcq.KResult{Stats: stats}, err
		}
		col.borderDone(len(pts))
		mergeStart := time.Now()
		var groups []core.Group
		for _, g := range core.CandidateGroups(pts, cq, measure) {
			if !complete && g.Dist > d {
				break // sorted ascending; past the certified horizon
			}
			if compatible(groups, g, q.M) {
				groups = append(groups, g)
				if len(groups) == q.K {
					break
				}
			}
		}
		rt.merge += time.Since(mergeStart)
		if len(groups) == q.K || complete {
			out := nwcq.KResult{Found: len(groups) > 0, Stats: stats}
			for _, g := range groups {
				out.Groups = append(out.Groups, groupOut(g))
			}
			return out, nil
		}
		d = math.Max(2*d, math.Hypot(q.Length, q.Width))
	}
}

// scatterKNWC collects per-shard chains, pruning queued shards against
// the running merged estimate; the pool only seeds the certification
// bound. With multiple workers the pool and estimate live behind a
// mutex and shard claims prune against the live estimate.
//
// Unlike NWC, the per-traversal engines get NO shared bound cell: the
// merge estimate is non-monotone (accepting a pooled group can push the
// k-th greedy distance up, since greedy acceptance is blocked by
// overlap), and the single-intersecting-shard fast path returns a local
// chain verbatim — which is only correct if that chain was built
// unbounded. Shard-claim pruning stays sound regardless, because a
// shard skipped against a transiently small estimate either stays
// irrelevant (MINDIST above the final estimate) or disables the fast
// path and is covered by the certification fetch.
func (s *Sharded) scatterKNWC(ctx context.Context, q nwcq.KQuery, qp geom.Point, bounds []geom.Rect, home int, col *explainCollector, rt *routeStats) (nwcq.Stats, []core.Group, float64, error) {
	order := s.visitOrder(qp, bounds, home)
	workers := s.scatterWorkers(len(order))
	var stats nwcq.Stats
	var pool []core.Group
	est := math.Inf(1)

	if workers <= 1 {
		for _, i := range order {
			if i != home && bounds[i].MinDist(qp) > est {
				rt.shardsPruned++
				continue
			}
			kr, err := s.shardKNWC(ctx, i, q, col)
			if err != nil {
				return stats, pool, est, err
			}
			rt.shardsQueried++
			stats = addStats(stats, kr.Stats)
			for _, g := range kr.Groups {
				pool = append(pool, groupIn(g))
			}
			est = mergeEstimate(pool, q.K, q.M)
		}
		return stats, pool, est, nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		for next < len(order) {
			if firstErr != nil {
				return 0, false
			}
			i := order[next]
			next++
			if i != home && bounds[i].MinDist(qp) > est {
				rt.shardsPruned++
				continue
			}
			return i, true
		}
		return 0, false
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pprof.Do(ctx, pprof.Labels("nwcq_scatter_worker", strconv.Itoa(worker)), func(wctx context.Context) {
				for {
					i, ok := claim()
					if !ok {
						return
					}
					s.obs.inflight.Add(1)
					kr, err := s.shardKNWC(wctx, i, q, col)
					s.obs.inflight.Add(-1)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					rt.shardsQueried++
					stats = addStats(stats, kr.Stats)
					for _, g := range kr.Groups {
						pool = append(pool, groupIn(g))
					}
					est = mergeEstimate(pool, q.K, q.M)
					mu.Unlock()
				}
			})
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return stats, pool, est, firstErr
	}
	return stats, pool, est, nil
}

// mergedKResult materialises the fast-path answer: greedy over the
// pooled chains, ascending by distance.
func (s *Sharded) mergedKResult(pool []core.Group, q nwcq.KQuery, stats nwcq.Stats) nwcq.KResult {
	sorted := make([]core.Group, len(pool))
	copy(sorted, pool)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dist < sorted[j].Dist })
	var accepted []core.Group
	for _, g := range sorted {
		if compatible(accepted, g, q.M) {
			accepted = append(accepted, g)
			if len(accepted) == q.K {
				break
			}
		}
	}
	out := nwcq.KResult{Found: len(accepted) > 0, Stats: stats}
	for _, g := range accepted {
		out.Groups = append(out.Groups, groupOut(g))
	}
	return out
}

func (s *Sharded) shardKNWC(ctx context.Context, i int, q nwcq.KQuery, col *explainCollector) (nwcq.KResult, error) {
	if col == nil {
		return s.shards[i].KNWCCtx(ctx, q)
	}
	res, tr, err := s.shards[i].ExplainKNWC(ctx, q)
	col.add(i, tr)
	return res, err
}

// Window runs a range query across every shard and concatenates the
// results (shards hold disjoint point sets, so no dedup is needed).
func (s *Sharded) Window(minX, minY, maxX, maxY float64) ([]nwcq.Point, error) {
	start := time.Now()
	var out []nwcq.Point
	var err error
	for _, ix := range s.shards {
		var pts []nwcq.Point
		pts, err = ix.Window(minX, minY, maxX, maxY)
		if err != nil {
			break
		}
		out = append(out, pts...)
	}
	s.obs.observe(rWindow, nwcq.SchemeDefault, time.Since(start), 0, err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Nearest merges every shard's k nearest into the global k nearest,
// ascending by distance.
func (s *Sharded) Nearest(x, y float64, k int) ([]nwcq.Point, error) {
	start := time.Now()
	out, err := s.nearest(x, y, k)
	s.obs.observe(rNearest, nwcq.SchemeDefault, time.Since(start), 0, err)
	return out, err
}

func (s *Sharded) nearest(x, y float64, k int) ([]nwcq.Point, error) {
	var all []nwcq.Point
	for _, ix := range s.shards {
		pts, err := ix.Nearest(x, y, k)
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		di := (all[i].X-x)*(all[i].X-x) + (all[i].Y-y)*(all[i].Y-y)
		dj := (all[j].X-x)*(all[j].X-x) + (all[j].Y-y)*(all[j].Y-y)
		return di < dj
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// NWCBatch answers many NWC queries concurrently, in input order.
func (s *Sharded) NWCBatch(queries []nwcq.Query, opt nwcq.BatchOptions) ([]nwcq.Result, error) {
	return s.NWCBatchCtx(context.Background(), queries, opt)
}

// NWCBatchCtx fans routed NWC queries over a worker pool; the first
// error aborts the batch, matching the single-index semantics.
func (s *Sharded) NWCBatchCtx(ctx context.Context, queries []nwcq.Query, opt nwcq.BatchOptions) ([]nwcq.Result, error) {
	// A wide event is owned by one request; the batch fan-out runs
	// detached so concurrent members never race on it.
	ctx = qevent.Detach(ctx)
	results := make([]nwcq.Result, len(queries))
	err := wpool.Each(len(queries), s.batchWorkers(opt), func(i int) error {
		res, err := s.NWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// KNWCBatch answers many kNWC queries concurrently, in input order.
func (s *Sharded) KNWCBatch(queries []nwcq.KQuery, opt nwcq.BatchOptions) ([]nwcq.KResult, error) {
	return s.KNWCBatchCtx(context.Background(), queries, opt)
}

// KNWCBatchCtx is the kNWC batch form of NWCBatchCtx.
func (s *Sharded) KNWCBatchCtx(ctx context.Context, queries []nwcq.KQuery, opt nwcq.BatchOptions) ([]nwcq.KResult, error) {
	ctx = qevent.Detach(ctx)
	results := make([]nwcq.KResult, len(queries))
	err := wpool.Each(len(queries), s.batchWorkers(opt), func(i int) error {
		res, err := s.KNWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// batchWorkers resolves one batch call's worker count: the per-call
// option wins, then the router's Parallelism, then GOMAXPROCS.
func (s *Sharded) batchWorkers(opt nwcq.BatchOptions) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return s.parallelism()
}

// explainCollector gathers per-shard traces during an explained routed
// query; a nil collector is the no-trace fast path. It is safe for the
// scatter workers' concurrent add calls.
type explainCollector struct {
	mu      sync.Mutex
	entries []shardTrace
	// borderPoints is -1 until a border fetch ran.
	borderPoints int
	borderStart  time.Time
	borderTime   time.Duration
}

type shardTrace struct {
	shard int
	trace *nwcq.QueryTrace
}

func (c *explainCollector) add(shard int, tr *nwcq.QueryTrace) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = append(c.entries, shardTrace{shard: shard, trace: tr})
	c.borderStart = time.Now()
	c.mu.Unlock()
}

// borderDone stamps the border-fetch phase (points fetched, duration
// since the last scatter query finished).
func (c *explainCollector) borderDone(points int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.borderPoints += points
	if !c.borderStart.IsZero() {
		c.borderTime = time.Since(c.borderStart)
	}
	c.mu.Unlock()
}

// merged assembles the router-level trace: every shard's phases
// prefixed with its shard number, counters summed, plus a synthetic
// border-fetch phase when one ran. Shard entries are ordered by shard
// index so the merged trace is stable under parallel scatter.
func (c *explainCollector) merged(kind string, scheme nwcq.Scheme, measure nwcq.Measure, elapsed time.Duration, visits uint64) *nwcq.QueryTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.SliceStable(c.entries, func(i, j int) bool { return c.entries[i].shard < c.entries[j].shard })
	qt := &nwcq.QueryTrace{
		Kind:       kind,
		Scheme:     scheme.String(),
		Measure:    measure.String(),
		StartedAt:  time.Now().Add(-elapsed),
		Duration:   elapsed,
		NodeVisits: visits,
	}
	for _, e := range c.entries {
		prefix := fmt.Sprintf("shard%d:", e.shard)
		for _, p := range e.trace.Phases {
			qt.Phases = append(qt.Phases, nwcq.PhaseTrace{
				Phase:      prefix + p.Phase,
				Duration:   p.Duration,
				Entered:    p.Entered,
				NodeVisits: p.NodeVisits,
			})
		}
		qt.Counters = addCounters(qt.Counters, e.trace.Counters)
		if e.trace.HeapHighWater > qt.HeapHighWater {
			qt.HeapHighWater = e.trace.HeapHighWater
		}
		if e.trace.CandidateHighWater > qt.CandidateHighWater {
			qt.CandidateHighWater = e.trace.CandidateHighWater
		}
	}
	if c.borderPoints > 0 || c.borderTime > 0 {
		qt.Phases = append(qt.Phases, nwcq.PhaseTrace{
			Phase:    "border-fetch",
			Duration: c.borderTime,
			Entered:  1,
		})
	}
	return qt
}

func addCounters(a, b nwcq.TraceCounters) nwcq.TraceCounters {
	a.SRRShrinks += b.SRRShrinks
	a.SRRSkips += b.SRRSkips
	a.DIPPrunedNodes += b.DIPPrunedNodes
	a.DEPPrunedNodes += b.DEPPrunedNodes
	a.DEPSkippedObjects += b.DEPSkippedObjects
	a.GridProbes += b.GridProbes
	a.WindowQueries += b.WindowQueries
	a.CandidateWindows += b.CandidateWindows
	a.QualifiedWindows += b.QualifiedWindows
	a.GroupsEmitted += b.GroupsEmitted
	a.IWPJumpStarts += b.IWPJumpStarts
	a.IWPRootStarts += b.IWPRootStarts
	a.IWPOverlapScans += b.IWPOverlapScans
	a.DedupOffered += b.DedupOffered
	a.DedupAccepted += b.DedupAccepted
	return a
}
