package shard

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"nwcq"
	"nwcq/internal/core"
	"nwcq/internal/geom"
)

// Query routing. The plan for both NWC and kNWC is:
//
//  1. Scatter: run the query locally on the home shard (the cell
//     containing q) to seed a distance bound, then on the remaining
//     shards in ascending MINDIST(q, shard bounds) order, skipping any
//     shard whose MINDIST exceeds the current bound — the paper's
//     best-first node pruning lifted to shard granularity.
//  2. Border: local answers are exact for groups drawn from one
//     shard's points, but a window straddling a shard boundary can
//     cluster points no single shard holds together. Every group with
//     distance at most B has all its objects — and every point of any
//     window that could generate a competing candidate — inside
//     box(q, B+l, B+w), so fetching that box's points from every shard
//     whose bounds intersect it and enumerating candidate groups over
//     the fetched set (core.CandidateGroups) provably covers all of
//     them. Candidates from partially-fetched windows are real feasible
//     groups (their objects genuinely co-fit), so they can never beat
//     the true optimum — taking the minimum stays exact.
//  3. kNWC needs the full candidate *sequence* below the answer's k-th
//     distance, not just the best group, so the border step becomes a
//     certification loop: fetch box(D+l, D+w), greedily merge the
//     candidate list truncated at D (below D it is provably identical
//     to the full dataset's list), and accept when k groups emerged
//     with the k-th at most D; otherwise double D and rerun. The local
//     chains only seed D — correctness never depends on them.
//
// See DESIGN.md §11 for the containment proofs.

// measureOf maps the public measure onto the core engine's.
func measureOf(m nwcq.Measure) (core.Measure, error) {
	switch m {
	case nwcq.MaxDistance:
		return core.MeasureMax, nil
	case nwcq.MinDistance:
		return core.MeasureMin, nil
	case nwcq.AvgDistance:
		return core.MeasureAvg, nil
	case nwcq.WindowDistance:
		return core.MeasureWindow, nil
	default:
		return 0, fmt.Errorf("nwcq: unknown measure %d", int(m))
	}
}

func coreQuery(q nwcq.Query) core.Query {
	return core.Query{Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N}
}

func groupOut(g core.Group) nwcq.Group {
	objs := make([]nwcq.Point, len(g.Objects))
	for i, p := range g.Objects {
		objs[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return nwcq.Group{
		Objects: objs,
		Dist:    g.Dist,
		Window:  nwcq.Rect{MinX: g.Window.MinX, MinY: g.Window.MinY, MaxX: g.Window.MaxX, MaxY: g.Window.MaxY},
	}
}

func groupIn(g nwcq.Group) core.Group {
	objs := make([]geom.Point, len(g.Objects))
	for i, p := range g.Objects {
		objs[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return core.Group{
		Objects: objs,
		Dist:    g.Dist,
		Window:  geom.NewRect(g.Window.MinX, g.Window.MinY, g.Window.MaxX, g.Window.MaxY),
	}
}

func addStats(a, b nwcq.Stats) nwcq.Stats {
	a.NodeVisits += b.NodeVisits
	a.ObjectsProcessed += b.ObjectsProcessed
	a.ObjectsSkipped += b.ObjectsSkipped
	a.NodesPruned += b.NodesPruned
	a.WindowQueries += b.WindowQueries
	a.CandidateWindows += b.CandidateWindows
	a.QualifiedWindows += b.QualifiedWindows
	a.GridProbes += b.GridProbes
	return a
}

// visitOrder returns shard indexes with home first and the rest in
// ascending MINDIST(q, bounds) order — the scatter schedule.
func (s *Sharded) visitOrder(qp geom.Point, bounds []geom.Rect, home int) []int {
	order := make([]int, 0, len(bounds))
	for i := range bounds {
		if i != home {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return bounds[order[a]].MinDist2(qp) < bounds[order[b]].MinDist2(qp)
	})
	return append([]int{home}, order...)
}

// fetchBox is the rectangle that contains every object of every
// candidate group with distance at most d, and every point of every
// window that can generate such a candidate (closed bounds; see the
// routing comment).
func fetchBox(q nwcq.Query, d float64) geom.Rect {
	return geom.NewRect(q.X-(d+q.Length), q.Y-(d+q.Width), q.X+(d+q.Length), q.Y+(d+q.Width))
}

// fetchPoints collects every indexed point inside fetch from the shards
// whose bounds intersect it, returning the points and how many shards
// contributed. Bounds cover all of a shard's points (including
// outliers), so skipped shards provably hold nothing inside fetch.
func (s *Sharded) fetchPoints(bounds []geom.Rect, fetch geom.Rect) ([]geom.Point, error) {
	var out []geom.Point
	for i, ix := range s.shards {
		if !bounds[i].Intersects(fetch) {
			continue
		}
		pts, err := ix.Window(fetch.MinX, fetch.MinY, fetch.MaxX, fetch.MaxY)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			out = append(out, geom.Point{X: p.X, Y: p.Y, ID: p.ID})
		}
	}
	s.obs.borderFetches.Inc()
	s.obs.borderPoints.Add(uint64(len(out)))
	return out, nil
}

// intersecting counts shards whose bounds intersect fetch.
func intersecting(bounds []geom.Rect, fetch geom.Rect) int {
	n := 0
	for _, b := range bounds {
		if b.Intersects(fetch) {
			n++
		}
	}
	return n
}

// allBounds returns the union of every shard's effective bounds — a
// rectangle covering the entire dataset.
func allBounds(bounds []geom.Rect) geom.Rect {
	u := geom.EmptyRect()
	for _, b := range bounds {
		u = u.Union(b)
	}
	return u
}

// NWC answers an NWC query without cancellation.
func (s *Sharded) NWC(q nwcq.Query) (nwcq.Result, error) {
	return s.NWCCtx(context.Background(), q)
}

// NWCCtx answers an NWC query by scatter-gather over the shards. The
// result equals the single-index answer on the same points for every
// scheme and measure; Stats sums the per-shard work.
func (s *Sharded) NWCCtx(ctx context.Context, q nwcq.Query) (nwcq.Result, error) {
	start := time.Now()
	res, err := s.nwc(ctx, q, nil)
	s.obs.observe(rNWC, q.Scheme, time.Since(start), res.Stats.NodeVisits, err)
	return res, err
}

// ExplainNWC answers an NWC query with per-shard tracing, merging the
// shard traces into one router-level trace whose phases are prefixed
// with the shard that ran them, plus a synthetic border-fetch phase.
func (s *Sharded) ExplainNWC(ctx context.Context, q nwcq.Query) (nwcq.Result, *nwcq.QueryTrace, error) {
	col := &explainCollector{}
	start := time.Now()
	res, err := s.nwc(ctx, q, col)
	elapsed := time.Since(start)
	s.obs.observe(rNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	return res, col.merged("nwc", q.Scheme, q.Measure, elapsed, res.Stats.NodeVisits), err
}

func (s *Sharded) nwc(ctx context.Context, q nwcq.Query, col *explainCollector) (nwcq.Result, error) {
	if err := q.Validate(); err != nil {
		return nwcq.Result{}, err
	}
	measure, err := measureOf(q.Measure)
	if err != nil {
		return nwcq.Result{}, err
	}
	qp := geom.Point{X: q.X, Y: q.Y}
	bounds := s.shardBounds()
	home := s.shardFor(q.X, q.Y)

	out := nwcq.Result{}
	best := math.Inf(1)
	for _, i := range s.visitOrder(qp, bounds, home) {
		if i != home && bounds[i].MinDist(qp) > best {
			s.obs.shardsPruned.Inc()
			continue
		}
		r, err := s.shardNWC(ctx, i, q, col)
		if err != nil {
			return nwcq.Result{Stats: out.Stats}, err
		}
		s.obs.shardQueries.Inc()
		out.Stats = addStats(out.Stats, r.Stats)
		if r.Found && r.Dist < best {
			best = r.Dist
			out.Group = r.Group
			out.Found = true
		}
	}

	if !math.IsInf(best, 1) {
		// Border step: candidates at or below the local best live inside
		// this box; if only one shard's bounds intersect it, that shard's
		// local answer is already globally exact.
		fetch := fetchBox(q, best)
		if intersecting(bounds, fetch) <= 1 {
			return out, nil
		}
		pts, err := s.fetchPoints(bounds, fetch)
		if err != nil {
			return nwcq.Result{Stats: out.Stats}, err
		}
		col.borderDone(len(pts))
		cands := core.CandidateGroups(pts, coreQuery(q), measure)
		if len(cands) > 0 && cands[0].Dist < best {
			out.Group = groupOut(cands[0])
		}
		return out, nil
	}

	// No shard found a group on its own points. Any group that exists
	// must mix points from several shards, so enumerate candidates over
	// the full dataset (the no-local-answer case is the one place the
	// fetch cannot be bounded by a distance).
	pts, err := s.fetchPoints(bounds, allBounds(bounds))
	if err != nil {
		return nwcq.Result{Stats: out.Stats}, err
	}
	col.borderDone(len(pts))
	if cands := core.CandidateGroups(pts, coreQuery(q), measure); len(cands) > 0 {
		out.Found = true
		out.Group = groupOut(cands[0])
	}
	return out, nil
}

func (s *Sharded) shardNWC(ctx context.Context, i int, q nwcq.Query, col *explainCollector) (nwcq.Result, error) {
	if col == nil {
		return s.shards[i].NWCCtx(ctx, q)
	}
	res, tr, err := s.shards[i].ExplainNWC(ctx, q)
	col.add(i, tr)
	return res, err
}

// KNWC answers a kNWC query without cancellation.
func (s *Sharded) KNWC(q nwcq.KQuery) (nwcq.KResult, error) {
	return s.KNWCCtx(context.Background(), q)
}

// KNWCCtx answers a kNWC query: per-shard KResult chains are merged
// through the same greedy dedup ordering the engine uses, then the
// merge is certified exact against a bounded candidate enumeration
// (rerunning with a doubled bound when certification fails). The
// result equals the single-index answer in group count and distances.
func (s *Sharded) KNWCCtx(ctx context.Context, q nwcq.KQuery) (nwcq.KResult, error) {
	start := time.Now()
	res, err := s.knwc(ctx, q, nil)
	s.obs.observe(rKNWC, q.Scheme, time.Since(start), res.Stats.NodeVisits, err)
	return res, err
}

// ExplainKNWC is KNWCCtx with per-shard tracing, merged like
// ExplainNWC.
func (s *Sharded) ExplainKNWC(ctx context.Context, q nwcq.KQuery) (nwcq.KResult, *nwcq.QueryTrace, error) {
	col := &explainCollector{}
	start := time.Now()
	res, err := s.knwc(ctx, q, col)
	elapsed := time.Since(start)
	s.obs.observe(rKNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	return res, col.merged("knwc", q.Scheme, q.Measure, elapsed, res.Stats.NodeVisits), err
}

// compatible reports whether g can join groups under the overlap budget
// m: it must share at most m objects with every member and must not
// duplicate one — the engine's (and BruteForceKNWC's) acceptance rule.
func compatible(groups []core.Group, g core.Group, m int) bool {
	for _, h := range groups {
		ov := h.OverlapCount(g)
		if ov > m || ov == len(g.Objects) {
			return false
		}
	}
	return true
}

// mergeEstimate runs the greedy acceptance over the pooled per-shard
// chain groups (ascending by distance) and returns the k-th accepted
// distance, or +Inf when the pool cannot supply k groups. Ties are
// broken deterministically but the value is only used as a fetch
// bound, never returned.
func mergeEstimate(pool []core.Group, k, m int) float64 {
	sorted := make([]core.Group, len(pool))
	copy(sorted, pool)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dist < sorted[j].Dist })
	var accepted []core.Group
	for _, g := range sorted {
		if compatible(accepted, g, m) {
			accepted = append(accepted, g)
			if len(accepted) == k {
				return g.Dist
			}
		}
	}
	return math.Inf(1)
}

func (s *Sharded) knwc(ctx context.Context, q nwcq.KQuery, col *explainCollector) (nwcq.KResult, error) {
	if err := q.Validate(); err != nil {
		return nwcq.KResult{}, err
	}
	measure, err := measureOf(q.Measure)
	if err != nil {
		return nwcq.KResult{}, err
	}
	qp := geom.Point{X: q.X, Y: q.Y}
	bounds := s.shardBounds()
	home := s.shardFor(q.X, q.Y)
	cq := coreQuery(q.Query)

	// Scatter: collect per-shard chains, pruning against the running
	// merged estimate. The pool only seeds the certification bound.
	var stats nwcq.Stats
	var pool []core.Group
	est := math.Inf(1)
	for _, i := range s.visitOrder(qp, bounds, home) {
		if i != home && bounds[i].MinDist(qp) > est {
			s.obs.shardsPruned.Inc()
			continue
		}
		kr, err := s.shardKNWC(ctx, i, q, col)
		if err != nil {
			return nwcq.KResult{Stats: stats}, err
		}
		s.obs.shardQueries.Inc()
		stats = addStats(stats, kr.Stats)
		for _, g := range kr.Groups {
			pool = append(pool, groupIn(g))
		}
		est = mergeEstimate(pool, q.K, q.M)
	}

	// Fast path: every candidate at or below the estimate lives in a
	// single shard, so that shard's own greedy chain is the global
	// answer — and it is exactly what the merge reproduces.
	if !math.IsInf(est, 1) && intersecting(bounds, fetchBox(q.Query, est)) <= 1 {
		return s.mergedKResult(pool, q, stats), nil
	}

	// Certification loop: fetch box(D), merge the candidate list
	// truncated at D (identical to the full dataset's list up to D),
	// and accept once k groups emerged or the fetch covered everything.
	d := est
	if math.IsInf(d, 1) || d <= 0 {
		d = math.Hypot(q.Length, q.Width)
	}
	whole := allBounds(bounds)
	for iter := 0; ; iter++ {
		if iter > 0 {
			s.obs.fetchReruns.Inc()
		}
		fetch := fetchBox(q.Query, d)
		complete := fetch.ContainsRect(whole)
		if complete {
			fetch = whole
		}
		pts, err := s.fetchPoints(bounds, fetch)
		if err != nil {
			return nwcq.KResult{Stats: stats}, err
		}
		col.borderDone(len(pts))
		var groups []core.Group
		for _, g := range core.CandidateGroups(pts, cq, measure) {
			if !complete && g.Dist > d {
				break // sorted ascending; past the certified horizon
			}
			if compatible(groups, g, q.M) {
				groups = append(groups, g)
				if len(groups) == q.K {
					break
				}
			}
		}
		if len(groups) == q.K || complete {
			out := nwcq.KResult{Found: len(groups) > 0, Stats: stats}
			for _, g := range groups {
				out.Groups = append(out.Groups, groupOut(g))
			}
			return out, nil
		}
		d = math.Max(2*d, math.Hypot(q.Length, q.Width))
	}
}

// mergedKResult materialises the fast-path answer: greedy over the
// pooled chains, ascending by distance.
func (s *Sharded) mergedKResult(pool []core.Group, q nwcq.KQuery, stats nwcq.Stats) nwcq.KResult {
	sorted := make([]core.Group, len(pool))
	copy(sorted, pool)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dist < sorted[j].Dist })
	var accepted []core.Group
	for _, g := range sorted {
		if compatible(accepted, g, q.M) {
			accepted = append(accepted, g)
			if len(accepted) == q.K {
				break
			}
		}
	}
	out := nwcq.KResult{Found: len(accepted) > 0, Stats: stats}
	for _, g := range accepted {
		out.Groups = append(out.Groups, groupOut(g))
	}
	return out
}

func (s *Sharded) shardKNWC(ctx context.Context, i int, q nwcq.KQuery, col *explainCollector) (nwcq.KResult, error) {
	if col == nil {
		return s.shards[i].KNWCCtx(ctx, q)
	}
	res, tr, err := s.shards[i].ExplainKNWC(ctx, q)
	col.add(i, tr)
	return res, err
}

// Window runs a range query across every shard and concatenates the
// results (shards hold disjoint point sets, so no dedup is needed).
func (s *Sharded) Window(minX, minY, maxX, maxY float64) ([]nwcq.Point, error) {
	start := time.Now()
	var out []nwcq.Point
	var err error
	for _, ix := range s.shards {
		var pts []nwcq.Point
		pts, err = ix.Window(minX, minY, maxX, maxY)
		if err != nil {
			break
		}
		out = append(out, pts...)
	}
	s.obs.observe(rWindow, nwcq.SchemeDefault, time.Since(start), 0, err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Nearest merges every shard's k nearest into the global k nearest,
// ascending by distance.
func (s *Sharded) Nearest(x, y float64, k int) ([]nwcq.Point, error) {
	start := time.Now()
	out, err := s.nearest(x, y, k)
	s.obs.observe(rNearest, nwcq.SchemeDefault, time.Since(start), 0, err)
	return out, err
}

func (s *Sharded) nearest(x, y float64, k int) ([]nwcq.Point, error) {
	var all []nwcq.Point
	for _, ix := range s.shards {
		pts, err := ix.Nearest(x, y, k)
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		di := (all[i].X-x)*(all[i].X-x) + (all[i].Y-y)*(all[i].Y-y)
		dj := (all[j].X-x)*(all[j].X-x) + (all[j].Y-y)*(all[j].Y-y)
		return di < dj
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// NWCBatch answers many NWC queries concurrently, in input order.
func (s *Sharded) NWCBatch(queries []nwcq.Query, opt nwcq.BatchOptions) ([]nwcq.Result, error) {
	return s.NWCBatchCtx(context.Background(), queries, opt)
}

// NWCBatchCtx fans routed NWC queries over a worker pool; the first
// error aborts the batch, matching the single-index semantics.
func (s *Sharded) NWCBatchCtx(ctx context.Context, queries []nwcq.Query, opt nwcq.BatchOptions) ([]nwcq.Result, error) {
	results := make([]nwcq.Result, len(queries))
	err := eachIndexed(len(queries), batchWorkers(opt), func(i int) error {
		res, err := s.NWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// KNWCBatch answers many kNWC queries concurrently, in input order.
func (s *Sharded) KNWCBatch(queries []nwcq.KQuery, opt nwcq.BatchOptions) ([]nwcq.KResult, error) {
	return s.KNWCBatchCtx(context.Background(), queries, opt)
}

// KNWCBatchCtx is the kNWC batch form of NWCBatchCtx.
func (s *Sharded) KNWCBatchCtx(ctx context.Context, queries []nwcq.KQuery, opt nwcq.BatchOptions) ([]nwcq.KResult, error) {
	results := make([]nwcq.KResult, len(queries))
	err := eachIndexed(len(queries), batchWorkers(opt), func(i int) error {
		res, err := s.KNWCCtx(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func batchWorkers(opt nwcq.BatchOptions) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// eachIndexed runs fn(0..n-1) over a bounded worker pool, returning the
// first error (remaining work is skipped, in-flight calls finish).
func eachIndexed(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// explainCollector gathers per-shard traces during an explained routed
// query. A nil collector is the no-trace fast path.
type explainCollector struct {
	entries []shardTrace
	// borderPoints is -1 until a border fetch ran.
	borderPoints int
	borderStart  time.Time
	borderTime   time.Duration
}

type shardTrace struct {
	shard int
	trace *nwcq.QueryTrace
}

func (c *explainCollector) add(shard int, tr *nwcq.QueryTrace) {
	if c == nil {
		return
	}
	c.entries = append(c.entries, shardTrace{shard: shard, trace: tr})
	c.borderStart = time.Now()
}

// borderDone stamps the border-fetch phase (points fetched, duration
// since the last scatter query finished).
func (c *explainCollector) borderDone(points int) {
	if c == nil {
		return
	}
	c.borderPoints += points
	if !c.borderStart.IsZero() {
		c.borderTime = time.Since(c.borderStart)
	}
}

// merged assembles the router-level trace: every shard's phases
// prefixed with its shard number, counters summed, plus a synthetic
// border-fetch phase when one ran.
func (c *explainCollector) merged(kind string, scheme nwcq.Scheme, measure nwcq.Measure, elapsed time.Duration, visits uint64) *nwcq.QueryTrace {
	qt := &nwcq.QueryTrace{
		Kind:       kind,
		Scheme:     scheme.String(),
		Measure:    measure.String(),
		StartedAt:  time.Now().Add(-elapsed),
		Duration:   elapsed,
		NodeVisits: visits,
	}
	for _, e := range c.entries {
		prefix := fmt.Sprintf("shard%d:", e.shard)
		for _, p := range e.trace.Phases {
			qt.Phases = append(qt.Phases, nwcq.PhaseTrace{
				Phase:      prefix + p.Phase,
				Duration:   p.Duration,
				Entered:    p.Entered,
				NodeVisits: p.NodeVisits,
			})
		}
		qt.Counters = addCounters(qt.Counters, e.trace.Counters)
		if e.trace.HeapHighWater > qt.HeapHighWater {
			qt.HeapHighWater = e.trace.HeapHighWater
		}
		if e.trace.CandidateHighWater > qt.CandidateHighWater {
			qt.CandidateHighWater = e.trace.CandidateHighWater
		}
	}
	if c.borderPoints > 0 || c.borderTime > 0 {
		qt.Phases = append(qt.Phases, nwcq.PhaseTrace{
			Phase:    "border-fetch",
			Duration: c.borderTime,
			Entered:  1,
		})
	}
	return qt
}

func addCounters(a, b nwcq.TraceCounters) nwcq.TraceCounters {
	a.SRRShrinks += b.SRRShrinks
	a.SRRSkips += b.SRRSkips
	a.DIPPrunedNodes += b.DIPPrunedNodes
	a.DEPPrunedNodes += b.DEPPrunedNodes
	a.DEPSkippedObjects += b.DEPSkippedObjects
	a.GridProbes += b.GridProbes
	a.WindowQueries += b.WindowQueries
	a.CandidateWindows += b.CandidateWindows
	a.QualifiedWindows += b.QualifiedWindows
	a.GroupsEmitted += b.GroupsEmitted
	a.IWPJumpStarts += b.IWPJumpStarts
	a.IWPRootStarts += b.IWPRootStarts
	a.IWPOverlapScans += b.IWPOverlapScans
	a.DedupOffered += b.DedupOffered
	a.DedupAccepted += b.DedupAccepted
	return a
}
