package nwcq

import (
	"io"
	"time"

	"nwcq/internal/metrics"
)

// Index-level observability: every query records its latency, node
// visits and scheme into lock-free aggregates (internal/metrics), read
// out with Index.Metrics. Recording sits outside the per-query Stats
// carrier, so the two never contend: Stats is exact per query, Metrics
// is exact in aggregate.

// queryKind indexes the per-operation aggregates.
type queryKind int

const (
	kindNWC queryKind = iota
	kindKNWC
	kindNearest
	kindWindow
	kindInsert
	kindDelete
	kindCount
)

var kindNames = [kindCount]string{"nwc", "knwc", "nearest", "window", "insert", "delete"}

// queryMetrics aggregates across queries with atomics only; it is safe
// for concurrent use and adds no lock to the query path.
type queryMetrics struct {
	queries [kindCount]metrics.Counter
	errors  [kindCount]metrics.Counter
	latency [kindCount]*metrics.Histogram // seconds
	visits  [kindCount]*metrics.Histogram // node visits (NWC/kNWC only)
	// byScheme counts NWC/kNWC queries per resolved scheme, indexed by
	// the scheme's four optimisation bits.
	byScheme [16]metrics.Counter
	// iwpRebuilds counts lazy per-view IWP pointer rebuilds triggered
	// by the first IWP-scheme query after a mutation.
	iwpRebuilds metrics.Counter
}

func newQueryMetrics() *queryMetrics {
	m := &queryMetrics{}
	for k := range m.latency {
		// 1µs .. ~8.4s in ×2 steps.
		m.latency[k] = metrics.MustHistogram(metrics.ExponentialBounds(1e-6, 2, 24))
		// 1 .. ~8.4M node visits in ×2 steps.
		m.visits[k] = metrics.MustHistogram(metrics.ExponentialBounds(1, 2, 24))
	}
	return m
}

func schemeIndex(s Scheme) int {
	srr, dip, dep, iwp := s.Flags()
	i := 0
	if srr {
		i |= 1
	}
	if dip {
		i |= 2
	}
	if dep {
		i |= 4
	}
	if iwp {
		i |= 8
	}
	return i
}

// observe records one finished query. Only NWC/kNWC report node visits
// and a scheme; the other kinds pass zero visits and SchemeDefault.
func (m *queryMetrics) observe(kind queryKind, scheme Scheme, elapsed time.Duration, visits uint64, err error) {
	m.queries[kind].Inc()
	if err != nil {
		m.errors[kind].Inc()
	}
	m.latency[kind].Observe(elapsed.Seconds())
	if kind == kindNWC || kind == kindKNWC {
		m.visits[kind].Observe(float64(visits))
		m.byScheme[schemeIndex(scheme)].Inc()
	}
}

// QueryKindMetrics summarises one operation kind in a MetricsSnapshot.
// Latencies are milliseconds; quantiles are histogram estimates
// (interpolated within log-spaced buckets).
type QueryKindMetrics struct {
	Count         uint64  `json:"count"`
	Errors        uint64  `json:"errors"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	// Node-visit distribution; zero for kinds that do not report visits
	// (nearest, window).
	NodeVisitsMean float64 `json:"node_visits_mean"`
	NodeVisitsP50  float64 `json:"node_visits_p50"`
	NodeVisitsP95  float64 `json:"node_visits_p95"`
	NodeVisitsP99  float64 `json:"node_visits_p99"`
}

// PageCacheMetrics reports buffer-pool effectiveness for a paged index:
// physical transfers, hit/miss/eviction counts, cold reads coalesced by
// single-flight, and the resulting hit rate.
type PageCacheMetrics struct {
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	// Syncs counts fsyncs of the page file — checkpoint cost.
	Syncs uint64 `json:"syncs"`
	// HitRate is Hits / (Hits + Misses), zero when no reads happened.
	HitRate float64 `json:"hit_rate"`
}

// WALMetrics reports write-ahead-log activity for a WAL-backed paged
// index: append volume, fsync and segment-lifecycle counts, checkpoint
// progress and the current LSN horizon.
type WALMetrics struct {
	Appends          uint64 `json:"appends"`
	AppendBytes      uint64 `json:"append_bytes"`
	Fsyncs           uint64 `json:"fsyncs"`
	Rotations        uint64 `json:"rotations"`
	SegmentsRecycled uint64 `json:"segments_recycled"`
	Checkpoints      uint64 `json:"checkpoints"`
	// RecordsReplayed is the number of committed records recovered when
	// the index was opened (zero after a clean shutdown).
	RecordsReplayed uint64 `json:"records_replayed"`
	// AppendedLSN and DurableLSN bound the window of acknowledged but
	// not yet fsynced mutations (equal under SyncAlways at rest).
	AppendedLSN uint64 `json:"appended_lsn"`
	DurableLSN  uint64 `json:"durable_lsn"`
	// CommittedLSN is the record the current published view reflects —
	// the newest mutation a query can observe, and the convergence
	// target for replication followers.
	CommittedLSN uint64 `json:"committed_lsn"`
	// ReplicaLSN is the highest leader LSN applied locally when this
	// index is a replication follower; zero on leaders.
	ReplicaLSN uint64 `json:"replica_lsn"`
	SyncPolicy string `json:"sync_policy"`
}

// MetricsSnapshot is a point-in-time copy of the index's aggregated
// observability state.
type MetricsSnapshot struct {
	// CollectedAt is when the snapshot was taken; UptimeSeconds is the
	// time since the index was built or opened.
	CollectedAt   time.Time `json:"collected_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Build identifies the serving binary (module version and Go
	// toolchain), so archived snapshots stay attributable to a build.
	Build BuildInfo `json:"build"`
	// Queries maps operation name ("nwc", "knwc", "nearest", "window")
	// to its aggregates.
	Queries map[string]QueryKindMetrics `json:"queries"`
	// SchemeCounts maps resolved scheme name (as in Scheme.String) to
	// the number of NWC/kNWC queries run under it.
	SchemeCounts map[string]uint64 `json:"scheme_counts"`
	// CumulativeNodeVisits is the index-wide atomic node-visit total
	// (same value as IOStats).
	CumulativeNodeVisits uint64 `json:"cumulative_node_visits"`
	// IWPRebuilds counts lazy IWP pointer rebuilds (first IWP-scheme
	// query on a freshly published view after a mutation).
	IWPRebuilds uint64 `json:"iwp_rebuilds"`
	// PageCache reports buffer-pool counters; nil for in-memory indexes,
	// which have no page cache. A sharded backend sums its shards'.
	PageCache *PageCacheMetrics `json:"page_cache,omitempty"`
	// WAL reports write-ahead-log counters; nil for in-memory indexes
	// and indexes built WithoutWAL. A sharded backend sums its shards'.
	WAL *WALMetrics `json:"wal,omitempty"`
	// Router reports scatter-gather routing counters; nil for
	// single-index backends.
	Router *RouterMetrics `json:"router,omitempty"`
	// ResultCache reports the query result cache; nil when no cache is
	// configured (WithResultCache / shard.Options.ResultCache).
	ResultCache *ResultCacheMetrics `json:"result_cache,omitempty"`
	// Subscriptions reports the standing-query subsystem (subscribe.go).
	// A sharded backend sums its shards' notifier counters.
	Subscriptions *SubscriptionStats `json:"subscriptions,omitempty"`
}

// ResultCacheMetrics reports the single-flight query result cache:
// outcome counts (a coalesced lookup shared another caller's in-flight
// computation), generation invalidations that dropped the map, current
// population and the resulting hit rate. NWC and kNWC caches are
// reported summed.
type ResultCacheMetrics struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Coalesced     uint64 `json:"coalesced"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	// HitRate is Hits / (Hits + Misses), zero before any lookup.
	HitRate float64 `json:"hit_rate"`
}

// RouterMetrics reports the routing activity of a sharded backend
// (internal/shard); a single index never sets it.
type RouterMetrics struct {
	// Shards is the number of index shards behind the router.
	Shards int `json:"shards"`
	// ShardQueries counts local scatter queries issued to shards;
	// ShardsPruned counts shards the MINDIST bound let the router skip.
	ShardQueries uint64 `json:"shard_queries"`
	ShardsPruned uint64 `json:"shards_pruned"`
	// BorderFetches counts border-fetch passes for boundary-straddling
	// windows, BorderPoints the candidate points they collected.
	BorderFetches uint64 `json:"border_fetches"`
	BorderPoints  uint64 `json:"border_points"`
	// FetchReruns counts kNWC certification retries (fetch-bound
	// doublings before the merged answer was provably exact).
	FetchReruns uint64 `json:"fetch_reruns"`
	// Parallelism is the resolved scatter worker width;
	// InflightWorkers is the number of shard queries running right now.
	Parallelism     int   `json:"parallelism"`
	InflightWorkers int64 `json:"inflight_workers"`
	// BoundTightenings counts improvements published to the shared
	// scatter bound cell by in-flight shard traversals — how often the
	// parallel workers actually helped each other prune.
	BoundTightenings uint64 `json:"bound_tightenings"`
	// Phases maps routed-query phase name ("scatter", "border", "merge")
	// to its latency distribution: every routed NWC/kNWC execution
	// records its wall-clock split across the three phases, so a router
	// tail-latency spike can be attributed to shard fan-out, border
	// fetching or candidate merging without tracing individual queries.
	Phases map[string]RouterPhaseMetrics `json:"phases,omitempty"`
}

// RouterPhaseMetrics summarises one routed-query phase's latency
// distribution. Latencies are milliseconds; quantiles are histogram
// estimates. Count is the number of routed executions observed (equal
// across the phases: every routed query records all three, with zero
// duration for phases it skipped).
type RouterPhaseMetrics struct {
	Count         uint64  `json:"count"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// Metrics returns aggregated latency, error and I/O statistics over
// every query run on this index. Safe to call concurrently with
// queries; the snapshot is built from atomic reads.
func (ix *Index) Metrics() MetricsSnapshot {
	m := ix.obs
	now := time.Now()
	out := MetricsSnapshot{
		CollectedAt:          now,
		UptimeSeconds:        now.Sub(ix.created).Seconds(),
		Build:                metrics.Build(),
		Queries:              make(map[string]QueryKindMetrics, kindCount),
		SchemeCounts:         make(map[string]uint64),
		CumulativeNodeVisits: ix.cur.Load().tree.Visits(),
		IWPRebuilds:          m.iwpRebuilds.Value(),
	}
	for k := queryKind(0); k < kindCount; k++ {
		lat := m.latency[k].Snapshot()
		vis := m.visits[k].Snapshot()
		km := QueryKindMetrics{
			Count:         m.queries[k].Value(),
			Errors:        m.errors[k].Value(),
			LatencyMeanMs: lat.Mean() * 1e3,
			LatencyP50Ms:  lat.QuantileOr(0.50, 0) * 1e3,
			LatencyP95Ms:  lat.QuantileOr(0.95, 0) * 1e3,
			LatencyP99Ms:  lat.QuantileOr(0.99, 0) * 1e3,
		}
		if k == kindNWC || k == kindKNWC {
			km.NodeVisitsMean = vis.Mean()
			km.NodeVisitsP50 = vis.QuantileOr(0.50, 0)
			km.NodeVisitsP95 = vis.QuantileOr(0.95, 0)
			km.NodeVisitsP99 = vis.QuantileOr(0.99, 0)
		}
		out.Queries[kindNames[k]] = km
	}
	for i := range m.byScheme {
		if n := m.byScheme[i].Value(); n > 0 {
			out.SchemeCounts[NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0).String()] += n
		}
	}
	if ix.pageStats != nil {
		st := ix.pageStats()
		pc := &PageCacheMetrics{
			Reads: st.Reads, Writes: st.Writes,
			Hits: st.CacheHits, Misses: st.CacheMisses,
			Evictions: st.Evictions, Coalesced: st.Coalesced,
			Syncs: st.Syncs,
		}
		if total := pc.Hits + pc.Misses; total > 0 {
			pc.HitRate = float64(pc.Hits) / float64(total)
		}
		out.PageCache = pc
	}
	if d := ix.dur; d != nil {
		ws := d.log.Stats()
		out.WAL = &WALMetrics{
			Appends: ws.Appends, AppendBytes: ws.AppendBytes,
			Fsyncs: ws.Syncs, Rotations: ws.Rotations,
			SegmentsRecycled: ws.Recycled,
			Checkpoints:      d.checkpoints.Load(),
			RecordsReplayed:  d.replayed,
			AppendedLSN:      d.log.AppendedLSN(),
			DurableLSN:       d.log.DurableLSN(),
			CommittedLSN:     ix.cur.Load().lsn,
			ReplicaLSN:       d.replica.Load(),
			SyncPolicy:       d.policy.String(),
		}
	}
	out.ResultCache = ix.cache.metrics()
	ss := ix.SubscriptionStats()
	out.Subscriptions = &ss
	return out
}

// WritePrometheus renders the index's metrics in the Prometheus text
// exposition format (version 0.0.4): one counter family per query
// kind, full latency and node-visit histograms with cumulative
// buckets, per-scheme counts, and the page-cache counters for paged
// indexes. The server exposes it at GET /metrics?format=prometheus.
func (ix *Index) WritePrometheus(w io.Writer) error {
	m := ix.obs
	pw := &promWriter{W: w}
	pw.BuildInfoProm()
	pw.Header("nwcq_queries_total", "counter", "Queries served, by operation kind.")
	for k := queryKind(0); k < kindCount; k++ {
		pw.Value("nwcq_queries_total", labels{"kind", kindNames[k]}, float64(m.queries[k].Value()))
	}
	pw.Header("nwcq_query_errors_total", "counter", "Failed queries, by operation kind.")
	for k := queryKind(0); k < kindCount; k++ {
		pw.Value("nwcq_query_errors_total", labels{"kind", kindNames[k]}, float64(m.errors[k].Value()))
	}
	pw.Header("nwcq_query_latency_seconds", "histogram", "Query latency, by operation kind.")
	for k := queryKind(0); k < kindCount; k++ {
		pw.Histogram("nwcq_query_latency_seconds", labels{"kind", kindNames[k]}, m.latency[k].Snapshot())
	}
	pw.Header("nwcq_query_node_visits", "histogram", "Per-query R*-tree node visits (nwc and knwc only).")
	for _, k := range []queryKind{kindNWC, kindKNWC} {
		pw.Histogram("nwcq_query_node_visits", labels{"kind", kindNames[k]}, m.visits[k].Snapshot())
	}
	pw.Header("nwcq_scheme_queries_total", "counter", "NWC/kNWC queries, by resolved optimisation scheme.")
	schemes := make(map[string]uint64)
	for i := range m.byScheme {
		if n := m.byScheme[i].Value(); n > 0 {
			schemes[NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0).String()] += n
		}
	}
	for _, name := range metrics.SortedKeys(schemes) {
		pw.Value("nwcq_scheme_queries_total", labels{"scheme", name}, float64(schemes[name]))
	}
	cur := ix.cur.Load()
	pw.Header("nwcq_node_visits_total", "counter", "Cumulative R*-tree node visits across all queries.")
	pw.Value("nwcq_node_visits_total", nil, float64(cur.tree.Visits()))
	pw.Header("nwcq_index_points", "gauge", "Points currently indexed.")
	pw.Value("nwcq_index_points", nil, float64(cur.tree.Len()))
	pw.Header("nwcq_iwp_rebuilds_total", "counter", "Lazy per-view IWP pointer rebuilds after mutations.")
	pw.Value("nwcq_iwp_rebuilds_total", nil, float64(m.iwpRebuilds.Value()))
	pw.Header("nwcq_uptime_seconds", "gauge", "Seconds since the index was built or opened.")
	pw.Value("nwcq_uptime_seconds", nil, time.Since(ix.created).Seconds())
	pw.Header("nwcq_slow_queries_total", "counter", "Queries that exceeded the slow-query threshold.")
	pw.Value("nwcq_slow_queries_total", nil, float64(ix.slow.ring.Recorded()))
	if ix.pageStats != nil {
		st := ix.pageStats()
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"nwcq_page_cache_reads_total", "Physical page reads.", st.Reads},
			{"nwcq_page_cache_writes_total", "Physical page writes.", st.Writes},
			{"nwcq_page_cache_hits_total", "Buffer-pool hits.", st.CacheHits},
			{"nwcq_page_cache_misses_total", "Buffer-pool misses.", st.CacheMisses},
			{"nwcq_page_cache_evictions_total", "Frames evicted for room.", st.Evictions},
			{"nwcq_page_cache_coalesced_total", "Cold reads coalesced by single-flight.", st.Coalesced},
			{"nwcq_page_syncs_total", "Fsyncs of the page file (checkpoint cost).", st.Syncs},
		} {
			pw.Header(c.name, "counter", c.help)
			pw.Value(c.name, nil, float64(c.v))
		}
	}
	if d := ix.dur; d != nil {
		ws := d.log.Stats()
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"nwcq_wal_appends_total", "Records appended to the write-ahead log.", ws.Appends},
			{"nwcq_wal_append_bytes_total", "Bytes appended to the write-ahead log.", ws.AppendBytes},
			{"nwcq_wal_fsyncs_total", "Fsyncs of write-ahead-log segments.", ws.Syncs},
			{"nwcq_wal_rotations_total", "Write-ahead-log segment rotations.", ws.Rotations},
			{"nwcq_wal_segments_recycled_total", "Write-ahead-log segments recycled after checkpoints.", ws.Recycled},
			{"nwcq_wal_checkpoints_total", "Checkpoints folding the log into the page file.", d.checkpoints.Load()},
			{"nwcq_wal_records_replayed_total", "Records replayed during crash recovery at open.", d.replayed},
		} {
			pw.Header(c.name, "counter", c.help)
			pw.Value(c.name, nil, float64(c.v))
		}
		pw.Header("nwcq_wal_appended_lsn", "gauge", "Highest LSN appended to the log.")
		pw.Value("nwcq_wal_appended_lsn", nil, float64(d.log.AppendedLSN()))
		pw.Header("nwcq_wal_durable_lsn", "gauge", "Highest LSN known fsynced to stable storage.")
		pw.Value("nwcq_wal_durable_lsn", nil, float64(d.log.DurableLSN()))
		pw.Header("nwcq_wal_committed_lsn", "gauge", "LSN of the current published view (replica convergence target).")
		pw.Value("nwcq_wal_committed_lsn", nil, float64(ix.cur.Load().lsn))
		pw.Header("nwcq_replica_lsn", "gauge", "Highest leader LSN applied locally (zero unless a replication follower).")
		pw.Value("nwcq_replica_lsn", nil, float64(d.replica.Load()))
	}
	writeResultCacheProm(pw, ix.cache.metrics())
	writeSubscriptionProm(pw, ix.SubscriptionStats())
	return pw.Err
}

// writeSubscriptionProm renders the standing-query families; the shard
// router's aggregated exposition shares it.
func writeSubscriptionProm(pw *promWriter, ss SubscriptionStats) {
	pw.Header("nwcq_sub_active", "gauge", "Open standing-query subscriptions.")
	pw.Value("nwcq_sub_active", nil, float64(ss.Active))
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"nwcq_sub_published_total", "Publishes that reached the notifier while subscriptions were open.", ss.Published},
		{"nwcq_sub_notified_total", "Notifications enqueued to subscribers (publishes passing the affect test).", ss.Notified},
		{"nwcq_sub_coalesced_total", "Notifications dropped by slow-subscriber queue overflow.", ss.Coalesced},
		{"nwcq_sub_resync_total", "Frames delivered flagged resync after an overflow.", ss.Resyncs},
		{"nwcq_sub_delivered_total", "Standing-query re-evaluations delivered.", ss.Delivered},
		{"nwcq_sub_eval_errors_total", "Standing-query re-evaluations that failed.", ss.EvalErrors},
	} {
		pw.Header(c.name, "counter", c.help)
		pw.Value(c.name, nil, float64(c.v))
	}
}

// writeResultCacheProm renders the result-cache families; both the
// single-index and the sharded exposition share it. A nil snapshot
// (caching off) writes nothing.
func writeResultCacheProm(pw *promWriter, rc *ResultCacheMetrics) {
	if rc == nil {
		return
	}
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"nwcq_result_cache_hits_total", "Query result cache hits.", rc.Hits},
		{"nwcq_result_cache_misses_total", "Query result cache misses (including stale-generation bypasses).", rc.Misses},
		{"nwcq_result_cache_coalesced_total", "Lookups that shared another caller's in-flight computation.", rc.Coalesced},
		{"nwcq_result_cache_invalidations_total", "Generation advances that dropped the cached entries.", rc.Invalidations},
	} {
		pw.Header(c.name, "counter", c.help)
		pw.Value(c.name, nil, float64(c.v))
	}
	pw.Header("nwcq_result_cache_entries", "gauge", "Entries currently cached (including in-flight computations).")
	pw.Value("nwcq_result_cache_entries", nil, float64(rc.Entries))
}

// The Prometheus text-format writer lives in internal/metrics (prom.go)
// so the shard router's aggregated exposition shares one renderer, and
// the build identity (buildinfo.go) is shared the same way.
type (
	labels     = metrics.Labels
	promWriter = metrics.PromWriter

	// BuildInfo is the serving binary's identity (module version, Go
	// toolchain), carried in every MetricsSnapshot.
	BuildInfo = metrics.BuildInfo
)
