package nwcq

import (
	"time"

	"nwcq/internal/metrics"
)

// Index-level observability: every query records its latency, node
// visits and scheme into lock-free aggregates (internal/metrics), read
// out with Index.Metrics. Recording sits outside the per-query Stats
// carrier, so the two never contend: Stats is exact per query, Metrics
// is exact in aggregate.

// queryKind indexes the per-operation aggregates.
type queryKind int

const (
	kindNWC queryKind = iota
	kindKNWC
	kindNearest
	kindWindow
	kindCount
)

var kindNames = [kindCount]string{"nwc", "knwc", "nearest", "window"}

// queryMetrics aggregates across queries with atomics only; it is safe
// for concurrent use and adds no lock to the query path.
type queryMetrics struct {
	queries [kindCount]metrics.Counter
	errors  [kindCount]metrics.Counter
	latency [kindCount]*metrics.Histogram // seconds
	visits  [kindCount]*metrics.Histogram // node visits (NWC/kNWC only)
	// byScheme counts NWC/kNWC queries per resolved scheme, indexed by
	// the scheme's four optimisation bits.
	byScheme [16]metrics.Counter
}

func newQueryMetrics() *queryMetrics {
	m := &queryMetrics{}
	for k := range m.latency {
		// 1µs .. ~8.4s in ×2 steps.
		m.latency[k] = metrics.MustHistogram(metrics.ExponentialBounds(1e-6, 2, 24))
		// 1 .. ~8.4M node visits in ×2 steps.
		m.visits[k] = metrics.MustHistogram(metrics.ExponentialBounds(1, 2, 24))
	}
	return m
}

func schemeIndex(s Scheme) int {
	srr, dip, dep, iwp := s.Flags()
	i := 0
	if srr {
		i |= 1
	}
	if dip {
		i |= 2
	}
	if dep {
		i |= 4
	}
	if iwp {
		i |= 8
	}
	return i
}

// observe records one finished query. Only NWC/kNWC report node visits
// and a scheme; the other kinds pass zero visits and SchemeDefault.
func (m *queryMetrics) observe(kind queryKind, scheme Scheme, elapsed time.Duration, visits uint64, err error) {
	m.queries[kind].Inc()
	if err != nil {
		m.errors[kind].Inc()
	}
	m.latency[kind].Observe(elapsed.Seconds())
	if kind == kindNWC || kind == kindKNWC {
		m.visits[kind].Observe(float64(visits))
		m.byScheme[schemeIndex(scheme)].Inc()
	}
}

// QueryKindMetrics summarises one operation kind in a MetricsSnapshot.
// Latencies are milliseconds; quantiles are histogram estimates
// (interpolated within log-spaced buckets).
type QueryKindMetrics struct {
	Count         uint64  `json:"count"`
	Errors        uint64  `json:"errors"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	// Node-visit distribution; zero for kinds that do not report visits
	// (nearest, window).
	NodeVisitsMean float64 `json:"node_visits_mean"`
	NodeVisitsP50  float64 `json:"node_visits_p50"`
	NodeVisitsP95  float64 `json:"node_visits_p95"`
	NodeVisitsP99  float64 `json:"node_visits_p99"`
}

// PageCacheMetrics reports buffer-pool effectiveness for a paged index:
// physical transfers, hit/miss/eviction counts, cold reads coalesced by
// single-flight, and the resulting hit rate.
type PageCacheMetrics struct {
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	// HitRate is Hits / (Hits + Misses), zero when no reads happened.
	HitRate float64 `json:"hit_rate"`
}

// MetricsSnapshot is a point-in-time copy of the index's aggregated
// observability state.
type MetricsSnapshot struct {
	// Queries maps operation name ("nwc", "knwc", "nearest", "window")
	// to its aggregates.
	Queries map[string]QueryKindMetrics `json:"queries"`
	// SchemeCounts maps resolved scheme name (as in Scheme.String) to
	// the number of NWC/kNWC queries run under it.
	SchemeCounts map[string]uint64 `json:"scheme_counts"`
	// CumulativeNodeVisits is the index-wide atomic node-visit total
	// (same value as IOStats).
	CumulativeNodeVisits uint64 `json:"cumulative_node_visits"`
	// PageCache reports buffer-pool counters; nil for in-memory indexes,
	// which have no page cache.
	PageCache *PageCacheMetrics `json:"page_cache,omitempty"`
}

// Metrics returns aggregated latency, error and I/O statistics over
// every query run on this index. Safe to call concurrently with
// queries; the snapshot is built from atomic reads.
func (ix *Index) Metrics() MetricsSnapshot {
	m := ix.obs
	out := MetricsSnapshot{
		Queries:              make(map[string]QueryKindMetrics, kindCount),
		SchemeCounts:         make(map[string]uint64),
		CumulativeNodeVisits: ix.tree.Visits(),
	}
	for k := queryKind(0); k < kindCount; k++ {
		lat := m.latency[k].Snapshot()
		vis := m.visits[k].Snapshot()
		km := QueryKindMetrics{
			Count:         m.queries[k].Value(),
			Errors:        m.errors[k].Value(),
			LatencyMeanMs: lat.Mean() * 1e3,
			LatencyP50Ms:  lat.Quantile(0.50) * 1e3,
			LatencyP95Ms:  lat.Quantile(0.95) * 1e3,
			LatencyP99Ms:  lat.Quantile(0.99) * 1e3,
		}
		if k == kindNWC || k == kindKNWC {
			km.NodeVisitsMean = vis.Mean()
			km.NodeVisitsP50 = vis.Quantile(0.50)
			km.NodeVisitsP95 = vis.Quantile(0.95)
			km.NodeVisitsP99 = vis.Quantile(0.99)
		}
		out.Queries[kindNames[k]] = km
	}
	for i := range m.byScheme {
		if n := m.byScheme[i].Value(); n > 0 {
			out.SchemeCounts[NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0).String()] += n
		}
	}
	if ix.pageStats != nil {
		st := ix.pageStats()
		pc := &PageCacheMetrics{
			Reads: st.Reads, Writes: st.Writes,
			Hits: st.CacheHits, Misses: st.CacheMisses,
			Evictions: st.Evictions, Coalesced: st.Coalesced,
		}
		if total := pc.Hits + pc.Misses; total > 0 {
			pc.HitRate = float64(pc.Hits) / float64(total)
		}
		out.PageCache = pc
	}
	return out
}
