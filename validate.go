package nwcq

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidQuery tags every parameter-validation failure in this
// package; test rejections with errors.Is(err, nwcq.ErrInvalidQuery).
var ErrInvalidQuery = errors.New("nwcq: invalid query")

// ValidationError reports exactly which parameter a query was rejected
// for. It unwraps to ErrInvalidQuery.
type ValidationError struct {
	// Param names the offending parameter ("N", "Length", "window", …).
	Param string
	// Reason says what was wrong with it.
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("nwcq: invalid %s: %s", e.Param, e.Reason)
}

func (e *ValidationError) Unwrap() error { return ErrInvalidQuery }

func invalid(param, format string, args ...any) error {
	return &ValidationError{Param: param, Reason: fmt.Sprintf(format, args...)}
}

// finiteParam rejects NaN and ±Inf values for the named parameter.
func finiteParam(param string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return invalid(param, "must be finite, got %g", v)
	}
	return nil
}

// Validate checks the query's parameters: coordinates and extents must
// be finite, Length and Width positive, N at least 1, and Measure one
// of the defined values. Rejections unwrap to ErrInvalidQuery.
func (q Query) Validate() error {
	if err := finiteParam("X", q.X); err != nil {
		return err
	}
	if err := finiteParam("Y", q.Y); err != nil {
		return err
	}
	if err := finiteParam("Length", q.Length); err != nil {
		return err
	}
	if err := finiteParam("Width", q.Width); err != nil {
		return err
	}
	if q.Length <= 0 {
		return invalid("Length", "must be positive, got %g", q.Length)
	}
	if q.Width <= 0 {
		return invalid("Width", "must be positive, got %g", q.Width)
	}
	if q.N < 1 {
		return invalid("N", "must be at least 1, got %d", q.N)
	}
	if q.Measure < MaxDistance || q.Measure > WindowDistance {
		return invalid("Measure", "unknown measure %d", int(q.Measure))
	}
	return nil
}

// Validate checks the kNWC query's parameters: everything Query
// validates, plus K at least 1 and M non-negative.
func (q KQuery) Validate() error {
	if err := q.Query.Validate(); err != nil {
		return err
	}
	if q.K < 1 {
		return invalid("K", "must be at least 1, got %d", q.K)
	}
	if q.M < 0 {
		return invalid("M", "must not be negative, got %d", q.M)
	}
	return nil
}

// validateWindowRect rejects non-finite and inverted window rectangles.
func validateWindowRect(minX, minY, maxX, maxY float64) error {
	for _, b := range [...]struct {
		name string
		v    float64
	}{{"minX", minX}, {"minY", minY}, {"maxX", maxX}, {"maxY", maxY}} {
		if err := finiteParam("window "+b.name, b.v); err != nil {
			return err
		}
	}
	if minX > maxX || minY > maxY {
		return invalid("window", "inverted rectangle [%g,%g]x[%g,%g]", minX, maxX, minY, maxY)
	}
	return nil
}

// validateNearest rejects non-finite coordinates and non-positive k.
func validateNearest(x, y float64, k int) error {
	if err := finiteParam("x", x); err != nil {
		return err
	}
	if err := finiteParam("y", y); err != nil {
		return err
	}
	if k < 1 {
		return invalid("k", "must be at least 1, got %d", k)
	}
	return nil
}
