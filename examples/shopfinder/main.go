// Shopfinder reproduces the paper's motivating scenario (Section 1):
// Bob is in a foreign city and wants the nearest small area holding n
// clothes shops so he can stroll between them, compare prices and
// bargain.
//
//	go run ./examples/shopfinder
//
// The city has several retail districts (clusters of shops of mixed
// categories) plus scattered street shops. We index only the clothes
// shops and compare the four distance measures of Section 2.1 on the
// same NWC query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nwcq"
)

type shop struct {
	nwcq.Point
	category string
}

func main() {
	shops := buildCity(9)
	var clothes []nwcq.Point
	for _, s := range shops {
		if s.category == "clothes" {
			clothes = append(clothes, s.Point)
		}
	}
	fmt.Printf("city: %d shops, %d of them clothes shops\n", len(shops), len(clothes))

	idx, err := nwcq.Build(clothes)
	if err != nil {
		log.Fatal(err)
	}

	// Bob's hotel, and how far he is willing to stroll inside one area:
	// a 250 m × 250 m block. He wants 5 clothes shops to compare.
	const hotelX, hotelY = 4200, 6100
	base := nwcq.Query{X: hotelX, Y: hotelY, Length: 250, Width: 250, N: 5}

	for _, mc := range []struct {
		m     nwcq.Measure
		name  string
		gloss string
	}{
		{nwcq.MaxDistance, "max", "walk that reaches the farthest shop"},
		{nwcq.MinDistance, "min", "walk to the first shop of the cluster"},
		{nwcq.AvgDistance, "avg", "average walk over the five shops"},
		{nwcq.WindowDistance, "window", "walk to the edge of the shopping block"},
	} {
		q := base
		q.Measure = mc.m
		res, err := idx.NWC(q)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("%-6s: no block with 5 clothes shops\n", mc.name)
			continue
		}
		fmt.Printf("%-6s: %.0f m (%s), block [%.0f,%.0f]x[%.0f,%.0f], I/O %d\n",
			mc.name, res.Dist, mc.gloss,
			res.Window.MinX, res.Window.MaxX, res.Window.MinY, res.Window.MaxY,
			res.Stats.NodeVisits)
		if mc.m == nwcq.MaxDistance {
			for _, p := range res.Objects {
				fmt.Printf("        shop #%d at (%.0f, %.0f)\n", p.ID, p.X, p.Y)
			}
		}
	}
}

// buildCity synthesises a city: retail districts (tight clusters of
// shops), a few malls, and background street shops.
func buildCity(seed int64) []shop {
	rng := rand.New(rand.NewSource(seed))
	categories := []string{"clothes", "food", "books", "electronics"}
	var shops []shop
	id := uint64(0)
	add := func(x, y float64, cat string) {
		if x < 0 || x > 10000 || y < 0 || y > 10000 {
			return
		}
		shops = append(shops, shop{Point: nwcq.Point{X: x, Y: y, ID: id}, category: cat})
		id++
	}
	// 12 retail districts.
	for d := 0; d < 12; d++ {
		cx, cy := rng.Float64()*9000+500, rng.Float64()*9000+500
		for i := 0; i < 150+rng.Intn(150); i++ {
			add(cx+rng.NormFloat64()*120, cy+rng.NormFloat64()*120,
				categories[rng.Intn(len(categories))])
		}
	}
	// Street shops everywhere.
	for i := 0; i < 3000; i++ {
		add(rng.Float64()*10000, rng.Float64()*10000, categories[rng.Intn(len(categories))])
	}
	return shops
}
