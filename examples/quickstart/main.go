// Quickstart: index a point set and run one NWC query.
//
//	go run ./examples/quickstart
//
// The program scatters 50,000 points over a 10,000 × 10,000 space,
// builds the full index (R*-tree + density grid + IWP pointers) and asks
// for the nearest 100 × 100 window holding 8 points — Definition 1 of
// the paper with the default maximum-distance measure.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nwcq"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	points := make([]nwcq.Point, 50000)
	for i := range points {
		points[i] = nwcq.Point{
			X:  rng.Float64() * 10000,
			Y:  rng.Float64() * 10000,
			ID: uint64(i),
		}
	}

	idx, err := nwcq.Build(points, nwcq.WithBulkLoad())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points, R*-tree height %d\n", idx.Len(), idx.TreeHeight())

	res, err := idx.NWC(nwcq.Query{
		X: 5000, Y: 5000, // where we are
		Length: 100, Width: 100, // how tightly clustered the answers must be
		N: 8, // how many objects we want
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no 100x100 window holds 8 points")
		return
	}
	fmt.Printf("nearest cluster of 8 within a 100x100 window: farthest object %.1f away\n", res.Dist)
	fmt.Printf("window [%.0f,%.0f]x[%.0f,%.0f]\n",
		res.Window.MinX, res.Window.MaxX, res.Window.MinY, res.Window.MaxY)
	for _, p := range res.Objects {
		fmt.Printf("  #%d at (%.1f, %.1f)\n", p.ID, p.X, p.Y)
	}
	fmt.Printf("cost: %d index-node visits, %d window queries\n",
		res.Stats.NodeVisits, res.Stats.WindowQueries)
}
