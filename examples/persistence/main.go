// Persistence shows the disk-oriented form of the index: R*-tree nodes
// serialised one-per-4096-byte-page into a checksummed page file, built
// once and reopened for querying — the storage layout the paper's
// "I/O cost = nodes visited" metric models.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nwcq"
)

func main() {
	dir, err := os.MkdirTemp("", "nwcq-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "places.nwcq")

	rng := rand.New(rand.NewSource(3))
	points := make([]nwcq.Point, 30000)
	for i := range points {
		points[i] = nwcq.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: uint64(i)}
	}

	// Build on disk.
	built, err := nwcq.BuildPaged(points, path, nwcq.WithBulkLoad())
	if err != nil {
		log.Fatal(err)
	}
	w := built.PageStats().Writes
	if err := built.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d points, %d page writes, %.1f MiB on disk\n",
		filepath.Base(path), len(points), w, float64(info.Size())/(1<<20))

	// Reopen and query.
	idx, err := nwcq.OpenPaged(path)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("reopened: %d points, tree height %d\n", idx.Len(), idx.TreeHeight())

	res, err := idx.NWC(nwcq.Query{X: 2500, Y: 7500, Length: 150, Width: 150, N: 6})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no qualified window")
		return
	}
	fmt.Printf("nearest 6-object cluster: dist %.1f, %d node visits\n",
		res.Dist, res.Stats.NodeVisits)
	ps := idx.PageStats()
	fmt.Printf("physical I/O: %d page reads, %d buffer-pool hits\n", ps.Reads, ps.CacheHits)

	gridB, iwpB := idx.StorageOverheadBytes()
	fmt.Printf("optimisation storage: density grid %.0f KiB, IWP pointers %.0f KiB\n",
		float64(gridB)/1024, float64(iwpB)/1024)
}
