// Hotspots demonstrates kNWC queries (Section 3.4): retrieve k distinct
// nearby shopping districts instead of a single one, controlling with m
// how many shops two districts may share. It also contrasts the I/O
// cost of the kNWC+ and kNWC* optimisation schemes (Figures 13–14).
//
//	go run ./examples/hotspots
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"nwcq"
)

func main() {
	// A clustered city: shops concentrate in hotspots.
	rng := rand.New(rand.NewSource(7))
	var points []nwcq.Point
	id := uint64(0)
	for c := 0; c < 25; c++ {
		cx, cy := rng.Float64()*9000+500, rng.Float64()*9000+500
		for i := 0; i < 200; i++ {
			x, y := cx+rng.NormFloat64()*90, cy+rng.NormFloat64()*90
			if x < 0 || x > 10000 || y < 0 || y > 10000 {
				continue
			}
			points = append(points, nwcq.Point{X: x, Y: y, ID: id})
			id++
		}
	}
	idx, err := nwcq.Build(points, nwcq.WithBulkLoad())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d shops in 25 hotspots\n\n", idx.Len())

	base := nwcq.Query{X: 5000, Y: 5000, Length: 200, Width: 200, N: 10}

	// Effect of m: with m = 0 the districts are fully disjoint; larger
	// m lets nearby overlapping windows count as separate districts.
	fmt.Println("k = 4 districts of 10 shops, varying the overlap budget m:")
	for _, m := range []int{0, 3, 8} {
		res, err := idx.KNWC(nwcq.KQuery{Query: base, K: 4, M: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m=%d:", m)
		for _, g := range res.Groups {
			fmt.Printf("  %.0fm", g.Dist)
		}
		fmt.Printf("   (%d districts)\n", len(res.Groups))
	}

	// Scheme comparison on the same query (cf. Figures 13–14: kNWC*
	// adds DEP and IWP on top of kNWC+'s SRR and DIP).
	fmt.Println("\nI/O cost of the two kNWC schemes (k = 8, m = 2):")
	for _, sc := range []struct {
		name   string
		scheme nwcq.Scheme
	}{
		{"kNWC+", nwcq.SchemeNWCPlus},
		{"kNWC*", nwcq.SchemeNWCStar},
	} {
		q := base
		q.Scheme = sc.scheme
		res, err := idx.KNWCCtx(context.Background(), nwcq.KQuery{Query: q, K: 8, M: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %5d node visits, %d groups found\n", sc.name, res.Stats.NodeVisits, len(res.Groups))
	}
}
