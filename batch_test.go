package nwcq

import (
	"math"
	"math/rand"
	"testing"

	"nwcq/internal/pool"
)

func TestNWCBatchMatchesSequential(t *testing.T) {
	pts := testPoints(3000, 30)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	queries := make([]Query, 40)
	for i := range queries {
		queries[i] = Query{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
			Length: 40 + rng.Float64()*80, Width: 40 + rng.Float64()*80,
			N: 1 + rng.Intn(8),
		}
	}
	batch, err := idx.NWCBatch(queries, BatchOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("%d results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		seq, err := idx.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Found != seq.Found {
			t.Fatalf("query %d: batch found=%v, sequential %v", i, batch[i].Found, seq.Found)
		}
		if seq.Found && math.Abs(batch[i].Dist-seq.Dist) > 1e-9 {
			t.Fatalf("query %d: batch dist %g, sequential %g", i, batch[i].Dist, seq.Dist)
		}
	}
}

func TestNWCBatchSequentialFallback(t *testing.T) {
	pts := testPoints(500, 32)
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{X: 100, Y: 100, Length: 80, Width: 80, N: 2},
		{X: 900, Y: 900, Length: 80, Width: 80, N: 2},
	}
	res, err := idx.NWCBatch(queries, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
}

func TestNWCBatchPropagatesError(t *testing.T) {
	idx, err := Build(testPoints(100, 33))
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{X: 1, Y: 1, Length: 10, Width: 10, N: 1},
		{X: 1, Y: 1, Length: -5, Width: 10, N: 1}, // invalid
	}
	if _, err := idx.NWCBatch(queries, BatchOptions{Parallelism: 4}); err == nil {
		t.Error("invalid query slipped through the batch")
	}
}

func TestKNWCBatch(t *testing.T) {
	pts := testPoints(2000, 34)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	queries := make([]KQuery, 12)
	for i := range queries {
		queries[i] = KQuery{
			Query: Query{
				X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
				Length: 80, Width: 80, N: 3,
			},
			K: 2, M: 1,
		}
	}
	batch, err := idx.KNWCBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		sres, err := idx.KNWC(q)
		if err != nil {
			t.Fatal(err)
		}
		seq := sres.Groups
		if len(batch[i].Groups) != len(seq) {
			t.Fatalf("query %d: batch %d groups, sequential %d", i, len(batch[i].Groups), len(seq))
		}
		for j := range seq {
			if math.Abs(batch[i].Groups[j].Dist-seq[j].Dist) > 1e-9 {
				t.Fatalf("query %d group %d: dist %g vs %g", i, j, batch[i].Groups[j].Dist, seq[j].Dist)
			}
		}
	}
}

func TestBatchAfterMutationRebuildsIWPOnce(t *testing.T) {
	idx, err := Build(testPoints(800, 36))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Point{X: 1, Y: 1, ID: 9999}); err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{X: 500, Y: 500, Length: 60, Width: 60, N: 3, Scheme: SchemeNWCStar}
	}
	// Must not race on the lazy IWP rebuild (run with -race).
	if _, err := idx.NWCBatch(queries, BatchOptions{Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolEachEdgeCases(t *testing.T) {
	// Zero items.
	if err := pool.Each(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	// Exactly once per index.
	seen := make([]int, 100)
	err := pool.Each(100, 7, func(i int) error {
		seen[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}
