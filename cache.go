package nwcq

import (
	"context"

	"nwcq/internal/pool"
	"nwcq/internal/qcache"
	"nwcq/internal/qevent"
	"nwcq/internal/rstar"
	"nwcq/internal/trace"
)

// Parallel execution and result caching knobs. The mechanics live in
// internal/pool (the bounded worker pool every fan-out shares) and
// internal/qcache (the single-flight generation cache); this file wires
// them to the public Index.

// WithParallelism sets the index's default worker-pool width for batch
// execution (NWCBatch, KNWCBatch and their Ctx forms): how many queries
// run concurrently when BatchOptions.Parallelism is zero. n <= 0 keeps
// the default, GOMAXPROCS. A sharded deployment configures the router's
// scatter width separately through shard.Options.Parallelism.
func WithParallelism(n int) BuildOption {
	return func(o *buildOptions) { o.parallelism = n }
}

// WithResultCache gives the index a query result cache of up to entries
// results per query kind (NWC and kNWC are cached independently);
// entries <= 0 disables caching (the default).
//
// Entries are keyed by the full query value plus the view generation
// (ViewGeneration), so a cached result is served only while the exact
// dataset version that produced it is still the published one — any
// Insert or Delete invalidates the whole cache with a single generation
// compare. Hits are zero-copy and allocation-free: the stored Result is
// returned verbatim, including the Stats of the execution that produced
// it (the hit itself visits no nodes, and index metrics record zero
// visits for it). Duplicate concurrent identical queries coalesce onto
// one execution. Explained queries and queries running under a shared
// scatter bound bypass the cache.
func WithResultCache(entries int) BuildOption {
	return func(o *buildOptions) { o.resultCache = entries }
}

// ViewGeneration returns the generation number of the currently
// published view: 1 for the freshly built or opened index, incremented
// by every published mutation. It is monotone, so "has anything changed
// since generation g" is one compare — the result cache's entire
// invalidation protocol.
func (ix *Index) ViewGeneration() uint64 { return ix.cur.Load().gen }

// resultCache pairs the NWC and kNWC caches of one frontend. A nil
// *resultCache means caching is off.
type resultCache struct {
	nwc  *qcache.Cache[Query, Result]
	knwc *qcache.Cache[KQuery, KResult]
}

func newResultCache(entries int) *resultCache {
	if entries <= 0 {
		return nil
	}
	return &resultCache{
		nwc:  qcache.New[Query, Result](entries),
		knwc: qcache.New[KQuery, KResult](entries),
	}
}

func (c *resultCache) stats() qcache.Stats {
	return c.nwc.Stats().Add(c.knwc.Stats())
}

// metrics converts the summed cache counters into the public snapshot
// form; a nil receiver (caching off) reports nil.
func (c *resultCache) metrics() *ResultCacheMetrics {
	if c == nil {
		return nil
	}
	return resultCacheMetrics(c.stats())
}

// resultCacheMetrics converts qcache counters into the public form
// (shared with the sharded router's exposition).
func resultCacheMetrics(st qcache.Stats) *ResultCacheMetrics {
	rc := &ResultCacheMetrics{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Coalesced:     st.Coalesced,
		Invalidations: st.Invalidations,
		Entries:       st.Entries,
	}
	if total := rc.Hits + rc.Misses; total > 0 {
		rc.HitRate = float64(rc.Hits) / float64(total)
	}
	return rc
}

// nwcCached answers q through the result cache when one is configured,
// reporting whether the answer was a hit. Queries carrying a shared
// scatter bound bypass the cache entirely: a bounded execution may
// legitimately elide groups at or beyond the global bound, so its
// result must never be stored for (or served to) an unbounded caller.
func (ix *Index) nwcCached(ctx context.Context, q Query) (Result, bool, error) {
	ev := qevent.From(ctx)
	c := ix.cache
	if c == nil || rstar.BoundFromContext(ctx) != nil {
		if ev != nil {
			if c == nil {
				ev.Cache = qevent.CacheOff
			} else {
				ev.Cache = qevent.CacheBypass
			}
		}
		res, err := ix.nwcEvent(ctx, q, ev)
		return res, false, err
	}
	gen := ix.ViewGeneration()
	if res, ok := c.nwc.Get(gen, q); ok {
		if ev != nil {
			ev.Cache = qevent.CacheHit
		}
		return res, true, nil
	}
	if ev != nil {
		ev.Cache = qevent.CacheMiss
	}
	res, err := c.nwc.Do(ctx, gen, q, func() (Result, error) {
		return ix.nwcEvent(ctx, q, ev)
	})
	return res, false, err
}

// knwcCached is nwcCached for kNWC queries.
func (ix *Index) knwcCached(ctx context.Context, q KQuery) (KResult, bool, error) {
	ev := qevent.From(ctx)
	c := ix.cache
	if c == nil || rstar.BoundFromContext(ctx) != nil {
		if ev != nil {
			if c == nil {
				ev.Cache = qevent.CacheOff
			} else {
				ev.Cache = qevent.CacheBypass
			}
		}
		res, err := ix.knwcEvent(ctx, q, ev)
		return res, false, err
	}
	gen := ix.ViewGeneration()
	if res, ok := c.knwc.Get(gen, q); ok {
		if ev != nil {
			ev.Cache = qevent.CacheHit
		}
		return res, true, nil
	}
	if ev != nil {
		ev.Cache = qevent.CacheMiss
	}
	res, err := c.knwc.Do(ctx, gen, q, func() (KResult, error) {
		return ix.knwcEvent(ctx, q, ev)
	})
	return res, false, err
}

// nwcEvent executes the query, attaching a trace recorder when a wide
// event rides the context so the event gets the engine's phase split
// for free. Tracing never changes results, so a traced execution is
// safe to store in the cache. A coalesced waiter shares the leader's
// result but not its recorder; its event simply carries no phases.
func (ix *Index) nwcEvent(ctx context.Context, q Query, ev *qevent.Event) (Result, error) {
	if ev == nil {
		return ix.nwc(ctx, q, nil)
	}
	rec := trace.New()
	res, err := ix.nwc(ctx, q, rec)
	ev.Phases = eventPhases(rec)
	return res, err
}

// knwcEvent is nwcEvent for kNWC queries.
func (ix *Index) knwcEvent(ctx context.Context, q KQuery, ev *qevent.Event) (KResult, error) {
	if ev == nil {
		return ix.knwc(ctx, q, nil)
	}
	rec := trace.New()
	res, err := ix.knwc(ctx, q, rec)
	ev.Phases = eventPhases(rec)
	return res, err
}

// eventPhases copies a finished recorder's phase breakdown into the
// wide-event form.
func eventPhases(rec *trace.Recorder) []qevent.Phase {
	s := rec.Snapshot()
	out := make([]qevent.Phase, 0, len(s.Phases))
	for _, p := range s.Phases {
		out = append(out, qevent.Phase{
			Name:       p.Phase.String(),
			DurationNs: int64(p.Duration),
			Entered:    p.Entered,
			NodeVisits: p.Visits,
		})
	}
	return out
}

// batchWorkers resolves the worker count for one batch call: the
// per-call option wins, then the index's WithParallelism default, then
// GOMAXPROCS.
func (ix *Index) batchWorkers(opt BatchOptions) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return pool.Workers(ix.options.parallelism)
}
