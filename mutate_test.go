package nwcq

import (
	"math"
	"math/rand"
	"testing"
)

func TestInsertDeleteRoundTrip(t *testing.T) {
	pts := testPoints(1500, 20)
	idx, err := Build(pts[:1000])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[1000:] {
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 1500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	// A freshly built index over the same points must agree exactly.
	fresh, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 80, Width: 80, N: 6}
	a, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || math.Abs(a.Dist-b.Dist) > 1e-9 {
		t.Fatalf("mutated index dist %g, fresh %g", a.Dist, b.Dist)
	}

	// Delete a third of the points and compare again.
	rng := rand.New(rand.NewSource(21))
	perm := rng.Perm(1500)
	removed := map[int]bool{}
	for _, i := range perm[:500] {
		ok, err := idx.Delete(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%v) found nothing", pts[i])
		}
		removed[i] = true
	}
	var rest []Point
	for i, p := range pts {
		if !removed[i] {
			rest = append(rest, p)
		}
	}
	fresh2, err := Build(rest)
	if err != nil {
		t.Fatal(err)
	}
	a, err = idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err = fresh2.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || (a.Found && math.Abs(a.Dist-b.Dist) > 1e-9) {
		t.Fatalf("after deletes: mutated dist %v/%g, fresh %v/%g", a.Found, a.Dist, b.Found, b.Dist)
	}

	// Deleting something absent reports false without error.
	ok, err := idx.Delete(Point{X: -1, Y: -1, ID: 424242})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("absent delete reported true")
	}
}

func TestInsertOutsideSpaceRebuildsGrid(t *testing.T) {
	pts := testPoints(500, 22) // coordinates in [0, 1000]
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Way outside the original bounding box.
	far := Point{X: 5000, Y: 5000, ID: 999999}
	if err := idx.Insert(far); err != nil {
		t.Fatal(err)
	}
	// A DEP-using query near the new point must see it.
	res, err := idx.NWC(Query{X: 4990, Y: 4990, Length: 50, Width: 50, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Objects[0].ID != far.ID {
		t.Fatalf("far point not found after grid rebuild: %+v", res)
	}
}

func TestMutationInvalidatesIWP(t *testing.T) {
	pts := testPoints(800, 23)
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 80, Width: 80, N: 4, Scheme: SchemeIWP}
	if _, err := idx.NWC(q); err != nil {
		t.Fatal(err)
	}
	// Mutate heavily, enough to reshape the tree, then query with IWP
	// again: results must match a plain-scheme query on the same data.
	extra := testPoints(800, 24)
	for i, p := range extra {
		p.ID += 10000
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := idx.Delete(pts[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	withIWP, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	qPlain := q
	qPlain.Scheme = SchemeNWC
	base, err := idx.NWC(qPlain)
	if err != nil {
		t.Fatal(err)
	}
	if withIWP.Found != base.Found || math.Abs(withIWP.Dist-base.Dist) > 1e-9 {
		t.Fatalf("stale-IWP rebuild broken: IWP %v/%g, plain %v/%g",
			withIWP.Found, withIWP.Dist, base.Found, base.Dist)
	}
}

func TestInsertValidation(t *testing.T) {
	idx, err := Build(testPoints(10, 25))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Point{X: math.NaN(), Y: 0}); err == nil {
		t.Error("NaN insert accepted")
	}
	if err := idx.Insert(Point{X: math.Inf(1), Y: 0}); err == nil {
		t.Error("Inf insert accepted")
	}
}
