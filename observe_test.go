package nwcq

import (
	"context"
	"sync"
	"testing"
	"time"

	"nwcq/internal/pager"
)

func buildTestIndex(t *testing.T, n int) *Index {
	t.Helper()
	ix, err := Build(testPoints(n, 1), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestSchemeIndexRoundTrip pins the byScheme indexing: every one of the
// 16 flag combinations must map to its own slot and back.
func TestSchemeIndexRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		s := NewScheme(i&1 != 0, i&2 != 0, i&4 != 0, i&8 != 0)
		if got := schemeIndex(s); got != i {
			t.Errorf("schemeIndex(NewScheme(%04b)) = %d, want %d", i, got, i)
		}
	}
	// The zero value resolves to all optimisations on.
	if got := schemeIndex(SchemeDefault); got != 15 {
		t.Errorf("schemeIndex(SchemeDefault) = %d, want 15", got)
	}
}

// TestHitRateZeroReads pins the divide-by-zero edge: a paged index that
// has served no reads must report HitRate 0, not NaN.
func TestHitRateZeroReads(t *testing.T) {
	ix := buildTestIndex(t, 100)
	ix.pageStats = func() pager.Stats { return pager.Stats{} }
	snap := ix.Metrics()
	if snap.PageCache == nil {
		t.Fatal("no page cache section")
	}
	if snap.PageCache.HitRate != 0 {
		t.Errorf("HitRate = %g, want 0", snap.PageCache.HitRate)
	}
}

func TestMetricsSnapshotTimestamps(t *testing.T) {
	ix := buildTestIndex(t, 100)
	snap := ix.Metrics()
	if snap.CollectedAt.IsZero() {
		t.Error("CollectedAt is zero")
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("UptimeSeconds = %g", snap.UptimeSeconds)
	}
	time.Sleep(2 * time.Millisecond)
	snap2 := ix.Metrics()
	if snap2.UptimeSeconds <= snap.UptimeSeconds {
		t.Errorf("uptime did not advance: %g then %g", snap.UptimeSeconds, snap2.UptimeSeconds)
	}
	if !snap2.CollectedAt.After(snap.CollectedAt) {
		t.Error("CollectedAt did not advance")
	}
}

// TestMetricsConcurrentWithQueries races Metrics and WritePrometheus
// snapshots against live queries; run with -race it doubles as the
// data-race check for the whole observability path.
func TestMetricsConcurrentWithQueries(t *testing.T) {
	ix := buildTestIndex(t, 2000)
	ix.SetSlowQueryThreshold(time.Nanosecond)
	const (
		workers = 4
		iters   = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := Query{
					X: float64((g*131 + i*17) % 1000), Y: float64((g*71 + i*41) % 1000),
					Length: 60, Width: 60, N: 3,
				}
				if i%2 == 0 {
					if _, err := ix.NWC(q); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, _, err := ix.ExplainNWC(context.Background(), q); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			snap := ix.Metrics()
			if snap.Queries["nwc"].Errors != 0 {
				t.Errorf("unexpected errors: %d", snap.Queries["nwc"].Errors)
				return
			}
			if err := ix.WritePrometheus(discard{}); err != nil {
				t.Error(err)
				return
			}
			ix.SlowQueries()
		}
	}()
	wg.Wait()

	snap := ix.Metrics()
	if got := snap.Queries["nwc"].Count; got != workers*iters {
		t.Errorf("nwc count = %d, want %d", got, workers*iters)
	}
	if snap.SchemeCounts["NWC*"] != workers*iters {
		t.Errorf("scheme counts = %v", snap.SchemeCounts)
	}
	if len(ix.SlowQueries()) == 0 {
		t.Error("no slow queries recorded under 1ns threshold")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
