package nwcq

import (
	"math"
	"path/filepath"
	"testing"
)

func TestPagedBuildQueryReopen(t *testing.T) {
	pts := testPoints(3000, 10)
	path := filepath.Join(t.TempDir(), "index.nwcq")

	px, err := BuildPaged(pts, path, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 400, Y: 600, Length: 70, Width: 70, N: 5}
	want, err := px.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Found {
		t.Fatal("paged query found nothing")
	}
	if st := px.PageStats(); st.Writes == 0 {
		t.Error("no pages written")
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPaged(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pts) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(pts))
	}
	got, err := re.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("reopened dist %g, want %g", got.Dist, want.Dist)
	}
	// The paged index agrees with the in-memory one exactly, including
	// the paper's I/O metric.
	mem, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(memRes.Dist-got.Dist) > 1e-9 {
		t.Fatalf("paged dist %g, mem dist %g", got.Dist, memRes.Dist)
	}
	if memRes.Stats.NodeVisits != got.Stats.NodeVisits {
		t.Fatalf("paged visits %d, mem visits %d", got.Stats.NodeVisits, memRes.Stats.NodeVisits)
	}
}

func TestPagedInsertionBuild(t *testing.T) {
	pts := testPoints(800, 11)
	path := filepath.Join(t.TempDir(), "ins.nwcq")
	px, err := BuildPaged(pts, path) // one-by-one R* insertion
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	res, err := px.NWC(Query{X: 500, Y: 500, Length: 120, Width: 120, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("nothing found")
	}
	groups, _, err := px.KNWC(KQuery{Query: Query{X: 500, Y: 500, Length: 120, Width: 120, N: 4}, K: 2, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Error("paged kNWC empty")
	}
}

func TestPagedFanoutValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.nwcq")
	if _, err := BuildPaged(nil, path, WithMaxEntries(10000)); err == nil {
		t.Error("oversized fan-out accepted for paged build")
	}
}

func TestOpenPagedMissingFile(t *testing.T) {
	if _, err := OpenPaged(filepath.Join(t.TempDir(), "absent.nwcq")); err == nil {
		t.Error("opening a missing file succeeded")
	}
}
