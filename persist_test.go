package nwcq

import (
	"math"
	"path/filepath"
	"testing"
)

func TestPagedBuildQueryReopen(t *testing.T) {
	pts := testPoints(3000, 10)
	path := filepath.Join(t.TempDir(), "index.nwcq")

	px, err := BuildPaged(pts, path, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 400, Y: 600, Length: 70, Width: 70, N: 5}
	want, err := px.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Found {
		t.Fatal("paged query found nothing")
	}
	if st := px.PageStats(); st.Writes == 0 {
		t.Error("no pages written")
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPaged(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pts) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(pts))
	}
	got, err := re.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("reopened dist %g, want %g", got.Dist, want.Dist)
	}
	// The paged index agrees with the in-memory one exactly, including
	// the paper's I/O metric.
	mem, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(memRes.Dist-got.Dist) > 1e-9 {
		t.Fatalf("paged dist %g, mem dist %g", got.Dist, memRes.Dist)
	}
	if memRes.Stats.NodeVisits != got.Stats.NodeVisits {
		t.Fatalf("paged visits %d, mem visits %d", got.Stats.NodeVisits, memRes.Stats.NodeVisits)
	}
}

func TestPagedInsertionBuild(t *testing.T) {
	pts := testPoints(800, 11)
	path := filepath.Join(t.TempDir(), "ins.nwcq")
	px, err := BuildPaged(pts, path) // one-by-one R* insertion
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	res, err := px.NWC(Query{X: 500, Y: 500, Length: 120, Width: 120, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("nothing found")
	}
	kres, err := px.KNWC(KQuery{Query: Query{X: 500, Y: 500, Length: 120, Width: 120, N: 4}, K: 2, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(kres.Groups) == 0 {
		t.Error("paged kNWC empty")
	}
}

func TestPagedFanoutValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.nwcq")
	if _, err := BuildPaged(nil, path, WithMaxEntries(10000)); err == nil {
		t.Error("oversized fan-out accepted for paged build")
	}
}

func TestOpenPagedMissingFile(t *testing.T) {
	if _, err := OpenPaged(filepath.Join(t.TempDir(), "absent.nwcq")); err == nil {
		t.Error("opening a missing file succeeded")
	}
}

// TestCacheSizeOptions exercises WithPageCacheSize / WithNodeCacheSize:
// a cache-disabled paged index answers identically (results and node
// visits) to the default cached one, just with every read physical.
func TestCacheSizeOptions(t *testing.T) {
	pts := testPoints(2000, 12)
	q := Query{X: 400, Y: 600, Length: 70, Width: 70, N: 5}

	dir := t.TempDir()
	cached, err := BuildPaged(pts, filepath.Join(dir, "cached.nwcq"), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	cold, err := BuildPaged(pts, filepath.Join(dir, "cold.nwcq"),
		WithBulkLoad(), WithPageCacheSize(0), WithNodeCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()

	a, err := cached.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cold.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || math.Abs(a.Dist-b.Dist) > 1e-9 {
		t.Fatalf("cached dist %g found=%v, cold dist %g found=%v", a.Dist, a.Found, b.Dist, b.Found)
	}
	if a.Stats.NodeVisits != b.Stats.NodeVisits {
		t.Fatalf("cached visits %d, cold visits %d — caching changed the I/O metric", a.Stats.NodeVisits, b.Stats.NodeVisits)
	}

	// Cold store: every read is a physical page access.
	st := cold.PageStats()
	if st.CacheHits != 0 {
		t.Errorf("cache-disabled index recorded %d hits", st.CacheHits)
	}
	if st.Reads == 0 {
		t.Error("cache-disabled index recorded no physical reads")
	}
	// Cached store: repeated queries are served from the pool.
	if _, err := cached.NWC(q); err != nil {
		t.Fatal(err)
	}
	if st := cached.PageStats(); st.CacheHits == 0 {
		t.Error("cached index recorded no hits after repeated query")
	}
}

// TestPagedMetricsExposePageCache checks the buffer-pool counters reach
// Index.Metrics (and therefore the server's GET /metrics, which serialises
// the same snapshot): present on paged indexes, absent on in-memory ones.
func TestPagedMetricsExposePageCache(t *testing.T) {
	pts := testPoints(1500, 13)
	px, err := BuildPaged(pts, filepath.Join(t.TempDir(), "m.nwcq"), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	q := Query{X: 400, Y: 600, Length: 70, Width: 70, N: 5}
	for i := 0; i < 3; i++ {
		if _, err := px.NWC(q); err != nil {
			t.Fatal(err)
		}
	}
	snap := px.Metrics()
	if snap.PageCache == nil {
		t.Fatal("paged index metrics missing page_cache")
	}
	if snap.PageCache.Writes == 0 {
		t.Error("page_cache.writes = 0 after build")
	}
	if snap.PageCache.Hits == 0 {
		t.Error("page_cache.hits = 0 after repeated queries")
	}
	if hr := snap.PageCache.HitRate; hr <= 0 || hr > 1 {
		t.Errorf("hit_rate = %g, want (0, 1]", hr)
	}

	mem, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Metrics().PageCache != nil {
		t.Error("in-memory index metrics carry page_cache")
	}
}

// TestPagedMutationPersists exercises the view-publication write path
// on the paged store end to end: online Insert/Delete against a
// PagedIndex must answer like a freshly built index over the same
// points, and the mutated tree must survive Close + OpenPaged (shadow
// pages are published and the old ones recycled through the free list).
func TestPagedMutationPersists(t *testing.T) {
	pts := testPoints(600, 41)
	path := filepath.Join(t.TempDir(), "mutated.nwcq")
	px, err := BuildPaged(pts, path, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	extra := testPoints(100, 42)
	want := append([]Point(nil), pts...)
	for _, p := range extra {
		p.ID += 50_000
		if err := px.Insert(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	for i := 0; i < 80; i += 2 {
		found, err := px.Delete(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("Delete(%v) found nothing", pts[i])
		}
	}
	kept := want[:0]
	for _, p := range want {
		if p.ID < 80 && p.ID%2 == 0 {
			continue
		}
		kept = append(kept, p)
	}
	want = kept
	if px.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", px.Len(), len(want))
	}
	fresh, err := Build(want)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 90, Width: 90, N: 5}
	a, err := px.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || math.Abs(a.Dist-b.Dist) > 1e-9 {
		t.Fatalf("mutated paged index dist %v/%g, fresh %v/%g", a.Found, a.Dist, b.Found, b.Dist)
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPaged(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(want))
	}
	c, err := re.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Found != b.Found || math.Abs(c.Dist-b.Dist) > 1e-9 {
		t.Fatalf("reopened dist %v/%g, fresh %v/%g", c.Found, c.Dist, b.Found, b.Dist)
	}
}
