package nwcq

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"nwcq/internal/pager"
)

func walTestPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64((i * 73) % 500), Y: float64((i * 149) % 500), ID: uint64(i + 1)}
	}
	return pts
}

// activeSegment returns the path of the WAL's highest-named segment.
func activeSegment(t *testing.T, indexPath string) string {
	t.Helper()
	entries, err := os.ReadDir(walDirFor(indexPath))
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments found")
	}
	sort.Strings(segs)
	return filepath.Join(walDirFor(indexPath), segs[len(segs)-1])
}

// TestOpenPagedCorruptedPage: a flipped byte in any tree page must
// surface as a checksum error from OpenPaged, not silent corruption.
func TestOpenPagedCorruptedPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	px, err := BuildPaged(walTestPoints(200), path, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in every page after the header: whichever
	// pages the open path reads, the damage is seen.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(pager.PageSize) + 100; off < st.Size(); off += pager.PageSize {
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	if _, err := OpenPaged(path); err == nil {
		t.Fatal("OpenPaged succeeded on a corrupted file")
	} else if !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("OpenPaged error %v does not wrap pager.ErrChecksum", err)
	}
}

// TestOpenPagedTornWALTail: a crash can tear the last log frame
// mid-write; recovery must keep every record before it and drop the
// torn one, without error.
func TestOpenPagedTornWALTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	px, err := BuildPaged(walTestPoints(50), path)
	if err != nil {
		t.Fatal(err)
	}
	keep := Point{X: 101, Y: 102, ID: 9001}
	torn := Point{X: 201, Y: 202, ID: 9002}
	if err := px.Insert(keep); err != nil {
		t.Fatal(err)
	}
	if err := px.Insert(torn); err != nil {
		t.Fatal(err)
	}
	// Abandon px (simulated crash; Close would checkpoint), then tear
	// the active segment two bytes into its final frame.
	seg := activeSegment(t, path)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenPaged(path)
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer rec.Close()
	if got := rec.Len(); got != 51 {
		t.Fatalf("recovered %d points, want 51 (base 50 + the intact insert)", got)
	}
	hasPoint := func(p Point) bool {
		pts, err := rec.Window(p.X-0.5, p.Y-0.5, p.X+0.5, p.Y+0.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range pts {
			if q == p {
				return true
			}
		}
		return false
	}
	if !hasPoint(keep) {
		t.Fatal("intact record lost in recovery")
	}
	if hasPoint(torn) {
		t.Fatal("torn record resurrected by recovery")
	}
}

// TestPagedCloseIdempotent: double Close is a supported pattern
// (defer px.Close() plus an explicit error-checked Close).
func TestPagedCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	px, err := BuildPaged(walTestPoints(20), path)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := px.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPagedWithoutWAL: opting out must create no log directory, keep
// mutations working, and persist them through Close (only).
func TestPagedWithoutWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	px, err := BuildPaged(walTestPoints(30), path, WithoutWAL())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walDirFor(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("WithoutWAL still created %s (stat err %v)", walDirFor(path), err)
	}
	if m := px.Metrics(); m.WAL != nil {
		t.Fatal("Metrics().WAL set for a WithoutWAL index")
	}
	p := Point{X: 77, Y: 78, ID: 7001}
	if err := px.Insert(p); err != nil {
		t.Fatal(err)
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPaged(path, WithoutWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 31 {
		t.Fatalf("reopened index has %d points, want 31", got)
	}
}

// TestPagedWALSyncPolicies: interval and never relax when records hit
// stable storage, but a clean Close still makes everything durable.
func TestPagedWALSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  BuildOption
	}{
		{"interval", WithWALSyncInterval(5 * time.Millisecond)},
		{"never", WithWALSync(SyncNever)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "idx.nwc")
			px, err := BuildPaged(walTestPoints(30), path, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := px.Insert(Point{X: float64(600 + i), Y: 600, ID: uint64(8000 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			if m := px.Metrics(); m.WAL == nil || m.WAL.SyncPolicy != tc.name {
				t.Fatalf("Metrics().WAL = %+v, want sync policy %q", m.WAL, tc.name)
			}
			if err := px.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenPaged(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Len(); got != 40 {
				t.Fatalf("reopened index has %d points, want 40", got)
			}
		})
	}
}

// TestPagedWALMetricsExposed: the WAL's activity must be visible in
// both the JSON metrics snapshot and the Prometheus rendering, and the
// pager's fsync count must appear beside the page-cache counters.
func TestPagedWALMetricsExposed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.nwc")
	px, err := BuildPaged(walTestPoints(30), path)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	for i := 0; i < 5; i++ {
		if err := px.Insert(Point{X: float64(10 * i), Y: 42, ID: uint64(6000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	m := px.Metrics()
	if m.WAL == nil {
		t.Fatal("Metrics().WAL is nil for a WAL-backed index")
	}
	if m.WAL.Appends < 5 || m.WAL.Fsyncs == 0 {
		t.Fatalf("WAL metrics %+v do not reflect 5 synced inserts", m.WAL)
	}
	if m.WAL.DurableLSN != m.WAL.AppendedLSN {
		t.Fatalf("SyncAlways at rest: durable %d != appended %d", m.WAL.DurableLSN, m.WAL.AppendedLSN)
	}
	if m.PageCache == nil {
		t.Fatal("Metrics().PageCache is nil for a paged index")
	}
	if st := px.PageStats(); st.Syncs == 0 {
		t.Fatal("PageStats().Syncs is zero after build checkpoint")
	} else if m.PageCache.Syncs != st.Syncs {
		t.Fatalf("snapshot Syncs %d != PageStats Syncs %d", m.PageCache.Syncs, st.Syncs)
	}
	var sb strings.Builder
	if err := px.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nwcq_wal_appends_total", "nwcq_wal_fsyncs_total", "nwcq_page_syncs_total", "nwcq_wal_durable_lsn"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Prometheus output missing %s", want)
		}
	}
}
