package nwcq

import (
	"sync"
	"sync/atomic"

	"nwcq/internal/core"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/rstar"
)

// Atomically published index views (RCU-style).
//
// All query-side state — the frozen R*-tree snapshot, the density grid,
// the IWP pointers and the engine wired over them — is bundled into an
// immutable view behind Index.cur. A query pins exactly one view at
// entry (one atomic load plus one compare-and-swap, no lock, no
// allocation) and runs against it for its whole lifetime, so it always
// observes a single consistent version of the dataset no matter how
// many mutations land meanwhile. Writers (Insert, Delete) serialise on
// Index.wmu, build the next version off the query path with
// copy-on-write structures (rstar.WriteBatch, grid.WithAdd/WithRemove),
// and publish it with a single pointer swap.
//
// Superseded views join a FIFO retire queue. Each carries the node IDs
// its replacement retired; those IDs stay readable until every query
// pinning this or any older view finishes, at which point the writer
// tombstones the queue head (refs 0 → -1) and returns the IDs to the
// store's allocator. Queue order guarantees an ID is never recycled
// while a reader of any version that could reference it is alive.
type view struct {
	tree *rstar.Tree   // frozen snapshot; safe for lock-free reads
	grid *grid.Density // immutable (reached only via COW derivation)
	eng  *core.Engine  // SRR/DIP/DEP engine over tree+grid; no IWP

	// gen is this view's publication generation (Index.vgen at publish
	// time, starting at 1 for the build/open view). It is set before the
	// view is published and read lock-free by the result cache, whose
	// entire invalidation protocol is comparing this number.
	gen uint64

	// lsn is the WAL record this view's state corresponds to: every
	// record at or below lsn is reflected (applied or aborted), nothing
	// above it is. Zero on non-WAL indexes. Replication snapshots and
	// the committed-LSN watermark read it off the published view.
	lsn uint64

	// IWP pointers are built per view, on demand, exactly once: the
	// first IWP-scheme query on a fresh view populates iwpState under
	// iwpMu (single-flight); every later query reads it with one atomic
	// load. The initial view from Build/OpenPaged has it pre-populated,
	// so steady-state reads never touch the mutex.
	iwpMu    sync.Mutex
	iwpState atomic.Pointer[iwpState]
	// iwpBytesHint carries the superseded view's IWP footprint so
	// StorageOverheadBytes stays meaningful before this view's own
	// pointers are (lazily) built.
	iwpBytesHint int

	// refs counts queries currently pinning this view. The writer
	// tombstones a superseded view by swapping 0 → -1, after which no
	// new query can pin it and its retired node IDs can be released.
	refs atomic.Int64
	// retired holds the node IDs superseded by the commit that replaced
	// this view (set by the writer when the view is enqueued for
	// retirement; readers never touch it).
	retired []rstar.NodeID
}

// iwpState is the immutable result of one IWP build for a view: the
// pointer sets and the full engine wired over them, or the error the
// build produced (cached so every query fails identically rather than
// re-running a failing build).
type iwpState struct {
	idx *iwp.Index
	eng *core.Engine
	err error
}

// newView assembles a view over a frozen tree and an immutable grid,
// building the non-IWP engine eagerly. The IWP side starts empty unless
// the caller pre-populates iwpState (Build does; mutations do not).
func newView(tree *rstar.Tree, den *grid.Density) (*view, error) {
	eng, err := core.NewEngine(tree, den, nil)
	if err != nil {
		return nil, err
	}
	return &view{tree: tree, grid: den, eng: eng}, nil
}

// setIWP pre-populates the view's IWP state (build path, where the
// pointers are constructed before the view is published).
func (v *view) setIWP(idx *iwp.Index) error {
	eng, err := core.NewEngine(v.tree, v.grid, idx)
	if err != nil {
		return err
	}
	v.iwpState.Store(&iwpState{idx: idx, eng: eng})
	return nil
}

// iwpBytes reports the view's IWP storage footprint: the built
// pointers' if present, the predecessor's otherwise.
func (v *view) iwpBytes() int {
	if st := v.iwpState.Load(); st != nil && st.idx != nil {
		return st.idx.StorageBytes()
	}
	return v.iwpBytesHint
}

// acquire pins the current view for one query. The loop handles the
// one race that exists: between loading ix.cur and incrementing refs,
// the writer may have superseded and tombstoned the view (refs -1), in
// which case the load is retried — the second iteration sees the new
// current view. Queries on a superseded-but-not-tombstoned view are
// fine: its refs held it out of reclamation.
func (ix *Index) acquire() *view {
	for {
		v := ix.cur.Load()
		r := v.refs.Load()
		if r < 0 {
			continue // tombstoned just after we loaded it; reload
		}
		if v.refs.CompareAndSwap(r, r+1) {
			return v
		}
	}
}

// release unpins a view acquired by acquire.
func (v *view) release() { v.refs.Add(-1) }

// engineFor returns the engine a query under scheme must run on:
// the view's base engine, or — for IWP schemes — the IWP engine,
// building the pointers for this view on first use (single-flight; the
// race that previously let two queries install half-swapped engines is
// structurally gone because the state is immutable once stored).
func (ix *Index) engineFor(v *view, scheme core.Scheme) (*core.Engine, error) {
	if !scheme.IWP {
		return v.eng, nil
	}
	if st := v.iwpState.Load(); st != nil {
		return st.eng, st.err
	}
	v.iwpMu.Lock()
	defer v.iwpMu.Unlock()
	if st := v.iwpState.Load(); st != nil {
		return st.eng, st.err
	}
	// The build walks the snapshot through the cumulative visit counter:
	// rebuild cost is real service I/O and shows up in IOStats, but it
	// never resets the counter (the pre-view code zeroed it here,
	// clobbering service-lifetime stats) and never pollutes any query's
	// private Stats.
	st := &iwpState{}
	st.idx, st.err = iwp.Build(v.tree)
	if st.err == nil {
		st.eng, st.err = core.NewEngine(v.tree, v.grid, st.idx)
	}
	v.iwpState.Store(st)
	ix.obs.iwpRebuilds.Inc()
	return st.eng, st.err
}

// publishLocked installs the next version: swap in the new view, queue
// the old one for retirement carrying the node IDs its replacement
// obsoleted, and opportunistically drain the queue. lsn is the WAL
// record the new view reflects (0 on non-WAL indexes). Callers hold
// ix.wmu. On error nothing has been published.
func (ix *Index) publishLocked(tree *rstar.Tree, den *grid.Density, retired []rstar.NodeID, lsn uint64) error {
	nv, err := newView(tree, den)
	if err != nil {
		return err
	}
	old := ix.cur.Load()
	nv.iwpBytesHint = old.iwpBytes()
	nv.lsn = lsn
	// Stamp the generation before the swap: the instant nv is visible,
	// ViewGeneration reports a number strictly above every entry cached
	// against the superseded view, so a stale hit is impossible.
	nv.gen = ix.vgen.Add(1)
	old.retired = retired
	ix.retireq = append(ix.retireq, old)
	ix.cur.Store(nv)
	ix.drainRetiredLocked()
	return nil
}

// drainRetiredLocked releases the retire queue's prefix of quiesced
// views. The queue is FIFO and a view's retired IDs may be referenced
// by any version up to it, so the head is the only candidate: once its
// refs CAS 0 → -1 succeeds (tombstone — no later acquire can resurrect
// it), every version that could reach its retired IDs has drained and
// they return to the allocator. A pinned head stops the drain; the next
// publish retries. With WithViewRetention the newest n retired views
// are deliberately kept (never tombstoned) so temporal as-of reads can
// still pin them. Callers hold ix.wmu.
func (ix *Index) drainRetiredLocked() {
	cur := ix.cur.Load()
	for len(ix.retireq) > ix.options.viewRetention {
		h := ix.retireq[0]
		if !h.refs.CompareAndSwap(0, -1) {
			return
		}
		if ix.dur != nil {
			// WAL mode: the durable checkpoint may still reference these
			// pages. Park them; the next checkpoint releases them once the
			// header that stops referencing them is on disk (durable.go).
			ix.dur.pending = append(ix.dur.pending, h.retired...)
		} else {
			_ = cur.tree.ReleaseNodes(h.retired)
		}
		ix.retireq[0] = nil
		ix.retireq = ix.retireq[1:]
	}
}
