// Command nwcload drives an nwcserve instance with a configurable query
// mix and scores the run against service-level objectives.
//
//	nwcserve -data ca.csv -shards 4 &
//	nwcload -url http://localhost:8080 -duration 30s -warmup 5s \
//	    -mode open -rate 2000 -knwc-share 0.2 -mutate-share 0.05 \
//	    -slo 'nwc_p99<5ms@1krps,all_p999<50ms' -out BENCH_load.json
//	nwcload -url http://localhost:8080 -duration 30s -mutate-share 0.5 \
//	    -subs 8 -slo 'sub_p99<50ms'              # continuous-query delivery
//
// Closed-loop mode (-mode closed, the default) runs -workers requests
// in lock-step and measures service latency. Open-loop mode (-mode
// open) targets -rate arrivals per second — fixed spacing or a Poisson
// process (-arrival) — and measures each request from its intended
// arrival time, so a stalled server inflates the recorded tail instead
// of thinning the sample stream (the coordinated-omission correction).
//
// The run waits for the server's /readyz before starting (so WAL replay
// never counts against the SLO), warms up unrecorded, then measures.
// The report — throughput and p50/p95/p99/p999 per op class plus one
// verdict per objective — is printed and optionally archived as JSON
// with -out.
//
// Exit status: 0 when every SLO passed (or none were given), 1 when an
// objective failed, 2 on configuration or run errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"nwcq/internal/loadgen"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "server under test")
		mode    = flag.String("mode", "closed", "arrival model: closed (workers in lock-step) or open (fixed-rate arrivals)")
		rate    = flag.Float64("rate", 1000, "open loop: target arrivals per second")
		arrival = flag.String("arrival", "poisson", "open loop: inter-arrival gaps, poisson or fixed")
		workers = flag.Int("workers", 8, "closed loop: concurrent workers; open loop: max requests in flight")

		duration = flag.Duration("duration", 30*time.Second, "measured window")
		warmup   = flag.Duration("warmup", 5*time.Second, "unrecorded warmup before measuring")
		ready    = flag.Duration("ready-timeout", 30*time.Second, "how long to wait for /readyz (0 skips the gate)")

		window      = flag.Float64("window", 200, "query window side length")
		n           = flag.Int("n", 8, "objects per window (query parameter n)")
		k           = flag.Int("k", 3, "kNWC result groups (query parameter k)")
		m           = flag.Int("m", 1, "kNWC non-overlap parameter m")
		schemes     = flag.String("schemes", "", "comma-separated scheme rotation (e.g. 'NWC*,SRR'); empty = server default")
		knwcShare   = flag.Float64("knwc-share", 0.2, "fraction of ops that are kNWC queries")
		batchShare  = flag.Float64("batch-share", 0, "fraction of ops that are POST /batch/nwc requests")
		batchSize   = flag.Int("batch-size", 16, "queries per batch op")
		mutateShare = flag.Float64("mutate-share", 0, "fraction of ops that are insert/delete mutations")
		subs        = flag.Int("subs", 0, "standing-query SSE subscriptions held open for the run; each delivered frame records publish→notify latency under the 'sub' class (pair with -mutate-share)")
		hotShare    = flag.Float64("hot-share", 0, "fraction of query centers drawn from the Gaussian hot spot")
		hotSigma    = flag.Float64("hot-sigma", 250, "hot-spot standard deviation")
		seed        = flag.Int64("seed", 1, "op-stream seed (reproducible runs)")

		sloSpec = flag.String("slo", "", "comma-separated objectives, e.g. 'nwc_p99<5ms@1krps,all_p999<50ms'")
		sloFile = flag.String("slo-file", "", "JSON file of objectives (array of specs, or {\"slos\": [...]})")
		out     = flag.String("out", "", "archive the report as JSON (e.g. BENCH_load.json)")
	)
	flag.Parse()

	slos, err := loadgen.ParseSLOs(*sloSpec)
	if err != nil {
		fatalConfig(err)
	}
	if *sloFile != "" {
		fromFile, err := loadgen.LoadSLOFile(*sloFile)
		if err != nil {
			fatalConfig(err)
		}
		slos = append(slos, fromFile...)
	}
	var schemeList []string
	if *schemes != "" {
		schemeList = strings.Split(*schemes, ",")
	}
	cfg := loadgen.Config{
		BaseURL:  *url,
		Mode:     *mode,
		Rate:     *rate,
		Poisson:  *arrival == "poisson",
		Workers:  *workers,
		Duration: *duration,
		Warmup:   *warmup,
		Subs:     *subs,
		Seed:     *seed,
		Profile: loadgen.Profile{
			Window:      *window,
			N:           *n,
			K:           *k,
			M:           *m,
			Schemes:     schemeList,
			KNWCShare:   *knwcShare,
			BatchShare:  *batchShare,
			BatchSize:   *batchSize,
			MutateShare: *mutateShare,
			HotShare:    *hotShare,
			HotSigma:    *hotSigma,
		},
	}
	if *mode == "open" && *arrival != "poisson" && *arrival != "fixed" {
		fatalConfig(fmt.Errorf("nwcload: -arrival %q, want poisson or fixed", *arrival))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ready > 0 {
		fmt.Fprintf(os.Stderr, "waiting for %s/readyz (up to %v)\n", strings.TrimSuffix(*url, "/"), *ready)
		if err := loadgen.WaitReady(ctx, nil, *url, *ready); err != nil {
			fatalConfig(err)
		}
	}

	fmt.Fprintf(os.Stderr, "running: mode=%s duration=%v warmup=%v\n", *mode, *duration, *warmup)
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatalConfig(err)
	}
	passed := loadgen.Evaluate(slos, rep)

	printReport(rep)
	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalConfig(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatalConfig(err)
		}
		fmt.Fprintf(os.Stderr, "report archived to %s\n", *out)
	}
	if !passed {
		os.Exit(1)
	}
}

func printReport(rep *loadgen.Report) {
	w := os.Stdout
	fmt.Fprintf(w, "target %s, %s loop", rep.Target, rep.Mode)
	if rep.Mode == "open" {
		fmt.Fprintf(w, " (%s arrivals at %g rps)", rep.Arrival, rep.TargetRPS)
	}
	fmt.Fprintf(w, ", %gs measured after %gs warmup\n", rep.DurationSec, rep.WarmupSec)
	if rep.Dropped > 0 {
		fmt.Fprintf(w, "WARNING: %d scheduled arrivals never issued (server behind target rate)\n", rep.Dropped)
	}

	names := make([]string, 0, len(rep.Classes)+1)
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	names = append(names, "total")
	fmt.Fprintf(w, "%-8s %10s %8s %10s %9s %9s %9s %9s\n",
		"class", "count", "errors", "rps", "p50(ms)", "p95(ms)", "p99(ms)", "p999(ms)")
	for _, name := range names {
		c := rep.Total
		if name != "total" {
			c = rep.Classes[name]
		}
		fmt.Fprintf(w, "%-8s %10d %8d %10.1f %9.3f %9.3f %9.3f %9.3f\n",
			name, c.Count, c.Errors, c.ThroughputRPS,
			c.LatencyP50Ms, c.LatencyP95Ms, c.LatencyP99Ms, c.LatencyP999Ms)
	}
	for _, s := range rep.SLOs {
		verdict := "PASS"
		if !s.Passed {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "SLO %-28s %s  observed %.3fms vs %.3fms", s.Spec, verdict, s.ObservedMs, s.ThresholdMs)
		if s.Detail != "" {
			fmt.Fprintf(w, " (%s)", s.Detail)
		}
		fmt.Fprintln(w)
	}
}

func fatalConfig(err error) {
	fmt.Fprintf(os.Stderr, "nwcload: %v\n", err)
	os.Exit(2)
}
