// Command nwcgen generates the evaluation datasets as x,y,id CSV.
//
//	nwcgen -dataset ca > ca.csv
//	nwcgen -dataset gaussian -n 10000 -std 1500 > g.csv
//	nwcgen -dataset clustered -n 50000 -clusters 30 -spread 80 > c.csv
//
// Real datasets in the same CSV format can be normalised into the
// standard 10,000 × 10,000 space with -normalize.
package main

import (
	"flag"
	"fmt"
	"os"

	"nwcq/internal/datagen"
	"nwcq/internal/geom"
)

func main() {
	var (
		dataset   = flag.String("dataset", "gaussian", "ca, ny, gaussian, uniform or clustered")
		n         = flag.Int("n", 0, "cardinality (0 = the paper's Table 2 value)")
		seed      = flag.Int64("seed", 2016, "random seed")
		std       = flag.Float64("std", 2000, "gaussian standard deviation")
		clusters  = flag.Int("clusters", 50, "clustered: number of clusters")
		spread    = flag.Float64("spread", 100, "clustered: per-cluster stddev")
		bg        = flag.Float64("background", 0.1, "clustered: uniform background fraction")
		normalize = flag.String("normalize", "", "normalise an existing CSV file into the standard space instead of generating")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var pts []geom.Point
	switch {
	case *normalize != "":
		f, err := os.Open(*normalize)
		if err != nil {
			fatal(err)
		}
		raw, err := datagen.LoadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		pts = datagen.Normalize(raw)
	default:
		switch *dataset {
		case "ca":
			pts = datagen.CALikeN(orDefault(*n, datagen.CACardinality), *seed)
		case "ny":
			pts = datagen.NYLikeN(orDefault(*n, datagen.NYCardinality), *seed)
		case "gaussian":
			pts = datagen.Gaussian(orDefault(*n, datagen.GaussianCardinality), 5000, *std, *seed)
		case "uniform":
			pts = datagen.Uniform(orDefault(*n, 100000), *seed)
		case "clustered":
			pts = datagen.Clustered(datagen.ClusterSpec{
				N:              orDefault(*n, 100000),
				Clusters:       *clusters,
				Spread:         *spread,
				BackgroundFrac: *bg,
			}, *seed)
		default:
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := datagen.SaveCSV(w, pts); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nwcgen: wrote %d points (clustering index %.3f)\n",
		len(pts), datagen.ClusteringIndex(pts))
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nwcgen: %v\n", err)
	os.Exit(1)
}
