// Command nwcbench regenerates the tables and figures of "Nearest
// Window Cluster Queries" (EDBT 2016).
//
//	nwcbench -exp all                  # quick pass over every experiment
//	nwcbench -exp fig11 -full          # figure 11 at the paper's scale
//	nwcbench -exp fig9 -scale 0.1      # custom scale
//
// Each experiment prints the rows behind one figure: the average number
// of R*-tree nodes visited per query (the paper's I/O metric) for every
// scheme/parameter combination.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nwcq/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table2, table3, fig9, fig10, fig11, fig12, fig13, fig14, storage, model, ablation, knwcn")
		full    = flag.Bool("full", false, "run at the paper's full cardinality (slow; implies -scale 1 -queries 25)")
		scale   = flag.Float64("scale", 0, "dataset cardinality multiplier (default: quick 0.04, or 1 with -full)")
		queries = flag.Int("queries", 0, "query points per configuration (default: quick 5, or 25 with -full)")
		seed    = flag.Int64("seed", 2016, "random seed for datasets and query points")
		insert  = flag.Bool("insert", false, "build trees by one-by-one R* insertion instead of STR bulk loading")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opts := harness.QuickOptions()
	if *full {
		opts = harness.DefaultOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	opts.Seed = *seed
	opts.Config.BulkLoad = !*insert
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
		}
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"table2", "table3", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "storage", "model"}
	}
	fmt.Printf("nwcbench: scale=%g queries=%d seed=%d bulk=%v\n\n",
		opts.Scale, opts.Queries, opts.Seed, opts.Config.BulkLoad)
	for _, name := range names {
		if err := run(strings.TrimSpace(name), opts); err != nil {
			fmt.Fprintf(os.Stderr, "nwcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func run(name string, opts harness.Options) error {
	started := time.Now()
	var tables []*harness.Table
	switch name {
	case "table2":
		t, err := harness.Table2(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "table3":
		tables = []*harness.Table{harness.Table3()}
	case "fig9":
		t, err := harness.Fig9(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "fig10":
		t, err := harness.Fig10(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "fig11":
		ts, err := harness.Fig11(opts)
		if err != nil {
			return err
		}
		tables = ts
	case "fig12":
		ts, err := harness.Fig12(opts)
		if err != nil {
			return err
		}
		tables = ts
	case "fig13":
		t, err := harness.Fig13(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "fig14":
		t, err := harness.Fig14(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "storage":
		t, err := harness.StorageOverheads(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "model":
		t, err := harness.ModelComparison(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "knwcn":
		t, err := harness.FigKNWCByN(opts)
		if err != nil {
			return err
		}
		tables = []*harness.Table{t}
	case "ablation":
		ts, err := harness.Ablation(opts)
		if err != nil {
			return err
		}
		tables = ts
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	fmt.Printf("(%s finished in %v)\n\n", name, time.Since(started).Round(time.Millisecond))
	return nil
}
