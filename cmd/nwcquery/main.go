// Command nwcquery answers ad-hoc NWC/kNWC queries over a CSV dataset.
//
//	nwcquery -data shops.csv -x 3100 -y 5280 -l 50 -w 50 -n 8
//	nwcquery -data shops.csv -x 3100 -y 5280 -l 50 -w 50 -n 8 -k 3 -m 1
//	nwcquery -data shops.csv -x 1 -y 1 -l 10 -w 10 -n 4 -scheme NWC+ -measure avg
//	nwcquery -data shops.csv -x 3100 -y 5280 -l 50 -w 50 -n 8 -explain
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"nwcq"
	"nwcq/internal/datagen"
)

func main() {
	var (
		data    = flag.String("data", "", "CSV dataset file (x,y[,id] per line)")
		x       = flag.Float64("x", 0, "query x")
		y       = flag.Float64("y", 0, "query y")
		l       = flag.Float64("l", 8, "window length")
		w       = flag.Float64("w", 8, "window width")
		n       = flag.Int("n", 8, "objects to retrieve")
		k       = flag.Int("k", 1, "groups to retrieve (k > 1 runs a kNWC query)")
		m       = flag.Int("m", 0, "max identical objects between groups (kNWC)")
		scheme  = flag.String("scheme", "NWC*", "NWC, SRR, DIP, DEP, IWP, NWC+ or NWC*")
		measure = flag.String("measure", "max", "max, min, avg or window")
		bulk    = flag.Bool("bulk", true, "bulk-load the index")
		explain = flag.Bool("explain", false, "trace the query and print the per-phase breakdown")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "nwcquery: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	raw, err := datagen.LoadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	pts := make([]nwcq.Point, len(raw))
	for i, p := range raw {
		pts[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}

	sch, err := parseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	meas, err := parseMeasure(*measure)
	if err != nil {
		fatal(err)
	}

	var opts []nwcq.BuildOption
	if *bulk {
		opts = append(opts, nwcq.WithBulkLoad())
	}
	idx, err := nwcq.Build(pts, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d points (tree height %d)\n", idx.Len(), idx.TreeHeight())

	q := nwcq.Query{X: *x, Y: *y, Length: *l, Width: *w, N: *n, Scheme: sch, Measure: meas}
	if *k <= 1 {
		var (
			res nwcq.Result
			tr  *nwcq.QueryTrace
		)
		if *explain {
			res, tr, err = idx.ExplainNWC(context.Background(), q)
		} else {
			res, err = idx.NWC(q)
		}
		if err != nil {
			fatal(err)
		}
		if !res.Found {
			fmt.Println("no qualified window: no", *n, "objects fit a", *l, "x", *w, "window")
			printTrace(tr)
			return
		}
		printGroup(res.Group, 0)
		printStats(res.Stats)
		printTrace(tr)
		return
	}
	kq := nwcq.KQuery{Query: q, K: *k, M: *m}
	var (
		res nwcq.KResult
		tr  *nwcq.QueryTrace
	)
	if *explain {
		res, tr, err = idx.ExplainKNWC(context.Background(), kq)
	} else {
		res, err = idx.KNWCCtx(context.Background(), kq)
	}
	if err != nil {
		fatal(err)
	}
	if !res.Found {
		fmt.Println("no qualified window found")
		printTrace(tr)
		return
	}
	for i, g := range res.Groups {
		printGroup(g, i+1)
	}
	printStats(res.Stats)
	printTrace(tr)
}

func printTrace(tr *nwcq.QueryTrace) {
	if tr == nil {
		return
	}
	fmt.Println()
	fmt.Print(tr.Render())
}

func printGroup(g nwcq.Group, rank int) {
	if rank > 0 {
		fmt.Printf("group %d: ", rank)
	}
	fmt.Printf("dist=%.3f window=[%.2f,%.2f]x[%.2f,%.2f]\n",
		g.Dist, g.Window.MinX, g.Window.MaxX, g.Window.MinY, g.Window.MaxY)
	for _, o := range g.Objects {
		fmt.Printf("  id=%d (%.2f, %.2f)\n", o.ID, o.X, o.Y)
	}
}

func printStats(st nwcq.Stats) {
	fmt.Printf("I/O: %d node visits; %d objects processed (%d skipped), %d nodes pruned, %d window queries, %d/%d windows qualified\n",
		st.NodeVisits, st.ObjectsProcessed, st.ObjectsSkipped, st.NodesPruned,
		st.WindowQueries, st.QualifiedWindows, st.CandidateWindows)
}

func parseScheme(s string) (nwcq.Scheme, error) {
	switch strings.ToUpper(s) {
	case "NWC":
		return nwcq.SchemeNWC, nil
	case "SRR":
		return nwcq.SchemeSRR, nil
	case "DIP":
		return nwcq.SchemeDIP, nil
	case "DEP":
		return nwcq.SchemeDEP, nil
	case "IWP":
		return nwcq.SchemeIWP, nil
	case "NWC+":
		return nwcq.SchemeNWCPlus, nil
	case "NWC*":
		return nwcq.SchemeNWCStar, nil
	}
	return nwcq.Scheme{}, fmt.Errorf("unknown scheme %q", s)
}

func parseMeasure(s string) (nwcq.Measure, error) {
	switch strings.ToLower(s) {
	case "max":
		return nwcq.MaxDistance, nil
	case "min":
		return nwcq.MinDistance, nil
	case "avg":
		return nwcq.AvgDistance, nil
	case "window":
		return nwcq.WindowDistance, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nwcquery: %v\n", err)
	os.Exit(1)
}
