// Command nwcserve serves NWC queries over HTTP — the location-based
// service of the paper's motivating scenario.
//
//	nwcgen -dataset ca > ca.csv
//	nwcserve -data ca.csv -addr :8080 -slowlog 100ms
//	curl 'localhost:8080/nwc?x=5000&y=5000&l=50&w=50&n=8'
//	curl 'localhost:8080/nwc?x=5000&y=5000&l=50&w=50&n=8&explain=1'
//	curl 'localhost:8080/knwc?x=5000&y=5000&l=50&w=50&n=8&k=3&m=1'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics?format=prometheus'
//	curl 'localhost:8080/debug/slowlog'
//	go tool pprof 'localhost:8080/debug/pprof/profile?seconds=10'
//
// Every request is logged through log/slog (text by default, JSON with
// -log-format json); profiling endpoints are mounted under
// /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"nwcq"
	"nwcq/internal/datagen"
	"nwcq/internal/server"
)

func main() {
	var (
		data      = flag.String("data", "", "CSV dataset file (x,y[,id] per line)")
		addr      = flag.String("addr", ":8080", "listen address")
		bulk      = flag.Bool("bulk", true, "bulk-load the index")
		slowlog   = flag.Duration("slowlog", 0, "slow-query log threshold (0 disables), e.g. 100ms")
		logFormat = flag.String("log-format", "text", "access log format: text or json")
		accessLog = flag.Bool("access-log", true, "log every HTTP request")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nwcserve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	if *data == "" {
		fmt.Fprintln(os.Stderr, "nwcserve: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		fatal(logger, err)
	}
	raw, err := datagen.LoadCSV(f)
	f.Close()
	if err != nil {
		fatal(logger, err)
	}
	pts := make([]nwcq.Point, len(raw))
	for i, p := range raw {
		pts[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	opts := []nwcq.BuildOption{nwcq.WithSlowQueryThreshold(*slowlog)}
	if *bulk {
		opts = append(opts, nwcq.WithBulkLoad())
	}
	started := time.Now()
	idx, err := nwcq.Build(pts, opts...)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("indexed",
		"points", idx.Len(),
		"elapsed", time.Since(started).Round(time.Millisecond),
		"tree_height", idx.TreeHeight(),
		"slow_query_threshold", *slowlog)

	mux := http.NewServeMux()
	mux.Handle("/", server.New(idx).Handler())
	// Profiling endpoints: CPU/heap/goroutine profiles for go tool pprof.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	var handler http.Handler = mux
	if *accessLog {
		handler = logRequests(logger, handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving NWC queries", "addr", *addr)
	fatal(logger, srv.ListenAndServe())
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// logRequests wraps h with one structured access-log line per request.
func logRequests(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rec.status,
			"duration", time.Since(start).Round(time.Microsecond),
			"remote", r.RemoteAddr)
	})
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
