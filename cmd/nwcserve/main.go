// Command nwcserve serves NWC queries over HTTP — the location-based
// service of the paper's motivating scenario.
//
//	nwcgen -dataset ca > ca.csv
//	nwcserve -data ca.csv -addr :8080
//	curl 'localhost:8080/nwc?x=5000&y=5000&l=50&w=50&n=8'
//	curl 'localhost:8080/knwc?x=5000&y=5000&l=50&w=50&n=8&k=3&m=1'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"nwcq"
	"nwcq/internal/datagen"
	"nwcq/internal/server"
)

func main() {
	var (
		data = flag.String("data", "", "CSV dataset file (x,y[,id] per line)")
		addr = flag.String("addr", ":8080", "listen address")
		bulk = flag.Bool("bulk", true, "bulk-load the index")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "nwcserve: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatalf("nwcserve: %v", err)
	}
	raw, err := datagen.LoadCSV(f)
	f.Close()
	if err != nil {
		log.Fatalf("nwcserve: %v", err)
	}
	pts := make([]nwcq.Point, len(raw))
	for i, p := range raw {
		pts[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	var opts []nwcq.BuildOption
	if *bulk {
		opts = append(opts, nwcq.WithBulkLoad())
	}
	started := time.Now()
	idx, err := nwcq.Build(pts, opts...)
	if err != nil {
		log.Fatalf("nwcserve: %v", err)
	}
	log.Printf("indexed %d points in %v (tree height %d)", idx.Len(),
		time.Since(started).Round(time.Millisecond), idx.TreeHeight())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(idx).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving NWC queries on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
